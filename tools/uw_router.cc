// uw_router — the scatter-gather front door of the sharded serving
// cluster.
//
//   $ ./uw_router [--port=N] [--shards=TOPOLOGY]
//
// Speaks the same framed TCP protocol as uw_serve (clients cannot tell a
// router from a single-process server) and fans requests out over shard
// servers (uw_serve --shard=I/N): retexpan requests scatter-gather with a
// bit-identical merged ranking; every other method is proxied whole to
// the least-loaded replica. Replica choice is driven by health scrapes of
// each shard's admin /statusz plus passive transport signals, with
// automatic failover across replicas of a shard.
//
// Topology comes from --shards or UW_ROUTER_SHARDS: comma-separated
// "shard@host:port" or "shard@host:port/admin_port" replicas, e.g.
//
//   UW_ROUTER_SHARDS="0@127.0.0.1:5000/5001,0@127.0.0.1:5002/5003,1@127.0.0.1:5004/5005"
//
// Knobs: UW_ROUTER_HEALTH_MS sets the health-poll period (default 200,
// 0 disables polling), UW_ROUTER_PORT_FILE mirrors the bound port to a
// file for scripts. The bound port is printed as
// "router listening on port N"; SIGINT/SIGTERM drain gracefully and
// print a "drained cleanly: ..." line, exactly like uw_serve.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>

#include "common/env.h"
#include "common/string_util.h"
#include "serve/router.h"
#include "serve/server.h"

namespace {

using namespace ultrawiki;

int g_signal_pipe[2] = {-1, -1};

void HandleSignal(int /*signum*/) {
  const char byte = 1;
  [[maybe_unused]] ssize_t written = ::write(g_signal_pipe[1], &byte, 1);
}

std::string FlagValue(int argc, char** argv, const std::string& name,
                      const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (StartsWith(arg, prefix)) return arg.substr(prefix.size());
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string port_flag = FlagValue(argc, argv, "port", "");
  // --port wins; otherwise UW_ROUTER_PORT (strictly parsed); 0 = ephemeral.
  const int port = !port_flag.empty()
                       ? ParseIntStrict(port_flag).value_or(0)
                       : EnvInt("UW_ROUTER_PORT", 0, 0);
  const char* shards_env = std::getenv("UW_ROUTER_SHARDS");
  const std::string topology = FlagValue(
      argc, argv, "shards", shards_env != nullptr ? shards_env : "");
  if (topology.empty()) {
    std::fprintf(stderr,
                 "usage: uw_router --shards=0@host:port[/admin],... "
                 "(or UW_ROUTER_SHARDS)\n");
    return 2;
  }

  StatusOr<serve::RouterConfig> parsed =
      serve::RouterConfig::ParseTopology(topology);
  if (!parsed.ok()) {
    std::fprintf(stderr, "[uw_router] %s\n",
                 parsed.status().ToString().c_str());
    return 2;
  }
  serve::RouterConfig config = std::move(*parsed);
  config.health_poll_ms =
      EnvInt("UW_ROUTER_HEALTH_MS", config.health_poll_ms, 0);

  serve::ClusterRouter router(std::move(config));
  const Status started = router.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "[uw_router] %s\n", started.ToString().c_str());
    return 2;
  }

  serve::TcpServer server(router);
  const Status listening = server.Start(port);
  if (!listening.ok()) {
    std::fprintf(stderr, "[uw_router] %s\n", listening.ToString().c_str());
    return 1;
  }
  std::printf("router listening on port %d\n", server.port());
  std::fflush(stdout);
  if (const char* port_file = std::getenv("UW_ROUTER_PORT_FILE")) {
    std::FILE* file = std::fopen(port_file, "w");
    if (file != nullptr) {
      std::fprintf(file, "%d\n", server.port());
      std::fclose(file);
    } else {
      std::fprintf(stderr,
                   "[uw_router] cannot write UW_ROUTER_PORT_FILE %s\n",
                   port_file);
    }
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "[uw_router] pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction action{};
  action.sa_handler = HandleSignal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);

  while (true) {
    char byte = 0;
    const ssize_t got = ::read(g_signal_pipe[0], &byte, 1);
    if (got < 0 && errno == EINTR) continue;
    break;
  }
  std::fprintf(stderr, "[uw_router] signal received; draining...\n");
  server.Shutdown();
  std::printf(
      "drained cleanly: connections=%lld requests=%lld "
      "protocol_errors=%lld\n",
      static_cast<long long>(server.connections_accepted()),
      static_cast<long long>(server.requests_served()),
      static_cast<long long>(server.protocol_errors()));
  return 0;
}
