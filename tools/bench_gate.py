#!/usr/bin/env python3
"""Bench-regression gate: diff a UW_BENCH_JSON snapshot against a baseline.

A baseline file (bench/baselines/*.json) pins the deterministic metrics of
one bench binary together with a per-metric tolerance:

    {
      "bench": "bench_table2_main",
      "command": "UW_BENCH_TINY=1 UW_THREADS=2 UW_BENCH_JSON=... ./bench/...",
      "metrics": {
        "counters/bm25.queries":         {"value": 226, "tolerance_pct": 0},
        "gauges/index.bench.skip_ratio_x1000":
                                         {"value": 31, "tolerance_abs": 5}
      }
    }

Metric keys are "<kind>/<name>" where kind is one of counters, gauges, or
histograms (histograms compare the "count" field). A metric passes when

    |snapshot - baseline| <= max(tolerance_abs, baseline * tolerance_pct / 100)

Both tolerance fields default to 0, i.e. exact match. Timing-derived
metrics (qps, speedups, seconds) and scheduler counters (pool.*) must not
be listed -- they are not deterministic and would make the gate flaky.

Usage:
    bench_gate.py check  --baseline bench/baselines/foo.json --snapshot out.json
    bench_gate.py update --baseline bench/baselines/foo.json --snapshot out.json
    bench_gate.py check  --baseline bench/baselines/foo.json --list

`check` exits 0 when every listed metric is within tolerance and 1
otherwise, printing a per-metric PASS/FAIL table. A metric listed in the
baseline but absent from the snapshot is a failure (a silently dropped
counter is a regression too). `update` rewrites the baseline values in
place from the snapshot, preserving the metric selection and tolerances;
run it after an intentional behaviour change and commit the diff.
"""

import argparse
import json
import sys


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as err:
        sys.exit(f"bench_gate: cannot read {path}: {err}")


def load_baseline(path):
    """Load a baseline file with failure messages that name the file and
    say how to repair it (a bare JSON traceback helps nobody in CI)."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            raw = f.read()
    except OSError as err:
        sys.exit(
            f"bench_gate: baseline file {path} is missing or unreadable "
            f"({err.strerror}); check the --baseline path, or create the "
            "file with a 'metrics' selection and fill in its values with "
            f"`bench_gate.py update --baseline {path} --snapshot <out.json>`")
    try:
        baseline = json.loads(raw)
    except ValueError as err:
        sys.exit(
            f"bench_gate: baseline file {path} is not valid JSON ({err}); "
            "fix it by hand or regenerate it with `bench_gate.py update` "
            "from a known-good snapshot")
    if not isinstance(baseline, dict) or not isinstance(
            baseline.get("metrics"), dict):
        sys.exit(
            f"bench_gate: baseline file {path} has no 'metrics' object; "
            "expected {\"bench\": ..., \"metrics\": {\"<kind>/<name>\": "
            "{\"value\": ..., \"tolerance_pct\": ...}}}")
    return baseline


def run_list(baseline, baseline_path):
    metrics = baseline["metrics"]
    print(f"bench_gate: {len(metrics)} gated metric(s) in {baseline_path} "
          f"(bench {baseline.get('bench', '?')})")
    width = max((len(k) for k in metrics), default=0)
    for key in sorted(metrics):
        entry = metrics[key]
        print(f"  {key:{width}s}  value={entry['value']} "
              f"slack={allowed_slack(entry):g}")
    return 0


def snapshot_value(snapshot, key):
    """Resolve "<kind>/<name>" against a snapshot; None when absent."""
    kind, _, name = key.partition("/")
    if not name:
        sys.exit(f"bench_gate: malformed metric key {key!r} "
                 "(want '<kind>/<name>')")
    metrics = snapshot.get("metrics", snapshot)
    table = metrics.get(kind)
    if table is None or name not in table:
        return None
    value = table[name]
    if kind == "histograms":
        return value.get("count")
    return value


def allowed_slack(entry):
    value = entry["value"]
    pct = entry.get("tolerance_pct", 0)
    abs_tol = entry.get("tolerance_abs", 0)
    return max(abs_tol, abs(value) * pct / 100.0)


def run_check(baseline, snapshot):
    failures = 0
    rows = []
    for key in sorted(baseline["metrics"]):
        entry = baseline["metrics"][key]
        expected = entry["value"]
        slack = allowed_slack(entry)
        actual = snapshot_value(snapshot, key)
        if actual is None:
            failures += 1
            rows.append(("FAIL", key, expected, "<missing>", slack))
            continue
        delta = abs(actual - expected)
        if delta > slack:
            failures += 1
            rows.append(("FAIL", key, expected, actual, slack))
        else:
            rows.append(("ok", key, expected, actual, slack))
    width = max(len(r[1]) for r in rows) if rows else 0
    for status, key, expected, actual, slack in rows:
        print(f"  {status:4s} {key:{width}s}  baseline={expected} "
              f"snapshot={actual} slack={slack:g}")
    total = len(rows)
    if failures:
        print(f"bench_gate: FAIL -- {failures}/{total} metric(s) out of "
              f"tolerance for {baseline.get('bench', '?')}")
        print("bench_gate: if the drift is intentional, refresh with "
              "`bench_gate.py update` and commit the baseline diff")
        return 1
    print(f"bench_gate: PASS -- {total}/{total} metric(s) within tolerance "
          f"for {baseline.get('bench', '?')}")
    return 0


def run_update(baseline, snapshot, baseline_path):
    missing = []
    for key, entry in baseline["metrics"].items():
        actual = snapshot_value(snapshot, key)
        if actual is None:
            missing.append(key)
            continue
        entry["value"] = actual
    if missing:
        for key in missing:
            print(f"bench_gate: metric {key} absent from snapshot; "
                  "kept old value", file=sys.stderr)
    with open(baseline_path, "w", encoding="utf-8") as f:
        json.dump(baseline, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"bench_gate: refreshed {len(baseline['metrics']) - len(missing)} "
          f"metric(s) in {baseline_path}")
    return 1 if missing else 0


def main():
    parser = argparse.ArgumentParser(
        description="Gate bench snapshots against checked-in baselines.")
    parser.add_argument("mode", choices=("check", "update"))
    parser.add_argument("--baseline", required=True,
                        help="bench/baselines/*.json baseline file")
    parser.add_argument("--snapshot",
                        help="UW_BENCH_JSON output of the bench binary")
    parser.add_argument("--list", action="store_true",
                        help="print the baseline's gated metrics and exit "
                             "(no snapshot needed)")
    args = parser.parse_args()

    baseline = load_baseline(args.baseline)
    if args.list:
        sys.exit(run_list(baseline, args.baseline))
    if not args.snapshot:
        parser.error("--snapshot is required unless --list is given")
    snapshot = load_json(args.snapshot)

    if args.mode == "check":
        sys.exit(run_check(baseline, snapshot))
    sys.exit(run_update(baseline, snapshot, args.baseline))


if __name__ == "__main__":
    main()
