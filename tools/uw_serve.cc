// uw_serve — the single-binary online expansion server.
//
//   $ ./uw_serve [--port=N] [--config=tiny|bench] [--scale=S]
//                [--prewarm=m1,m2,...]
//
// Builds the pipeline once (warm-started from UW_CACHE_DIR when set),
// then serves framed TCP queries (serve/protocol.h) with dynamic
// micro-batching and admission control (serve/service.h knobs:
// UW_SERVE_BATCH, UW_SERVE_BATCH_WAIT_MS, UW_SERVE_QUEUE,
// UW_SERVE_TIMEOUT_MS). `--port=0` (default UW_SERVE_PORT or 0) binds an
// ephemeral port; the bound port is printed to stdout as
// "listening on port N" and, when UW_SERVE_PORT_FILE is set, written to
// that path for scripts.
//
// SIGINT/SIGTERM trigger a graceful drain: stop accepting, serve every
// queued request, report lifetime stats, exit 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>
#include <vector>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "io/artifact_cache.h"
#include "serve/server.h"
#include "serve/service.h"

namespace {

using namespace ultrawiki;

// Self-pipe: the handler only writes one byte; the main thread blocks on
// the read end and runs the (non-async-signal-safe) drain itself.
int g_signal_pipe[2] = {-1, -1};

void HandleSignal(int /*signum*/) {
  const char byte = 1;
  [[maybe_unused]] ssize_t written = ::write(g_signal_pipe[1], &byte, 1);
}

std::string FlagValue(int argc, char** argv, const std::string& name,
                      const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (StartsWith(arg, prefix)) return arg.substr(prefix.size());
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const char* port_env = std::getenv("UW_SERVE_PORT");
  const int port = std::atoi(
      FlagValue(argc, argv, "port", port_env != nullptr ? port_env : "0")
          .c_str());
  const std::string config_name =
      FlagValue(argc, argv, "config", "tiny");
  const double scale =
      std::atof(FlagValue(argc, argv, "scale", "0.12").c_str());
  const std::string prewarm_csv =
      FlagValue(argc, argv, "prewarm", "retexpan,setexpan");

  PipelineConfig config;
  if (config_name == "tiny") {
    config = PipelineConfig::Tiny();
    config.generator.scale = scale;
    config.dataset.ultra_class_scale = scale;
  } else if (config_name == "bench") {
    config = PipelineConfig::Bench();
  } else {
    std::fprintf(stderr, "unknown --config=%s (tiny|bench)\n",
                 config_name.c_str());
    return 2;
  }

  std::fprintf(stderr,
               "[uw_serve] building pipeline (%s, %d thread(s), cache %s)\n",
               config_name.c_str(), ThreadPool::Global().thread_count(),
               ArtifactCache::Global().enabled()
                   ? ArtifactCache::Global().root().c_str()
                   : "disabled");
  Pipeline pipeline = Pipeline::Build(config);

  serve::ExpansionService service(pipeline);
  const std::vector<std::string> prewarm = SplitString(prewarm_csv, ',');
  if (!prewarm.empty()) {
    const Status warmed = service.PrewarmMethods(prewarm);
    if (!warmed.ok()) {
      std::fprintf(stderr, "[uw_serve] prewarm failed: %s\n",
                   warmed.ToString().c_str());
      return 2;
    }
  }

  serve::TcpServer server(service);
  const Status started = server.Start(port);
  if (!started.ok()) {
    std::fprintf(stderr, "[uw_serve] %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("listening on port %d\n", server.port());
  std::fflush(stdout);
  if (const char* port_file = std::getenv("UW_SERVE_PORT_FILE")) {
    std::FILE* file = std::fopen(port_file, "w");
    if (file != nullptr) {
      std::fprintf(file, "%d\n", server.port());
      std::fclose(file);
    } else {
      std::fprintf(stderr, "[uw_serve] cannot write UW_SERVE_PORT_FILE %s\n",
                   port_file);
    }
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "[uw_serve] pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction action{};
  action.sa_handler = HandleSignal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);

  char byte = 0;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::fprintf(stderr, "[uw_serve] signal received; draining...\n");
  server.Shutdown();
  std::printf(
      "drained cleanly: connections=%lld requests=%lld protocol_errors=%lld "
      "queue_depth=%d\n",
      static_cast<long long>(server.connections_accepted()),
      static_cast<long long>(server.requests_served()),
      static_cast<long long>(server.protocol_errors()),
      service.queue_depth());
  return 0;
}
