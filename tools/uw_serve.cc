// uw_serve — the single-binary online expansion server (standalone or
// one shard of the serving cluster).
//
//   $ ./uw_serve [--port=N] [--config=tiny|bench] [--scale=S]
//                [--prewarm=m1,m2,...] [--shard=I/N]
//
// Builds the pipeline once (warm-started from UW_CACHE_DIR when set),
// then serves framed TCP queries (serve/protocol.h) with dynamic
// micro-batching and admission control (serve/service.h knobs:
// UW_SERVE_BATCH, UW_SERVE_BATCH_WAIT_MS, UW_SERVE_QUEUE,
// UW_SERVE_TIMEOUT_MS, UW_TRACE_SAMPLE, UW_SLOW_QUERY_MS). `--port=0`
// (default UW_SERVE_PORT or 0) binds an ephemeral port; the bound port
// is printed to stdout as "listening on port N" and, when
// UW_SERVE_PORT_FILE is set, written to that path for scripts.
//
// `--shard=I/N` scopes the scatter plane (serve/router.h) to shard I of
// an N-way candidate partition: the process answers ShardRetrieve /
// ShardScore for its slice (off a cached shard store) while still
// serving every full expansion method. When UW_SHARD_MANIFEST is set,
// the cluster's shard manifest (io/shard_manifest.h) is written there on
// every generation install.
//
// When UW_ADMIN_PORT is set, a second listener serves the live admin
// endpoint (serve/admin.h): /metrics, /healthz, /statusz, /slow, /slowz.
// Its bound port is reported as "admin on port N" and written to
// UW_ADMIN_PORT_FILE when set. The router's health poller scrapes
// /statusz, so cluster shards should always set UW_ADMIN_PORT.
//
// SIGINT/SIGTERM trigger a graceful drain: stop accepting, serve every
// queued request, report lifetime stats, exit 0. SIGUSR1 dumps a
// metrics + profile snapshot to UW_METRICS_DUMP_PATH (default
// "uw_serve_metrics.json") and keeps serving. SIGHUP hot-swaps to a
// fresh generation: the pipeline is rebuilt (warm from the artifact
// cache), prewarmed, and atomically installed — new requests land on the
// new generation while in-flight ones finish on the old, which then
// drains and frees; zero requests are shed by the swap.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <unistd.h>
#include <vector>

#include "common/env.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "io/artifact_cache.h"
#include "io/shard_manifest.h"
#include "obs/export.h"
#include "serve/admin.h"
#include "serve/server.h"
#include "serve/service.h"
#include "serve/service_host.h"

namespace {

using namespace ultrawiki;

// Self-pipe: handlers only write one byte naming the signal; the main
// thread blocks on the read end and runs the (non-async-signal-safe)
// reaction itself — drain for SIGINT/SIGTERM, a metrics dump for
// SIGUSR1, a generation hot swap for SIGHUP.
int g_signal_pipe[2] = {-1, -1};

constexpr char kDrainByte = 1;
constexpr char kDumpByte = 'u';
constexpr char kReloadByte = 'h';

void HandleSignal(int signum) {
  const char byte = signum == SIGUSR1  ? kDumpByte
                    : signum == SIGHUP ? kReloadByte
                                       : kDrainByte;
  [[maybe_unused]] ssize_t written = ::write(g_signal_pipe[1], &byte, 1);
}

// SIGUSR1 reaction: the same {"metrics": ..., "profile": ...} shape the
// benches snapshot, written atomically enough for a tail -f (single
// write + newline).
void DumpMetricsSnapshot() {
  const char* env = std::getenv("UW_METRICS_DUMP_PATH");
  const std::string path = env != nullptr ? env : "uw_serve_metrics.json";
  std::string json = "{\"metrics\":";
  json += obs::ExportMetricsJson(obs::SnapshotMetrics());
  json += ",\"profile\":";
  json += obs::ExportProfileJson(obs::SnapshotProfile());
  json += "}\n";
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "[uw_serve] cannot open metrics dump path %s\n",
                 path.c_str());
    return;
  }
  const bool ok = std::fwrite(json.data(), 1, json.size(), file) ==
                  json.size();
  std::fclose(file);
  std::fprintf(stderr, "[uw_serve] %s metrics snapshot to %s\n",
               ok ? "wrote" : "short write of", path.c_str());
}

std::string FlagValue(int argc, char** argv, const std::string& name,
                      const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (StartsWith(arg, prefix)) return arg.substr(prefix.size());
  }
  return fallback;
}

// "--shard=I/N" → {I, N}. Strict: both parts must be integers.
bool ParseShardFlag(const std::string& value, ShardSpec* spec) {
  const size_t slash = value.find('/');
  if (slash == std::string::npos) return false;
  const std::optional<int> index = ParseIntStrict(value.substr(0, slash));
  const std::optional<int> count = ParseIntStrict(value.substr(slash + 1));
  if (!index.has_value() || !count.has_value()) return false;
  spec->index = *index;
  spec->count = *count;
  return spec->valid();
}

// One serving generation: pipeline (warm from the artifact cache on
// reloads), service, shard scope, prewarm. Shared by boot and SIGHUP.
std::shared_ptr<serve::ServiceHost::Generation> BuildGeneration(
    const PipelineConfig& config, const ShardSpec& shard,
    const std::vector<std::string>& prewarm) {
  auto pipeline = std::make_unique<Pipeline>(Pipeline::Build(config));
  auto service = std::make_unique<serve::ExpansionService>(*pipeline);
  const Status sharded = service->EnableSharding(shard);
  if (!sharded.ok()) {
    std::fprintf(stderr, "[uw_serve] sharding failed: %s\n",
                 sharded.ToString().c_str());
    return nullptr;
  }
  if (!prewarm.empty()) {
    const Status warmed = service->PrewarmMethods(prewarm);
    if (!warmed.ok()) {
      std::fprintf(stderr, "[uw_serve] prewarm failed: %s\n",
                   warmed.ToString().c_str());
      return nullptr;
    }
  }
  return serve::ServiceHost::Own(std::move(pipeline), std::move(service));
}

// When UW_SHARD_MANIFEST is set, record the cluster topology of the
// just-installed generation. Every shard of a generation writes
// byte-identical content, and WriteSnapshotFile's atomic rename makes
// concurrent writers safe.
void MaybeWriteShardManifest(
    const serve::ServiceHost::Generation& generation, const ShardSpec& shard,
    uint64_t generation_id) {
  const char* path = std::getenv("UW_SHARD_MANIFEST");
  if (path == nullptr || generation.pipeline == nullptr) return;
  ShardManifest manifest;
  manifest.generation = generation_id;
  manifest.shard_count = static_cast<uint32_t>(shard.count);
  manifest.store_fingerprint = generation.pipeline->store_key();
  manifest.shard_store_keys.reserve(static_cast<size_t>(shard.count));
  for (int i = 0; i < shard.count; ++i) {
    manifest.shard_store_keys.push_back(
        generation.pipeline->ShardStoreKey(ShardSpec{i, shard.count}));
  }
  const Status saved = SaveShardManifest(manifest, path);
  if (!saved.ok()) {
    std::fprintf(stderr, "[uw_serve] shard manifest: %s\n",
                 saved.ToString().c_str());
  } else {
    std::fprintf(stderr, "[uw_serve] wrote shard manifest to %s\n", path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const char* port_env = std::getenv("UW_SERVE_PORT");
  const int port = std::atoi(
      FlagValue(argc, argv, "port", port_env != nullptr ? port_env : "0")
          .c_str());
  const std::string config_name =
      FlagValue(argc, argv, "config", "tiny");
  const double scale =
      std::atof(FlagValue(argc, argv, "scale", "0.12").c_str());
  const std::string prewarm_csv =
      FlagValue(argc, argv, "prewarm", "retexpan,setexpan");
  const std::string shard_flag = FlagValue(argc, argv, "shard", "0/1");
  ShardSpec shard;
  if (!ParseShardFlag(shard_flag, &shard)) {
    std::fprintf(stderr, "bad --shard=%s (expected I/N with 0 <= I < N)\n",
                 shard_flag.c_str());
    return 2;
  }

  PipelineConfig config;
  if (config_name == "tiny") {
    config = PipelineConfig::Tiny();
    config.generator.scale = scale;
    config.dataset.ultra_class_scale = scale;
  } else if (config_name == "bench") {
    config = PipelineConfig::Bench();
  } else {
    std::fprintf(stderr, "unknown --config=%s (tiny|bench)\n",
                 config_name.c_str());
    return 2;
  }

  std::fprintf(
      stderr,
      "[uw_serve] building pipeline (%s, shard %d/%d, %d thread(s), "
      "cache %s)\n",
      config_name.c_str(), shard.index, shard.count,
      ThreadPool::Global().thread_count(),
      ArtifactCache::Global().enabled()
          ? ArtifactCache::Global().root().c_str()
          : "disabled");
  const std::vector<std::string> prewarm = SplitString(prewarm_csv, ',');
  std::shared_ptr<serve::ServiceHost::Generation> generation =
      BuildGeneration(config, shard, prewarm);
  if (generation == nullptr) return 2;

  serve::ServiceHost host;
  const uint64_t generation_id = host.Install(generation);
  MaybeWriteShardManifest(*generation, shard, generation_id);

  serve::TcpServer server(host);
  const Status started = server.Start(port);
  if (!started.ok()) {
    std::fprintf(stderr, "[uw_serve] %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("listening on port %d\n", server.port());
  std::fflush(stdout);
  if (const char* port_file = std::getenv("UW_SERVE_PORT_FILE")) {
    std::FILE* file = std::fopen(port_file, "w");
    if (file != nullptr) {
      std::fprintf(file, "%d\n", server.port());
      std::fclose(file);
    } else {
      std::fprintf(stderr, "[uw_serve] cannot write UW_SERVE_PORT_FILE %s\n",
                   port_file);
    }
  }

  // Optional admin listener: telemetry stays off the request plane and
  // scrapeable mid-load. UW_ADMIN_PORT=0 binds an ephemeral port.
  serve::AdminServer admin(host);
  if (const char* admin_port_env = std::getenv("UW_ADMIN_PORT")) {
    const Status admin_started = admin.Start(std::atoi(admin_port_env));
    if (!admin_started.ok()) {
      std::fprintf(stderr, "[uw_serve] admin: %s\n",
                   admin_started.ToString().c_str());
      return 1;
    }
    std::printf("admin on port %d\n", admin.port());
    std::fflush(stdout);
    if (const char* admin_file = std::getenv("UW_ADMIN_PORT_FILE")) {
      std::FILE* file = std::fopen(admin_file, "w");
      if (file != nullptr) {
        std::fprintf(file, "%d\n", admin.port());
        std::fclose(file);
      } else {
        std::fprintf(stderr,
                     "[uw_serve] cannot write UW_ADMIN_PORT_FILE %s\n",
                     admin_file);
      }
    }
  }
  // Drop the main thread's reference: the installed generation is now
  // kept alive by the host (and, during a future swap, by in-flight
  // requests alone).
  generation.reset();

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "[uw_serve] pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction action{};
  action.sa_handler = HandleSignal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGUSR1, &action, nullptr);
  ::sigaction(SIGHUP, &action, nullptr);

  while (true) {
    char byte = 0;
    const ssize_t got = ::read(g_signal_pipe[0], &byte, 1);
    if (got < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "[uw_serve] signal pipe read: %s\n",
                   std::strerror(errno));
      break;
    }
    if (got == 0) break;
    if (byte == kDumpByte) {
      DumpMetricsSnapshot();
      continue;  // keep serving
    }
    if (byte == kReloadByte) {
      // Hot swap: build the next generation off-line (warm from the
      // artifact cache), then atomically flip queries onto it. The old
      // generation keeps serving its in-flight requests and drains when
      // the last one finishes — the swap sheds nothing.
      std::fprintf(stderr, "[uw_serve] SIGHUP: building next generation\n");
      std::shared_ptr<serve::ServiceHost::Generation> next =
          BuildGeneration(config, shard, prewarm);
      if (next == nullptr) {
        std::fprintf(stderr,
                     "[uw_serve] reload failed; keeping generation %llu\n",
                     static_cast<unsigned long long>(host.generation_id()));
        continue;
      }
      const uint64_t next_id = host.Install(next);
      MaybeWriteShardManifest(*next, shard, next_id);
      std::printf("hot swap to generation %llu\n",
                  static_cast<unsigned long long>(next_id));
      std::fflush(stdout);
      continue;  // keep serving
    }
    break;  // SIGINT / SIGTERM
  }
  std::fprintf(stderr, "[uw_serve] signal received; draining...\n");
  // Admin stays up through the drain so /healthz reports "draining" and a
  // final /metrics scrape can observe the fully-drained totals.
  server.Shutdown();
  admin.Shutdown();
  const std::shared_ptr<serve::ServiceHost::Generation> last =
      host.Current();
  std::printf(
      "drained cleanly: connections=%lld requests=%lld protocol_errors=%lld "
      "queue_depth=%d\n",
      static_cast<long long>(server.connections_accepted()),
      static_cast<long long>(server.requests_served()),
      static_cast<long long>(server.protocol_errors()),
      last != nullptr ? last->service->queue_depth() : 0);
  return 0;
}
