// uw_serve — the single-binary online expansion server.
//
//   $ ./uw_serve [--port=N] [--config=tiny|bench] [--scale=S]
//                [--prewarm=m1,m2,...]
//
// Builds the pipeline once (warm-started from UW_CACHE_DIR when set),
// then serves framed TCP queries (serve/protocol.h) with dynamic
// micro-batching and admission control (serve/service.h knobs:
// UW_SERVE_BATCH, UW_SERVE_BATCH_WAIT_MS, UW_SERVE_QUEUE,
// UW_SERVE_TIMEOUT_MS, UW_TRACE_SAMPLE, UW_SLOW_QUERY_MS). `--port=0`
// (default UW_SERVE_PORT or 0) binds an ephemeral port; the bound port
// is printed to stdout as "listening on port N" and, when
// UW_SERVE_PORT_FILE is set, written to that path for scripts.
//
// When UW_ADMIN_PORT is set, a second listener serves the live admin
// endpoint (serve/admin.h): /metrics, /healthz, /statusz, /slow, /slowz.
// Its bound port is reported as "admin on port N" and written to
// UW_ADMIN_PORT_FILE when set.
//
// SIGINT/SIGTERM trigger a graceful drain: stop accepting, serve every
// queued request, report lifetime stats, exit 0. SIGUSR1 dumps a
// metrics + profile snapshot to UW_METRICS_DUMP_PATH (default
// "uw_serve_metrics.json") and keeps serving.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>
#include <vector>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "io/artifact_cache.h"
#include "obs/export.h"
#include "serve/admin.h"
#include "serve/server.h"
#include "serve/service.h"

namespace {

using namespace ultrawiki;

// Self-pipe: handlers only write one byte naming the signal; the main
// thread blocks on the read end and runs the (non-async-signal-safe)
// reaction itself — drain for SIGINT/SIGTERM, a metrics dump for
// SIGUSR1.
int g_signal_pipe[2] = {-1, -1};

constexpr char kDrainByte = 1;
constexpr char kDumpByte = 'u';

void HandleSignal(int signum) {
  const char byte = signum == SIGUSR1 ? kDumpByte : kDrainByte;
  [[maybe_unused]] ssize_t written = ::write(g_signal_pipe[1], &byte, 1);
}

// SIGUSR1 reaction: the same {"metrics": ..., "profile": ...} shape the
// benches snapshot, written atomically enough for a tail -f (single
// write + newline).
void DumpMetricsSnapshot() {
  const char* env = std::getenv("UW_METRICS_DUMP_PATH");
  const std::string path = env != nullptr ? env : "uw_serve_metrics.json";
  std::string json = "{\"metrics\":";
  json += obs::ExportMetricsJson(obs::SnapshotMetrics());
  json += ",\"profile\":";
  json += obs::ExportProfileJson(obs::SnapshotProfile());
  json += "}\n";
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "[uw_serve] cannot open metrics dump path %s\n",
                 path.c_str());
    return;
  }
  const bool ok = std::fwrite(json.data(), 1, json.size(), file) ==
                  json.size();
  std::fclose(file);
  std::fprintf(stderr, "[uw_serve] %s metrics snapshot to %s\n",
               ok ? "wrote" : "short write of", path.c_str());
}

std::string FlagValue(int argc, char** argv, const std::string& name,
                      const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (StartsWith(arg, prefix)) return arg.substr(prefix.size());
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const char* port_env = std::getenv("UW_SERVE_PORT");
  const int port = std::atoi(
      FlagValue(argc, argv, "port", port_env != nullptr ? port_env : "0")
          .c_str());
  const std::string config_name =
      FlagValue(argc, argv, "config", "tiny");
  const double scale =
      std::atof(FlagValue(argc, argv, "scale", "0.12").c_str());
  const std::string prewarm_csv =
      FlagValue(argc, argv, "prewarm", "retexpan,setexpan");

  PipelineConfig config;
  if (config_name == "tiny") {
    config = PipelineConfig::Tiny();
    config.generator.scale = scale;
    config.dataset.ultra_class_scale = scale;
  } else if (config_name == "bench") {
    config = PipelineConfig::Bench();
  } else {
    std::fprintf(stderr, "unknown --config=%s (tiny|bench)\n",
                 config_name.c_str());
    return 2;
  }

  std::fprintf(stderr,
               "[uw_serve] building pipeline (%s, %d thread(s), cache %s)\n",
               config_name.c_str(), ThreadPool::Global().thread_count(),
               ArtifactCache::Global().enabled()
                   ? ArtifactCache::Global().root().c_str()
                   : "disabled");
  Pipeline pipeline = Pipeline::Build(config);

  serve::ExpansionService service(pipeline);
  const std::vector<std::string> prewarm = SplitString(prewarm_csv, ',');
  if (!prewarm.empty()) {
    const Status warmed = service.PrewarmMethods(prewarm);
    if (!warmed.ok()) {
      std::fprintf(stderr, "[uw_serve] prewarm failed: %s\n",
                   warmed.ToString().c_str());
      return 2;
    }
  }

  serve::TcpServer server(service);
  const Status started = server.Start(port);
  if (!started.ok()) {
    std::fprintf(stderr, "[uw_serve] %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("listening on port %d\n", server.port());
  std::fflush(stdout);
  if (const char* port_file = std::getenv("UW_SERVE_PORT_FILE")) {
    std::FILE* file = std::fopen(port_file, "w");
    if (file != nullptr) {
      std::fprintf(file, "%d\n", server.port());
      std::fclose(file);
    } else {
      std::fprintf(stderr, "[uw_serve] cannot write UW_SERVE_PORT_FILE %s\n",
                   port_file);
    }
  }

  // Optional admin listener: telemetry stays off the request plane and
  // scrapeable mid-load. UW_ADMIN_PORT=0 binds an ephemeral port.
  serve::AdminServer admin(service);
  if (const char* admin_port_env = std::getenv("UW_ADMIN_PORT")) {
    const Status admin_started = admin.Start(std::atoi(admin_port_env));
    if (!admin_started.ok()) {
      std::fprintf(stderr, "[uw_serve] admin: %s\n",
                   admin_started.ToString().c_str());
      return 1;
    }
    std::printf("admin on port %d\n", admin.port());
    std::fflush(stdout);
    if (const char* admin_file = std::getenv("UW_ADMIN_PORT_FILE")) {
      std::FILE* file = std::fopen(admin_file, "w");
      if (file != nullptr) {
        std::fprintf(file, "%d\n", admin.port());
        std::fclose(file);
      } else {
        std::fprintf(stderr,
                     "[uw_serve] cannot write UW_ADMIN_PORT_FILE %s\n",
                     admin_file);
      }
    }
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "[uw_serve] pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction action{};
  action.sa_handler = HandleSignal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGUSR1, &action, nullptr);

  while (true) {
    char byte = 0;
    const ssize_t got = ::read(g_signal_pipe[0], &byte, 1);
    if (got < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "[uw_serve] signal pipe read: %s\n",
                   std::strerror(errno));
      break;
    }
    if (got == 0) break;
    if (byte == kDumpByte) {
      DumpMetricsSnapshot();
      continue;  // keep serving
    }
    break;  // SIGINT / SIGTERM
  }
  std::fprintf(stderr, "[uw_serve] signal received; draining...\n");
  // Admin stays up through the drain so /healthz reports "draining" and a
  // final /metrics scrape can observe the fully-drained totals.
  server.Shutdown();
  admin.Shutdown();
  std::printf(
      "drained cleanly: connections=%lld requests=%lld protocol_errors=%lld "
      "queue_depth=%d\n",
      static_cast<long long>(server.connections_accepted()),
      static_cast<long long>(server.requests_served()),
      static_cast<long long>(server.protocol_errors()),
      service.queue_depth());
  return 0;
}
