# Empty dependencies file for example_compare_methods.
# This may be replaced when dependencies are built.
