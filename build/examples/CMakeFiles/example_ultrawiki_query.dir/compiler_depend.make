# Empty compiler generated dependencies file for example_ultrawiki_query.
# This may be replaced when dependencies are built.
