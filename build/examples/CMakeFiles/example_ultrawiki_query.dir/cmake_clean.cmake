file(REMOVE_RECURSE
  "CMakeFiles/example_ultrawiki_query.dir/ultrawiki_query.cc.o"
  "CMakeFiles/example_ultrawiki_query.dir/ultrawiki_query.cc.o.d"
  "example_ultrawiki_query"
  "example_ultrawiki_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ultrawiki_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
