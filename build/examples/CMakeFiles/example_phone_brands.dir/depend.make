# Empty dependencies file for example_phone_brands.
# This may be replaced when dependencies are built.
