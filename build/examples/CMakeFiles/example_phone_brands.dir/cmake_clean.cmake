file(REMOVE_RECURSE
  "CMakeFiles/example_phone_brands.dir/phone_brands.cc.o"
  "CMakeFiles/example_phone_brands.dir/phone_brands.cc.o.d"
  "example_phone_brands"
  "example_phone_brands.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_phone_brands.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
