file(REMOVE_RECURSE
  "CMakeFiles/prompts_test.dir/prompts_test.cc.o"
  "CMakeFiles/prompts_test.dir/prompts_test.cc.o.d"
  "prompts_test"
  "prompts_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prompts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
