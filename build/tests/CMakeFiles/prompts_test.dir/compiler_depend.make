# Empty compiler generated dependencies file for prompts_test.
# This may be replaced when dependencies are built.
