file(REMOVE_RECURSE
  "CMakeFiles/lm_test.dir/lm_test.cc.o"
  "CMakeFiles/lm_test.dir/lm_test.cc.o.d"
  "lm_test"
  "lm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
