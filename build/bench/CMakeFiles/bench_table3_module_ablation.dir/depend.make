# Empty dependencies file for bench_table3_module_ablation.
# This may be replaced when dependencies are built.
