# Empty compiler generated dependencies file for bench_table10_interaction.
# This may be replaced when dependencies are built.
