file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_interaction.dir/bench_table10_interaction.cc.o"
  "CMakeFiles/bench_table10_interaction.dir/bench_table10_interaction.cc.o.d"
  "bench_table10_interaction"
  "bench_table10_interaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_interaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
