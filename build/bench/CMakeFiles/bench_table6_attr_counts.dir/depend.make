# Empty dependencies file for bench_table6_attr_counts.
# This may be replaced when dependencies are built.
