file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_retrieval_augmentation.dir/bench_table8_retrieval_augmentation.cc.o"
  "CMakeFiles/bench_table8_retrieval_augmentation.dir/bench_table8_retrieval_augmentation.cc.o.d"
  "bench_table8_retrieval_augmentation"
  "bench_table8_retrieval_augmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_retrieval_augmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
