# Empty compiler generated dependencies file for bench_table8_retrieval_augmentation.
# This may be replaced when dependencies are built.
