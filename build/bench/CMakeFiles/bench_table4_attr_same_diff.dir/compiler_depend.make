# Empty compiler generated dependencies file for bench_table4_attr_same_diff.
# This may be replaced when dependencies are built.
