file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_attr_same_diff.dir/bench_table4_attr_same_diff.cc.o"
  "CMakeFiles/bench_table4_attr_same_diff.dir/bench_table4_attr_same_diff.cc.o.d"
  "bench_table4_attr_same_diff"
  "bench_table4_attr_same_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_attr_same_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
