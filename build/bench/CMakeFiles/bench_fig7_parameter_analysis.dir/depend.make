# Empty dependencies file for bench_fig7_parameter_analysis.
# This may be replaced when dependencies are built.
