# Empty dependencies file for bench_table5_rerank_ablation.
# This may be replaced when dependencies are built.
