file(REMOVE_RECURSE
  "CMakeFiles/bench_analysis_longtail.dir/bench_analysis_longtail.cc.o"
  "CMakeFiles/bench_analysis_longtail.dir/bench_analysis_longtail.cc.o.d"
  "bench_analysis_longtail"
  "bench_analysis_longtail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analysis_longtail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
