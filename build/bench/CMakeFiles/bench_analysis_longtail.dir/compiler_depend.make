# Empty compiler generated dependencies file for bench_analysis_longtail.
# This may be replaced when dependencies are built.
