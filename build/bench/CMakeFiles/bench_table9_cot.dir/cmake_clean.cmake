file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_cot.dir/bench_table9_cot.cc.o"
  "CMakeFiles/bench_table9_cot.dir/bench_table9_cot.cc.o.d"
  "bench_table9_cot"
  "bench_table9_cot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_cot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
