file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_class_similarity.dir/bench_fig4_class_similarity.cc.o"
  "CMakeFiles/bench_fig4_class_similarity.dir/bench_fig4_class_similarity.cc.o.d"
  "bench_fig4_class_similarity"
  "bench_fig4_class_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_class_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
