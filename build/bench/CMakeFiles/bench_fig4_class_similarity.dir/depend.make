# Empty dependencies file for bench_fig4_class_similarity.
# This may be replaced when dependencies are built.
