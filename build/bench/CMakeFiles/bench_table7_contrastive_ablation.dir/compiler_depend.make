# Empty compiler generated dependencies file for bench_table7_contrastive_ablation.
# This may be replaced when dependencies are built.
