file(REMOVE_RECURSE
  "libultrawiki.a"
)
