# Empty dependencies file for ultrawiki.
# This may be replaced when dependencies are built.
