
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/case.cc" "src/CMakeFiles/ultrawiki.dir/baselines/case.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/baselines/case.cc.o.d"
  "/root/repo/src/baselines/cgexpan.cc" "src/CMakeFiles/ultrawiki.dir/baselines/cgexpan.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/baselines/cgexpan.cc.o.d"
  "/root/repo/src/baselines/gpt4_baseline.cc" "src/CMakeFiles/ultrawiki.dir/baselines/gpt4_baseline.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/baselines/gpt4_baseline.cc.o.d"
  "/root/repo/src/baselines/probexpan.cc" "src/CMakeFiles/ultrawiki.dir/baselines/probexpan.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/baselines/probexpan.cc.o.d"
  "/root/repo/src/baselines/setexpan.cc" "src/CMakeFiles/ultrawiki.dir/baselines/setexpan.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/baselines/setexpan.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/ultrawiki.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/ultrawiki.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/ultrawiki.dir/common/status.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/ultrawiki.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/common/string_util.cc.o.d"
  "/root/repo/src/common/table_printer.cc" "src/CMakeFiles/ultrawiki.dir/common/table_printer.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/common/table_printer.cc.o.d"
  "/root/repo/src/corpus/corpus.cc" "src/CMakeFiles/ultrawiki.dir/corpus/corpus.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/corpus/corpus.cc.o.d"
  "/root/repo/src/corpus/generator.cc" "src/CMakeFiles/ultrawiki.dir/corpus/generator.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/corpus/generator.cc.o.d"
  "/root/repo/src/corpus/knowledge_base.cc" "src/CMakeFiles/ultrawiki.dir/corpus/knowledge_base.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/corpus/knowledge_base.cc.o.d"
  "/root/repo/src/corpus/schema.cc" "src/CMakeFiles/ultrawiki.dir/corpus/schema.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/corpus/schema.cc.o.d"
  "/root/repo/src/dataset/annotation.cc" "src/CMakeFiles/ultrawiki.dir/dataset/annotation.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/dataset/annotation.cc.o.d"
  "/root/repo/src/dataset/dataset.cc" "src/CMakeFiles/ultrawiki.dir/dataset/dataset.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/dataset/dataset.cc.o.d"
  "/root/repo/src/dataset/stats.cc" "src/CMakeFiles/ultrawiki.dir/dataset/stats.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/dataset/stats.cc.o.d"
  "/root/repo/src/embedding/contrastive.cc" "src/CMakeFiles/ultrawiki.dir/embedding/contrastive.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/embedding/contrastive.cc.o.d"
  "/root/repo/src/embedding/encoder.cc" "src/CMakeFiles/ultrawiki.dir/embedding/encoder.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/embedding/encoder.cc.o.d"
  "/root/repo/src/embedding/entity_store.cc" "src/CMakeFiles/ultrawiki.dir/embedding/entity_store.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/embedding/entity_store.cc.o.d"
  "/root/repo/src/embedding/trainer.cc" "src/CMakeFiles/ultrawiki.dir/embedding/trainer.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/embedding/trainer.cc.o.d"
  "/root/repo/src/eval/evaluator.cc" "src/CMakeFiles/ultrawiki.dir/eval/evaluator.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/eval/evaluator.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/ultrawiki.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/eval/metrics.cc.o.d"
  "/root/repo/src/eval/report.cc" "src/CMakeFiles/ultrawiki.dir/eval/report.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/eval/report.cc.o.d"
  "/root/repo/src/eval/significance.cc" "src/CMakeFiles/ultrawiki.dir/eval/significance.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/eval/significance.cc.o.d"
  "/root/repo/src/expand/contrastive_miner.cc" "src/CMakeFiles/ultrawiki.dir/expand/contrastive_miner.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/expand/contrastive_miner.cc.o.d"
  "/root/repo/src/expand/expander.cc" "src/CMakeFiles/ultrawiki.dir/expand/expander.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/expand/expander.cc.o.d"
  "/root/repo/src/expand/genexpan.cc" "src/CMakeFiles/ultrawiki.dir/expand/genexpan.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/expand/genexpan.cc.o.d"
  "/root/repo/src/expand/interaction.cc" "src/CMakeFiles/ultrawiki.dir/expand/interaction.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/expand/interaction.cc.o.d"
  "/root/repo/src/expand/pipeline.cc" "src/CMakeFiles/ultrawiki.dir/expand/pipeline.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/expand/pipeline.cc.o.d"
  "/root/repo/src/expand/rerank.cc" "src/CMakeFiles/ultrawiki.dir/expand/rerank.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/expand/rerank.cc.o.d"
  "/root/repo/src/expand/retexpan.cc" "src/CMakeFiles/ultrawiki.dir/expand/retexpan.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/expand/retexpan.cc.o.d"
  "/root/repo/src/expand/retrieval_augmentation.cc" "src/CMakeFiles/ultrawiki.dir/expand/retrieval_augmentation.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/expand/retrieval_augmentation.cc.o.d"
  "/root/repo/src/index/bm25.cc" "src/CMakeFiles/ultrawiki.dir/index/bm25.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/index/bm25.cc.o.d"
  "/root/repo/src/index/inverted_index.cc" "src/CMakeFiles/ultrawiki.dir/index/inverted_index.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/index/inverted_index.cc.o.d"
  "/root/repo/src/io/corpus_io.cc" "src/CMakeFiles/ultrawiki.dir/io/corpus_io.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/io/corpus_io.cc.o.d"
  "/root/repo/src/io/dataset_io.cc" "src/CMakeFiles/ultrawiki.dir/io/dataset_io.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/io/dataset_io.cc.o.d"
  "/root/repo/src/io/model_io.cc" "src/CMakeFiles/ultrawiki.dir/io/model_io.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/io/model_io.cc.o.d"
  "/root/repo/src/llm_oracle/oracle.cc" "src/CMakeFiles/ultrawiki.dir/llm_oracle/oracle.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/llm_oracle/oracle.cc.o.d"
  "/root/repo/src/llm_oracle/prompts.cc" "src/CMakeFiles/ultrawiki.dir/llm_oracle/prompts.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/llm_oracle/prompts.cc.o.d"
  "/root/repo/src/lm/association.cc" "src/CMakeFiles/ultrawiki.dir/lm/association.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/lm/association.cc.o.d"
  "/root/repo/src/lm/beam_search.cc" "src/CMakeFiles/ultrawiki.dir/lm/beam_search.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/lm/beam_search.cc.o.d"
  "/root/repo/src/lm/hybrid_lm.cc" "src/CMakeFiles/ultrawiki.dir/lm/hybrid_lm.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/lm/hybrid_lm.cc.o.d"
  "/root/repo/src/lm/ngram_lm.cc" "src/CMakeFiles/ultrawiki.dir/lm/ngram_lm.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/lm/ngram_lm.cc.o.d"
  "/root/repo/src/lm/prefix_trie.cc" "src/CMakeFiles/ultrawiki.dir/lm/prefix_trie.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/lm/prefix_trie.cc.o.d"
  "/root/repo/src/lm/similarity.cc" "src/CMakeFiles/ultrawiki.dir/lm/similarity.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/lm/similarity.cc.o.d"
  "/root/repo/src/math/matrix.cc" "src/CMakeFiles/ultrawiki.dir/math/matrix.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/math/matrix.cc.o.d"
  "/root/repo/src/math/optimizer.cc" "src/CMakeFiles/ultrawiki.dir/math/optimizer.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/math/optimizer.cc.o.d"
  "/root/repo/src/math/sampling.cc" "src/CMakeFiles/ultrawiki.dir/math/sampling.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/math/sampling.cc.o.d"
  "/root/repo/src/math/softmax.cc" "src/CMakeFiles/ultrawiki.dir/math/softmax.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/math/softmax.cc.o.d"
  "/root/repo/src/math/topk.cc" "src/CMakeFiles/ultrawiki.dir/math/topk.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/math/topk.cc.o.d"
  "/root/repo/src/math/vec.cc" "src/CMakeFiles/ultrawiki.dir/math/vec.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/math/vec.cc.o.d"
  "/root/repo/src/text/name_generator.cc" "src/CMakeFiles/ultrawiki.dir/text/name_generator.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/text/name_generator.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/CMakeFiles/ultrawiki.dir/text/tokenizer.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/text/tokenizer.cc.o.d"
  "/root/repo/src/text/vocabulary.cc" "src/CMakeFiles/ultrawiki.dir/text/vocabulary.cc.o" "gcc" "src/CMakeFiles/ultrawiki.dir/text/vocabulary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
