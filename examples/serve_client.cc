// Minimal remote-query client for the online expansion service — the
// network twin of ultrawiki_query.cc. Point it at a running `uw_serve`:
//
//   $ ./example_serve_client [--host=H] [--port=N]
//                            [--method=retexpan|genexpan|probexpan|
//                              setexpan|case|cgexpan|gpt4|interaction]
//                            [--k=N] [--query=INDEX] [--timeout-ms=T]
//
// Sends one by-index query over the framed TCP protocol and prints the
// ranked entity ids (the entity names live in the server's resident
// world; map ids offline with export_dataset if needed). Exit code 0 on
// an OK expansion, 1 on any error — scripts can burst-fire this binary
// and count failures.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/string_util.h"
#include "serve/client.h"

namespace {

using namespace ultrawiki;

std::string FlagValue(int argc, char** argv, const std::string& name,
                      const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (StartsWith(arg, prefix)) return arg.substr(prefix.size());
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string host = FlagValue(argc, argv, "host", "127.0.0.1");
  const int port = std::atoi(FlagValue(argc, argv, "port", "0").c_str());
  const std::string method = FlagValue(argc, argv, "method", "retexpan");
  const int k = std::atoi(FlagValue(argc, argv, "k", "20").c_str());
  const int query_index =
      std::atoi(FlagValue(argc, argv, "query", "0").c_str());
  const int timeout_ms =
      std::atoi(FlagValue(argc, argv, "timeout-ms", "0").c_str());
  if (port <= 0 || k <= 0 || query_index < 0) {
    std::fprintf(stderr,
                 "usage: %s --port=N [--host=H] [--method=NAME] [--k=N] "
                 "[--query=I] [--timeout-ms=T]\n",
                 argv[0]);
    return 2;
  }

  auto client = serve::ServeClient::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }

  const auto start = std::chrono::steady_clock::now();
  const auto ranking = client->ExpandByIndex(
      method, static_cast<uint32_t>(query_index), k, timeout_ms);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  if (!ranking.ok()) {
    std::fprintf(stderr, "expand failed: %s\n",
                 ranking.status().ToString().c_str());
    return 1;
  }

  std::printf("query #%d via %s on %s:%d (k=%d, %.2f ms round trip)\n",
              query_index, method.c_str(), host.c_str(), port, k, ms);
  for (size_t r = 0; r < ranking->size(); ++r) {
    std::printf("  %2zu. entity %d\n", r + 1, (*ranking)[r]);
  }
  return 0;
}
