// Flag-driven query runner: the operational front-end a downstream user
// would script against.
//
//   $ ./example_ultrawiki_query [--method=retexpan|genexpan|probexpan|
//                                 setexpan|case|cgexpan|gpt4|interaction]
//                               [--k=N] [--query=INDEX] [--scale=S]
//
// Prints the chosen query (seeds, attribute constraints) and the ranked
// expansion with ground-truth annotations plus per-query metrics.

#include <cstdlib>
#include <iostream>
#include <set>
#include <string>

#include "common/string_util.h"
#include "eval/metrics.h"
#include "expand/pipeline.h"
#include "serve/service.h"

namespace {

using namespace ultrawiki;

std::string FlagValue(int argc, char** argv, const std::string& name,
                      const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (StartsWith(arg, prefix)) return arg.substr(prefix.size());
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string method_name =
      FlagValue(argc, argv, "method", "retexpan");
  const int k = std::atoi(FlagValue(argc, argv, "k", "20").c_str());
  const int query_index =
      std::atoi(FlagValue(argc, argv, "query", "0").c_str());
  const double scale =
      std::atof(FlagValue(argc, argv, "scale", "0.12").c_str());
  if (k <= 0 || scale <= 0.0) {
    std::cerr << "usage: " << argv[0]
              << " [--method=NAME] [--k=N] [--query=I] [--scale=S]\n";
    return 2;
  }

  PipelineConfig config = PipelineConfig::Tiny();
  config.generator.scale = scale;
  config.dataset.ultra_class_scale = scale;
  std::cout << "building pipeline (scale " << scale << ")...\n";
  Pipeline pipeline = Pipeline::Build(config);

  auto method = serve::MakeExpanderByName(pipeline, method_name);
  if (method == nullptr) {
    std::cerr << "unknown --method=" << method_name << "\n";
    return 2;
  }
  const auto& queries = pipeline.dataset().queries;
  if (query_index < 0 ||
      static_cast<size_t>(query_index) >= queries.size()) {
    std::cerr << "--query out of range (have " << queries.size()
              << " queries)\n";
    return 2;
  }
  const Query& query = queries[static_cast<size_t>(query_index)];
  const UltraClass& ultra = pipeline.dataset().ClassOf(query);
  const GeneratedWorld& world = pipeline.world();
  const FineClassSpec& spec =
      world.schema[static_cast<size_t>(ultra.fine_class)];

  std::cout << "\nquery #" << query_index << " on '" << spec.name
            << "' with " << method->name() << " (k=" << k << ")\n";
  std::cout << "positive seeds:";
  for (EntityId id : query.pos_seeds) {
    std::cout << " [" << world.corpus.entity(id).name << "]";
  }
  std::cout << "\nnegative seeds:";
  for (EntityId id : query.neg_seeds) {
    std::cout << " [" << world.corpus.entity(id).name << "]";
  }
  std::cout << "\n\n";

  const std::vector<EntityId> ranking =
      method->Expand(query, static_cast<size_t>(k));
  std::set<EntityId> pos(ultra.positive_targets.begin(),
                         ultra.positive_targets.end());
  std::set<EntityId> neg(ultra.negative_targets.begin(),
                         ultra.negative_targets.end());
  for (size_t r = 0; r < ranking.size(); ++r) {
    const EntityId id = ranking[r];
    std::string name = "(hallucinated)";
    const char* mark = "";
    if (id != kHallucinatedEntityId) {
      name = world.corpus.entity(id).name;
      if (pos.contains(id)) {
        mark = "+++";
      } else if (neg.contains(id)) {
        mark = "---";
      } else if (world.corpus.entity(id).class_id == ultra.fine_class) {
        mark = "!!!";
      }
    }
    std::cout << StrFormat("  %2zu. %-28s %s\n", r + 1, name.c_str(), mark);
  }

  // Per-query metrics against the ground truth.
  TargetSet pos_targets(pos.begin(), pos.end());
  for (EntityId seed : query.pos_seeds) pos_targets.erase(seed);
  TargetSet neg_targets(neg.begin(), neg.end());
  for (EntityId seed : query.neg_seeds) neg_targets.erase(seed);
  const double pos_map =
      100.0 * AveragePrecisionAtK(ranking, pos_targets, k);
  const double neg_map =
      100.0 * AveragePrecisionAtK(ranking, neg_targets, k);
  std::cout << "\nPosMAP@" << k << " = " << FormatDouble(pos_map, 2)
            << ", NegMAP@" << k << " = " << FormatDouble(neg_map, 2)
            << ", CombMAP@" << k << " = "
            << FormatDouble(CombineMetric(pos_map, neg_map), 2) << "\n";
  return 0;
}
