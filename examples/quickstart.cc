// Quickstart: build the whole system end-to-end and run one
// ultra-fine-grained expansion query.
//
//   $ ./example_quickstart
//
// Steps shown: (1) generate the synthetic Wikipedia world, (2) construct
// the UltraWiki dataset, (3) train the substrates via Pipeline, (4) expand
// a query with RetExpan and print named, annotated results.

#include <iostream>
#include <set>

#include "common/string_util.h"
#include "expand/pipeline.h"

int main() {
  using namespace ultrawiki;

  // A reduced profile keeps the quickstart under a few seconds.
  PipelineConfig config = PipelineConfig::Tiny();
  std::cout << "Building pipeline (corpus, dataset, encoder, LM)...\n";
  Pipeline pipeline = Pipeline::Build(config);

  const UltraWikiDataset& dataset = pipeline.dataset();
  std::cout << "dataset: " << dataset.classes.size()
            << " ultra-fine-grained classes, " << dataset.queries.size()
            << " queries, " << dataset.candidates.size()
            << " candidate entities\n\n";

  // Take the first query and describe it.
  const Query& query = dataset.queries.front();
  const UltraClass& ultra = dataset.ClassOf(query);
  const GeneratedWorld& world = pipeline.world();
  const FineClassSpec& spec =
      world.schema[static_cast<size_t>(ultra.fine_class)];
  std::cout << "query on fine-grained class '" << spec.name << "'\n";
  std::cout << "  positive seeds:";
  for (EntityId id : query.pos_seeds) {
    std::cout << " [" << world.corpus.entity(id).name << "]";
  }
  std::cout << "\n  negative seeds:";
  for (EntityId id : query.neg_seeds) {
    std::cout << " [" << world.corpus.entity(id).name << "]";
  }
  std::cout << "\n\n";

  // Expand with the retrieval-based framework.
  auto retexpan = pipeline.MakeRetExpan();
  const std::vector<EntityId> ranking = retexpan->Expand(query, 15);

  std::set<EntityId> pos(ultra.positive_targets.begin(),
                         ultra.positive_targets.end());
  std::set<EntityId> neg(ultra.negative_targets.begin(),
                         ultra.negative_targets.end());
  std::cout << "top-15 expansion (RetExpan):\n";
  for (size_t r = 0; r < ranking.size(); ++r) {
    const EntityId id = ranking[r];
    const char* verdict = "(other)";
    if (pos.contains(id)) verdict = "POSITIVE TARGET";
    if (neg.contains(id)) verdict = "negative target";
    std::cout << StrFormat("  %2zu. %-26s %s\n", r + 1,
                           world.corpus.entity(id).name.c_str(), verdict);
  }
  return 0;
}
