// Using the substrate APIs directly: generate a custom-scale synthetic
// Wikipedia, run the four-step UltraWiki construction pipeline, and print
// the dataset statistics — the workflow of a user who wants their own
// benchmark rather than the default bench profile.
//
//   $ ./example_custom_dataset

#include <iostream>

#include "common/string_util.h"
#include "dataset/stats.h"

int main() {
  using namespace ultrawiki;

  // Step 1+2: semantic classes, entities, and entity-labelled sentences.
  GeneratorConfig generator;
  generator.seed = 2024;
  generator.scale = 0.15;
  generator.sentences_per_entity = 12;
  generator.background_entity_count = 150;
  std::cout << "generating world (scale " << generator.scale << ")...\n";
  const GeneratedWorld world = GenerateWorld(generator);
  std::cout << "  entities: " << world.corpus.entity_count()
            << ", labelled sentences: " << world.corpus.sentence_count()
            << ", auxiliary sentences: "
            << world.corpus.auxiliary_sentences().size() << "\n";

  // A peek at the generated material.
  const Sentence& sample = world.corpus.sentence(0);
  std::cout << "  sample sentence: \""
            << world.corpus.Render(sample.tokens) << "\"\n";
  std::cout << "  sample introduction: \""
            << world.corpus.Render(world.kb.IntroductionOf(sample.entity))
            << "\"\n\n";

  // Step 3+4: annotation, ultra-class generation, candidate vocabulary.
  DatasetConfig dataset_config;
  dataset_config.seed = 99;
  dataset_config.n_thred = 6;
  dataset_config.queries_per_class = 3;
  dataset_config.ultra_class_scale = 0.2;
  const auto built = BuildDataset(world, dataset_config);
  if (!built.ok()) {
    std::cerr << "dataset construction failed: " << built.status() << "\n";
    return 1;
  }
  const UltraWikiDataset& dataset = *built;

  const DatasetStats stats = ComputeDatasetStats(world, dataset);
  std::cout << "constructed dataset:\n"
            << "  ultra-fine-grained classes: " << stats.ultra_class_count
            << "\n  queries: " << stats.query_count
            << "\n  candidates: " << stats.candidate_count
            << " (hard negatives mined: " << stats.hard_negative_count
            << ")\n  avg |P| / |N|: "
            << FormatDouble(stats.avg_positive_targets, 1) << " / "
            << FormatDouble(stats.avg_negative_targets, 1)
            << "\n  Fleiss kappa: "
            << FormatDouble(stats.fleiss_kappa, 3) << "\n\n";

  // Show one generated ultra-class in human terms.
  const UltraClass& ultra = dataset.classes.front();
  const FineClassSpec& spec =
      world.schema[static_cast<size_t>(ultra.fine_class)];
  std::cout << "example ultra-fine-grained class on '" << spec.name
            << "':\n  positive constraint:";
  for (size_t i = 0; i < ultra.pos_attrs.size(); ++i) {
    const AttributeDef& attr =
        spec.attributes[static_cast<size_t>(ultra.pos_attrs[i])];
    std::cout << " " << attr.name << "="
              << attr.values[static_cast<size_t>(ultra.pos_values[i])];
  }
  std::cout << "\n  negative constraint:";
  for (size_t i = 0; i < ultra.neg_attrs.size(); ++i) {
    const AttributeDef& attr =
        spec.attributes[static_cast<size_t>(ultra.neg_attrs[i])];
    std::cout << " " << attr.name << "="
              << attr.values[static_cast<size_t>(ultra.neg_values[i])];
  }
  std::cout << "\n  |P| = " << ultra.positive_targets.size()
            << ", |N| = " << ultra.negative_targets.size() << "\n";
  return 0;
}
