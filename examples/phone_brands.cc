// Domain scenario from the paper's introduction: expanding mobile phone
// brands with an "unwanted" constraint — e.g. "phone brands NOT
// headquartered in Asia". The query is constructed by hand against the
// generated attribute table (not sampled from the dataset), exactly like a
// user would compose positive and negative seed lists.
//
//   $ ./example_phone_brands

#include <iostream>
#include <set>

#include "common/string_util.h"
#include "expand/pipeline.h"

namespace {

constexpr ultrawiki::ClassId kPhoneBrands = 5;  // schema index

}  // namespace

int main() {
  using namespace ultrawiki;

  PipelineConfig config = PipelineConfig::Tiny();
  config.generator.min_entities_per_class = 48;  // enough brands per value
  Pipeline pipeline = Pipeline::Build(config);
  const GeneratedWorld& world = pipeline.world();
  const FineClassSpec& spec =
      world.schema[static_cast<size_t>(kPhoneBrands)];
  std::cout << "fine-grained class: '" << spec.name << "' with attributes";
  for (const AttributeDef& attr : spec.attributes) {
    std::cout << " " << attr.name;
  }
  std::cout << "\n\n";

  // Attribute 0 is <loc-continent> with values {asia, europe, america};
  // attribute 1 is <status> {active, defunct}. The user wants ACTIVE
  // brands (positive) that are NOT headquartered in ASIA (negative) —
  // A_pos != A_neg, the paper's "unwanted semantics" regime.
  const auto& by_value = world.entities_by_value[kPhoneBrands];
  Query query;
  query.ultra_class = -1;  // hand-built; not part of the dataset
  int pos_taken = 0;
  for (EntityId id : by_value[1][0]) {  // status = active
    const Entity& entity = world.corpus.entity(id);
    if (entity.attribute_values[0] == 0) continue;  // skip asian brands
    query.pos_seeds.push_back(id);
    if (++pos_taken == 3) break;
  }
  int neg_taken = 0;
  for (EntityId id : by_value[0][0]) {  // headquarters = asia
    query.neg_seeds.push_back(id);
    if (++neg_taken == 3) break;
  }

  std::cout << "positive seeds (active, non-asian brands):\n";
  for (EntityId id : query.pos_seeds) {
    std::cout << "  [" << world.corpus.entity(id).name << "]\n";
  }
  std::cout << "negative seeds (asian-headquartered brands):\n";
  for (EntityId id : query.neg_seeds) {
    std::cout << "  [" << world.corpus.entity(id).name << "]\n";
  }
  std::cout << "\n";

  auto run = [&](Expander& method) {
    std::cout << "--- " << method.name() << " ---\n";
    const auto ranking = method.Expand(query, 12);
    for (size_t r = 0; r < ranking.size(); ++r) {
      const EntityId id = ranking[r];
      if (id == kHallucinatedEntityId) {
        std::cout << StrFormat("  %2zu. (hallucinated)\n", r + 1);
        continue;
      }
      const Entity& entity = world.corpus.entity(id);
      std::string note = "(other class)";
      if (entity.class_id == kPhoneBrands) {
        const bool asian = entity.attribute_values[0] == 0;
        const bool active = entity.attribute_values[1] == 0;
        note = std::string("hq=") + spec.attributes[0].values[static_cast<
                   size_t>(entity.attribute_values[0])] +
               " status=" +
               spec.attributes[1].values[static_cast<size_t>(
                   entity.attribute_values[1])];
        if (!asian && active) note += "   <-- wanted";
        if (asian) note += "   (unwanted: asian)";
      }
      std::cout << StrFormat("  %2zu. %-26s %s\n", r + 1,
                             entity.name.c_str(), note.c_str());
    }
    std::cout << "\n";
  };

  auto retexpan = pipeline.MakeRetExpan();
  run(*retexpan);
  auto genexpan = pipeline.MakeGenExpan();
  run(*genexpan);
  return 0;
}
