// Side-by-side comparison of every implemented method on a shared reduced
// dataset — the "which method should I use?" walkthrough. Prints the
// Pos/Neg/Comb averages per method plus per-query latency.
//
//   $ ./example_compare_methods

#include <chrono>
#include <iostream>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "eval/evaluator.h"
#include "expand/pipeline.h"

int main() {
  using namespace ultrawiki;

  PipelineConfig config = PipelineConfig::Tiny();
  config.generator.scale = 0.15;
  std::cout << "building pipeline...\n";
  Pipeline pipeline = Pipeline::Build(config);
  std::cout << "evaluating " << pipeline.dataset().queries.size()
            << " queries per method\n\n";

  TablePrinter table("method comparison (reduced scale)");
  table.SetHeader(
      {"method", "Pos avg ^", "Neg avg v", "Comb avg ^", "ms/query"});

  auto run = [&](Expander& method) {
    const auto start = std::chrono::steady_clock::now();
    const EvalResult result =
        EvaluateExpander(method, pipeline.dataset());
    const auto elapsed = std::chrono::duration_cast<
                             std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    table.AddRow({method.name(), FormatDouble(result.AvgPos(), 2),
                  FormatDouble(result.AvgNeg(), 2),
                  FormatDouble(result.AvgComb(), 2),
                  FormatDouble(static_cast<double>(elapsed) /
                                   std::max(1, result.query_count),
                               2)});
  };

  { auto m = pipeline.MakeSetExpan(); run(*m); }
  { auto m = pipeline.MakeCaSE(); run(*m); }
  { auto m = pipeline.MakeCgExpan(); run(*m); }
  { auto m = pipeline.MakeProbExpan(); run(*m); }
  { auto m = pipeline.MakeGpt4Baseline(); run(*m); }
  { auto m = pipeline.MakeRetExpan(); run(*m); }
  { auto m = pipeline.MakeGenExpan(); run(*m); }
  {
    auto m = pipeline.MakeInteraction(InteractionOrder::kGenThenRet);
    run(*m);
  }
  table.Print(std::cout);
  std::cout << "\n(Comb = (Pos + 100 - Neg)/2; see bench_table2_main for "
               "the full-scale comparison.)\n";
  return 0;
}
