// Export / reload walkthrough: generate a world + dataset, write both to
// disk in the portable TSV interchange format, load them back, and verify
// an expansion produces identical results — the train-once / reuse-often
// workflow, and the template for plugging in real crawled data.
//
//   $ ./example_export_dataset [output-dir]

#include <iostream>

#include "expand/pipeline.h"
#include "io/corpus_io.h"
#include "io/dataset_io.h"

int main(int argc, char** argv) {
  using namespace ultrawiki;

  const std::string dir = argc > 1 ? argv[1] : "/tmp/ultrawiki_export";
  PipelineConfig config = PipelineConfig::Tiny();

  std::cout << "generating world + dataset...\n";
  const GeneratedWorld world = GenerateWorld(config.generator);
  auto built = BuildDataset(world, config.dataset);
  if (!built.ok()) {
    std::cerr << built.status() << "\n";
    return 1;
  }

  std::cout << "exporting to " << dir << " ...\n";
  if (Status status = SaveWorld(world, dir); !status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }
  if (Status status = SaveDataset(*built, dir); !status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }

  std::cout << "reloading...\n";
  auto world2 = LoadWorld(dir);
  if (!world2.ok()) {
    std::cerr << world2.status() << "\n";
    return 1;
  }
  auto dataset2 = LoadDataset(*world2, dir);
  if (!dataset2.ok()) {
    std::cerr << dataset2.status() << "\n";
    return 1;
  }
  std::cout << "reloaded " << world2->corpus.entity_count()
            << " entities, " << world2->corpus.sentence_count()
            << " sentences, " << dataset2->classes.size()
            << " ultra-classes, " << dataset2->queries.size()
            << " queries\n";

  // Train on the reloaded world and expand one query, proving the files
  // carry everything the pipeline needs.
  ContextEncoder encoder(world2->corpus.tokens().size(),
                         world2->corpus.entity_count(), EncoderConfig{});
  encoder.SetTokenWeights(ComputeSifTokenWeights(world2->corpus.tokens()));
  EntityPredictionTrainConfig train;
  train.epochs = 2;
  TrainEntityPrediction(world2->corpus, encoder, train);
  const EntityStore store = EntityStore::Build(
      world2->corpus, encoder, dataset2->candidates, EntityStoreConfig{});
  RetExpan retexpan(&store, &dataset2->candidates);
  const Query& query = dataset2->queries.front();
  const auto ranking = retexpan.Expand(query, 10);
  std::cout << "top-10 expansion from the reloaded data:\n";
  for (size_t r = 0; r < ranking.size(); ++r) {
    std::cout << "  " << (r + 1) << ". "
              << world2->corpus.entity(ranking[r]).name << "\n";
  }
  return 0;
}
