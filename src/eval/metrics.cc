#include "eval/metrics.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace ultrawiki {
namespace {

/// Rankings are supposed to be duplicate-free, but buggy or generative
/// expanders can emit the same entity twice; counting both occurrences
/// would credit a single target more than once. Deduplicate to the first
/// occurrence before any hit counting. Negative sentinel ids (e.g.
/// kHallucinatedEntityId) are *distinct* fake entities that happen to
/// share an id, so each occurrence keeps its rank slot.
std::vector<EntityId> DedupedPrefix(const std::vector<EntityId>& ranking,
                                    int k) {
  const size_t limit =
      std::min<size_t>(static_cast<size_t>(k), ranking.size());
  std::vector<EntityId> prefix;
  prefix.reserve(limit);
  std::unordered_set<EntityId> seen;
  for (EntityId id : ranking) {
    if (prefix.size() >= limit) break;
    if (id >= 0 && !seen.insert(id).second) continue;
    prefix.push_back(id);
  }
  return prefix;
}

}  // namespace

double PrecisionAtK(const std::vector<EntityId>& ranking,
                    const TargetSet& targets, int k) {
  UW_CHECK_GT(k, 0);
  const std::vector<EntityId> prefix = DedupedPrefix(ranking, k);
  int hits = 0;
  for (EntityId id : prefix) {
    if (targets.contains(id)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double AveragePrecisionAtK(const std::vector<EntityId>& ranking,
                           const TargetSet& targets, int k) {
  UW_CHECK_GT(k, 0);
  if (targets.empty()) return 0.0;
  const std::vector<EntityId> prefix = DedupedPrefix(ranking, k);
  int hits = 0;
  double precision_sum = 0.0;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (targets.contains(prefix[i])) {
      ++hits;
      precision_sum +=
          static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  const int denom = std::min<int>(k, static_cast<int>(targets.size()));
  if (denom == 0) return 0.0;
  return precision_sum / static_cast<double>(denom);
}

double CombineMetric(double pos_value, double neg_value) {
  return (pos_value + 100.0 - neg_value) / 2.0;
}

}  // namespace ultrawiki
