#include "eval/metrics.h"

#include <algorithm>

#include "common/logging.h"

namespace ultrawiki {

double PrecisionAtK(const std::vector<EntityId>& ranking,
                    const TargetSet& targets, int k) {
  UW_CHECK_GT(k, 0);
  const int limit = std::min<int>(k, static_cast<int>(ranking.size()));
  int hits = 0;
  for (int i = 0; i < limit; ++i) {
    if (targets.contains(ranking[static_cast<size_t>(i)])) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double AveragePrecisionAtK(const std::vector<EntityId>& ranking,
                           const TargetSet& targets, int k) {
  UW_CHECK_GT(k, 0);
  if (targets.empty()) return 0.0;
  const int limit = std::min<int>(k, static_cast<int>(ranking.size()));
  int hits = 0;
  double precision_sum = 0.0;
  for (int i = 0; i < limit; ++i) {
    if (targets.contains(ranking[static_cast<size_t>(i)])) {
      ++hits;
      precision_sum +=
          static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  const int denom = std::min<int>(k, static_cast<int>(targets.size()));
  if (denom == 0) return 0.0;
  return precision_sum / static_cast<double>(denom);
}

double CombineMetric(double pos_value, double neg_value) {
  return (pos_value + 100.0 - neg_value) / 2.0;
}

}  // namespace ultrawiki
