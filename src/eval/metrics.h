#ifndef ULTRAWIKI_EVAL_METRICS_H_
#define ULTRAWIKI_EVAL_METRICS_H_

#include <unordered_set>
#include <vector>

#include "corpus/types.h"

namespace ultrawiki {

/// Ground-truth membership set for ranking metrics.
using TargetSet = std::unordered_set<EntityId>;

/// Precision of the first min(k, |ranking|) entries against `targets`.
/// Per the paper's P@K definition, the denominator is k (a short ranking
/// is penalized). Duplicate entity ids are collapsed to their first
/// occurrence before counting, so a repeated target is never credited
/// twice; negative sentinel ids (hallucinations) keep every slot.
double PrecisionAtK(const std::vector<EntityId>& ranking,
                    const TargetSet& targets, int k);

/// Average precision at cutoff `k`: mean of precision@i over the relevant
/// positions i <= k, normalized by min(k, |targets|). This is the AP_K of
/// paper Eq. 8. Duplicates are collapsed as in PrecisionAtK.
double AveragePrecisionAtK(const std::vector<EntityId>& ranking,
                           const TargetSet& targets, int k);

/// CombX@K = (PosX@K + 100 - NegX@K) / 2 on the 0–100 scale (paper §6.1).
double CombineMetric(double pos_value, double neg_value);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_EVAL_METRICS_H_
