#include "eval/significance.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "eval/metrics.h"

namespace ultrawiki {

std::vector<double> PerQueryCombMap(Expander& method,
                                    const UltraWikiDataset& dataset,
                                    int k) {
  // Each query is scored independently and written to its own slot, so
  // the returned vector is identical for every UW_THREADS value.
  return ThreadPool::Global().ParallelMap<double>(
      static_cast<int64_t>(dataset.queries.size()), [&](int64_t qi) {
        const Query& query = dataset.queries[static_cast<size_t>(qi)];
        const UltraClass& ultra = dataset.ClassOf(query);
        const std::vector<EntityId> ranking =
            method.Expand(query, static_cast<size_t>(k));
        TargetSet pos(ultra.positive_targets.begin(),
                      ultra.positive_targets.end());
        for (EntityId seed : query.pos_seeds) pos.erase(seed);
        TargetSet neg(ultra.negative_targets.begin(),
                      ultra.negative_targets.end());
        for (EntityId seed : query.pos_seeds) neg.erase(seed);
        for (EntityId seed : query.neg_seeds) neg.erase(seed);
        const double pos_map = 100.0 * AveragePrecisionAtK(ranking, pos, k);
        const double neg_map = 100.0 * AveragePrecisionAtK(ranking, neg, k);
        return CombineMetric(pos_map, neg_map);
      });
}

BootstrapResult PairedBootstrap(const std::vector<double>& a,
                                const std::vector<double>& b,
                                int resamples, uint64_t seed) {
  UW_CHECK_EQ(a.size(), b.size());
  UW_CHECK_GT(resamples, 0);
  BootstrapResult result;
  result.query_count = static_cast<int>(a.size());
  if (a.empty()) return result;

  double sum_a = 0.0;
  double sum_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    sum_a += a[i];
    sum_b += b[i];
  }
  result.mean_a = sum_a / static_cast<double>(a.size());
  result.mean_b = sum_b / static_cast<double>(b.size());

  Rng rng(seed);
  int b_better = 0;
  int a_better = 0;
  for (int r = 0; r < resamples; ++r) {
    double delta = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
      const size_t pick = rng.UniformUint64(a.size());
      delta += b[pick] - a[pick];
    }
    if (delta > 0.0) ++b_better;
    if (delta < 0.0) ++a_better;
  }
  result.prob_b_better =
      static_cast<double>(b_better) / static_cast<double>(resamples);
  // Add-one smoothed tail probabilities: a finite resample count can never
  // certify p == 0, and ties (delta == 0) weaken both tails rather than
  // counting as evidence for either method.
  const double denom = static_cast<double>(resamples) + 1.0;
  const double upper_tail =
      static_cast<double>(resamples - a_better + 1) / denom;
  const double lower_tail =
      static_cast<double>(resamples - b_better + 1) / denom;
  result.two_sided_p = std::min(1.0, 2.0 * std::min(upper_tail, lower_tail));
  return result;
}

}  // namespace ultrawiki
