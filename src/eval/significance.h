#ifndef ULTRAWIKI_EVAL_SIGNIFICANCE_H_
#define ULTRAWIKI_EVAL_SIGNIFICANCE_H_

#include <vector>

#include "dataset/dataset.h"
#include "expand/expander.h"

namespace ultrawiki {

/// Result of a paired bootstrap test between two methods.
struct BootstrapResult {
  /// Mean per-query metric of each method (0–100).
  double mean_a = 0.0;
  double mean_b = 0.0;
  /// Fraction of bootstrap resamples in which B's mean exceeded A's —
  /// close to 1 means B is consistently better, close to 0 consistently
  /// worse.
  double prob_b_better = 0.5;
  /// Two-sided p-value from add-one smoothed tails,
  /// 2·min((#(Δ≥0)+1), (#(Δ≤0)+1))/(resamples+1) capped at 1: a finite
  /// resample count can never report exactly 0, and tied resamples count
  /// toward both tails (pure ties ⇒ p = 1).
  double two_sided_p = 1.0;
  int query_count = 0;
};

/// Per-query CombMAP@k values of `method` over `dataset` (the paired unit
/// of the bootstrap).
std::vector<double> PerQueryCombMap(Expander& method,
                                    const UltraWikiDataset& dataset, int k);

/// Paired bootstrap significance test on per-query scores. `a` and `b`
/// must be aligned (same queries, same order).
BootstrapResult PairedBootstrap(const std::vector<double>& a,
                                const std::vector<double>& b,
                                int resamples = 2000, uint64_t seed = 71);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_EVAL_SIGNIFICANCE_H_
