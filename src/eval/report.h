#ifndef ULTRAWIKI_EVAL_REPORT_H_
#define ULTRAWIKI_EVAL_REPORT_H_

#include <string>

#include "common/table_printer.h"
#include "eval/evaluator.h"

namespace ultrawiki {

/// Creates a table printer with the paper's result-table layout:
/// Method | Metric | MAP@10..100 [| P@10..100] | Avg.
TablePrinter MakeResultTable(const std::string& title, bool map_only);

/// Appends the three paper-style rows (Pos ↑ / Neg ↓ / Comb ↑) of one
/// method to `table`, matching the layout produced by MakeResultTable.
void AddResultRows(TablePrinter& table, const std::string& method,
                   const EvalResult& result, bool map_only);

/// Appends a single row of MAP values (used by ablation tables that only
/// report Comb MAP, e.g. Table 3).
void AddCombMapRow(TablePrinter& table, const std::string& method,
                   const EvalResult& result);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_EVAL_REPORT_H_
