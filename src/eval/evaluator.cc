#include "eval/evaluator.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ultrawiki {
namespace {

TargetSet MakeTargets(const std::vector<EntityId>& targets,
                      const std::vector<EntityId>& excluded_seeds) {
  TargetSet set(targets.begin(), targets.end());
  for (EntityId seed : excluded_seeds) set.erase(seed);
  return set;
}

double MeanOf(const std::map<int, double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [k, v] : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace

double EvalResult::CombMap(int k) const {
  return CombineMetric(pos_map.at(k), neg_map.at(k));
}

double EvalResult::CombP(int k) const {
  return CombineMetric(pos_p.at(k), neg_p.at(k));
}

double EvalResult::AvgPos() const {
  return (MeanOf(pos_map) + MeanOf(pos_p)) / 2.0;
}

double EvalResult::AvgNeg() const {
  return (MeanOf(neg_map) + MeanOf(neg_p)) / 2.0;
}

double EvalResult::AvgComb() const {
  return CombineMetric(AvgPos(), AvgNeg());
}

double EvalResult::AvgPosMap() const { return MeanOf(pos_map); }
double EvalResult::AvgNegMap() const { return MeanOf(neg_map); }
double EvalResult::AvgCombMap() const {
  return CombineMetric(AvgPosMap(), AvgNegMap());
}

EvalResult EvaluateExpander(Expander& expander,
                            const UltraWikiDataset& dataset,
                            const EvalConfig& config) {
  UW_SPAN("evaluate_expander");
  static obs::Histogram& query_latency = obs::GetHistogram(
      "eval.query_latency_us", obs::LatencyBoundsUs());
  static obs::Counter& queries_evaluated =
      obs::GetCounter("eval.queries_evaluated");
  EvalResult result;
  UW_CHECK(!config.ks.empty());
  const int max_k = *std::max_element(config.ks.begin(), config.ks.end());
  for (int k : config.ks) {
    result.pos_map[k] = 0.0;
    result.neg_map[k] = 0.0;
    result.pos_p[k] = 0.0;
    result.neg_p[k] = 0.0;
  }

  // The filter runs sequentially in query order first (it may be
  // stateful); only the selected queries are expanded in parallel.
  std::vector<size_t> selected;
  selected.reserve(dataset.queries.size());
  for (size_t qi = 0; qi < dataset.queries.size(); ++qi) {
    const Query& query = dataset.queries[qi];
    if (config.query_filter &&
        !config.query_filter(query, dataset.ClassOf(query))) {
      continue;
    }
    selected.push_back(qi);
  }

  // Per-query scores land in per-index slots; the reduction below adds
  // them in query order, so the totals match the sequential path bit for
  // bit at any UW_THREADS.
  struct QueryScores {
    std::vector<double> pos_map, neg_map, pos_p, neg_p;
  };
  const std::vector<QueryScores> per_query =
      ThreadPool::Global().ParallelMap<QueryScores>(
          static_cast<int64_t>(selected.size()), [&](int64_t i) {
            const Query& query =
                dataset.queries[selected[static_cast<size_t>(i)]];
            const UltraClass& ultra = dataset.ClassOf(query);
            const auto start = std::chrono::steady_clock::now();
            const std::vector<EntityId> ranking =
                expander.Expand(query, static_cast<size_t>(max_k));
            query_latency.Observe(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count());
            queries_evaluated.Increment();
            const TargetSet pos_targets =
                MakeTargets(ultra.positive_targets, query.pos_seeds);
            std::vector<EntityId> all_seeds = query.pos_seeds;
            all_seeds.insert(all_seeds.end(), query.neg_seeds.begin(),
                             query.neg_seeds.end());
            const TargetSet neg_targets =
                MakeTargets(ultra.negative_targets, all_seeds);
            QueryScores scores;
            for (int k : config.ks) {
              scores.pos_map.push_back(
                  AveragePrecisionAtK(ranking, pos_targets, k));
              scores.neg_map.push_back(
                  AveragePrecisionAtK(ranking, neg_targets, k));
              scores.pos_p.push_back(PrecisionAtK(ranking, pos_targets, k));
              scores.neg_p.push_back(PrecisionAtK(ranking, neg_targets, k));
            }
            return scores;
          });
  for (const QueryScores& scores : per_query) {
    for (size_t ki = 0; ki < config.ks.size(); ++ki) {
      const int k = config.ks[ki];
      result.pos_map[k] += scores.pos_map[ki];
      result.neg_map[k] += scores.neg_map[ki];
      result.pos_p[k] += scores.pos_p[ki];
      result.neg_p[k] += scores.neg_p[ki];
    }
    ++result.query_count;
  }
  if (result.query_count > 0) {
    const double scale = 100.0 / static_cast<double>(result.query_count);
    for (int k : config.ks) {
      result.pos_map[k] *= scale;
      result.neg_map[k] *= scale;
      result.pos_p[k] *= scale;
      result.neg_p[k] *= scale;
    }
  }
  return result;
}

double EvaluateFineGrainedMap(Expander& expander,
                              const UltraWikiDataset& dataset,
                              const GeneratedWorld& world, int k) {
  UW_SPAN("evaluate_fine_grained_map");
  const std::vector<double> per_query =
      ThreadPool::Global().ParallelMap<double>(
          static_cast<int64_t>(dataset.queries.size()), [&](int64_t qi) {
            const Query& query = dataset.queries[static_cast<size_t>(qi)];
            const UltraClass& ultra = dataset.ClassOf(query);
            const std::vector<EntityId> fine_members =
                world.corpus.EntitiesOfClass(ultra.fine_class);
            std::vector<EntityId> all_seeds = query.pos_seeds;
            all_seeds.insert(all_seeds.end(), query.neg_seeds.begin(),
                             query.neg_seeds.end());
            const TargetSet targets = MakeTargets(fine_members, all_seeds);
            const std::vector<EntityId> ranking =
                expander.Expand(query, static_cast<size_t>(k));
            return AveragePrecisionAtK(ranking, targets, k);
          });
  double sum = 0.0;
  for (double score : per_query) sum += score;
  return per_query.empty()
             ? 0.0
             : 100.0 * sum / static_cast<double>(per_query.size());
}

}  // namespace ultrawiki
