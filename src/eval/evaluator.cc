#include "eval/evaluator.h"

#include <algorithm>

#include "common/logging.h"

namespace ultrawiki {
namespace {

TargetSet MakeTargets(const std::vector<EntityId>& targets,
                      const std::vector<EntityId>& excluded_seeds) {
  TargetSet set(targets.begin(), targets.end());
  for (EntityId seed : excluded_seeds) set.erase(seed);
  return set;
}

double MeanOf(const std::map<int, double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [k, v] : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace

double EvalResult::CombMap(int k) const {
  return CombineMetric(pos_map.at(k), neg_map.at(k));
}

double EvalResult::CombP(int k) const {
  return CombineMetric(pos_p.at(k), neg_p.at(k));
}

double EvalResult::AvgPos() const {
  return (MeanOf(pos_map) + MeanOf(pos_p)) / 2.0;
}

double EvalResult::AvgNeg() const {
  return (MeanOf(neg_map) + MeanOf(neg_p)) / 2.0;
}

double EvalResult::AvgComb() const {
  return CombineMetric(AvgPos(), AvgNeg());
}

double EvalResult::AvgPosMap() const { return MeanOf(pos_map); }
double EvalResult::AvgNegMap() const { return MeanOf(neg_map); }
double EvalResult::AvgCombMap() const {
  return CombineMetric(AvgPosMap(), AvgNegMap());
}

EvalResult EvaluateExpander(Expander& expander,
                            const UltraWikiDataset& dataset,
                            const EvalConfig& config) {
  EvalResult result;
  UW_CHECK(!config.ks.empty());
  const int max_k = *std::max_element(config.ks.begin(), config.ks.end());
  for (int k : config.ks) {
    result.pos_map[k] = 0.0;
    result.neg_map[k] = 0.0;
    result.pos_p[k] = 0.0;
    result.neg_p[k] = 0.0;
  }

  for (const Query& query : dataset.queries) {
    const UltraClass& ultra = dataset.ClassOf(query);
    if (config.query_filter && !config.query_filter(query, ultra)) continue;
    const std::vector<EntityId> ranking =
        expander.Expand(query, static_cast<size_t>(max_k));
    const TargetSet pos_targets =
        MakeTargets(ultra.positive_targets, query.pos_seeds);
    std::vector<EntityId> all_seeds = query.pos_seeds;
    all_seeds.insert(all_seeds.end(), query.neg_seeds.begin(),
                     query.neg_seeds.end());
    const TargetSet neg_targets =
        MakeTargets(ultra.negative_targets, all_seeds);
    for (int k : config.ks) {
      result.pos_map[k] += AveragePrecisionAtK(ranking, pos_targets, k);
      result.neg_map[k] += AveragePrecisionAtK(ranking, neg_targets, k);
      result.pos_p[k] += PrecisionAtK(ranking, pos_targets, k);
      result.neg_p[k] += PrecisionAtK(ranking, neg_targets, k);
    }
    ++result.query_count;
  }
  if (result.query_count > 0) {
    const double scale = 100.0 / static_cast<double>(result.query_count);
    for (int k : config.ks) {
      result.pos_map[k] *= scale;
      result.neg_map[k] *= scale;
      result.pos_p[k] *= scale;
      result.neg_p[k] *= scale;
    }
  }
  return result;
}

double EvaluateFineGrainedMap(Expander& expander,
                              const UltraWikiDataset& dataset,
                              const GeneratedWorld& world, int k) {
  double sum = 0.0;
  int count = 0;
  for (const Query& query : dataset.queries) {
    const UltraClass& ultra = dataset.ClassOf(query);
    const std::vector<EntityId> fine_members =
        world.corpus.EntitiesOfClass(ultra.fine_class);
    std::vector<EntityId> all_seeds = query.pos_seeds;
    all_seeds.insert(all_seeds.end(), query.neg_seeds.begin(),
                     query.neg_seeds.end());
    const TargetSet targets = MakeTargets(fine_members, all_seeds);
    const std::vector<EntityId> ranking =
        expander.Expand(query, static_cast<size_t>(k));
    sum += AveragePrecisionAtK(ranking, targets, k);
    ++count;
  }
  return count > 0 ? 100.0 * sum / static_cast<double>(count) : 0.0;
}

}  // namespace ultrawiki
