#ifndef ULTRAWIKI_EVAL_EVALUATOR_H_
#define ULTRAWIKI_EVAL_EVALUATOR_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "dataset/dataset.h"
#include "eval/metrics.h"
#include "expand/expander.h"

namespace ultrawiki {

/// Evaluation cutoffs; the paper uses K ∈ {10, 20, 50, 100}.
struct EvalConfig {
  std::vector<int> ks = {10, 20, 50, 100};
  /// Optional filter: evaluate only the queries whose index passes.
  std::function<bool(const Query&, const UltraClass&)> query_filter;
};

/// Aggregated scores (0–100 scale) keyed by K.
struct EvalResult {
  std::map<int, double> pos_map;
  std::map<int, double> neg_map;
  std::map<int, double> pos_p;
  std::map<int, double> neg_p;
  int query_count = 0;

  double CombMap(int k) const;
  double CombP(int k) const;

  /// Row averages as printed in the paper's "Avg" column: the mean over
  /// all MAP@K and P@K entries of that metric type.
  double AvgPos() const;
  double AvgNeg() const;
  double AvgComb() const;
  /// Means over MAP-only entries (used by the MAP-only tables 3-10).
  double AvgPosMap() const;
  double AvgNegMap() const;
  double AvgCombMap() const;
};

/// Runs `expander` over every query of `dataset` (or the filtered subset)
/// and aggregates Pos/Neg MAP@K and P@K. Positive targets are P minus the
/// query's seeds; negative targets are N minus the query's seeds.
/// Queries are expanded in parallel on the global ThreadPool (UW_THREADS
/// lanes) with an ordered reduction, so results are bit-identical to the
/// sequential path; `query_filter` is always invoked sequentially in
/// query order and may be stateful.
EvalResult EvaluateExpander(Expander& expander,
                            const UltraWikiDataset& dataset,
                            const EvalConfig& config = {});

/// MAP@K at the fine-grained semantic-class level (used in the paper's
/// discussion, e.g. "RetExpan's fine-grained MAP@100 of 82.08"): ground
/// truth is every entity of the query's fine-grained class.
double EvaluateFineGrainedMap(Expander& expander,
                              const UltraWikiDataset& dataset,
                              const GeneratedWorld& world, int k);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_EVAL_EVALUATOR_H_
