#include "eval/report.h"

#include "common/string_util.h"

namespace ultrawiki {
namespace {

constexpr int kKs[] = {10, 20, 50, 100};

}  // namespace

TablePrinter MakeResultTable(const std::string& title, bool map_only) {
  TablePrinter table(title);
  std::vector<std::string> header = {"Method", "Metric"};
  for (int k : kKs) header.push_back(StrFormat("MAP@%d", k));
  if (!map_only) {
    for (int k : kKs) header.push_back(StrFormat("P@%d", k));
  }
  header.push_back("Avg");
  table.SetHeader(std::move(header));
  return table;
}

void AddResultRows(TablePrinter& table, const std::string& method,
                   const EvalResult& result, bool map_only) {
  auto format_row = [&](const char* metric, auto value_of, double avg) {
    std::vector<std::string> row = {std::string(), std::string(metric)};
    row[0] = method;
    for (int k : kKs) row.push_back(FormatDouble(value_of(k, true), 2));
    if (!map_only) {
      for (int k : kKs) row.push_back(FormatDouble(value_of(k, false), 2));
    }
    row.push_back(FormatDouble(avg, 2));
    table.AddRow(std::move(row));
  };
  format_row(
      "Pos ^",
      [&result](int k, bool map) {
        return map ? result.pos_map.at(k) : result.pos_p.at(k);
      },
      map_only ? result.AvgPosMap() : result.AvgPos());
  format_row(
      "Neg v",
      [&result](int k, bool map) {
        return map ? result.neg_map.at(k) : result.neg_p.at(k);
      },
      map_only ? result.AvgNegMap() : result.AvgNeg());
  format_row(
      "Comb ^",
      [&result](int k, bool map) {
        return map ? result.CombMap(k) : result.CombP(k);
      },
      map_only ? result.AvgCombMap() : result.AvgComb());
  table.AddSeparator();
}

void AddCombMapRow(TablePrinter& table, const std::string& method,
                   const EvalResult& result) {
  std::vector<std::string> row = {method};
  for (int k : kKs) row.push_back(FormatDouble(result.CombMap(k), 2));
  row.push_back(FormatDouble(result.AvgCombMap(), 2));
  table.AddRow(std::move(row));
}

}  // namespace ultrawiki
