#ifndef ULTRAWIKI_OBS_TRACE_H_
#define ULTRAWIKI_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace ultrawiki {
namespace obs {

/// Scoped-span tracing. Each thread records spans into its own tree
/// (guarded by a per-thread mutex, so the hot path never contends);
/// `SnapshotProfile()` merges every thread's tree into one hierarchical
/// profile keyed by span-name path. Tracing is off by default and gated
/// by the `UW_TRACE` environment variable — a closed span costs exactly
/// one predictable branch when disabled, so instrumented code can stay
/// instrumented in production builds.
///
/// Spans opened inside thread-pool tasks nest under the span path that was
/// open on the submitting thread when the work was enqueued (the pool
/// plants that path via `ScopedTaskParent`), so a parallel stage's workers
/// report under the stage's node instead of as disconnected roots.

/// True when `UW_TRACE` is set to a value other than "0"/"" (read once),
/// or after `SetTraceEnabled(true)`.
bool TraceEnabled();

/// Programmatic override (tests, embedders). Takes effect immediately for
/// spans opened afterwards.
void SetTraceEnabled(bool enabled);

/// One node of the merged profile: total time is the sum of every
/// completed span with this name path, across all threads. For stages
/// that ran in parallel the children's totals can legitimately exceed the
/// parent's wall time; `SelfNs` clamps at zero for that reason.
struct ProfileNode {
  std::string name;
  int64_t count = 0;
  int64_t total_ns = 0;
  std::vector<ProfileNode> children;  // sorted by name
};

/// Merged tree over all threads. The root is a synthetic node named
/// "root" with zero count/time.
ProfileNode SnapshotProfile();

/// total_ns minus the children's total_ns, clamped at zero.
int64_t SelfNs(const ProfileNode& node);

/// Drops all recorded spans on every thread. Test-only: callers must
/// ensure no span is open and no traced work is in flight.
void ResetTraceForTest();

/// RAII span. `name` must have static storage duration (string literal).
///
/// Besides the process-global profile, a span also records one timed
/// event into the request trace bound to this thread, when one is
/// (obs/request_trace.h: ScopedRequestBinding) — that is how the serving
/// layer attributes expander stages to individual requests. Both sinks
/// are independent: either can be on without the other, and with both
/// off a span costs two predictable branches.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_ = false;
  void* node_ = nullptr;  // internal TraceNode entered by this span
  void* request_trace_ = nullptr;  // bound RequestTrace, if any
  int request_handle_ = -1;
  std::chrono::steady_clock::time_point start_;
};

/// Name path (root-exclusive) of the spans currently open on this thread;
/// empty when tracing is off. The pool captures this at submission time.
std::vector<std::string> CurrentSpanPath();

/// Re-roots this thread's ambient span position at `path` (created in
/// this thread's tree if absent) for the lifetime of the object. Pass
/// nullptr or an empty path for a no-op. Used by the thread pool around
/// each task; the planted prefix nodes carry no count/time of their own.
class ScopedTaskParent {
 public:
  explicit ScopedTaskParent(const std::vector<std::string>* path);
  ~ScopedTaskParent();

  ScopedTaskParent(const ScopedTaskParent&) = delete;
  ScopedTaskParent& operator=(const ScopedTaskParent&) = delete;

 private:
  bool active_ = false;
  void* saved_ = nullptr;  // internal TraceNode to restore
};

}  // namespace obs
}  // namespace ultrawiki

#define UW_OBS_CONCAT_INNER(a, b) a##b
#define UW_OBS_CONCAT(a, b) UW_OBS_CONCAT_INNER(a, b)

/// Opens a scoped span covering the rest of the enclosing block.
#define UW_SPAN(name) \
  ::ultrawiki::obs::Span UW_OBS_CONCAT(uw_span_, __LINE__)(name)

#endif  // ULTRAWIKI_OBS_TRACE_H_
