#include "obs/trace.h"

#include "obs/request_trace.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

namespace ultrawiki {
namespace obs {
namespace {

/// -1 = not yet read from the environment.
std::atomic<int> g_trace_enabled{-1};

struct TraceNode {
  std::string name;
  TraceNode* parent = nullptr;
  int64_t count = 0;
  int64_t total_ns = 0;
  std::map<std::string, std::unique_ptr<TraceNode>> children;
};

/// One tree per thread. The mutex serializes this thread's span
/// enter/exit against snapshot merges from other threads; it is
/// uncontended on the hot path.
struct ThreadTrace {
  std::mutex mutex;
  TraceNode root;
  TraceNode* current = &root;
};

struct TraceRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadTrace>> threads;
};

TraceRegistry& Registry() {
  static TraceRegistry* registry = new TraceRegistry();
  return *registry;
}

/// The registry keeps a reference too, so a thread's recorded spans
/// survive the thread itself (pool threads can outlive a snapshot or
/// vice versa).
ThreadTrace& LocalTrace() {
  thread_local std::shared_ptr<ThreadTrace> trace = [] {
    auto created = std::make_shared<ThreadTrace>();
    TraceRegistry& registry = Registry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    registry.threads.push_back(created);
    return created;
  }();
  return *trace;
}

TraceNode* ChildOf(TraceNode* parent, const std::string& name) {
  auto& slot = parent->children[name];
  if (slot == nullptr) {
    slot = std::make_unique<TraceNode>();
    slot->name = name;
    slot->parent = parent;
  }
  return slot.get();
}

void MergeInto(const TraceNode& source, ProfileNode& target) {
  target.count += source.count;
  target.total_ns += source.total_ns;
  for (const auto& [name, child] : source.children) {
    // Children are kept sorted by name; source maps are already ordered,
    // so this insert is append-or-find.
    auto it = std::lower_bound(
        target.children.begin(), target.children.end(), name,
        [](const ProfileNode& node, const std::string& key) {
          return node.name < key;
        });
    if (it == target.children.end() || it->name != name) {
      it = target.children.insert(it, ProfileNode{});
      it->name = name;
    }
    MergeInto(*child, *it);
  }
}

}  // namespace

bool TraceEnabled() {
  int state = g_trace_enabled.load(std::memory_order_relaxed);
  if (state < 0) {
    const char* env = std::getenv("UW_TRACE");
    const int parsed =
        (env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0) ? 1
                                                                       : 0;
    int expected = -1;
    g_trace_enabled.compare_exchange_strong(expected, parsed,
                                            std::memory_order_relaxed);
    state = g_trace_enabled.load(std::memory_order_relaxed);
  }
  return state > 0;
}

void SetTraceEnabled(bool enabled) {
  g_trace_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

Span::Span(const char* name) {
  if (RequestTrace* request = ActiveRequestTrace()) {
    request_trace_ = request;
    request_handle_ = request->BeginSpan(name);
  }
  if (!TraceEnabled()) return;
  ThreadTrace& trace = LocalTrace();
  {
    std::lock_guard<std::mutex> lock(trace.mutex);
    trace.current = ChildOf(trace.current, name);
    node_ = trace.current;
  }
  active_ = true;
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (request_trace_ != nullptr) {
    static_cast<RequestTrace*>(request_trace_)->EndSpan(request_handle_);
  }
  if (!active_) return;
  const int64_t elapsed_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_)
          .count();
  ThreadTrace& trace = LocalTrace();
  std::lock_guard<std::mutex> lock(trace.mutex);
  TraceNode* node = static_cast<TraceNode*>(node_);
  node->count += 1;
  node->total_ns += elapsed_ns;
  // Unbalanced destruction order cannot happen (RAII), so current == node.
  trace.current = node->parent != nullptr ? node->parent : &trace.root;
}

std::vector<std::string> CurrentSpanPath() {
  if (!TraceEnabled()) return {};
  ThreadTrace& trace = LocalTrace();
  std::lock_guard<std::mutex> lock(trace.mutex);
  std::vector<std::string> path;
  for (TraceNode* node = trace.current; node != nullptr && node->parent != nullptr;
       node = node->parent) {
    path.push_back(node->name);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

ScopedTaskParent::ScopedTaskParent(const std::vector<std::string>* path) {
  if (path == nullptr || path->empty() || !TraceEnabled()) return;
  ThreadTrace& trace = LocalTrace();
  std::lock_guard<std::mutex> lock(trace.mutex);
  saved_ = trace.current;
  TraceNode* node = &trace.root;
  for (const std::string& name : *path) node = ChildOf(node, name);
  trace.current = node;
  active_ = true;
}

ScopedTaskParent::~ScopedTaskParent() {
  if (!active_) return;
  ThreadTrace& trace = LocalTrace();
  std::lock_guard<std::mutex> lock(trace.mutex);
  trace.current = static_cast<TraceNode*>(saved_);
}

ProfileNode SnapshotProfile() {
  ProfileNode merged;
  merged.name = "root";
  TraceRegistry& registry = Registry();
  std::lock_guard<std::mutex> registry_lock(registry.mutex);
  for (const std::shared_ptr<ThreadTrace>& trace : registry.threads) {
    std::lock_guard<std::mutex> lock(trace->mutex);
    MergeInto(trace->root, merged);
  }
  // The synthetic root carries no measurements of its own.
  merged.count = 0;
  merged.total_ns = 0;
  return merged;
}

int64_t SelfNs(const ProfileNode& node) {
  int64_t children_total = 0;
  for (const ProfileNode& child : node.children) {
    children_total += child.total_ns;
  }
  return std::max<int64_t>(0, node.total_ns - children_total);
}

void ResetTraceForTest() {
  TraceRegistry& registry = Registry();
  std::lock_guard<std::mutex> registry_lock(registry.mutex);
  for (const std::shared_ptr<ThreadTrace>& trace : registry.threads) {
    std::lock_guard<std::mutex> lock(trace->mutex);
    trace->root.children.clear();
    trace->root.count = 0;
    trace->root.total_ns = 0;
    trace->current = &trace->root;
  }
}

}  // namespace obs
}  // namespace ultrawiki
