#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

namespace ultrawiki {
namespace obs {
namespace internal {

int ShardIndex() {
  static std::atomic<int> next{0};
  thread_local const int index =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return index;
}

}  // namespace internal

namespace {

/// Relaxed CAS max/min: metrics tolerate torn ordering, the final value
/// after a join is still the true extremum.
void AtomicMax(std::atomic<int64_t>& slot, int64_t value) {
  int64_t current = slot.load(std::memory_order_relaxed);
  while (value > current &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<int64_t>& slot, int64_t value) {
  int64_t current = slot.load(std::memory_order_relaxed);
  while (value < current &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

/// Leaky singleton registry: metric storage must outlive every thread
/// that might still touch a cached reference during shutdown.
class Registry {
 public:
  static Registry& Instance() {
    static Registry* registry = new Registry();
    return *registry;
  }

  Counter& GetCounter(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = counters_[name];
    if (slot == nullptr) slot = std::make_unique<Counter>(name);
    return *slot;
  }

  Gauge& GetGauge(const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = gauges_[name];
    if (slot == nullptr) slot = std::make_unique<Gauge>(name);
    return *slot;
  }

  Histogram& GetHistogram(const std::string& name,
                          std::vector<int64_t> bounds) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = histograms_[name];
    if (slot == nullptr) {
      slot = std::make_unique<Histogram>(name, std::move(bounds));
    }
    return *slot;
  }

  WindowedHistogram& GetWindowedHistogram(const std::string& name,
                                          std::vector<int64_t> bounds,
                                          int64_t slot_width_ms,
                                          int slot_count) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = windowed_[name];
    if (slot == nullptr) {
      slot = std::make_unique<WindowedHistogram>(name, std::move(bounds),
                                                 slot_width_ms, slot_count);
    }
    return *slot;
  }

  MetricsSnapshot Snapshot() {
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snapshot;
    for (const auto& [name, counter] : counters_) {
      snapshot.counters[name] = counter->Value();
    }
    for (const auto& [name, gauge] : gauges_) {
      snapshot.gauges[name] = gauge->Value();
    }
    for (const auto& [name, histogram] : histograms_) {
      snapshot.histograms[name] = histogram->Aggregate();
    }
    for (const auto& [name, windowed] : windowed_) {
      snapshot.histograms[name] = windowed->Aggregate();
    }
    return snapshot;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, counter] : counters_) counter->Reset();
    for (auto& [name, gauge] : gauges_) gauge->Reset();
    for (auto& [name, histogram] : histograms_) histogram->Reset();
    for (auto& [name, windowed] : windowed_) windowed->Reset();
  }

 private:
  std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<WindowedHistogram>> windowed_;
};

}  // namespace

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const internal::Cell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (internal::Cell& cell : cells_) {
    cell.value.store(0, std::memory_order_relaxed);
  }
}

void Gauge::UpdateMax(int64_t value) { AtomicMax(value_, value); }

Histogram::Histogram(std::string name, std::vector<int64_t> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  cells_.reserve(kMetricShards);
  for (int i = 0; i < kMetricShards; ++i) {
    cells_.push_back(std::make_unique<HistCell>(bounds_.size() + 1));
  }
}

void Histogram::Observe(int64_t value) {
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  HistCell& cell = *cells_[static_cast<size_t>(internal::ShardIndex())];
  cell.bucket_counts[bucket].fetch_add(1, std::memory_order_relaxed);
  cell.count.fetch_add(1, std::memory_order_relaxed);
  cell.sum.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(cell.min, value);
  AtomicMax(cell.max, value);
}

HistogramData Histogram::Aggregate() const {
  HistogramData data;
  data.bounds = bounds_;
  data.bucket_counts.assign(bounds_.size() + 1, 0);
  int64_t min = INT64_MAX;
  int64_t max = INT64_MIN;
  for (const std::unique_ptr<HistCell>& cell_ptr : cells_) {
    const HistCell& cell = *cell_ptr;
    for (size_t b = 0; b < data.bucket_counts.size(); ++b) {
      data.bucket_counts[b] +=
          cell.bucket_counts[b].load(std::memory_order_relaxed);
    }
    data.count += cell.count.load(std::memory_order_relaxed);
    data.sum += cell.sum.load(std::memory_order_relaxed);
    min = std::min(min, cell.min.load(std::memory_order_relaxed));
    max = std::max(max, cell.max.load(std::memory_order_relaxed));
  }
  if (data.count > 0) {
    data.min = min;
    data.max = max;
  }
  return data;
}

void Histogram::Reset() {
  for (std::unique_ptr<HistCell>& cell_ptr : cells_) {
    HistCell& cell = *cell_ptr;
    for (auto& bucket : cell.bucket_counts) {
      bucket.store(0, std::memory_order_relaxed);
    }
    cell.count.store(0, std::memory_order_relaxed);
    cell.sum.store(0, std::memory_order_relaxed);
    cell.min.store(INT64_MAX, std::memory_order_relaxed);
    cell.max.store(INT64_MIN, std::memory_order_relaxed);
  }
}

WindowedHistogram::WindowedHistogram(std::string name,
                                     std::vector<int64_t> bounds,
                                     int64_t slot_width_ms, int slot_count)
    : name_(std::move(name)),
      bounds_(std::move(bounds)),
      slot_width_ms_(slot_width_ms > 0 ? slot_width_ms : 1),
      slot_count_(slot_count > 0 ? slot_count : 1) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  slots_.resize(static_cast<size_t>(slot_count_));
  for (Slot& slot : slots_) {
    slot.bucket_counts.assign(bounds_.size() + 1, 0);
  }
}

namespace {
int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

void WindowedHistogram::ResetSlotLocked(Slot& slot, int64_t epoch) {
  slot.epoch = epoch;
  std::fill(slot.bucket_counts.begin(), slot.bucket_counts.end(), 0);
  slot.count = 0;
  slot.sum = 0;
  slot.min = 0;
  slot.max = 0;
}

void WindowedHistogram::Observe(int64_t value) {
  ObserveAtMs(value, SteadyNowMs());
}

void WindowedHistogram::ObserveAtMs(int64_t value, int64_t now_ms) {
  const int64_t epoch = std::max<int64_t>(0, now_ms) / slot_width_ms_;
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& slot = slots_[static_cast<size_t>(epoch %
                                          static_cast<int64_t>(slot_count_))];
  // A stale epoch means the slot's samples fell out of the window while
  // it waited to be reused — possibly many rotations ago, possibly
  // because the clock stepped. Either way they are dead; clear first.
  if (slot.epoch != epoch) ResetSlotLocked(slot, epoch);
  slot.bucket_counts[bucket] += 1;
  slot.count += 1;
  slot.sum += value;
  if (slot.count == 1) {
    slot.min = value;
    slot.max = value;
  } else {
    slot.min = std::min(slot.min, value);
    slot.max = std::max(slot.max, value);
  }
}

HistogramData WindowedHistogram::Aggregate() const {
  return AggregateAtMs(SteadyNowMs());
}

HistogramData WindowedHistogram::AggregateAtMs(int64_t now_ms) const {
  const int64_t newest_epoch = std::max<int64_t>(0, now_ms) / slot_width_ms_;
  const int64_t oldest_epoch =
      newest_epoch - static_cast<int64_t>(slot_count_) + 1;
  HistogramData data;
  data.bounds = bounds_;
  data.bucket_counts.assign(bounds_.size() + 1, 0);
  int64_t min = INT64_MAX;
  int64_t max = INT64_MIN;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Slot& slot : slots_) {
    // Only slots whose epoch falls inside the window count; anything
    // else is a leftover from a previous rotation (or untouched).
    if (slot.epoch < oldest_epoch || slot.epoch > newest_epoch) continue;
    if (slot.count == 0) continue;
    for (size_t b = 0; b < data.bucket_counts.size(); ++b) {
      data.bucket_counts[b] += slot.bucket_counts[b];
    }
    data.count += slot.count;
    data.sum += slot.sum;
    min = std::min(min, slot.min);
    max = std::max(max, slot.max);
  }
  if (data.count > 0) {
    data.min = min;
    data.max = max;
  }
  return data;
}

void WindowedHistogram::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Slot& slot : slots_) ResetSlotLocked(slot, -1);
}

int64_t HistogramPercentile(const HistogramData& data, int percentile) {
  if (data.count <= 0) return 0;
  const int pct = std::clamp(percentile, 0, 100);
  int64_t rank = (data.count * pct + 99) / 100;
  if (rank < 1) rank = 1;
  int64_t cumulative = 0;
  for (size_t b = 0; b < data.bucket_counts.size(); ++b) {
    cumulative += data.bucket_counts[b];
    if (cumulative >= rank) {
      if (b >= data.bounds.size()) return data.max;  // overflow bucket
      return std::min(data.bounds[b], data.max);
    }
  }
  return data.max;
}

Counter& GetCounter(const std::string& name) {
  return Registry::Instance().GetCounter(name);
}

Gauge& GetGauge(const std::string& name) {
  return Registry::Instance().GetGauge(name);
}

Histogram& GetHistogram(const std::string& name,
                        std::vector<int64_t> bounds) {
  return Registry::Instance().GetHistogram(name, std::move(bounds));
}

WindowedHistogram& GetWindowedHistogram(const std::string& name,
                                        std::vector<int64_t> bounds,
                                        int64_t slot_width_ms,
                                        int slot_count) {
  return Registry::Instance().GetWindowedHistogram(
      name, std::move(bounds), slot_width_ms, slot_count);
}

const std::vector<int64_t>& LatencyBoundsUs() {
  static const std::vector<int64_t>* bounds = new std::vector<int64_t>{
      50,     100,    250,    500,     1000,    2500,    5000,
      10000,  25000,  50000,  100000,  250000,  500000,  1000000,
      2500000, 10000000};
  return *bounds;
}

MetricsSnapshot SnapshotMetrics() { return Registry::Instance().Snapshot(); }

void ResetMetricsForTest() { Registry::Instance().Reset(); }

}  // namespace obs
}  // namespace ultrawiki
