#ifndef ULTRAWIKI_OBS_EXPORT_H_
#define ULTRAWIKI_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/trace.h"

namespace ultrawiki {
namespace obs {

/// Deterministic serializers: all maps are key-sorted, profile children
/// are name-sorted, and every value is an integer, so two snapshots of
/// identical runs serialize to identical bytes.

/// {"counters": {...}, "gauges": {...}, "histograms": {name: {"bounds":
/// [...], "counts": [...], "count": n, "sum": s, "min": m, "max": M,
/// "p50": ..., "p90": ..., "p95": ..., "p99": ...}}} — percentiles are
/// bucket-resolution integers (HistogramPercentile).
std::string ExportMetricsJson(const MetricsSnapshot& snapshot);

/// {"name": ..., "count": n, "total_ns": t, "self_ns": s, "children":
/// [...]} — self_ns is derived at export time (SelfNs).
std::string ExportProfileJson(const ProfileNode& root);

/// Prometheus text exposition format. Metric names are sanitized
/// ([^a-zA-Z0-9_] -> '_') and prefixed with "uw_"; histograms emit the
/// conventional _bucket/_sum/_count series with cumulative "le" labels
/// plus summary-style {quantile="0.5|0.9|0.95|0.99"} series derived with
/// the same deterministic bucket math as the JSON percentiles.
std::string ExportPrometheus(const MetricsSnapshot& snapshot);

/// Chrome trace-event JSON (the `chrome://tracing` / Perfetto "JSON
/// Array Format"): every request trace becomes one process (pid =
/// trace_id) whose complete events ("ph":"X", microsecond ts/dur on the
/// request's own timeline) are the recorded stage tree — queue wait,
/// batch wait, execute, and the expander's UW_SPAN scopes. A metadata
/// record names the process "<method> #<trace_id>". Deterministic for a
/// fixed input: traces are emitted in the given order, events in
/// recording order.
std::string ExportChromeTraceJson(const std::vector<RequestTraceData>& traces);

/// {"slow_queries": [{"trace_id": ..., "method": ..., "sequence": ...,
/// "total_us": ..., "events_dropped": ..., "events": [{"name", "start_us",
/// "dur_us", "parent"}...]}, ...]} — the slow-query log in a shape meant
/// for programmatic checks; use ExportChromeTraceJson for timelines.
std::string ExportRequestTracesJson(
    const std::vector<RequestTraceData>& traces);

/// Full machine-readable bench snapshot:
/// {"bench": name, "threads": n, "trace_enabled": 0|1,
///  "wall_seconds": s, "metrics": {...}, "profile": {...}}.
std::string BuildBenchSnapshotJson(const std::string& bench_name,
                                   int threads, double wall_seconds);

/// Writes BuildBenchSnapshotJson to the path named by the `UW_BENCH_JSON`
/// environment variable, defaulting to "bench_<name>.json" in the working
/// directory. Returns the path written, or an empty string on I/O failure
/// (logged to stderr). Set `UW_BENCH_JSON=off` to suppress the file.
std::string WriteBenchSnapshot(const std::string& bench_name, int threads,
                               double wall_seconds);

}  // namespace obs
}  // namespace ultrawiki

#endif  // ULTRAWIKI_OBS_EXPORT_H_
