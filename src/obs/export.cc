#include "obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/logging.h"

namespace ultrawiki {
namespace obs {
namespace {

void AppendJsonString(const std::string& value, std::string& out) {
  out.push_back('"');
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void AppendInt(int64_t value, std::string& out) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRId64, value);
  out += buffer;
}

void AppendIntArray(const std::vector<int64_t>& values, std::string& out) {
  out.push_back('[');
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendInt(values[i], out);
  }
  out.push_back(']');
}

void AppendHistogram(const HistogramData& data, std::string& out) {
  out += "{\"bounds\":";
  AppendIntArray(data.bounds, out);
  out += ",\"counts\":";
  AppendIntArray(data.bucket_counts, out);
  out += ",\"count\":";
  AppendInt(data.count, out);
  out += ",\"sum\":";
  AppendInt(data.sum, out);
  out += ",\"min\":";
  AppendInt(data.min, out);
  out += ",\"max\":";
  AppendInt(data.max, out);
  // Bucket-resolution percentiles (deterministic integer math; see
  // HistogramPercentile) so latency tails are readable without
  // re-deriving them from the bucket arrays.
  for (int pct : {50, 90, 95, 99}) {
    out += ",\"p";
    AppendInt(pct, out);
    out += "\":";
    AppendInt(HistogramPercentile(data, pct), out);
  }
  out.push_back('}');
}

void AppendProfileNode(const ProfileNode& node, std::string& out) {
  out += "{\"name\":";
  AppendJsonString(node.name, out);
  out += ",\"count\":";
  AppendInt(node.count, out);
  out += ",\"total_ns\":";
  AppendInt(node.total_ns, out);
  out += ",\"self_ns\":";
  AppendInt(SelfNs(node), out);
  out += ",\"children\":[";
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendProfileNode(node.children[i], out);
  }
  out += "]}";
}

std::string SanitizedPrometheusName(const std::string& name) {
  std::string out = "uw_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string ExportMetricsJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, out);
    out.push_back(':');
    AppendInt(value, out);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, out);
    out.push_back(':');
    AppendInt(value, out);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, data] : snapshot.histograms) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, out);
    out.push_back(':');
    AppendHistogram(data, out);
  }
  out += "}}";
  return out;
}

std::string ExportProfileJson(const ProfileNode& root) {
  std::string out;
  AppendProfileNode(root, out);
  return out;
}

std::string ExportChromeTraceJson(
    const std::vector<RequestTraceData>& traces) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const RequestTraceData& trace : traces) {
    const int64_t pid = static_cast<int64_t>(trace.trace_id);
    // Process-name metadata record so chrome://tracing labels the row.
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    AppendInt(pid, out);
    out += ",\"tid\":0,\"args\":{\"name\":";
    AppendJsonString(trace.method + " #" + std::to_string(trace.trace_id),
                     out);
    out += "}}";
    // The whole request as the root complete event, stages nested under
    // it by their own ts/dur (chrome nests events on one tid by
    // containment, which the LIFO span discipline guarantees).
    out += ",{\"name\":\"request\",\"cat\":\"serve\",\"ph\":\"X\",\"ts\":0,"
           "\"dur\":";
    AppendInt(trace.total_us, out);
    out += ",\"pid\":";
    AppendInt(pid, out);
    out += ",\"tid\":0,\"args\":{\"method\":";
    AppendJsonString(trace.method, out);
    out += ",\"events_dropped\":";
    AppendInt(trace.events_dropped, out);
    out += "}}";
    for (const RequestSpanEvent& event : trace.events) {
      out += ",{\"name\":";
      AppendJsonString(event.name, out);
      out += ",\"cat\":\"serve\",\"ph\":\"X\",\"ts\":";
      AppendInt(event.start_us, out);
      out += ",\"dur\":";
      AppendInt(event.dur_us, out);
      out += ",\"pid\":";
      AppendInt(pid, out);
      out += ",\"tid\":0}";
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::string ExportRequestTracesJson(
    const std::vector<RequestTraceData>& traces) {
  std::string out = "{\"slow_queries\":[";
  for (size_t t = 0; t < traces.size(); ++t) {
    const RequestTraceData& trace = traces[t];
    if (t > 0) out.push_back(',');
    out += "{\"trace_id\":";
    AppendInt(static_cast<int64_t>(trace.trace_id), out);
    out += ",\"method\":";
    AppendJsonString(trace.method, out);
    out += ",\"sequence\":";
    AppendInt(static_cast<int64_t>(trace.sequence), out);
    out += ",\"total_us\":";
    AppendInt(trace.total_us, out);
    out += ",\"events_dropped\":";
    AppendInt(trace.events_dropped, out);
    out += ",\"events\":[";
    for (size_t i = 0; i < trace.events.size(); ++i) {
      const RequestSpanEvent& event = trace.events[i];
      if (i > 0) out.push_back(',');
      out += "{\"name\":";
      AppendJsonString(event.name, out);
      out += ",\"start_us\":";
      AppendInt(event.start_us, out);
      out += ",\"dur_us\":";
      AppendInt(event.dur_us, out);
      out += ",\"parent\":";
      AppendInt(event.parent, out);
      out.push_back('}');
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string ExportPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  char line[256];
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = SanitizedPrometheusName(name);
    std::snprintf(line, sizeof(line), "# TYPE %s counter\n%s %" PRId64 "\n",
                  prom.c_str(), prom.c_str(), value);
    out += line;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = SanitizedPrometheusName(name);
    std::snprintf(line, sizeof(line), "# TYPE %s gauge\n%s %" PRId64 "\n",
                  prom.c_str(), prom.c_str(), value);
    out += line;
  }
  for (const auto& [name, data] : snapshot.histograms) {
    const std::string prom = SanitizedPrometheusName(name);
    std::snprintf(line, sizeof(line), "# TYPE %s histogram\n", prom.c_str());
    out += line;
    int64_t cumulative = 0;
    for (size_t b = 0; b < data.bounds.size(); ++b) {
      cumulative += data.bucket_counts[b];
      std::snprintf(line, sizeof(line),
                    "%s_bucket{le=\"%" PRId64 "\"} %" PRId64 "\n",
                    prom.c_str(), data.bounds[b], cumulative);
      out += line;
    }
    std::snprintf(line, sizeof(line), "%s_bucket{le=\"+Inf\"} %" PRId64 "\n",
                  prom.c_str(), data.count);
    out += line;
    std::snprintf(line, sizeof(line), "%s_sum %" PRId64 "\n", prom.c_str(),
                  data.sum);
    out += line;
    std::snprintf(line, sizeof(line), "%s_count %" PRId64 "\n", prom.c_str(),
                  data.count);
    out += line;
    // Summary-style quantile series from the same deterministic
    // bucket-resolution math the JSON export uses.
    static constexpr std::pair<int, const char*> kQuantiles[] = {
        {50, "0.5"}, {90, "0.9"}, {95, "0.95"}, {99, "0.99"}};
    for (const auto& [pct, label] : kQuantiles) {
      std::snprintf(line, sizeof(line),
                    "%s{quantile=\"%s\"} %" PRId64 "\n", prom.c_str(), label,
                    HistogramPercentile(data, pct));
      out += line;
    }
  }
  return out;
}

std::string BuildBenchSnapshotJson(const std::string& bench_name,
                                   int threads, double wall_seconds) {
  std::string out = "{\"bench\":";
  AppendJsonString(bench_name, out);
  out += ",\"threads\":";
  AppendInt(threads, out);
  out += ",\"trace_enabled\":";
  AppendInt(TraceEnabled() ? 1 : 0, out);
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), ",\"wall_seconds\":%.6f",
                wall_seconds);
  out += buffer;
  out += ",\"metrics\":";
  out += ExportMetricsJson(SnapshotMetrics());
  out += ",\"profile\":";
  out += ExportProfileJson(SnapshotProfile());
  out.push_back('}');
  return out;
}

std::string WriteBenchSnapshot(const std::string& bench_name, int threads,
                               double wall_seconds) {
  std::string path;
  if (const char* env = std::getenv("UW_BENCH_JSON")) {
    if (std::string(env) == "off") return "";
    path = env;
  } else {
    path = "bench_" + bench_name + ".json";
  }
  const std::string json =
      BuildBenchSnapshotJson(bench_name, threads, wall_seconds);
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    UW_LOG(Error) << "cannot open bench snapshot file " << path;
    return "";
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const bool ok = written == json.size() && std::fputc('\n', file) != EOF;
  std::fclose(file);
  if (!ok) {
    UW_LOG(Error) << "short write to bench snapshot file " << path;
    return "";
  }
  return path;
}

}  // namespace obs
}  // namespace ultrawiki
