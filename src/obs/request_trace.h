#ifndef ULTRAWIKI_OBS_REQUEST_TRACE_H_
#define ULTRAWIKI_OBS_REQUEST_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ultrawiki {
namespace obs {

/// Request-scoped tracing: where trace.h aggregates spans into one
/// process-global profile, a RequestTrace records the *individual* timed
/// events of a single request — queue wait, batch wait, and every
/// UW_SPAN scope the expander opens while the request executes — as a
/// span tree on one shared timeline. Finished traces of slow requests
/// land in the bounded SlowQueryLog ring, inspectable live through the
/// admin endpoint, a SIGUSR1 dump, or `chrome://tracing` via the
/// Chrome trace-event exporter (export.h).
///
/// Recording is strictly passive — it observes timestamps and never
/// feeds back into expansion, so rankings are bit-identical with tracing
/// off, sampled, or on for every request (asserted in serve_test).
///
/// Threading: a RequestTrace is written by one thread at a time — the
/// submitting thread at admission, then the single pool lane executing
/// the request (nested ParallelFor calls inside a pool task run inline,
/// so an expander never fans a request's work across threads). The
/// ScopedRequestBinding handoff publishes the earlier writes.

/// One completed timed event. Times are microseconds relative to the
/// trace epoch (the moment the request was admitted), matching the
/// Chrome trace-event "ts"/"dur" convention.
struct RequestSpanEvent {
  std::string name;
  int64_t start_us = 0;
  int64_t dur_us = 0;
  /// Index of the enclosing event in RequestTraceData::events, or -1
  /// for a root stage.
  int32_t parent = -1;
};

/// A finished request trace, detached from the live RequestTrace.
struct RequestTraceData {
  uint64_t trace_id = 0;
  std::string method;
  /// Monotone completion sequence number assigned by the SlowQueryLog.
  uint64_t sequence = 0;
  /// End-to-end latency (admission to completion), microseconds.
  int64_t total_us = 0;
  /// Events discarded after the per-trace event cap was hit.
  int64_t events_dropped = 0;
  std::vector<RequestSpanEvent> events;
};

/// Collects the span tree of one request. Allocated only for traced
/// requests (sampled, forced, or when a slow-query threshold is armed);
/// untraced requests never touch this class.
class RequestTrace {
 public:
  /// Hard cap on recorded events per request, so a beam-heavy query
  /// cannot grow a trace without bound; later events count as dropped.
  static constexpr size_t kMaxEvents = 512;

  RequestTrace(uint64_t trace_id, std::string method,
               std::chrono::steady_clock::time_point epoch);

  RequestTrace(const RequestTrace&) = delete;
  RequestTrace& operator=(const RequestTrace&) = delete;

  /// Records a completed interval measured by the caller (the service's
  /// queue-wait / batch-wait stages). Returns the event index or -1 when
  /// the trace is full.
  int AddInterval(const char* name,
                  std::chrono::steady_clock::time_point start,
                  std::chrono::steady_clock::time_point end,
                  int parent = -1);

  /// Opens a nested span at now(); the matching EndSpan computes the
  /// duration. Nesting must be LIFO (RAII callers guarantee it). Returns
  /// a handle (-1 when the trace is full; EndSpan ignores -1).
  int BeginSpan(const char* name);
  void EndSpan(int handle);

  /// Detaches the finished trace. `end` stamps total_us.
  RequestTraceData Finish(std::chrono::steady_clock::time_point end);

  uint64_t trace_id() const { return trace_id_; }

 private:
  int64_t SinceEpochUs(std::chrono::steady_clock::time_point t) const;

  uint64_t trace_id_;
  std::string method_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<RequestSpanEvent> events_;
  std::vector<int> open_stack_;  // indices of open BeginSpan events
  int64_t dropped_ = 0;
};

/// Binds `trace` as this thread's active request trace for the lifetime
/// of the object: every UW_SPAN opened on the thread while bound records
/// an event into the trace (in addition to the process-global profile
/// when UW_TRACE is on). Nestable; the previous binding is restored.
/// Pass nullptr for a no-op.
class ScopedRequestBinding {
 public:
  explicit ScopedRequestBinding(RequestTrace* trace);
  ~ScopedRequestBinding();

  ScopedRequestBinding(const ScopedRequestBinding&) = delete;
  ScopedRequestBinding& operator=(const ScopedRequestBinding&) = delete;

 private:
  RequestTrace* saved_ = nullptr;
};

/// The trace bound to this thread, or nullptr. Read by Span (trace.cc)
/// on every construction — one thread-local load when no trace is bound.
RequestTrace* ActiveRequestTrace();

/// Bounded ring of the most recent slow-request traces. Process-global
/// so the admin endpoint and the SIGUSR1 dump can read it without a
/// handle on the service. Capacity resolves once from `UW_SLOW_QUERY_LOG`
/// (default 16, minimum 1).
class SlowQueryLog {
 public:
  static SlowQueryLog& Global();

  /// Stamps `data.sequence` and appends, evicting the oldest entry when
  /// the ring is full.
  void Record(RequestTraceData data);

  /// Most recent first.
  std::vector<RequestTraceData> Snapshot() const;

  /// Lifetime number of traces recorded (recorded - capacity bounds the
  /// evictions).
  int64_t total_recorded() const;
  size_t capacity() const { return capacity_; }

  /// Drops all entries and zeroes the counters. Test-only.
  void ResetForTest();

  /// Test-only capacity override (applies to subsequently recorded
  /// entries; existing overflow entries are evicted immediately).
  void SetCapacityForTest(size_t capacity);

 private:
  explicit SlowQueryLog(size_t capacity) : capacity_(capacity) {}

  mutable std::mutex mutex_;
  size_t capacity_;
  uint64_t next_sequence_ = 1;
  int64_t total_recorded_ = 0;
  std::vector<RequestTraceData> ring_;  // oldest first
};

}  // namespace obs
}  // namespace ultrawiki

#endif  // ULTRAWIKI_OBS_REQUEST_TRACE_H_
