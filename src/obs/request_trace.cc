#include "obs/request_trace.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

namespace ultrawiki {
namespace obs {
namespace {

thread_local RequestTrace* tls_active_request_trace = nullptr;

size_t SlowLogCapacityFromEnv() {
  if (const char* env = std::getenv("UW_SLOW_QUERY_LOG")) {
    const long parsed = std::atol(env);
    if (parsed >= 1) return static_cast<size_t>(parsed);
  }
  return 16;
}

}  // namespace

RequestTrace::RequestTrace(uint64_t trace_id, std::string method,
                           std::chrono::steady_clock::time_point epoch)
    : trace_id_(trace_id), method_(std::move(method)), epoch_(epoch) {
  events_.reserve(16);
}

int64_t RequestTrace::SinceEpochUs(
    std::chrono::steady_clock::time_point t) const {
  return std::chrono::duration_cast<std::chrono::microseconds>(t - epoch_)
      .count();
}

int RequestTrace::AddInterval(const char* name,
                              std::chrono::steady_clock::time_point start,
                              std::chrono::steady_clock::time_point end,
                              int parent) {
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return -1;
  }
  RequestSpanEvent event;
  event.name = name;
  event.start_us = SinceEpochUs(start);
  event.dur_us = std::max<int64_t>(0, SinceEpochUs(end) - event.start_us);
  event.parent = parent;
  events_.push_back(std::move(event));
  return static_cast<int>(events_.size()) - 1;
}

int RequestTrace::BeginSpan(const char* name) {
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return -1;
  }
  // The slot is appended at open time so nested children can point at a
  // stable parent index; the duration is filled in by EndSpan.
  RequestSpanEvent event;
  event.name = name;
  event.start_us = SinceEpochUs(std::chrono::steady_clock::now());
  event.dur_us = 0;
  event.parent = open_stack_.empty() ? -1 : open_stack_.back();
  events_.push_back(std::move(event));
  const int handle = static_cast<int>(events_.size()) - 1;
  open_stack_.push_back(handle);
  return handle;
}

void RequestTrace::EndSpan(int handle) {
  if (handle < 0) return;
  RequestSpanEvent& event = events_[static_cast<size_t>(handle)];
  event.dur_us = std::max<int64_t>(
      0, SinceEpochUs(std::chrono::steady_clock::now()) - event.start_us);
  // RAII call sites guarantee LIFO close order, so the handle is the top
  // of the open stack.
  if (!open_stack_.empty() && open_stack_.back() == handle) {
    open_stack_.pop_back();
  }
}

RequestTraceData RequestTrace::Finish(
    std::chrono::steady_clock::time_point end) {
  RequestTraceData data;
  data.trace_id = trace_id_;
  data.method = std::move(method_);
  data.total_us = std::max<int64_t>(0, SinceEpochUs(end));
  data.events_dropped = dropped_;
  data.events = std::move(events_);
  return data;
}

ScopedRequestBinding::ScopedRequestBinding(RequestTrace* trace) {
  saved_ = tls_active_request_trace;
  tls_active_request_trace = trace != nullptr ? trace : saved_;
}

ScopedRequestBinding::~ScopedRequestBinding() {
  tls_active_request_trace = saved_;
}

RequestTrace* ActiveRequestTrace() { return tls_active_request_trace; }

SlowQueryLog& SlowQueryLog::Global() {
  // Leaky singleton, same discipline as the metrics registry: entries
  // must outlive any thread that might record during shutdown.
  static SlowQueryLog* log = new SlowQueryLog(SlowLogCapacityFromEnv());
  return *log;
}

void SlowQueryLog::Record(RequestTraceData data) {
  std::lock_guard<std::mutex> lock(mutex_);
  data.sequence = next_sequence_++;
  ++total_recorded_;
  ring_.push_back(std::move(data));
  while (ring_.size() > capacity_) ring_.erase(ring_.begin());
}

std::vector<RequestTraceData> SlowQueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<RequestTraceData> out(ring_.rbegin(), ring_.rend());
  return out;
}

int64_t SlowQueryLog::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_recorded_;
}

void SlowQueryLog::ResetForTest() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_sequence_ = 1;
  total_recorded_ = 0;
}

void SlowQueryLog::SetCapacityForTest(size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = std::max<size_t>(1, capacity);
  while (ring_.size() > capacity_) ring_.erase(ring_.begin());
}

}  // namespace obs
}  // namespace ultrawiki
