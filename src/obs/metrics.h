#ifndef ULTRAWIKI_OBS_METRICS_H_
#define ULTRAWIKI_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ultrawiki {
namespace obs {

/// Process-global metrics: named counters, gauges, and fixed-bucket
/// histograms. Hot-path updates are lock-free — every metric keeps a small
/// array of cache-line-padded atomic cells and each thread writes the cell
/// it hashed to, so concurrent increments from the work-stealing pool never
/// contend on one line. Cells are summed only at snapshot time.
///
/// Metrics are always on (they are cheap relaxed atomics); only tracing
/// (trace.h) is gated behind `UW_TRACE`. All values are integers so that
/// aggregation is associative and two identical runs snapshot to identical
/// bytes regardless of thread scheduling.

inline constexpr int kMetricShards = 16;

namespace internal {
/// Stable per-thread cell index in [0, kMetricShards).
int ShardIndex();

struct alignas(64) Cell {
  std::atomic<int64_t> value{0};
};
}  // namespace internal

/// Monotonically increasing sum. `Value()` is exact once the writers'
/// work has been joined (the pool's completion edge publishes increments).
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(int64_t delta = 1) {
    cells_[static_cast<size_t>(internal::ShardIndex())].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  int64_t Value() const;
  const std::string& name() const { return name_; }

  /// Zeroes the cells. Test-only; callers must be quiescent.
  void Reset();

 private:
  std::string name_;
  std::array<internal::Cell, kMetricShards> cells_;
};

/// Last-write-wins scalar with an additional monotone-max update (used for
/// peaks such as queue depth).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void UpdateMax(int64_t value);
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

  /// Zeroes the gauge. Test-only; callers must be quiescent.
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::string name_;
  std::atomic<int64_t> value_{0};
};

/// Aggregated histogram state read out of a snapshot.
struct HistogramData {
  /// Inclusive upper bounds, ascending; bucket i counts values
  /// <= bounds[i], the final implicit bucket counts the overflow.
  std::vector<int64_t> bounds;
  std::vector<int64_t> bucket_counts;  // bounds.size() + 1 entries
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;  // 0 when count == 0
  int64_t max = 0;  // 0 when count == 0
};

/// Fixed-bucket histogram over int64 values (timings are recorded in
/// microseconds so sums stay exact and order-independent).
class Histogram {
 public:
  Histogram(std::string name, std::vector<int64_t> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(int64_t value);
  HistogramData Aggregate() const;
  const std::string& name() const { return name_; }

  /// Zeroes all cells. Test-only; callers must be quiescent.
  void Reset();

 private:
  struct alignas(64) HistCell {
    explicit HistCell(size_t buckets) : bucket_counts(buckets) {}
    std::vector<std::atomic<int64_t>> bucket_counts;
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> min{INT64_MAX};
    std::atomic<int64_t> max{INT64_MIN};
  };

  std::string name_;
  std::vector<int64_t> bounds_;
  std::vector<std::unique_ptr<HistCell>> cells_;
};

/// Sliding-window histogram: the same fixed-bucket state as Histogram,
/// but held in `slot_count` rotating fixed-width time slots so an
/// aggregate reflects only the last `slot_count * slot_width_ms`
/// milliseconds (~60s with the defaults) instead of the process
/// lifetime. Serving dashboards read their p50/p99 from these; the
/// lifetime Histogram stays the deterministic bench/CI artifact.
///
/// A slot is keyed by its epoch (now / slot_width_ms); observing into a
/// slot whose stored epoch is stale resets it first, so slots left empty
/// while traffic was idle — or leapt over by a clock step — never leak
/// old samples into the window. Updates take a mutex: window reads and
/// rotation are coupled, and the observe rate (one per served request)
/// is far below the lock-free hot-path counters'.
///
/// All methods taking an explicit `now_ms` exist for tests (injected
/// clock); production callers use the steady-clock overloads.
class WindowedHistogram {
 public:
  WindowedHistogram(std::string name, std::vector<int64_t> bounds,
                    int64_t slot_width_ms, int slot_count);
  WindowedHistogram(const WindowedHistogram&) = delete;
  WindowedHistogram& operator=(const WindowedHistogram&) = delete;

  void Observe(int64_t value);
  void ObserveAtMs(int64_t value, int64_t now_ms);

  /// Aggregate over the slots still inside the window ending at `now`.
  HistogramData Aggregate() const;
  HistogramData AggregateAtMs(int64_t now_ms) const;

  const std::string& name() const { return name_; }
  int64_t window_ms() const { return slot_width_ms_ * slot_count_; }

  /// Clears every slot. Test-only; callers must be quiescent.
  void Reset();

 private:
  struct Slot {
    int64_t epoch = -1;  // -1 = never written
    std::vector<int64_t> bucket_counts;
    int64_t count = 0;
    int64_t sum = 0;
    int64_t min = 0;
    int64_t max = 0;
  };

  void ResetSlotLocked(Slot& slot, int64_t epoch);

  std::string name_;
  std::vector<int64_t> bounds_;
  int64_t slot_width_ms_;
  int slot_count_;
  mutable std::mutex mutex_;
  std::vector<Slot> slots_;
};

/// Returns the process-global metric with `name`, creating it on first
/// use. References stay valid for the process lifetime; call sites cache
/// them in a function-local static:
///
///   static obs::Counter& scanned = obs::GetCounter("bm25.postings_scanned");
///   scanned.Increment(n);
Counter& GetCounter(const std::string& name);
Gauge& GetGauge(const std::string& name);
/// `bounds` is consulted only on first registration of `name`.
Histogram& GetHistogram(const std::string& name, std::vector<int64_t> bounds);
/// `bounds`/geometry are consulted only on first registration. The
/// defaults give a ~60s window (12 full 5s slots + the forming one).
WindowedHistogram& GetWindowedHistogram(const std::string& name,
                                        std::vector<int64_t> bounds,
                                        int64_t slot_width_ms = 5000,
                                        int slot_count = 13);

/// Deterministic bucket-resolution percentile (`percentile` in [0, 100]).
/// Integer math only: the rank is ceil(count * percentile / 100) and the
/// result is the inclusive upper bound of the bucket holding that rank
/// (clamped to the observed max; the overflow bucket reports the max), so
/// identical runs export identical bytes regardless of thread scheduling.
/// Returns 0 when the histogram is empty.
int64_t HistogramPercentile(const HistogramData& data, int percentile);

/// Geometric-ish bucket bounds for request latencies, in microseconds.
const std::vector<int64_t>& LatencyBoundsUs();

/// Point-in-time copy of every registered metric, key-sorted. Windowed
/// histograms are folded into `histograms` under their registered name
/// (call sites suffix them, e.g. "serve.latency_us.1m"), so every
/// exporter renders them without special cases.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramData> histograms;
};

MetricsSnapshot SnapshotMetrics();

/// Zeroes every registered metric (registrations survive). Test-only:
/// callers must ensure no concurrent updates are in flight.
void ResetMetricsForTest();

}  // namespace obs
}  // namespace ultrawiki

#endif  // ULTRAWIKI_OBS_METRICS_H_
