#include "serve/router.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/env.h"
#include "common/logging.h"
#include "expand/rerank.h"
#include "math/topk.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ultrawiki {
namespace serve {
namespace {

struct RouterMetrics {
  obs::Counter& expands = obs::GetCounter("router.expands");
  obs::Counter& rejected = obs::GetCounter("router.rejected");
  obs::Counter& scatter_expands = obs::GetCounter("router.scatter_expands");
  obs::Counter& proxied = obs::GetCounter("router.proxied");
  obs::Counter& failovers = obs::GetCounter("router.failovers");
  obs::Counter& lookups = obs::GetCounter("router.lookups");
  obs::Counter& lookup_cache_hits =
      obs::GetCounter("router.lookup_cache_hits");
  obs::Counter& health_polls = obs::GetCounter("router.health_polls");
  obs::Counter& health_errors = obs::GetCounter("router.health_errors");
  obs::Gauge& replicas_reachable =
      obs::GetGauge("router.replicas_reachable");
};

RouterMetrics& Metrics() {
  static RouterMetrics* metrics = new RouterMetrics();
  return *metrics;
}

/// Minimal HTTP/1.0 GET for the admin plane: numeric-host connect with
/// send/receive timeouts (a hung replica must not wedge the poller), one
/// request, read to EOF. Returns the full response (headers + body).
StatusOr<std::string> HttpGet(const std::string& host, int port,
                              const std::string& path, int timeout_ms) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                               &hints, &results);
  if (rc != 0) {
    return Status::Unavailable(std::string("getaddrinfo: ") +
                               ::gai_strerror(rc));
  }
  int fd = -1;
  Status last = Status::Unavailable("no addresses for " + host);
  timeval timeout{};
  timeout.tv_sec = timeout_ms / 1000;
  timeout.tv_usec = (timeout_ms % 1000) * 1000;
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::Internal(std::string("socket: ") + std::strerror(errno));
      continue;
    }
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    last = Status::Unavailable(std::string("connect: ") +
                               std::strerror(errno));
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(results);
  if (fd < 0) return last;
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (::send(fd, request.data(), request.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(request.size())) {
    const Status status =
        Status::Unavailable(std::string("send: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  std::string response;
  char buffer[4096];
  while (true) {
    const ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
    if (got < 0) {
      const Status status =
          Status::Unavailable(std::string("recv: ") + std::strerror(errno));
      ::close(fd);
      return status;
    }
    if (got == 0) break;
    response.append(buffer, static_cast<size_t>(got));
  }
  ::close(fd);
  return response;
}

/// Value of `"key":<integer>` in a flat JSON blob; `fallback` if absent.
int64_t JsonIntField(const std::string& json, const std::string& key,
                     int64_t fallback) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return fallback;
  return std::strtoll(json.c_str() + at + needle.size(), nullptr, 10);
}

}  // namespace

StatusOr<RouterConfig> RouterConfig::ParseTopology(
    const std::string& topology) {
  RouterConfig config;
  size_t start = 0;
  while (start <= topology.size()) {
    size_t end = topology.find(',', start);
    if (end == std::string::npos) end = topology.size();
    const std::string entry = topology.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    // "shard@host:port" or "shard@host:port/admin_port".
    const size_t at = entry.find('@');
    const size_t colon = entry.rfind(':');
    if (at == std::string::npos || colon == std::string::npos ||
        colon < at) {
      return Status::InvalidArgument("bad replica spec: " + entry);
    }
    ReplicaEndpoint endpoint;
    const std::optional<int> shard = ParseIntStrict(entry.substr(0, at));
    if (!shard.has_value() || *shard < 0) {
      return Status::InvalidArgument("bad shard index in: " + entry);
    }
    endpoint.shard = *shard;
    endpoint.host = entry.substr(at + 1, colon - at - 1);
    if (endpoint.host.empty()) {
      return Status::InvalidArgument("empty host in: " + entry);
    }
    std::string port_part = entry.substr(colon + 1);
    const size_t slash = port_part.find('/');
    if (slash != std::string::npos) {
      const std::optional<int> admin =
          ParseIntStrict(port_part.substr(slash + 1));
      if (!admin.has_value() || *admin <= 0) {
        return Status::InvalidArgument("bad admin port in: " + entry);
      }
      endpoint.admin_port = *admin;
      port_part.resize(slash);
    }
    const std::optional<int> port = ParseIntStrict(port_part);
    if (!port.has_value() || *port <= 0) {
      return Status::InvalidArgument("bad port in: " + entry);
    }
    endpoint.port = *port;
    config.replicas.push_back(std::move(endpoint));
  }
  if (config.replicas.empty()) {
    return Status::InvalidArgument("empty topology");
  }
  for (const ReplicaEndpoint& endpoint : config.replicas) {
    config.shard_count = std::max(config.shard_count, endpoint.shard + 1);
  }
  return config;
}

ClusterRouter::ClusterRouter(RouterConfig config)
    : config_(std::move(config)) {
  Metrics();
}

ClusterRouter::~ClusterRouter() { Drain(); }

Status ClusterRouter::Start() {
  UW_CHECK(!started_) << "Start called twice";
  started_ = true;
  if (config_.replicas.empty()) {
    return Status::InvalidArgument("router has no replicas");
  }
  int max_shard = 0;
  for (const ReplicaEndpoint& endpoint : config_.replicas) {
    if (endpoint.shard < 0) {
      return Status::InvalidArgument("negative shard index");
    }
    max_shard = std::max(max_shard, endpoint.shard);
  }
  if (config_.shard_count == 0) config_.shard_count = max_shard + 1;
  if (max_shard >= config_.shard_count) {
    return Status::InvalidArgument("replica shard index exceeds shard_count");
  }
  shard_replicas_.assign(static_cast<size_t>(config_.shard_count), {});
  for (size_t i = 0; i < config_.replicas.size(); ++i) {
    auto replica = std::make_unique<Replica>();
    replica->endpoint = config_.replicas[i];
    shard_replicas_[static_cast<size_t>(replica->endpoint.shard)].push_back(
        i);
    replicas_.push_back(std::move(replica));
  }
  for (int shard = 0; shard < config_.shard_count; ++shard) {
    if (shard_replicas_[static_cast<size_t>(shard)].empty()) {
      return Status::InvalidArgument("shard " + std::to_string(shard) +
                                     " has no replicas");
    }
  }
  PollHealthNow();
  if (config_.health_poll_ms > 0) {
    health_thread_ = std::thread([this] { HealthLoop(); });
  }
  return Status::Ok();
}

ClusterRouter::ReplicaState ClusterRouter::replica_state(
    size_t replica_index) const {
  UW_CHECK_LT(replica_index, replicas_.size());
  const Replica& replica = *replicas_[replica_index];
  ReplicaState state;
  state.reachable = replica.reachable.load(std::memory_order_relaxed);
  state.draining = replica.draining.load(std::memory_order_relaxed);
  state.load = replica.load.load(std::memory_order_relaxed);
  state.generation = replica.generation.load(std::memory_order_relaxed);
  return state;
}

void ClusterRouter::PollReplica(Replica& replica) {
  if (replica.endpoint.admin_port <= 0) return;  // transport signals only
  Metrics().health_polls.Increment();
  StatusOr<std::string> response =
      HttpGet(replica.endpoint.host, replica.endpoint.admin_port, "/statusz",
              config_.health_timeout_ms);
  if (!response.ok()) {
    Metrics().health_errors.Increment();
    replica.reachable.store(false, std::memory_order_relaxed);
    return;
  }
  replica.reachable.store(true, std::memory_order_relaxed);
  replica.draining.store(JsonIntField(*response, "draining", 1) != 0,
                         std::memory_order_relaxed);
  const int64_t queue_depth = JsonIntField(*response, "queue_depth", 0);
  const int64_t inflight = JsonIntField(*response, "inflight", 0);
  replica.load.store(static_cast<int>(queue_depth + inflight),
                     std::memory_order_relaxed);
  replica.generation.store(
      static_cast<uint64_t>(JsonIntField(*response, "generation", 0)),
      std::memory_order_relaxed);
}

void ClusterRouter::PollHealthNow() {
  int reachable = 0;
  for (const std::unique_ptr<Replica>& replica : replicas_) {
    PollReplica(*replica);
    if (replica->reachable.load(std::memory_order_relaxed)) ++reachable;
  }
  Metrics().replicas_reachable.Set(reachable);
}

void ClusterRouter::HealthLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    {
      std::unique_lock<std::mutex> lock(health_mutex_);
      health_cv_.wait_for(
          lock, std::chrono::milliseconds(config_.health_poll_ms),
          [this] { return stopping_.load(std::memory_order_acquire); });
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    PollHealthNow();
  }
}

StatusOr<ServeClient> ClusterRouter::AcquireClient(Replica& replica) {
  {
    std::lock_guard<std::mutex> lock(replica.pool_mutex);
    if (!replica.pool.empty()) {
      ServeClient client = std::move(replica.pool.back());
      replica.pool.pop_back();
      return client;
    }
  }
  return ServeClient::Connect(replica.endpoint.host, replica.endpoint.port);
}

void ClusterRouter::ReleaseClient(Replica& replica, ServeClient client) {
  if (!client.connected() || stopping_.load(std::memory_order_acquire)) {
    return;  // dropped; destructor closes
  }
  std::lock_guard<std::mutex> lock(replica.pool_mutex);
  replica.pool.push_back(std::move(client));
}

std::vector<size_t> ClusterRouter::ReplicaOrder(int shard) const {
  std::vector<size_t> all;
  if (shard < 0) {
    all.resize(replicas_.size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  } else {
    UW_CHECK_LT(static_cast<size_t>(shard), shard_replicas_.size());
    all = shard_replicas_[static_cast<size_t>(shard)];
  }
  // Healthy (reachable, not draining) replicas by ascending load — the
  // backpressure signal scraped from /statusz — with config order as the
  // tie-break; then the unhealthy rest in config order as last-resort
  // probes (the scrape may be stale; a "dead" replica that answers is
  // better than an error).
  std::vector<size_t> healthy;
  std::vector<size_t> rest;
  for (const size_t index : all) {
    const Replica& replica = *replicas_[index];
    if (replica.reachable.load(std::memory_order_relaxed) &&
        !replica.draining.load(std::memory_order_relaxed)) {
      healthy.push_back(index);
    } else {
      rest.push_back(index);
    }
  }
  std::stable_sort(healthy.begin(), healthy.end(),
                   [this](size_t a, size_t b) {
                     return replicas_[a]->load.load(
                                std::memory_order_relaxed) <
                            replicas_[b]->load.load(
                                std::memory_order_relaxed);
                   });
  healthy.insert(healthy.end(), rest.begin(), rest.end());
  return healthy;
}

bool ClusterRouter::Retryable(const Status& status) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kInternal:
    case StatusCode::kFailedPrecondition:
      return true;
    default:
      return false;
  }
}

template <typename Result>
StatusOr<Result> ClusterRouter::CallWithFailover(
    int shard, const std::function<StatusOr<Result>(ServeClient&)>& call) {
  Status last = Status::Unavailable(
      shard < 0 ? std::string("no replicas configured")
                : "no replicas configured for shard " +
                      std::to_string(shard));
  bool first = true;
  for (const size_t index : ReplicaOrder(shard)) {
    Replica& replica = *replicas_[index];
    if (!first) Metrics().failovers.Increment();
    first = false;
    StatusOr<ServeClient> client = AcquireClient(replica);
    if (!client.ok()) {
      replica.reachable.store(false, std::memory_order_relaxed);
      last = client.status();
      continue;
    }
    StatusOr<Result> result = call(*client);
    if (result.ok()) {
      replica.reachable.store(true, std::memory_order_relaxed);
      ReleaseClient(replica, std::move(*client));
      return result;
    }
    const Status& status = result.status();
    if (!Retryable(status)) {
      // A well-formed application error (bad index, bad argument):
      // deterministic across replicas, and the connection is intact.
      ReleaseClient(replica, std::move(*client));
      return status;
    }
    // kUnavailable with a well-formed response means the replica is up
    // but refusing work (draining / no generation yet): keep the
    // connection, mark it draining so the health order demotes it.
    // Anything else is a transport fault: drop the connection and mark
    // the replica unreachable until a scrape or a success revives it.
    if (status.code() == StatusCode::kUnavailable &&
        (status.message() == "service draining" ||
         status.message() == "no generation installed")) {
      replica.draining.store(true, std::memory_order_relaxed);
      ReleaseClient(replica, std::move(*client));
    } else {
      replica.reachable.store(false, std::memory_order_relaxed);
    }
    last = status;
  }
  return last;
}

StatusOr<std::vector<ShardScoredEntity>> ClusterRouter::RetrieveFromShard(
    int shard, const Query& query, size_t size) {
  return CallWithFailover<std::vector<ShardScoredEntity>>(
      shard, [&](ServeClient& client) {
        return client.ScatterRetrieve(query, static_cast<uint64_t>(size));
      });
}

StatusOr<ShardScores> ClusterRouter::ScoreOnShard(
    int shard, const Query& query, const std::vector<EntityId>& ids) {
  return CallWithFailover<ShardScores>(shard, [&](ServeClient& client) {
    return client.ScatterScore(query, ids);
  });
}

StatusOr<Query> ClusterRouter::QueryByIndex(uint32_t index) {
  Metrics().lookups.Increment();
  {
    std::lock_guard<std::mutex> lock(lookup_mutex_);
    auto it = lookup_cache_.find(index);
    if (it != lookup_cache_.end()) {
      Metrics().lookup_cache_hits.Increment();
      return it->second;
    }
  }
  StatusOr<Query> query = CallWithFailover<Query>(
      -1, [&](ServeClient& client) { return client.QueryLookup(index); });
  if (query.ok()) {
    std::lock_guard<std::mutex> lock(lookup_mutex_);
    lookup_cache_.emplace(index, *query);
  }
  return query;
}

ExpandResult ClusterRouter::Expand(ExpandRequest request) {
  // Mirror ExpansionService::Submit's validation so a router front-end
  // rejects exactly what a single-process server rejects.
  const auto& known = KnownMethods();
  if (std::find(known.begin(), known.end(), request.method) == known.end()) {
    Metrics().rejected.Increment();
    return ExpandResult{
        Status::InvalidArgument("unknown method: " + request.method), {}};
  }
  if (request.k <= 0) {
    Metrics().rejected.Increment();
    return ExpandResult{Status::InvalidArgument("k must be positive"), {}};
  }
  Metrics().expands.Increment();
  if (request.method == "retexpan") return ScatterExpand(request);
  return ProxyExpand(request);
}

ExpandResult ClusterRouter::ScatterExpand(const ExpandRequest& request) {
  Metrics().scatter_expands.Increment();
  UW_SPAN("router.scatter_expand");
  const size_t k = static_cast<size_t>(request.k);
  const size_t initial_size = std::max<size_t>(
      k, static_cast<size_t>(config_.retexpan.initial_list_size));
  const int shards = config_.shard_count;

  // Phase 1 — scatter recall: every shard returns its slice's top
  // `initial_size` by positive-seed centroid score with global candidate
  // positions. One thread per shard; each worker has its own failover
  // chain over that shard's replicas.
  std::vector<std::vector<ShardScoredEntity>> per_shard(
      static_cast<size_t>(shards));
  std::vector<Status> statuses(static_cast<size_t>(shards), Status::Ok());
  {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(shards));
    for (int shard = 0; shard < shards; ++shard) {
      workers.emplace_back([this, shard, &request, initial_size, &per_shard,
                            &statuses] {
        StatusOr<std::vector<ShardScoredEntity>> result =
            RetrieveFromShard(shard, request.query, initial_size);
        if (result.ok()) {
          per_shard[static_cast<size_t>(shard)] = std::move(*result);
        } else {
          statuses[static_cast<size_t>(shard)] = result.status();
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  }
  for (const Status& status : statuses) {
    // Losing any shard loses part of the candidate space — a partial
    // merge would silently return a different (wrong) ranking, so the
    // request fails instead.
    if (!status.ok()) return ExpandResult{status, {}};
  }

  // Gather — merge the per-shard streams. TopKStream's kept set and
  // order depend only on the pushed (score, position) multiset, and the
  // global top-initial_size is a subset of the union of per-shard tops,
  // so this reproduces the unsharded recall list bit for bit.
  TopKStream stream(initial_size);
  std::unordered_map<uint64_t, EntityId> id_at_position;
  for (const std::vector<ShardScoredEntity>& entities : per_shard) {
    for (const ShardScoredEntity& entity : entities) {
      stream.Push(entity.score, static_cast<size_t>(entity.position));
      id_at_position.emplace(entity.position, entity.id);
    }
  }
  const std::vector<ScoredIndex> scored = stream.TakeSortedDescending();
  std::vector<EntityId> list;
  list.reserve(scored.size());
  for (const ScoredIndex& s : scored) {
    list.push_back(id_at_position[static_cast<uint64_t>(s.index)]);
  }

  // Phase 2 — negative-seed segmented rerank (RetExpan::Expand's exact
  // arithmetic). Each merged entity is scored by the shard that owns its
  // global position; per-position stitching restores list order before
  // the margin computation.
  if (config_.retexpan.use_negative_rerank && !request.query.neg_seeds.empty() &&
      !list.empty()) {
    std::vector<std::vector<EntityId>> shard_ids(
        static_cast<size_t>(shards));
    std::vector<std::vector<size_t>> shard_slots(
        static_cast<size_t>(shards));
    for (size_t i = 0; i < list.size(); ++i) {
      const size_t owner = scored[i].index % static_cast<size_t>(shards);
      shard_ids[owner].push_back(list[i]);
      shard_slots[owner].push_back(i);
    }
    std::vector<float> pos(list.size(), 0.0f);
    std::vector<float> neg(list.size(), 0.0f);
    std::vector<Status> score_statuses(static_cast<size_t>(shards),
                                       Status::Ok());
    {
      std::vector<std::thread> workers;
      for (int shard = 0; shard < shards; ++shard) {
        const size_t s = static_cast<size_t>(shard);
        if (shard_ids[s].empty()) continue;
        workers.emplace_back([this, shard, s, &request, &shard_ids,
                              &shard_slots, &pos, &neg, &score_statuses] {
          StatusOr<ShardScores> scores =
              ScoreOnShard(shard, request.query, shard_ids[s]);
          if (!scores.ok()) {
            score_statuses[s] = scores.status();
            return;
          }
          for (size_t j = 0; j < shard_slots[s].size(); ++j) {
            pos[shard_slots[s][j]] = scores->pos[j];
            neg[shard_slots[s][j]] = scores->neg[j];
          }
        });
      }
      for (std::thread& worker : workers) worker.join();
    }
    for (const Status& status : score_statuses) {
      if (!status.ok()) return ExpandResult{status, {}};
    }
    std::vector<double> margins(list.size(), 0.0);
    for (size_t i = 0; i < list.size(); ++i) {
      margins[i] = std::max(
          0.0, static_cast<double>(neg[i]) - static_cast<double>(pos[i]));
    }
    list = SegmentedRerankByPosition(list, margins,
                                     config_.retexpan.rerank_segment_length);
  }
  if (list.size() > k) list.resize(k);
  return ExpandResult{Status::Ok(), std::move(list)};
}

ExpandResult ClusterRouter::ProxyExpand(const ExpandRequest& request) {
  Metrics().proxied.Increment();
  UW_SPAN("router.proxy_expand");
  // Non-retexpan methods need substrates (LM, distributions, graph) that
  // are not sharded — every shard process holds the full pipeline, so the
  // whole request goes to the globally least-loaded replica. A shed
  // (kUnavailable) answer fails over to the next replica, which is the
  // load-balancing behavior a fleet wants from a front door.
  StatusOr<std::vector<EntityId>> ranking =
      CallWithFailover<std::vector<EntityId>>(
          -1, [&](ServeClient& client) {
            return client.ExpandQuery(
                request.method, request.query, request.k,
                request.timeout_ms > 0 ? request.timeout_ms : 0);
          });
  if (!ranking.ok()) return ExpandResult{ranking.status(), {}};
  return ExpandResult{Status::Ok(), std::move(*ranking)};
}

StatusOr<std::vector<ShardScoredEntity>> ClusterRouter::ScatterRetrieve(
    const Query& query, size_t size) {
  (void)query;
  (void)size;
  return Status::Unimplemented("router is not a shard");
}

StatusOr<ShardScores> ClusterRouter::ScatterScore(
    const Query& query, const std::vector<EntityId>& ids) {
  (void)query;
  (void)ids;
  return Status::Unimplemented("router is not a shard");
}

void ClusterRouter::Drain() {
  std::call_once(drain_once_, [this] {
    stopping_.store(true, std::memory_order_release);
    health_cv_.notify_all();
    if (health_thread_.joinable()) health_thread_.join();
    for (const std::unique_ptr<Replica>& replica : replicas_) {
      std::lock_guard<std::mutex> lock(replica->pool_mutex);
      replica->pool.clear();  // destructors close the sockets
    }
  });
}

}  // namespace serve
}  // namespace ultrawiki
