#include "serve/protocol.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

namespace ultrawiki {
namespace serve {
namespace {

void AppendU32(uint32_t value, std::string& out) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void AppendU64(uint64_t value, std::string& out) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

uint32_t ParseU32(const char* bytes) {
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(static_cast<unsigned char>(bytes[i]))
             << (8 * i);
  }
  return value;
}

uint64_t ParseU64(const char* bytes) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(static_cast<unsigned char>(bytes[i]))
             << (8 * i);
  }
  return value;
}

/// Frames `payload`: header (v1 prefix, plus the trace-context extension
/// when emitting v2), payload bytes, CRC32 over both.
std::string FramePayload(FrameKind kind, std::string_view payload,
                         const FrameOptions& options) {
  std::string out;
  out.reserve(kFrameHeaderBytesV2 + payload.size() + 4);
  AppendU32(kFrameMagic, out);
  AppendU32(options.version, out);
  AppendU32(static_cast<uint32_t>(kind), out);
  AppendU64(payload.size(), out);
  if (options.version >= 2) {
    AppendU64(options.trace_id, out);
    AppendU32(options.flags, out);
  }
  out.append(payload);
  AppendU32(Crc32(out), out);
  return out;
}

bool KnownFrameKind(uint32_t kind) {
  return kind >= static_cast<uint32_t>(FrameKind::kExpandRequest) &&
         kind <= static_cast<uint32_t>(FrameKind::kQueryLookupResponse);
}

void PutQuery(SnapshotWriter& writer, const Query& query) {
  writer.PutI32(query.ultra_class);
  writer.PutI32Vec(query.pos_seeds);
  writer.PutI32Vec(query.neg_seeds);
}

void ReadQuery(SnapshotReader& reader, Query* query) {
  reader.ReadI32(&query->ultra_class);
  reader.ReadI32Vec(&query->pos_seeds);
  reader.ReadI32Vec(&query->neg_seeds);
}

void CheckStatusCode(SnapshotReader& reader, uint32_t code) {
  if (reader.ok() &&
      code > static_cast<uint32_t>(StatusCode::kUnavailable)) {
    reader.Corrupt("status code out of range");
  }
}

}  // namespace

std::string EncodeRequestFrame(const WireRequest& request,
                               const FrameOptions& options) {
  SnapshotWriter writer;
  writer.PutU64(request.request_id);
  writer.PutString(request.method);
  writer.PutU32(request.k);
  writer.PutU32(request.timeout_ms);
  writer.PutU32(request.by_index ? 1 : 0);
  writer.PutU32(request.query_index);
  writer.PutI32(request.query.ultra_class);
  writer.PutI32Vec(request.query.pos_seeds);
  writer.PutI32Vec(request.query.neg_seeds);
  return FramePayload(FrameKind::kExpandRequest, writer.payload(), options);
}

std::string EncodeResponseFrame(const WireResponse& response,
                                const FrameOptions& options) {
  SnapshotWriter writer;
  writer.PutU64(response.request_id);
  writer.PutU32(response.code);
  writer.PutString(response.message);
  writer.PutI32Vec(response.ranking);
  return FramePayload(FrameKind::kExpandResponse, writer.payload(), options);
}

std::string EncodeControlFrame(FrameKind kind, const FrameOptions& options) {
  return FramePayload(kind, {}, options);
}

std::string EncodeShardRetrieveRequestFrame(
    const WireShardRetrieveRequest& request, const FrameOptions& options) {
  SnapshotWriter writer;
  writer.PutU64(request.request_id);
  writer.PutU64(request.size);
  PutQuery(writer, request.query);
  return FramePayload(FrameKind::kShardRetrieveRequest, writer.payload(),
                      options);
}

std::string EncodeShardRetrieveResponseFrame(
    const WireShardRetrieveResponse& response, const FrameOptions& options) {
  SnapshotWriter writer;
  writer.PutU64(response.request_id);
  writer.PutU32(response.code);
  writer.PutString(response.message);
  writer.PutU64(response.entities.size());
  for (const ShardScoredEntity& entity : response.entities) {
    writer.PutF32(entity.score);
    writer.PutU64(entity.position);
    writer.PutI32(entity.id);
  }
  return FramePayload(FrameKind::kShardRetrieveResponse, writer.payload(),
                      options);
}

std::string EncodeShardScoreRequestFrame(const WireShardScoreRequest& request,
                                         const FrameOptions& options) {
  SnapshotWriter writer;
  writer.PutU64(request.request_id);
  writer.PutI32Vec(request.ids);
  PutQuery(writer, request.query);
  return FramePayload(FrameKind::kShardScoreRequest, writer.payload(),
                      options);
}

std::string EncodeShardScoreResponseFrame(
    const WireShardScoreResponse& response, const FrameOptions& options) {
  SnapshotWriter writer;
  writer.PutU64(response.request_id);
  writer.PutU32(response.code);
  writer.PutString(response.message);
  writer.PutFloatVec(response.scores.pos);
  writer.PutFloatVec(response.scores.neg);
  return FramePayload(FrameKind::kShardScoreResponse, writer.payload(),
                      options);
}

std::string EncodeQueryLookupRequestFrame(
    const WireQueryLookupRequest& request, const FrameOptions& options) {
  SnapshotWriter writer;
  writer.PutU64(request.request_id);
  writer.PutU32(request.query_index);
  return FramePayload(FrameKind::kQueryLookupRequest, writer.payload(),
                      options);
}

std::string EncodeQueryLookupResponseFrame(
    const WireQueryLookupResponse& response, const FrameOptions& options) {
  SnapshotWriter writer;
  writer.PutU64(response.request_id);
  writer.PutU32(response.code);
  writer.PutString(response.message);
  PutQuery(writer, response.query);
  return FramePayload(FrameKind::kQueryLookupResponse, writer.payload(),
                      options);
}

Status DecodeRequestPayload(std::string_view payload, WireRequest* request) {
  SnapshotReader reader(payload);
  uint32_t by_index = 0;
  reader.ReadU64(&request->request_id);
  reader.ReadString(&request->method);
  reader.ReadU32(&request->k);
  reader.ReadU32(&request->timeout_ms);
  reader.ReadU32(&by_index);
  reader.ReadU32(&request->query_index);
  reader.ReadI32(&request->query.ultra_class);
  reader.ReadI32Vec(&request->query.pos_seeds);
  reader.ReadI32Vec(&request->query.neg_seeds);
  if (reader.ok() && by_index > 1) {
    reader.Corrupt("by_index flag out of range");
  }
  request->by_index = by_index == 1;
  return reader.Finish();
}

Status DecodeResponsePayload(std::string_view payload,
                             WireResponse* response) {
  SnapshotReader reader(payload);
  reader.ReadU64(&response->request_id);
  reader.ReadU32(&response->code);
  reader.ReadString(&response->message);
  reader.ReadI32Vec(&response->ranking);
  if (reader.ok() &&
      response->code > static_cast<uint32_t>(StatusCode::kUnavailable)) {
    reader.Corrupt("status code out of range");
  }
  return reader.Finish();
}

Status DecodeShardRetrieveRequestPayload(std::string_view payload,
                                         WireShardRetrieveRequest* request) {
  SnapshotReader reader(payload);
  reader.ReadU64(&request->request_id);
  reader.ReadU64(&request->size);
  ReadQuery(reader, &request->query);
  if (reader.ok() && request->size > kMaxFramePayload) {
    reader.Corrupt("retrieve size implausibly large");
  }
  return reader.Finish();
}

Status DecodeShardRetrieveResponsePayload(
    std::string_view payload, WireShardRetrieveResponse* response) {
  SnapshotReader reader(payload);
  reader.ReadU64(&response->request_id);
  reader.ReadU32(&response->code);
  reader.ReadString(&response->message);
  uint64_t count = 0;
  reader.ReadU64(&count);
  // Each entity is 16 encoded bytes; cap the count against the remaining
  // payload before any allocation, same discipline as ReadI32Vec.
  if (reader.ok() && count * 16 > reader.remaining()) {
    reader.Corrupt("entity count exceeds payload");
  }
  response->entities.clear();
  if (reader.ok()) {
    response->entities.resize(static_cast<size_t>(count));
    for (ShardScoredEntity& entity : response->entities) {
      reader.ReadF32(&entity.score);
      reader.ReadU64(&entity.position);
      reader.ReadI32(&entity.id);
    }
  }
  CheckStatusCode(reader, response->code);
  return reader.Finish();
}

Status DecodeShardScoreRequestPayload(std::string_view payload,
                                      WireShardScoreRequest* request) {
  SnapshotReader reader(payload);
  reader.ReadU64(&request->request_id);
  reader.ReadI32Vec(&request->ids);
  ReadQuery(reader, &request->query);
  return reader.Finish();
}

Status DecodeShardScoreResponsePayload(std::string_view payload,
                                       WireShardScoreResponse* response) {
  SnapshotReader reader(payload);
  reader.ReadU64(&response->request_id);
  reader.ReadU32(&response->code);
  reader.ReadString(&response->message);
  reader.ReadFloatVec(&response->scores.pos);
  reader.ReadFloatVec(&response->scores.neg);
  if (reader.ok() &&
      response->scores.pos.size() != response->scores.neg.size()) {
    reader.Corrupt("pos/neg score lengths differ");
  }
  CheckStatusCode(reader, response->code);
  return reader.Finish();
}

Status DecodeQueryLookupRequestPayload(std::string_view payload,
                                       WireQueryLookupRequest* request) {
  SnapshotReader reader(payload);
  reader.ReadU64(&request->request_id);
  reader.ReadU32(&request->query_index);
  return reader.Finish();
}

Status DecodeQueryLookupResponsePayload(std::string_view payload,
                                        WireQueryLookupResponse* response) {
  SnapshotReader reader(payload);
  reader.ReadU64(&response->request_id);
  reader.ReadU32(&response->code);
  reader.ReadString(&response->message);
  ReadQuery(reader, &response->query);
  CheckStatusCode(reader, response->code);
  return reader.Finish();
}

Status ReadExact(int fd, void* buffer, size_t bytes) {
  char* cursor = static_cast<char*>(buffer);
  size_t remaining = bytes;
  while (remaining > 0) {
    const ssize_t got = ::recv(fd, cursor, remaining, 0);
    if (got == 0) {
      if (remaining == bytes) return Status::Unavailable("eof");
      return Status::Internal("connection closed mid-frame");
    }
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("recv: ") + std::strerror(errno));
    }
    cursor += got;
    remaining -= static_cast<size_t>(got);
  }
  return Status::Ok();
}

Status WriteAll(int fd, const void* buffer, size_t bytes) {
  const char* cursor = static_cast<const char*>(buffer);
  size_t remaining = bytes;
  while (remaining > 0) {
    const ssize_t sent = ::send(fd, cursor, remaining, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("send: ") + std::strerror(errno));
    }
    cursor += sent;
    remaining -= static_cast<size_t>(sent);
  }
  return Status::Ok();
}

StatusOr<Frame> ReadFrame(int fd) {
  // Read the version-independent 20-byte prefix first; only then do we
  // know whether a trace-context extension follows.
  char header[kFrameHeaderBytesV2];
  Status status = ReadExact(fd, header, kFrameHeaderBytes);
  if (!status.ok()) return status;
  if (ParseU32(header) != kFrameMagic) {
    return Status::Internal("bad frame magic");
  }
  const uint32_t version = ParseU32(header + 4);
  if (version != kFrameVersionV1 && version != kFrameVersion) {
    return Status::Internal("unsupported frame version " +
                            std::to_string(version));
  }
  const uint32_t kind = ParseU32(header + 8);
  if (!KnownFrameKind(kind)) {
    return Status::Internal("unknown frame kind " + std::to_string(kind));
  }
  const uint64_t payload_len = ParseU64(header + 12);
  if (payload_len > kMaxFramePayload) {
    return Status::Internal("frame payload too large (" +
                            std::to_string(payload_len) + " bytes)");
  }
  size_t header_bytes = kFrameHeaderBytes;
  Frame frame;
  frame.kind = static_cast<FrameKind>(kind);
  frame.version = version;
  if (version >= 2) {
    status = ReadExact(fd, header + kFrameHeaderBytes,
                       kFrameHeaderBytesV2 - kFrameHeaderBytes);
    if (!status.ok()) {
      if (status.code() == StatusCode::kUnavailable) {
        return Status::Internal("connection closed mid-frame");
      }
      return status;
    }
    header_bytes = kFrameHeaderBytesV2;
    frame.trace_id = ParseU64(header + 20);
    frame.flags = ParseU32(header + 28);
  }
  frame.payload.resize(static_cast<size_t>(payload_len));
  if (payload_len > 0) {
    status = ReadExact(fd, frame.payload.data(), frame.payload.size());
    if (!status.ok()) {
      if (status.code() == StatusCode::kUnavailable) {
        return Status::Internal("connection closed mid-frame");
      }
      return status;
    }
  }
  char footer[4];
  status = ReadExact(fd, footer, sizeof(footer));
  if (!status.ok()) {
    if (status.code() == StatusCode::kUnavailable) {
      return Status::Internal("connection closed before checksum");
    }
    return status;
  }
  uint32_t crc = Crc32(std::string_view(header, header_bytes));
  crc = Crc32(frame.payload, crc);
  if (crc != ParseU32(footer)) {
    return Status::Internal("frame checksum mismatch");
  }
  return frame;
}

}  // namespace serve
}  // namespace ultrawiki
