#include "serve/admin.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "ann/ivf_index.h"
#include "common/logging.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "serve/protocol.h"

namespace ultrawiki {
namespace serve {
namespace {

/// Minimal request-line parse: "GET <path> HTTP/1.x". Query strings are
/// stripped — routes carry no parameters. Empty on anything malformed.
std::string ParseRequestPath(const std::string& request) {
  const size_t line_end = request.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  if (line.compare(0, 4, "GET ") != 0) return "";
  const size_t path_end = line.find(' ', 4);
  if (path_end == std::string::npos) return "";
  std::string path = line.substr(4, path_end - 4);
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);
  return path;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

}  // namespace

AdminServer::AdminServer(ExpansionService& service) : service_(service) {}

AdminServer::~AdminServer() { Shutdown(); }

Status AdminServer::Start(int port) {
  UW_CHECK_EQ(listen_fd_, -1) << "Start called twice";
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
               sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status =
        Status::Internal(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) < 0) {
    const Status status =
        Status::Internal(std::string("getsockname: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = static_cast<int>(ntohs(addr.sin_port));
  if (::listen(listen_fd_, /*backlog=*/16) < 0) {
    const Status status =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void AdminServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stopping_.load(std::memory_order_acquire)) return;
      UW_LOG(Warning) << "admin accept: " << std::strerror(errno);
      return;
    }
    std::lock_guard<std::mutex> lock(conn_mutex_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    conn_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

AdminServer::HttpReply AdminServer::Handle(const std::string& path) const {
  HttpReply reply;
  if (path == "/metrics") {
    reply.body = obs::ExportPrometheus(obs::SnapshotMetrics());
    return reply;
  }
  if (path == "/healthz") {
    if (service_.draining()) {
      reply.status = 503;
      reply.body = "draining\n";
    } else {
      reply.body = "ok\n";
    }
    return reply;
  }
  if (path == "/statusz") {
    const obs::SlowQueryLog& slow_log = obs::SlowQueryLog::Global();
    reply.content_type = "application/json";
    reply.body = "{\"draining\":";
    reply.body += service_.draining() ? "1" : "0";
    reply.body += ",\"queue_depth\":";
    reply.body += std::to_string(service_.queue_depth());
    reply.body += ",\"inflight\":";
    reply.body += std::to_string(service_.inflight());
    reply.body += ",\"max_queue\":";
    reply.body += std::to_string(service_.config().max_queue);
    reply.body += ",\"max_batch\":";
    reply.body += std::to_string(service_.config().max_batch);
    reply.body += ",\"trace_sample\":";
    reply.body += std::to_string(service_.config().trace_sample);
    reply.body += ",\"slow_query_ms\":";
    reply.body += std::to_string(service_.config().slow_query_ms);
    reply.body += ",\"slow_log_recorded\":";
    reply.body += std::to_string(slow_log.total_recorded());
    reply.body += ",\"slow_log_capacity\":";
    reply.body += std::to_string(slow_log.capacity());
    // ANN first-stage health: whether the knob is on for this process,
    // index shape, and the query/probe counters that show how much of the
    // store the IVF path is actually touching.
    reply.body += ",\"ann\":{\"enabled\":";
    reply.body += AnnEnabledFromEnv() ? "1" : "0";
    reply.body += ",\"nlist\":";
    reply.body += std::to_string(obs::GetGauge("ann.nlist").Value());
    reply.body += ",\"rows\":";
    reply.body += std::to_string(obs::GetGauge("ann.rows").Value());
    reply.body += ",\"queries\":";
    reply.body += std::to_string(obs::GetCounter("ann.queries").Value());
    reply.body += ",\"lists_probed\":";
    reply.body += std::to_string(obs::GetCounter("ann.lists_probed").Value());
    reply.body += ",\"candidates_returned\":";
    reply.body +=
        std::to_string(obs::GetCounter("ann.candidates_returned").Value());
    reply.body += ",\"fallback_exact\":";
    reply.body +=
        std::to_string(obs::GetCounter("ann.fallback_exact").Value());
    reply.body += "}}\n";
    return reply;
  }
  if (path == "/slow") {
    reply.content_type = "application/json";
    reply.body =
        obs::ExportChromeTraceJson(obs::SlowQueryLog::Global().Snapshot());
    return reply;
  }
  if (path == "/slowz") {
    reply.content_type = "application/json";
    reply.body =
        obs::ExportRequestTracesJson(obs::SlowQueryLog::Global().Snapshot());
    return reply;
  }
  reply.status = 404;
  reply.body =
      "not found; routes: /metrics /healthz /statusz /slow /slowz\n";
  return reply;
}

void AdminServer::HandleConnection(int fd) {
  // One request per connection (HTTP/1.0 close semantics): read what the
  // client sent — the request line is all we route on — answer, close.
  char buffer[4096];
  const ssize_t got = ::recv(fd, buffer, sizeof(buffer) - 1, 0);
  if (got > 0) {
    buffer[got] = '\0';
    const std::string path = ParseRequestPath(buffer);
    const HttpReply reply =
        path.empty() ? HttpReply{404, "text/plain; charset=utf-8",
                                 "bad request\n"}
                     : Handle(path);
    std::string out = "HTTP/1.0 " + std::to_string(reply.status) + " " +
                      ReasonPhrase(reply.status) + "\r\n";
    out += "Content-Type: " + reply.content_type + "\r\n";
    out += "Content-Length: " + std::to_string(reply.body.size()) + "\r\n";
    out += "Connection: close\r\n\r\n";
    out += reply.body;
    (void)WriteAll(fd, out.data(), out.size());
  }
  ::close(fd);
}

void AdminServer::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    stopping_.store(true, std::memory_order_release);
    if (listen_fd_ >= 0) {
      ::shutdown(listen_fd_, SHUT_RDWR);
      ::close(listen_fd_);
    }
    if (accept_thread_.joinable()) accept_thread_.join();
    std::vector<std::thread> threads;
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      threads.swap(conn_threads_);
    }
    for (std::thread& thread : threads) thread.join();
    listen_fd_ = -1;
  });
}

}  // namespace serve
}  // namespace ultrawiki
