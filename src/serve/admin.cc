#include "serve/admin.h"

#include <sys/socket.h>
#include <unistd.h>

#include "ann/ivf_index.h"
#include "common/logging.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "serve/protocol.h"

namespace ultrawiki {
namespace serve {
namespace {

/// Minimal request-line parse: "GET <path> HTTP/1.x". Query strings are
/// stripped — routes carry no parameters. Empty on anything malformed.
std::string ParseRequestPath(const std::string& request) {
  const size_t line_end = request.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  if (line.compare(0, 4, "GET ") != 0) return "";
  const size_t path_end = line.find(' ', 4);
  if (path_end == std::string::npos) return "";
  std::string path = line.substr(4, path_end - 4);
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);
  return path;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

}  // namespace

AdminServer::AdminServer(ServiceHost& host)
    : host_(host),
      listener_("serve.admin", [this](int fd) { HandleConnection(fd); }) {}

AdminServer::AdminServer(ExpansionService& service)
    : owned_host_(std::make_unique<ServiceHost>()),
      host_(*owned_host_),
      listener_("serve.admin", [this](int fd) { HandleConnection(fd); }) {
  owned_host_->Install(ServiceHost::Borrow(service));
}

AdminServer::~AdminServer() { Shutdown(); }

Status AdminServer::Start(int port) {
  return listener_.Start(port, /*backlog=*/16);
}

AdminServer::HttpReply AdminServer::Handle(const std::string& path) const {
  HttpReply reply;
  if (path == "/metrics") {
    reply.body = obs::ExportPrometheus(obs::SnapshotMetrics());
    return reply;
  }
  // Status routes pin the current generation so a concurrent hot swap
  // cannot yank the service out from under the field reads.
  const std::shared_ptr<ServiceHost::Generation> generation = host_.Current();
  const ExpansionService* service =
      generation != nullptr ? generation->service : nullptr;
  if (path == "/healthz") {
    if (service == nullptr || service->draining()) {
      reply.status = 503;
      reply.body = service == nullptr ? "no generation\n" : "draining\n";
    } else {
      reply.body = "ok\n";
    }
    return reply;
  }
  if (path == "/statusz") {
    const obs::SlowQueryLog& slow_log = obs::SlowQueryLog::Global();
    const ServeConfig config =
        service != nullptr ? service->config() : ServeConfig{};
    const ShardSpec shard =
        service != nullptr ? service->shard_spec() : ShardSpec{};
    reply.content_type = "application/json";
    reply.body = "{\"draining\":";
    reply.body += (service == nullptr || service->draining()) ? "1" : "0";
    reply.body += ",\"queue_depth\":";
    reply.body += std::to_string(service != nullptr ? service->queue_depth()
                                                    : 0);
    reply.body += ",\"inflight\":";
    reply.body +=
        std::to_string(service != nullptr ? service->inflight() : 0);
    reply.body += ",\"generation\":";
    reply.body +=
        std::to_string(generation != nullptr ? generation->id : 0);
    reply.body += ",\"shard_index\":";
    reply.body += std::to_string(shard.index);
    reply.body += ",\"shard_count\":";
    reply.body += std::to_string(shard.count);
    reply.body += ",\"max_queue\":";
    reply.body += std::to_string(config.max_queue);
    reply.body += ",\"max_batch\":";
    reply.body += std::to_string(config.max_batch);
    reply.body += ",\"trace_sample\":";
    reply.body += std::to_string(config.trace_sample);
    reply.body += ",\"slow_query_ms\":";
    reply.body += std::to_string(config.slow_query_ms);
    reply.body += ",\"slow_log_recorded\":";
    reply.body += std::to_string(slow_log.total_recorded());
    reply.body += ",\"slow_log_capacity\":";
    reply.body += std::to_string(slow_log.capacity());
    // ANN first-stage health: whether the knob is on for this process,
    // index shape, and the query/probe counters that show how much of the
    // store the IVF path is actually touching.
    reply.body += ",\"ann\":{\"enabled\":";
    reply.body += AnnEnabledFromEnv() ? "1" : "0";
    reply.body += ",\"nlist\":";
    reply.body += std::to_string(obs::GetGauge("ann.nlist").Value());
    reply.body += ",\"rows\":";
    reply.body += std::to_string(obs::GetGauge("ann.rows").Value());
    reply.body += ",\"queries\":";
    reply.body += std::to_string(obs::GetCounter("ann.queries").Value());
    reply.body += ",\"lists_probed\":";
    reply.body += std::to_string(obs::GetCounter("ann.lists_probed").Value());
    reply.body += ",\"candidates_returned\":";
    reply.body +=
        std::to_string(obs::GetCounter("ann.candidates_returned").Value());
    reply.body += ",\"fallback_exact\":";
    reply.body +=
        std::to_string(obs::GetCounter("ann.fallback_exact").Value());
    reply.body += "}}\n";
    return reply;
  }
  if (path == "/slow") {
    reply.content_type = "application/json";
    reply.body =
        obs::ExportChromeTraceJson(obs::SlowQueryLog::Global().Snapshot());
    return reply;
  }
  if (path == "/slowz") {
    reply.content_type = "application/json";
    reply.body =
        obs::ExportRequestTracesJson(obs::SlowQueryLog::Global().Snapshot());
    return reply;
  }
  reply.status = 404;
  reply.body =
      "not found; routes: /metrics /healthz /statusz /slow /slowz\n";
  return reply;
}

void AdminServer::HandleConnection(int fd) {
  // One request per connection (HTTP/1.0 close semantics): read what the
  // client sent — the request line is all we route on — answer, done.
  // The fd is owned by the listener, which closes it when we return.
  char buffer[4096];
  const ssize_t got = ::recv(fd, buffer, sizeof(buffer) - 1, 0);
  if (got > 0) {
    buffer[got] = '\0';
    const std::string path = ParseRequestPath(buffer);
    const HttpReply reply =
        path.empty() ? HttpReply{404, "text/plain; charset=utf-8",
                                 "bad request\n"}
                     : Handle(path);
    std::string out = "HTTP/1.0 " + std::to_string(reply.status) + " " +
                      ReasonPhrase(reply.status) + "\r\n";
    out += "Content-Type: " + reply.content_type + "\r\n";
    out += "Content-Length: " + std::to_string(reply.body.size()) + "\r\n";
    out += "Connection: close\r\n\r\n";
    out += reply.body;
    (void)WriteAll(fd, out.data(), out.size());
  }
}

void AdminServer::Shutdown() { listener_.Shutdown(); }

}  // namespace serve
}  // namespace ultrawiki
