#ifndef ULTRAWIKI_SERVE_SERVICE_HOST_H_
#define ULTRAWIKI_SERVE_SERVICE_HOST_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "serve/frontend.h"

namespace ultrawiki {
namespace serve {

/// Generation indirection for zero-downtime reload: the TCP/admin
/// front-ends hold a ServiceHost instead of an ExpansionService, and
/// every request pins the current generation (a shared_ptr) for exactly
/// its own duration. `Install` atomically flips new traffic onto a fresh
/// generation; the old one stays alive — and keeps admitting the requests
/// already pinned to it — until its last in-flight reference drops, at
/// which point its destructor drains and frees it (on whichever thread
/// dropped the reference). No request is ever shed because of a swap:
/// there is no instant at which an admitted request can observe a
/// draining service it was routed to.
class ServiceHost : public Frontend {
 public:
  /// One serving generation: an ExpansionService plus (optionally) the
  /// Pipeline and service it owns. `service` is always valid; the owning
  /// pointers are null for borrowed (test-managed) generations. Owned
  /// generations drain on destruction (~ExpansionService runs Drain).
  struct Generation {
    uint64_t id = 0;
    std::unique_ptr<Pipeline> pipeline;
    std::unique_ptr<ExpansionService> owned_service;
    ExpansionService* service = nullptr;
  };

  ServiceHost() = default;

  /// A generation owning its pipeline and service (the uw_serve path).
  /// `pipeline` may be null when the service references a pipeline with
  /// external lifetime.
  static std::shared_ptr<Generation> Own(
      std::unique_ptr<Pipeline> pipeline,
      std::unique_ptr<ExpansionService> service);

  /// A generation borrowing an externally-owned service (tests,
  /// bench harnesses). The caller keeps ownership and drain duties.
  static std::shared_ptr<Generation> Borrow(ExpansionService& service);

  /// Atomically flips new traffic onto `generation` and returns its
  /// assigned id (monotonic from 1). The previous generation is released:
  /// it serves its pinned in-flight requests and is drained/destroyed
  /// when the last reference drops.
  uint64_t Install(std::shared_ptr<Generation> generation);

  /// The generation new requests are routed to (null before the first
  /// Install).
  std::shared_ptr<Generation> Current() const;

  /// Id of the current generation (0 before the first Install).
  uint64_t generation_id() const;

  /// Completed swaps (Installs beyond the first).
  int64_t swaps() const { return swaps_.load(std::memory_order_relaxed); }

  // --- Frontend: every call pins Current() for its own duration. ---
  ExpandResult Expand(ExpandRequest request) override;
  StatusOr<Query> QueryByIndex(uint32_t index) override;
  StatusOr<std::vector<ShardScoredEntity>> ScatterRetrieve(
      const Query& query, size_t size) override;
  StatusOr<ShardScores> ScatterScore(
      const Query& query, const std::vector<EntityId>& ids) override;
  void Drain() override;

 private:
  mutable std::mutex mutex_;  // guards current_ and next_id_
  std::shared_ptr<Generation> current_;
  uint64_t next_id_ = 1;
  std::atomic<int64_t> swaps_{-1};  // first Install is not a swap
};

}  // namespace serve
}  // namespace ultrawiki

#endif  // ULTRAWIKI_SERVE_SERVICE_HOST_H_
