#ifndef ULTRAWIKI_SERVE_ROUTER_H_
#define ULTRAWIKI_SERVE_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "expand/retexpan.h"
#include "serve/client.h"
#include "serve/frontend.h"

namespace ultrawiki {
namespace serve {

/// One shard replica the router can reach: the shard it serves, its
/// request-plane port, and (optionally) its admin port for health
/// scraping. `admin_port` 0 disables scraping — the replica is then
/// assumed healthy until the transport says otherwise.
struct ReplicaEndpoint {
  int shard = 0;
  std::string host = "127.0.0.1";
  int port = 0;
  int admin_port = 0;
};

/// Cluster topology + routing knobs.
struct RouterConfig {
  /// Number of shards the candidate list is partitioned into. 0 infers
  /// max(replica.shard) + 1.
  int shard_count = 0;
  std::vector<ReplicaEndpoint> replicas;
  /// Health-scrape period (UW_ROUTER_HEALTH_MS). 0 disables the poller;
  /// routing then runs on transport signals alone.
  int health_poll_ms = 200;
  /// Socket send/receive timeout for health scrapes.
  int health_timeout_ms = 1000;
  /// RetExpan knobs mirrored on the router for the scatter-gather path.
  /// Must match the shard servers' config (both default-construct) or
  /// the merged ranking diverges from the single-process one.
  RetExpanConfig retexpan;

  /// Parses a topology string: comma-separated replicas, each
  /// "shard@host:port" or "shard@host:port/admin_port", e.g.
  /// "0@127.0.0.1:5000/5001,0@127.0.0.1:5002,1@127.0.0.1:5004/5005".
  /// The UW_ROUTER_SHARDS wire format.
  static StatusOr<RouterConfig> ParseTopology(const std::string& topology);
};

/// Scatter-gather front-end of the sharded serving cluster. Implements
/// Frontend, so a plain TcpServer exposes it on the wire protocol —
/// clients cannot tell a router from a single-process server.
///
/// RetExpan requests take the scatter path: fan `ScatterRetrieve` out to
/// one replica of every shard in parallel, merge the per-shard streaming
/// top-k (global candidate positions preserve the RanksBefore tie-break,
/// so the merged L0 is bit-identical to the unsharded recall — the global
/// top-|L0| is a subset of the union of per-shard top-|L0|s), then run
/// the negative-seed segmented rerank over per-shard `ScatterScore`
/// results with the exact same margin arithmetic RetExpan uses. Every
/// other method is proxied whole to the least-loaded replica (every shard
/// process holds the full pipeline, so any replica can serve any method).
///
/// Replica choice is health-driven: a poller thread scrapes each
/// replica's admin `/statusz` every `health_poll_ms` for draining /
/// queue_depth / inflight, and the per-shard pick is the reachable,
/// non-draining replica with the least load (backpressure balancing).
/// Transport failures mark a replica unreachable immediately and the
/// request fails over to the next replica of the same shard, so killing
/// a replica mid-load costs retries, not errors, as long as each shard
/// keeps one live replica.
class ClusterRouter : public Frontend {
 public:
  explicit ClusterRouter(RouterConfig config);
  ~ClusterRouter() override;

  ClusterRouter(const ClusterRouter&) = delete;
  ClusterRouter& operator=(const ClusterRouter&) = delete;

  /// Validates the topology (every shard needs at least one replica),
  /// runs one synchronous health poll, and starts the poller thread.
  /// Call before taking traffic; at most once.
  Status Start();

  const RouterConfig& config() const { return config_; }

  /// Live view of one replica's health, for tests and the drain report.
  struct ReplicaState {
    bool reachable = false;
    bool draining = false;
    int load = 0;
    uint64_t generation = 0;
  };
  ReplicaState replica_state(size_t replica_index) const;

  /// One synchronous scrape of every replica with an admin port (the
  /// poller thread does this on its own cadence).
  void PollHealthNow();

  // --- Frontend ---
  ExpandResult Expand(ExpandRequest request) override;
  StatusOr<Query> QueryByIndex(uint32_t index) override;
  /// The router is not a shard: scatter-plane calls addressed to it are
  /// kUnimplemented (routers do not chain).
  StatusOr<std::vector<ShardScoredEntity>> ScatterRetrieve(
      const Query& query, size_t size) override;
  StatusOr<ShardScores> ScatterScore(
      const Query& query, const std::vector<EntityId>& ids) override;
  /// Stops the poller and closes pooled connections. Idempotent.
  void Drain() override;

 private:
  struct Replica {
    ReplicaEndpoint endpoint;
    /// Idle pooled connections (LIFO, so the hottest socket is reused).
    std::mutex pool_mutex;
    std::vector<ServeClient> pool;
    std::atomic<bool> reachable{true};
    std::atomic<bool> draining{false};
    std::atomic<int> load{0};
    std::atomic<uint64_t> generation{0};
  };

  StatusOr<ServeClient> AcquireClient(Replica& replica);
  void ReleaseClient(Replica& replica, ServeClient client);

  /// Replica indices to try for `shard` (all replicas when shard < 0):
  /// reachable non-draining ones by ascending load first, then the rest
  /// in config order as last-resort probes.
  std::vector<size_t> ReplicaOrder(int shard) const;

  /// True for status codes that a different replica might not produce
  /// (transport faults, shedding, draining) — the failover trigger.
  static bool Retryable(const Status& status);

  /// Runs `call` against successive replicas of `shard` (all replicas
  /// when shard < 0, health-ordered) until one answers with a
  /// non-retryable result; marks replicas unreachable/draining as their
  /// failures reveal. The shared failover engine of every remote call.
  template <typename Result>
  StatusOr<Result> CallWithFailover(
      int shard, const std::function<StatusOr<Result>(ServeClient&)>& call);

  StatusOr<std::vector<ShardScoredEntity>> RetrieveFromShard(
      int shard, const Query& query, size_t size);
  StatusOr<ShardScores> ScoreOnShard(int shard, const Query& query,
                                     const std::vector<EntityId>& ids);

  ExpandResult ScatterExpand(const ExpandRequest& request);
  ExpandResult ProxyExpand(const ExpandRequest& request);

  void HealthLoop();
  void PollReplica(Replica& replica);

  RouterConfig config_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  /// Per shard: indices into replicas_, in config order.
  std::vector<std::vector<size_t>> shard_replicas_;

  std::atomic<bool> stopping_{false};
  std::thread health_thread_;
  std::mutex health_mutex_;
  std::condition_variable health_cv_;

  /// By-index lookups resolved once against a shard's resident dataset
  /// and cached forever (the dataset is immutable within a generation
  /// and identical across shards of one generation).
  std::mutex lookup_mutex_;
  std::unordered_map<uint32_t, Query> lookup_cache_;

  std::once_flag drain_once_;
  bool started_ = false;
};

}  // namespace serve
}  // namespace ultrawiki

#endif  // ULTRAWIKI_SERVE_ROUTER_H_
