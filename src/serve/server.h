#ifndef ULTRAWIKI_SERVE_SERVER_H_
#define ULTRAWIKI_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "serve/service.h"

namespace ultrawiki {
namespace serve {

/// TCP front-end over an ExpansionService: accepts connections on a
/// loopback-reachable port and speaks the framed protocol of
/// serve/protocol.h. One handler thread per connection; requests on a
/// connection are served in order (clients that want concurrency open
/// several connections — the micro-batcher coalesces across all of
/// them).
///
/// `Shutdown()` is the graceful-drain path: the listener closes (no new
/// connections), open connections are read-shut so handlers finish their
/// in-flight responses and exit, handler threads are joined, and the
/// underlying service drains its queue. Safe to call from a signal-
/// triggered control flow (not from inside the handler threads).
class TcpServer {
 public:
  /// `service` must outlive the server.
  explicit TcpServer(ExpansionService& service);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds 0.0.0.0:`port` (0 picks an ephemeral port), listens, and
  /// spawns the accept thread. Call at most once.
  Status Start(int port);

  /// The bound port (after a successful Start).
  int port() const { return port_; }

  /// Graceful drain; idempotent. Blocks until every handler has exited
  /// and the service queue is empty.
  void Shutdown();

  /// Lifetime totals, readable after Shutdown.
  int64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  int64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  int64_t protocol_errors() const {
    return protocol_errors_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  ExpansionService& service_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex conn_mutex_;  // guards conn_fds_ and conn_threads_
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;

  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> requests_served_{0};
  std::atomic<int64_t> protocol_errors_{0};
  std::once_flag shutdown_once_;
};

}  // namespace serve
}  // namespace ultrawiki

#endif  // ULTRAWIKI_SERVE_SERVER_H_
