#ifndef ULTRAWIKI_SERVE_SERVER_H_
#define ULTRAWIKI_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/status.h"
#include "serve/frontend.h"
#include "serve/tcp_listener.h"

namespace ultrawiki {
namespace serve {

class ServiceHost;

/// TCP front-end over a Frontend: accepts connections on a
/// loopback-reachable port and speaks the framed protocol of
/// serve/protocol.h — the request plane (expand, ping) and the scatter
/// plane (shard retrieve/score, query lookup) on one port. One handler
/// thread per connection; requests on a connection are served in order
/// (clients that want concurrency open several connections — the
/// micro-batcher coalesces across all of them).
///
/// Connection lifecycle (accept-error survival, fd registry hygiene,
/// handler reaping) lives in TcpListener.
///
/// `Shutdown()` is the graceful-drain path: the listener closes (no new
/// connections), open connections are read-shut so handlers finish their
/// in-flight responses and exit, handler threads are joined, and the
/// frontend drains. Safe to call from a signal-triggered control flow
/// (not from inside the handler threads).
class TcpServer {
 public:
  /// `frontend` must outlive the server. This is the cluster-aware
  /// entry point: pass a ServiceHost (single process or shard) or a
  /// ClusterRouter.
  explicit TcpServer(Frontend& frontend);

  /// Convenience for the single-service setups (tests, benches):
  /// wraps `service` in an internally-owned single-generation
  /// ServiceHost. `service` must outlive the server; Shutdown() drains
  /// it, exactly like the frontend path.
  explicit TcpServer(ExpansionService& service);

  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds 0.0.0.0:`port` (0 picks an ephemeral port), listens, and
  /// spawns the accept thread. Call at most once.
  Status Start(int port);

  /// The bound port (after a successful Start).
  int port() const { return listener_.port(); }

  /// Graceful drain; idempotent. Blocks until every handler has exited
  /// and the frontend has drained.
  void Shutdown();

  /// Lifetime totals, readable after Shutdown.
  int64_t connections_accepted() const {
    return listener_.connections_accepted();
  }
  int64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  int64_t protocol_errors() const {
    return protocol_errors_.load(std::memory_order_relaxed);
  }
  int64_t accept_errors() const { return listener_.accept_errors(); }

  /// The underlying listener, for lifecycle assertions in tests
  /// (open_connections, tracked_handler_threads, ReapFinishedHandlers).
  TcpListener& listener() { return listener_; }

 private:
  void HandleConnection(int fd);

  /// Set only by the ExpansionService convenience constructor.
  std::unique_ptr<ServiceHost> owned_host_;
  Frontend& frontend_;
  TcpListener listener_;

  std::atomic<int64_t> requests_served_{0};
  std::atomic<int64_t> protocol_errors_{0};
};

}  // namespace serve
}  // namespace ultrawiki

#endif  // ULTRAWIKI_SERVE_SERVER_H_
