#ifndef ULTRAWIKI_SERVE_FRONTEND_H_
#define ULTRAWIKI_SERVE_FRONTEND_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "serve/protocol.h"
#include "serve/service.h"

namespace ultrawiki {
namespace serve {

/// What a TCP front-end (serve/server.h) serves: the request plane
/// (Expand + by-index resolution) and the scatter plane the cluster
/// router fans out over. Implemented by ServiceHost (single process or
/// shard: forwards to the current ExpansionService generation) and by
/// ClusterRouter (scatter-gathers over shard processes). All methods are
/// called concurrently from handler threads and must be thread-safe.
class Frontend {
 public:
  virtual ~Frontend() = default;

  virtual ExpandResult Expand(ExpandRequest request) = 0;
  virtual StatusOr<Query> QueryByIndex(uint32_t index) = 0;
  virtual StatusOr<std::vector<ShardScoredEntity>> ScatterRetrieve(
      const Query& query, size_t size) = 0;
  virtual StatusOr<ShardScores> ScatterScore(
      const Query& query, const std::vector<EntityId>& ids) = 0;
  /// Graceful-drain hook, run by TcpServer::Shutdown after every handler
  /// has exited. Must be idempotent.
  virtual void Drain() = 0;
};

}  // namespace serve
}  // namespace ultrawiki

#endif  // ULTRAWIKI_SERVE_FRONTEND_H_
