#include "serve/client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace ultrawiki {
namespace serve {

StatusOr<ServeClient> ServeClient::Connect(const std::string& host,
                                           int port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                               &hints, &results);
  if (rc != 0) {
    return Status::Unavailable(std::string("getaddrinfo: ") +
                               ::gai_strerror(rc));
  }
  int fd = -1;
  Status last = Status::Unavailable("no addresses for " + host);
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::Internal(std::string("socket: ") + std::strerror(errno));
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    last = Status::Unavailable(std::string("connect: ") +
                               std::strerror(errno));
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(results);
  if (fd < 0) return last;
  const int enable = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  ServeClient client;
  client.fd_ = fd;
  return client;
}

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_request_id_(other.next_request_id_),
      wire_version_(other.wire_version_),
      force_trace_(other.force_trace_),
      last_trace_id_(other.last_trace_id_) {}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    next_request_id_ = other.next_request_id_;
    wire_version_ = other.wire_version_;
    force_trace_ = other.force_trace_;
    last_trace_id_ = other.last_trace_id_;
  }
  return *this;
}

ServeClient::~ServeClient() { Close(); }

void ServeClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

FrameOptions ServeClient::MakeFrameOptions(uint64_t request_id) {
  FrameOptions options;
  options.version = wire_version_;
  if (wire_version_ >= 2) {
    // The request id doubles as the trace id: unique per connection and
    // easy to correlate with client-side logs. The server falls back to
    // its own sequence when a v1 frame arrives with no id.
    options.trace_id = request_id;
    if (force_trace_) options.flags |= kFrameFlagSample;
    last_trace_id_ = options.trace_id;
  }
  return options;
}

Status ServeClient::Ping() {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  FrameOptions options;
  options.version = wire_version_;
  const std::string ping = EncodeControlFrame(FrameKind::kPing, options);
  Status status = WriteAll(fd_, ping.data(), ping.size());
  if (!status.ok()) return status;
  StatusOr<Frame> frame = ReadFrame(fd_);
  if (!frame.ok()) return frame.status();
  if (frame->kind != FrameKind::kPong) {
    return Status::Internal("expected pong, got kind " +
                            std::to_string(static_cast<int>(frame->kind)));
  }
  return Status::Ok();
}

StatusOr<std::vector<EntityId>> ServeClient::ExpandByIndex(
    const std::string& method, uint32_t query_index, int k, int timeout_ms) {
  WireRequest request;
  request.method = method;
  request.by_index = true;
  request.query_index = query_index;
  request.k = static_cast<uint32_t>(k > 0 ? k : 0);
  request.timeout_ms =
      static_cast<uint32_t>(timeout_ms > 0 ? timeout_ms : 0);
  return RoundTrip(std::move(request));
}

StatusOr<std::vector<EntityId>> ServeClient::ExpandQuery(
    const std::string& method, const Query& query, int k, int timeout_ms) {
  WireRequest request;
  request.method = method;
  request.by_index = false;
  request.query = query;
  request.k = static_cast<uint32_t>(k > 0 ? k : 0);
  request.timeout_ms =
      static_cast<uint32_t>(timeout_ms > 0 ? timeout_ms : 0);
  return RoundTrip(std::move(request));
}

StatusOr<Frame> ServeClient::FrameRoundTrip(const std::string& encoded,
                                            FrameKind expected) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  Status status = WriteAll(fd_, encoded.data(), encoded.size());
  if (!status.ok()) return status;
  StatusOr<Frame> frame = ReadFrame(fd_);
  if (!frame.ok()) return frame.status();
  if (frame->kind != expected) {
    return Status::Internal("expected frame kind " +
                            std::to_string(static_cast<int>(expected)) +
                            ", got " +
                            std::to_string(static_cast<int>(frame->kind)));
  }
  return frame;
}

StatusOr<std::vector<ShardScoredEntity>> ServeClient::ScatterRetrieve(
    const Query& query, uint64_t size) {
  WireShardRetrieveRequest request;
  request.request_id = next_request_id_++;
  request.size = size;
  request.query = query;
  StatusOr<Frame> frame = FrameRoundTrip(
      EncodeShardRetrieveRequestFrame(request,
                                      MakeFrameOptions(request.request_id)),
      FrameKind::kShardRetrieveResponse);
  if (!frame.ok()) return frame.status();
  WireShardRetrieveResponse response;
  Status status =
      DecodeShardRetrieveResponsePayload(frame->payload, &response);
  if (!status.ok()) return status;
  if (response.request_id != request.request_id) {
    return Status::Internal("response id mismatch");
  }
  if (response.code != 0) return response.ToStatus();
  return std::move(response.entities);
}

StatusOr<ShardScores> ServeClient::ScatterScore(
    const Query& query, const std::vector<EntityId>& ids) {
  WireShardScoreRequest request;
  request.request_id = next_request_id_++;
  request.ids = ids;
  request.query = query;
  StatusOr<Frame> frame = FrameRoundTrip(
      EncodeShardScoreRequestFrame(request,
                                   MakeFrameOptions(request.request_id)),
      FrameKind::kShardScoreResponse);
  if (!frame.ok()) return frame.status();
  WireShardScoreResponse response;
  Status status = DecodeShardScoreResponsePayload(frame->payload, &response);
  if (!status.ok()) return status;
  if (response.request_id != request.request_id) {
    return Status::Internal("response id mismatch");
  }
  if (response.code != 0) return response.ToStatus();
  if (response.scores.pos.size() != ids.size()) {
    return Status::Internal("score count mismatch");
  }
  return std::move(response.scores);
}

StatusOr<Query> ServeClient::QueryLookup(uint32_t query_index) {
  WireQueryLookupRequest request;
  request.request_id = next_request_id_++;
  request.query_index = query_index;
  StatusOr<Frame> frame = FrameRoundTrip(
      EncodeQueryLookupRequestFrame(request,
                                    MakeFrameOptions(request.request_id)),
      FrameKind::kQueryLookupResponse);
  if (!frame.ok()) return frame.status();
  WireQueryLookupResponse response;
  Status status = DecodeQueryLookupResponsePayload(frame->payload, &response);
  if (!status.ok()) return status;
  if (response.request_id != request.request_id) {
    return Status::Internal("response id mismatch");
  }
  if (response.code != 0) return response.ToStatus();
  return std::move(response.query);
}

StatusOr<std::vector<EntityId>> ServeClient::RoundTrip(WireRequest request) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  request.request_id = next_request_id_++;
  const std::string encoded =
      EncodeRequestFrame(request, MakeFrameOptions(request.request_id));
  Status status = WriteAll(fd_, encoded.data(), encoded.size());
  if (!status.ok()) return status;
  StatusOr<Frame> frame = ReadFrame(fd_);
  if (!frame.ok()) return frame.status();
  if (frame->kind != FrameKind::kExpandResponse) {
    return Status::Internal("expected response frame");
  }
  WireResponse response;
  status = DecodeResponsePayload(frame->payload, &response);
  if (!status.ok()) return status;
  if (response.request_id != request.request_id) {
    return Status::Internal("response id mismatch");
  }
  if (response.code != 0) return response.ToStatus();
  return std::move(response.ranking);
}

}  // namespace serve
}  // namespace ultrawiki
