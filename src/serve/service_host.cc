#include "serve/service_host.h"

#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"

namespace ultrawiki {
namespace serve {

std::shared_ptr<ServiceHost::Generation> ServiceHost::Own(
    std::unique_ptr<Pipeline> pipeline,
    std::unique_ptr<ExpansionService> service) {
  UW_CHECK_NE(service.get(), nullptr);
  auto generation = std::make_shared<Generation>();
  generation->pipeline = std::move(pipeline);
  generation->owned_service = std::move(service);
  generation->service = generation->owned_service.get();
  return generation;
}

std::shared_ptr<ServiceHost::Generation> ServiceHost::Borrow(
    ExpansionService& service) {
  auto generation = std::make_shared<Generation>();
  generation->service = &service;
  return generation;
}

uint64_t ServiceHost::Install(std::shared_ptr<Generation> generation) {
  UW_CHECK_NE(generation.get(), nullptr);
  UW_CHECK_NE(generation->service, nullptr);
  std::shared_ptr<Generation> previous;
  uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = next_id_++;
    generation->id = id;
    previous = std::move(current_);
    current_ = std::move(generation);
  }
  swaps_.fetch_add(1, std::memory_order_relaxed);
  obs::GetGauge("serve.generation").Set(static_cast<int64_t>(id));
  // `previous` drops here (or on the last in-flight handler's thread if
  // one still pins it). An owned generation drains in ~ExpansionService,
  // so every request it admitted completes before it is freed — the swap
  // itself sheds nothing.
  return id;
}

std::shared_ptr<ServiceHost::Generation> ServiceHost::Current() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

uint64_t ServiceHost::generation_id() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_ != nullptr ? current_->id : 0;
}

ExpandResult ServiceHost::Expand(ExpandRequest request) {
  const std::shared_ptr<Generation> generation = Current();
  if (generation == nullptr) {
    return ExpandResult{Status::Unavailable("no generation installed"), {}};
  }
  return generation->service->ExpandSync(std::move(request));
}

StatusOr<Query> ServiceHost::QueryByIndex(uint32_t index) {
  const std::shared_ptr<Generation> generation = Current();
  if (generation == nullptr) {
    return Status::Unavailable("no generation installed");
  }
  return generation->service->QueryByIndex(index);
}

StatusOr<std::vector<ShardScoredEntity>> ServiceHost::ScatterRetrieve(
    const Query& query, size_t size) {
  const std::shared_ptr<Generation> generation = Current();
  if (generation == nullptr) {
    return Status::Unavailable("no generation installed");
  }
  return generation->service->ScatterRetrieve(query, size);
}

StatusOr<ShardScores> ServiceHost::ScatterScore(
    const Query& query, const std::vector<EntityId>& ids) {
  const std::shared_ptr<Generation> generation = Current();
  if (generation == nullptr) {
    return Status::Unavailable("no generation installed");
  }
  return generation->service->ScatterScore(query, ids);
}

void ServiceHost::Drain() {
  const std::shared_ptr<Generation> generation = Current();
  if (generation != nullptr) generation->service->Drain();
}

}  // namespace serve
}  // namespace ultrawiki
