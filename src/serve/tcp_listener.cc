#include "serve/tcp_listener.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"

namespace ultrawiki {
namespace serve {

TcpListener::TcpListener(std::string metric_prefix, Handler handler)
    : metric_prefix_(std::move(metric_prefix)),
      handler_(std::move(handler)) {
  // Register the counter family eagerly so snapshots list it at zero.
  obs::GetCounter(metric_prefix_ + ".connections");
  obs::GetCounter(metric_prefix_ + ".accept_errors");
}

TcpListener::~TcpListener() { Shutdown(); }

Status TcpListener::Start(int port, int backlog) {
  UW_CHECK_EQ(listen_fd_, -1) << "Start called twice";
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
               sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status =
        Status::Internal(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) < 0) {
    const Status status =
        Status::Internal(std::string("getsockname: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = static_cast<int>(ntohs(addr.sin_port));
  if (::listen(listen_fd_, backlog) < 0) {
    const Status status =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void TcpListener::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Shutdown closed the listener out from under us.
      if (stopping_.load(std::memory_order_acquire)) return;
      // Transient accept failures (EMFILE/ENFILE under fd pressure,
      // ECONNABORTED from a peer racing the handshake) must not kill the
      // loop: a server that stops accepting is deaf but looks alive.
      // Count, back off briefly, retry — only stopping_ exits.
      accept_errors_.fetch_add(1, std::memory_order_relaxed);
      obs::GetCounter(metric_prefix_ + ".accept_errors").Increment();
      UW_LOG(Warning) << metric_prefix_
                      << " accept: " << std::strerror(errno)
                      << " (retrying)";
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    const int enable = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    obs::GetCounter(metric_prefix_ + ".connections").Increment();
    ReapFinishedHandlers();
    std::lock_guard<std::mutex> lock(conn_mutex_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    const uint64_t id = next_conn_id_++;
    conn_fds_.emplace(id, fd);
    handlers_.emplace(id, std::thread([this, id, fd] { RunHandler(id, fd); }));
  }
}

void TcpListener::RunHandler(uint64_t id, int fd) {
  handler_(fd);
  // Deregister before closing: once the fd number is back with the
  // kernel it may be reused by an unrelated connection, and the
  // shutdown sweep must never see it. The thread handle moves to the
  // reap list (Shutdown may have already claimed it — then the map
  // entry is gone and there is nothing to move).
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    conn_fds_.erase(id);
    auto it = handlers_.find(id);
    if (it != handlers_.end()) {
      finished_.push_back(std::move(it->second));
      handlers_.erase(it);
    }
  }
  ::close(fd);
}

int TcpListener::open_connections() const {
  std::lock_guard<std::mutex> lock(conn_mutex_);
  return static_cast<int>(conn_fds_.size());
}

int TcpListener::tracked_handler_threads() const {
  std::lock_guard<std::mutex> lock(conn_mutex_);
  return static_cast<int>(handlers_.size() + finished_.size());
}

void TcpListener::ReapFinishedHandlers() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    done.swap(finished_);
  }
  for (std::thread& thread : done) thread.join();
}

void TcpListener::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    stopping_.store(true, std::memory_order_release);
    if (listen_fd_ >= 0) {
      // Unblock accept(); the loop observes stopping_ and exits.
      ::shutdown(listen_fd_, SHUT_RDWR);
      ::close(listen_fd_);
    }
    if (accept_thread_.joinable()) accept_thread_.join();
    std::vector<std::thread> to_join;
    {
      // Read-shut every *live* connection under the registry lock —
      // handlers deregister before close, so every fd here is still
      // owned by its handler. Claim the live thread handles in the same
      // critical section; exiting handlers that lose the race simply
      // find their map entry gone.
      std::lock_guard<std::mutex> lock(conn_mutex_);
      for (const auto& [id, fd] : conn_fds_) ::shutdown(fd, SHUT_RD);
      to_join.reserve(handlers_.size());
      for (auto& [id, thread] : handlers_) {
        to_join.push_back(std::move(thread));
      }
      handlers_.clear();
    }
    for (std::thread& thread : to_join) thread.join();
    ReapFinishedHandlers();
    listen_fd_ = -1;
  });
}

}  // namespace serve
}  // namespace ultrawiki
