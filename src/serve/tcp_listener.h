#ifndef ULTRAWIKI_SERVE_TCP_LISTENER_H_
#define ULTRAWIKI_SERVE_TCP_LISTENER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace ultrawiki {
namespace serve {

/// Shared TCP accept/connection-lifecycle substrate for every listener in
/// the serving layer (TcpServer, AdminServer, and the router front-end).
/// One handler thread per connection, with the bookkeeping invariants the
/// original per-server loops got wrong:
///
///  - A connection's fd is deregistered *before* it is closed, and the
///    shutdown sweep reads the registry under the same lock — so the
///    SHUT_RD sweep can never hit a kernel-reused fd belonging to an
///    unrelated connection.
///  - Finished handler threads are moved to a reap list when their
///    handler returns and joined opportunistically on the accept path
///    (and by tests via ReapFinishedHandlers), so neither the fd registry
///    nor the thread list grows with connection churn.
///  - Transient accept errors (EMFILE, ENFILE, ECONNABORTED, ...) are
///    counted (`<prefix>.accept_errors`), logged, and retried after a
///    short backoff; the accept loop exits only when Shutdown() closed
///    the listener.
///
/// The handler receives a connected fd and must NOT close it — the
/// listener deregisters and closes it when the handler returns.
class TcpListener {
 public:
  using Handler = std::function<void(int fd)>;

  /// `metric_prefix` names the counter family ("serve.net", "serve.admin",
  /// "router.net"): <prefix>.connections and <prefix>.accept_errors.
  TcpListener(std::string metric_prefix, Handler handler);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds 0.0.0.0:`port` (0 picks an ephemeral port), listens, and
  /// spawns the accept thread. Call at most once.
  Status Start(int port, int backlog = 128);

  /// The bound port (after a successful Start).
  int port() const { return port_; }

  /// Closes the listener, read-shuts every live connection so blocked
  /// reads see EOF, and joins every handler thread (live and finished).
  /// Idempotent; safe to call concurrently with handler exits.
  void Shutdown();

  int64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  int64_t accept_errors() const {
    return accept_errors_.load(std::memory_order_relaxed);
  }

  /// Live connections (registered fds whose handler has not returned).
  int open_connections() const;
  /// Handler threads currently tracked: live handlers plus finished ones
  /// not yet reaped. Bounded by churn tests.
  int tracked_handler_threads() const;
  /// Joins every finished-but-unjoined handler thread now (the accept
  /// loop does this on each accepted connection; tests call it directly).
  void ReapFinishedHandlers();

 private:
  void AcceptLoop();
  void RunHandler(uint64_t id, int fd);

  const std::string metric_prefix_;
  const Handler handler_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  /// Guards the connection registry and both thread collections.
  mutable std::mutex conn_mutex_;
  uint64_t next_conn_id_ = 0;
  std::unordered_map<uint64_t, int> conn_fds_;          // live connections
  std::unordered_map<uint64_t, std::thread> handlers_;  // live handlers
  std::vector<std::thread> finished_;  // exited handlers awaiting join

  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> accept_errors_{0};
  std::once_flag shutdown_once_;
};

}  // namespace serve
}  // namespace ultrawiki

#endif  // ULTRAWIKI_SERVE_TCP_LISTENER_H_
