#ifndef ULTRAWIKI_SERVE_CLIENT_H_
#define ULTRAWIKI_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/protocol.h"

namespace ultrawiki {
namespace serve {

/// Synchronous client for the framed TCP protocol: one connection, one
/// request in flight (the server batches across connections, so load
/// generators open one client per concurrent stream). Movable, not
/// copyable; the destructor closes the socket.
class ServeClient {
 public:
  static StatusOr<ServeClient> Connect(const std::string& host, int port);

  ServeClient() = default;
  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ~ServeClient();

  bool connected() const { return fd_ >= 0; }

  /// Round-trips a ping frame.
  Status Ping();

  /// Expands the server-side query at `query_index`. `timeout_ms` 0 means
  /// the server default. Non-OK server statuses (shed, timeout, bad
  /// method, bad index) come back as the corresponding Status.
  StatusOr<std::vector<EntityId>> ExpandByIndex(const std::string& method,
                                                uint32_t query_index, int k,
                                                int timeout_ms = 0);

  /// Expands an explicit query (seed ids must be meaningful to the
  /// server's resident world).
  StatusOr<std::vector<EntityId>> ExpandQuery(const std::string& method,
                                              const Query& query, int k,
                                              int timeout_ms = 0);

  /// Scatter plane (cluster serving): the recall stage of the connected
  /// shard — its top-`size` candidate-slice entities by positive-seed
  /// centroid score, with global positions for the router-side merge.
  StatusOr<std::vector<ShardScoredEntity>> ScatterRetrieve(const Query& query,
                                                           uint64_t size);

  /// Scatter plane: pos/neg seed-centroid scores for explicit ids (the
  /// router's rerank phase).
  StatusOr<ShardScores> ScatterScore(const Query& query,
                                     const std::vector<EntityId>& ids);

  /// Resolves a dataset query index against the server's resident
  /// dataset (the router serves by-index requests through this).
  StatusOr<Query> QueryLookup(uint32_t query_index);

  /// Closes the connection early (destructor does this too).
  void Close();

  /// Wire version for outgoing frames. Defaults to the current version;
  /// pin kFrameVersionV1 to talk to a server predating the trace-context
  /// extension (trace requests are silently meaningless in v1 framing).
  void set_wire_version(uint32_t version) { wire_version_ = version; }
  uint32_t wire_version() const { return wire_version_; }

  /// When set, every subsequent request carries the sample flag in its
  /// frame header, asking the server to trace it end to end regardless of
  /// the server's sampling rate (slow-query log + admin /slow).
  void set_force_trace(bool on) { force_trace_ = on; }
  bool force_trace() const { return force_trace_; }

  /// Trace id of the most recently sent request (0 before the first) —
  /// what to look for in the server's slow-query log.
  uint64_t last_trace_id() const { return last_trace_id_; }

 private:
  StatusOr<std::vector<EntityId>> RoundTrip(WireRequest request);
  /// Sends an already-encoded frame and reads back one frame of
  /// `expected` kind (shared by every scatter-plane call).
  StatusOr<Frame> FrameRoundTrip(const std::string& encoded,
                                 FrameKind expected);
  FrameOptions MakeFrameOptions(uint64_t request_id);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  uint32_t wire_version_ = kFrameVersion;
  bool force_trace_ = false;
  uint64_t last_trace_id_ = 0;
};

}  // namespace serve
}  // namespace ultrawiki

#endif  // ULTRAWIKI_SERVE_CLIENT_H_
