#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "obs/metrics.h"
#include "serve/protocol.h"

namespace ultrawiki {
namespace serve {
namespace {

struct NetMetrics {
  obs::Counter& connections = obs::GetCounter("serve.net.connections");
  obs::Counter& requests = obs::GetCounter("serve.net.requests");
  obs::Counter& protocol_errors =
      obs::GetCounter("serve.net.protocol_errors");
};

NetMetrics& Metrics() {
  static NetMetrics* metrics = new NetMetrics();
  return *metrics;
}

}  // namespace

TcpServer::TcpServer(ExpansionService& service) : service_(service) {
  Metrics();
}

TcpServer::~TcpServer() { Shutdown(); }

Status TcpServer::Start(int port) {
  UW_CHECK_EQ(listen_fd_, -1) << "Start called twice";
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
               sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status =
        Status::Internal(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) < 0) {
    const Status status =
        Status::Internal(std::string("getsockname: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = static_cast<int>(ntohs(addr.sin_port));
  if (::listen(listen_fd_, /*backlog=*/128) < 0) {
    const Status status =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void TcpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Shutdown closed the listener out from under us.
      if (stopping_.load(std::memory_order_acquire)) return;
      UW_LOG(Warning) << "accept: " << std::strerror(errno);
      return;
    }
    const int enable = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    Metrics().connections.Increment();
    std::lock_guard<std::mutex> lock(conn_mutex_);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { HandleConnection(fd); });
  }
}

void TcpServer::HandleConnection(int fd) {
  while (true) {
    StatusOr<Frame> frame = ReadFrame(fd);
    if (!frame.ok()) {
      // A clean EOF ends the session; anything else is a protocol error
      // worth counting (and fatal for this connection either way).
      if (!(frame.status().code() == StatusCode::kUnavailable &&
            frame.status().message() == "eof")) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        Metrics().protocol_errors.Increment();
        UW_LOG(Warning) << "connection dropped: " << frame.status();
      }
      break;
    }
    // Respond in the version the request arrived in, so a legacy (v1)
    // client never sees a header extension it cannot parse.
    FrameOptions reply_options;
    reply_options.version = frame->version;
    if (frame->kind == FrameKind::kPing) {
      const std::string pong =
          EncodeControlFrame(FrameKind::kPong, reply_options);
      if (!WriteAll(fd, pong.data(), pong.size()).ok()) break;
      continue;
    }
    if (frame->kind != FrameKind::kExpandRequest) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      Metrics().protocol_errors.Increment();
      break;
    }
    WireRequest request;
    const Status decoded = DecodeRequestPayload(frame->payload, &request);
    if (!decoded.ok()) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      Metrics().protocol_errors.Increment();
      UW_LOG(Warning) << "undecodable request: " << decoded;
      break;
    }
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    Metrics().requests.Increment();

    WireResponse response;
    response.request_id = request.request_id;
    ExpandRequest expand;
    expand.method = request.method;
    expand.k = static_cast<int>(request.k);
    expand.timeout_ms =
        request.timeout_ms > 0 ? static_cast<int>(request.timeout_ms) : -1;
    // Trace context rides in the frame header, not the payload: a v1
    // frame leaves both at their "absent" values.
    expand.trace_id = frame->trace_id;
    expand.force_trace = (frame->flags & kFrameFlagSample) != 0;
    bool resolved = true;
    if (request.by_index) {
      const auto& queries = service_.pipeline().dataset().queries;
      if (request.query_index >= queries.size()) {
        response.code = static_cast<uint32_t>(StatusCode::kOutOfRange);
        response.message = "query index " +
                           std::to_string(request.query_index) +
                           " out of range (have " +
                           std::to_string(queries.size()) + ")";
        resolved = false;
      } else {
        expand.query = queries[request.query_index];
      }
    } else {
      expand.query = std::move(request.query);
    }
    if (resolved) {
      // Blocking per connection keeps responses in request order; the
      // service batches across connections, not within one.
      ExpandResult result = service_.ExpandSync(std::move(expand));
      response.code = static_cast<uint32_t>(result.status.code());
      response.message = result.status.message();
      response.ranking = std::move(result.ranking);
    }
    const std::string encoded = EncodeResponseFrame(response, reply_options);
    if (!WriteAll(fd, encoded.data(), encoded.size()).ok()) break;
  }
  ::close(fd);
}

void TcpServer::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    stopping_.store(true, std::memory_order_release);
    if (listen_fd_ >= 0) {
      // Unblock accept(); the loop observes stopping_ and exits.
      ::shutdown(listen_fd_, SHUT_RDWR);
      ::close(listen_fd_);
    }
    if (accept_thread_.joinable()) accept_thread_.join();
    {
      // Read-shut every open connection: blocked ReadFrame calls see EOF,
      // handlers flush their in-flight response and exit.
      std::lock_guard<std::mutex> lock(conn_mutex_);
      for (int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
    }
    std::vector<std::thread> threads;
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      threads.swap(conn_threads_);
    }
    for (std::thread& thread : threads) thread.join();
    service_.Drain();
    listen_fd_ = -1;
  });
}

}  // namespace serve
}  // namespace ultrawiki
