#include "serve/server.h"

#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "serve/service_host.h"

namespace ultrawiki {
namespace serve {
namespace {

struct NetMetrics {
  obs::Counter& requests = obs::GetCounter("serve.net.requests");
  obs::Counter& protocol_errors =
      obs::GetCounter("serve.net.protocol_errors");
};

NetMetrics& Metrics() {
  static NetMetrics* metrics = new NetMetrics();
  return *metrics;
}

}  // namespace

TcpServer::TcpServer(Frontend& frontend)
    : frontend_(frontend),
      listener_("serve.net", [this](int fd) { HandleConnection(fd); }) {
  Metrics();
}

TcpServer::TcpServer(ExpansionService& service)
    : owned_host_(std::make_unique<ServiceHost>()),
      frontend_(*owned_host_),
      listener_("serve.net", [this](int fd) { HandleConnection(fd); }) {
  Metrics();
  owned_host_->Install(ServiceHost::Borrow(service));
}

TcpServer::~TcpServer() { Shutdown(); }

Status TcpServer::Start(int port) {
  return listener_.Start(port, /*backlog=*/128);
}

void TcpServer::HandleConnection(int fd) {
  // The fd is owned by the listener: it read-shuts it on Shutdown and
  // deregisters + closes it when this handler returns.
  while (true) {
    StatusOr<Frame> frame = ReadFrame(fd);
    if (!frame.ok()) {
      // A clean EOF ends the session; anything else is a protocol error
      // worth counting (and fatal for this connection either way).
      if (!(frame.status().code() == StatusCode::kUnavailable &&
            frame.status().message() == "eof")) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        Metrics().protocol_errors.Increment();
        UW_LOG(Warning) << "connection dropped: " << frame.status();
      }
      return;
    }
    // Respond in the version the request arrived in, so a legacy (v1)
    // client never sees a header extension it cannot parse.
    FrameOptions reply_options;
    reply_options.version = frame->version;

    if (frame->kind == FrameKind::kPing) {
      const std::string pong =
          EncodeControlFrame(FrameKind::kPong, reply_options);
      if (!WriteAll(fd, pong.data(), pong.size()).ok()) return;
      continue;
    }

    if (frame->kind == FrameKind::kExpandRequest) {
      WireRequest request;
      const Status decoded = DecodeRequestPayload(frame->payload, &request);
      if (!decoded.ok()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        Metrics().protocol_errors.Increment();
        UW_LOG(Warning) << "undecodable request: " << decoded;
        return;
      }
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      Metrics().requests.Increment();

      WireResponse response;
      response.request_id = request.request_id;
      ExpandRequest expand;
      expand.method = request.method;
      expand.k = static_cast<int>(request.k);
      expand.timeout_ms =
          request.timeout_ms > 0 ? static_cast<int>(request.timeout_ms) : -1;
      // Trace context rides in the frame header, not the payload: a v1
      // frame leaves both at their "absent" values.
      expand.trace_id = frame->trace_id;
      expand.force_trace = (frame->flags & kFrameFlagSample) != 0;
      bool resolved = true;
      if (request.by_index) {
        StatusOr<Query> query = frontend_.QueryByIndex(request.query_index);
        if (!query.ok()) {
          response.code = static_cast<uint32_t>(query.status().code());
          response.message = query.status().message();
          resolved = false;
        } else {
          expand.query = std::move(*query);
        }
      } else {
        expand.query = std::move(request.query);
      }
      if (resolved) {
        // Blocking per connection keeps responses in request order; the
        // service batches across connections, not within one.
        ExpandResult result = frontend_.Expand(std::move(expand));
        response.code = static_cast<uint32_t>(result.status.code());
        response.message = result.status.message();
        response.ranking = std::move(result.ranking);
      }
      const std::string encoded =
          EncodeResponseFrame(response, reply_options);
      if (!WriteAll(fd, encoded.data(), encoded.size()).ok()) return;
      continue;
    }

    if (frame->kind == FrameKind::kShardRetrieveRequest) {
      WireShardRetrieveRequest request;
      const Status decoded =
          DecodeShardRetrieveRequestPayload(frame->payload, &request);
      if (!decoded.ok()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        Metrics().protocol_errors.Increment();
        UW_LOG(Warning) << "undecodable shard retrieve: " << decoded;
        return;
      }
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      Metrics().requests.Increment();
      WireShardRetrieveResponse response;
      response.request_id = request.request_id;
      StatusOr<std::vector<ShardScoredEntity>> entities =
          frontend_.ScatterRetrieve(request.query,
                                    static_cast<size_t>(request.size));
      if (entities.ok()) {
        response.entities = std::move(*entities);
      } else {
        response.code = static_cast<uint32_t>(entities.status().code());
        response.message = entities.status().message();
      }
      const std::string encoded =
          EncodeShardRetrieveResponseFrame(response, reply_options);
      if (!WriteAll(fd, encoded.data(), encoded.size()).ok()) return;
      continue;
    }

    if (frame->kind == FrameKind::kShardScoreRequest) {
      WireShardScoreRequest request;
      const Status decoded =
          DecodeShardScoreRequestPayload(frame->payload, &request);
      if (!decoded.ok()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        Metrics().protocol_errors.Increment();
        UW_LOG(Warning) << "undecodable shard score: " << decoded;
        return;
      }
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      Metrics().requests.Increment();
      WireShardScoreResponse response;
      response.request_id = request.request_id;
      StatusOr<ShardScores> scores =
          frontend_.ScatterScore(request.query, request.ids);
      if (scores.ok()) {
        response.scores = std::move(*scores);
      } else {
        response.code = static_cast<uint32_t>(scores.status().code());
        response.message = scores.status().message();
      }
      const std::string encoded =
          EncodeShardScoreResponseFrame(response, reply_options);
      if (!WriteAll(fd, encoded.data(), encoded.size()).ok()) return;
      continue;
    }

    if (frame->kind == FrameKind::kQueryLookupRequest) {
      WireQueryLookupRequest request;
      const Status decoded =
          DecodeQueryLookupRequestPayload(frame->payload, &request);
      if (!decoded.ok()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        Metrics().protocol_errors.Increment();
        UW_LOG(Warning) << "undecodable query lookup: " << decoded;
        return;
      }
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      Metrics().requests.Increment();
      WireQueryLookupResponse response;
      response.request_id = request.request_id;
      StatusOr<Query> query = frontend_.QueryByIndex(request.query_index);
      if (query.ok()) {
        response.query = std::move(*query);
      } else {
        response.code = static_cast<uint32_t>(query.status().code());
        response.message = query.status().message();
      }
      const std::string encoded =
          EncodeQueryLookupResponseFrame(response, reply_options);
      if (!WriteAll(fd, encoded.data(), encoded.size()).ok()) return;
      continue;
    }

    // Response kinds (or future kinds) arriving at a server are a
    // protocol violation.
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    Metrics().protocol_errors.Increment();
    return;
  }
}

void TcpServer::Shutdown() {
  listener_.Shutdown();
  frontend_.Drain();
}

}  // namespace serve
}  // namespace ultrawiki
