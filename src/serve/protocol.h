#ifndef ULTRAWIKI_SERVE_PROTOCOL_H_
#define ULTRAWIKI_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "dataset/dataset.h"
#include "io/snapshot.h"

namespace ultrawiki {
namespace serve {

/// Length-prefixed framed wire protocol for the online expansion service.
/// Frames reuse the UWS2 discipline from io/snapshot.h — the same header
/// layout, field-explicit little-endian payload records (SnapshotWriter /
/// SnapshotReader), and a trailing CRC32 over header + payload — under a
/// distinct magic so a stray snapshot file never parses as a frame:
///
///   offset  size  field
///        0     4  magic "UWF1" (0x55574631, little-endian u32)
///        4     4  protocol version (1 or 2, u32)
///        8     4  frame kind tag (FrameKind, u32)
///       12     8  payload byte length (u64)
///   --- version 2 header extension (trace context) ---
///       20     8  trace id (u64; 0 = none)
///       28     4  trace flags (u32; bit 0 = sample this request)
///   --- end of extension ---
///        H     N  payload                     (H = 20 for v1, 32 for v2)
///      H+N     4  CRC32 (IEEE) over bytes [0, H+N)
///
/// Version compatibility: decoders accept both versions — a v1 frame
/// reads exactly as before (trace id 0, no flags), so an old client
/// interoperates with a new server unchanged; servers answer with the
/// version the request arrived in, so an old client never sees a v2
/// response. New clients talking to an old server pin
/// `FrameOptions::version = 1` (ServeClient::set_wire_version).
///
/// Decoding fails closed into `Status`: bad magic, version skew, unknown
/// kind, an implausible length (> kMaxFramePayload), checksum mismatch,
/// and truncation all reject the frame before any payload field is
/// trusted. The CRC covers the extension bytes, so a corrupted trace id
/// is caught like any payload flip.

inline constexpr uint32_t kFrameMagic = 0x55574631;  // "1FWU" on disk
/// Original header without trace context.
inline constexpr uint32_t kFrameVersionV1 = 1;
/// Current version: v1 plus the 12-byte trace-context extension.
inline constexpr uint32_t kFrameVersion = 2;
/// Common header prefix shared by every version.
inline constexpr size_t kFrameHeaderBytes = 20;
/// Full v2 header (prefix + trace-context extension).
inline constexpr size_t kFrameHeaderBytesV2 = 32;
/// FrameOptions::flags bit: the sender asks for this request to be
/// traced end to end regardless of the server's sampling rate.
inline constexpr uint32_t kFrameFlagSample = 1u << 0;
/// Requests carry a handful of seed ids and responses at most a few
/// thousand ranked ids; 16 MiB bounds a hostile length field.
inline constexpr uint64_t kMaxFramePayload = 16ull << 20;

enum class FrameKind : uint32_t {
  kExpandRequest = 1,
  kExpandResponse = 2,
  kPing = 3,
  kPong = 4,
  // --- Scatter plane (cluster serving, serve/router.h). Shard servers
  // answer these alongside the request plane; the router never needs a
  // second port or protocol. ---
  kShardRetrieveRequest = 5,
  kShardRetrieveResponse = 6,
  kShardScoreRequest = 7,
  kShardScoreResponse = 8,
  kQueryLookupRequest = 9,
  kQueryLookupResponse = 10,
};

/// One query over the wire. Either `by_index` (resolve against the
/// server's dataset — the common scripting path) or an explicit Query
/// (ultra_class is carried for bookkeeping but seeds drive expansion).
struct WireRequest {
  uint64_t request_id = 0;
  std::string method;      // "retexpan", "genexpan", ... (service.h)
  uint32_t k = 20;         // ranking length
  uint32_t timeout_ms = 0; // 0 = server default (UW_SERVE_TIMEOUT_MS)
  bool by_index = true;
  uint32_t query_index = 0;
  Query query;             // used when !by_index
};

/// The matching response: the request's id, a status, and (when OK) the
/// ranked entity ids, best first.
struct WireResponse {
  uint64_t request_id = 0;
  uint32_t code = 0;  // StatusCode
  std::string message;
  std::vector<EntityId> ranking;

  Status ToStatus() const {
    return Status(static_cast<StatusCode>(code), message);
  }
};

/// One candidate scored by a shard's recall stage: the exact full-scan
/// centroid score, the candidate's *global* position in the dataset
/// candidate list (the RanksBefore tie-break, so a router-side TopKStream
/// merge reproduces the unsharded order bit for bit), and its entity id.
/// Scores travel as IEEE-754 bit patterns (PutF32), so the merge sees the
/// same floats the shard computed.
struct ShardScoredEntity {
  float score = 0.0f;
  uint64_t position = 0;
  EntityId id = kInvalidEntityId;
};

/// Per-candidate positive/negative seed-centroid scores for the router's
/// rerank phase; `pos[i]` and `neg[i]` score the i-th requested id.
struct ShardScores {
  std::vector<float> pos;
  std::vector<float> neg;
};

/// Scatter recall request: top-`size` of the shard's candidate slice by
/// positive-seed centroid score, seeds excluded.
struct WireShardRetrieveRequest {
  uint64_t request_id = 0;
  uint64_t size = 0;
  Query query;
};

struct WireShardRetrieveResponse {
  uint64_t request_id = 0;
  uint32_t code = 0;  // StatusCode
  std::string message;
  std::vector<ShardScoredEntity> entities;

  Status ToStatus() const {
    return Status(static_cast<StatusCode>(code), message);
  }
};

/// Scatter score request: pos/neg seed-centroid scores for explicit ids
/// (the rerank phase sends each shard the merged-list ids it owns).
struct WireShardScoreRequest {
  uint64_t request_id = 0;
  std::vector<EntityId> ids;
  Query query;
};

struct WireShardScoreResponse {
  uint64_t request_id = 0;
  uint32_t code = 0;  // StatusCode
  std::string message;
  ShardScores scores;

  Status ToStatus() const {
    return Status(static_cast<StatusCode>(code), message);
  }
};

/// Resolves a dataset query index to its full Query so the router can
/// serve by-index requests without a resident pipeline.
struct WireQueryLookupRequest {
  uint64_t request_id = 0;
  uint32_t query_index = 0;
};

struct WireQueryLookupResponse {
  uint64_t request_id = 0;
  uint32_t code = 0;  // StatusCode
  std::string message;
  Query query;

  Status ToStatus() const {
    return Status(static_cast<StatusCode>(code), message);
  }
};

/// Header-level framing knobs: the wire version to emit and, for v2, the
/// trace context carried in the header extension. The defaults frame a
/// current-version request with no trace context.
struct FrameOptions {
  uint32_t version = kFrameVersion;
  uint64_t trace_id = 0;
  uint32_t flags = 0;
};

/// Serializes a request/response payload and frames it (header + CRC32).
std::string EncodeRequestFrame(const WireRequest& request,
                               const FrameOptions& options = {});
std::string EncodeResponseFrame(const WireResponse& response,
                                const FrameOptions& options = {});
/// Payload-free control frames (ping/pong).
std::string EncodeControlFrame(FrameKind kind,
                               const FrameOptions& options = {});
/// Scatter-plane frames (same framing discipline, distinct kinds).
std::string EncodeShardRetrieveRequestFrame(
    const WireShardRetrieveRequest& request, const FrameOptions& options = {});
std::string EncodeShardRetrieveResponseFrame(
    const WireShardRetrieveResponse& response,
    const FrameOptions& options = {});
std::string EncodeShardScoreRequestFrame(const WireShardScoreRequest& request,
                                         const FrameOptions& options = {});
std::string EncodeShardScoreResponseFrame(
    const WireShardScoreResponse& response, const FrameOptions& options = {});
std::string EncodeQueryLookupRequestFrame(
    const WireQueryLookupRequest& request, const FrameOptions& options = {});
std::string EncodeQueryLookupResponseFrame(
    const WireQueryLookupResponse& response, const FrameOptions& options = {});

/// Decodes a payload previously carried by a verified frame.
Status DecodeRequestPayload(std::string_view payload, WireRequest* request);
Status DecodeResponsePayload(std::string_view payload,
                             WireResponse* response);
Status DecodeShardRetrieveRequestPayload(std::string_view payload,
                                         WireShardRetrieveRequest* request);
Status DecodeShardRetrieveResponsePayload(std::string_view payload,
                                          WireShardRetrieveResponse* response);
Status DecodeShardScoreRequestPayload(std::string_view payload,
                                      WireShardScoreRequest* request);
Status DecodeShardScoreResponsePayload(std::string_view payload,
                                       WireShardScoreResponse* response);
Status DecodeQueryLookupRequestPayload(std::string_view payload,
                                       WireQueryLookupRequest* request);
Status DecodeQueryLookupResponsePayload(std::string_view payload,
                                        WireQueryLookupResponse* response);

/// A verified frame read off a socket: kind + raw payload bytes, plus the
/// header version it arrived in and (for v2) its trace context. A v1
/// frame decodes with trace_id 0 and no flags.
struct Frame {
  FrameKind kind = FrameKind::kPing;
  std::string payload;
  uint32_t version = kFrameVersionV1;
  uint64_t trace_id = 0;
  uint32_t flags = 0;
};

/// Blocking exact-size socket I/O. `ReadExact` returns kUnavailable with
/// message "eof" on a clean close before the first byte, kInternal on
/// short reads / errors. `WriteAll` sends with MSG_NOSIGNAL so a dead
/// peer surfaces as a Status, never SIGPIPE.
Status ReadExact(int fd, void* buffer, size_t bytes);
Status WriteAll(int fd, const void* buffer, size_t bytes);

/// Reads and verifies one frame (header sanity, length cap, CRC32).
StatusOr<Frame> ReadFrame(int fd);

}  // namespace serve
}  // namespace ultrawiki

#endif  // ULTRAWIKI_SERVE_PROTOCOL_H_
