#include "serve/service.h"

#include <algorithm>

#include "common/env.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "expand/expander.h"
#include "math/topk.h"
#include "obs/metrics.h"

namespace ultrawiki {
namespace serve {
namespace {

/// Serving metrics (see README "Online expansion service"). Counters
/// partition every submitted request into exactly one terminal outcome:
/// completed, shed, or timeout. `latency_us` is the lifetime histogram
/// (the deterministic bench artifact); `latency_us.1m` is the sliding
/// ~60s window the admin endpoint's p50/p99 come from.
struct ServeMetrics {
  obs::Counter& accepted = obs::GetCounter("serve.accepted");
  obs::Counter& completed = obs::GetCounter("serve.completed");
  obs::Counter& shed = obs::GetCounter("serve.shed");
  obs::Counter& timeout = obs::GetCounter("serve.timeout");
  obs::Counter& rejected = obs::GetCounter("serve.rejected");
  obs::Counter& batches = obs::GetCounter("serve.batches");
  obs::Counter& traced = obs::GetCounter("serve.traced");
  obs::Counter& slow_queries = obs::GetCounter("serve.slow_queries");
  /// Scatter plane (cluster serving): shard-scoped recall and rerank
  /// scoring calls, plus by-index query lookups.
  obs::Counter& scatter_retrieves = obs::GetCounter("serve.scatter.retrieves");
  obs::Counter& scatter_scores = obs::GetCounter("serve.scatter.scores");
  obs::Counter& lookups = obs::GetCounter("serve.lookups");
  /// Completed requests whose expander degraded to best-so-far at the
  /// deadline (subset of `completed`, disjoint from `timeout`).
  obs::Counter& degraded = obs::GetCounter("serve.degraded");
  obs::Gauge& queue_depth = obs::GetGauge("serve.queue_depth");
  obs::Gauge& queue_peak = obs::GetGauge("serve.queue_peak");
  obs::Histogram& batch_size =
      obs::GetHistogram("serve.batch_size", {1, 2, 4, 8, 16, 32, 64, 128});
  obs::Histogram& latency_us =
      obs::GetHistogram("serve.latency_us", obs::LatencyBoundsUs());
  obs::WindowedHistogram& latency_us_1m =
      obs::GetWindowedHistogram("serve.latency_us.1m", obs::LatencyBoundsUs());
};

ServeMetrics& Metrics() {
  static ServeMetrics* metrics = new ServeMetrics();
  return *metrics;
}

int64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

std::future<ExpandResult> ImmediateResult(Status status) {
  std::promise<ExpandResult> promise;
  promise.set_value(ExpandResult{std::move(status), {}});
  return promise.get_future();
}

}  // namespace

ServeConfig ServeConfig::FromEnv() {
  ServeConfig config;
  config.max_batch = EnvInt("UW_SERVE_BATCH", config.max_batch, 1);
  config.batch_wait_ms =
      EnvInt("UW_SERVE_BATCH_WAIT_MS", config.batch_wait_ms, 0);
  config.max_queue = EnvInt("UW_SERVE_QUEUE", config.max_queue, 1);
  config.default_timeout_ms =
      EnvInt("UW_SERVE_TIMEOUT_MS", config.default_timeout_ms, 0);
  config.trace_sample = EnvInt("UW_TRACE_SAMPLE", config.trace_sample, 0);
  config.slow_query_ms = EnvInt("UW_SLOW_QUERY_MS", config.slow_query_ms, 0);
  return config;
}

const std::vector<std::string>& KnownMethods() {
  static const std::vector<std::string>* methods =
      new std::vector<std::string>{"retexpan", "genexpan", "probexpan",
                                   "setexpan", "case",     "cgexpan",
                                   "gpt4",     "interaction"};
  return *methods;
}

std::unique_ptr<Expander> MakeExpanderByName(Pipeline& pipeline,
                                             const std::string& method) {
  if (method == "retexpan") return pipeline.MakeRetExpan();
  if (method == "genexpan") return pipeline.MakeGenExpan();
  if (method == "probexpan") return pipeline.MakeProbExpan();
  if (method == "setexpan") return pipeline.MakeSetExpan();
  if (method == "case") return pipeline.MakeCaSE();
  if (method == "cgexpan") return pipeline.MakeCgExpan();
  if (method == "gpt4") return pipeline.MakeGpt4Baseline();
  if (method == "interaction") {
    return pipeline.MakeInteraction(InteractionOrder::kGenThenRet);
  }
  return nullptr;
}

ExpansionService::ExpansionService(Pipeline& pipeline, ServeConfig config)
    : pipeline_(pipeline), config_(config) {
  Metrics();  // register eagerly so snapshots list the serve.* family
  scheduler_ = std::thread([this] { SchedulerLoop(); });
}

ExpansionService::~ExpansionService() { Drain(); }

Status ExpansionService::PrewarmMethods(
    const std::vector<std::string>& methods) {
  for (const std::string& method : methods) {
    if (GetOrBuildExpander(method) == nullptr) {
      return Status::InvalidArgument("unknown method: " + method);
    }
  }
  return Status::Ok();
}

Expander* ExpansionService::GetOrBuildExpander(const std::string& method) {
  std::lock_guard<std::mutex> lock(expander_mutex_);
  auto it = expanders_.find(method);
  if (it != expanders_.end()) return it->second.get();
  std::unique_ptr<Expander> expander = MakeExpanderByName(pipeline_, method);
  if (expander == nullptr) return nullptr;
  Expander* raw = expander.get();
  expanders_.emplace(method, std::move(expander));
  return raw;
}

std::future<ExpandResult> ExpansionService::Submit(ExpandRequest request) {
  // Validate before admission so malformed requests never consume queue
  // capacity or batch slots.
  const auto& known = KnownMethods();
  if (std::find(known.begin(), known.end(), request.method) == known.end()) {
    Metrics().rejected.Increment();
    return ImmediateResult(
        Status::InvalidArgument("unknown method: " + request.method));
  }
  if (request.k <= 0) {
    Metrics().rejected.Increment();
    return ImmediateResult(Status::InvalidArgument("k must be positive"));
  }

  Pending pending;
  pending.admitted = std::chrono::steady_clock::now();
  const int timeout_ms = request.timeout_ms >= 0 ? request.timeout_ms
                                                 : config_.default_timeout_ms;
  if (timeout_ms > 0) {
    pending.has_deadline = true;
    pending.deadline =
        pending.admitted + std::chrono::milliseconds(timeout_ms);
  }
  // Trace decision at admission. A trace is allocated when the request is
  // explicitly sampled (forced by the client or hit by the every-Nth
  // sampler) or when a slow-query threshold is armed — in the latter case
  // the trace is speculative and recorded only if the request turns out
  // slow. `force_trace` downstream means "record unconditionally".
  const uint64_t sequence =
      sequence_.fetch_add(1, std::memory_order_relaxed) + 1;
  const bool sampled =
      request.force_trace ||
      (config_.trace_sample > 0 && sequence % config_.trace_sample == 0);
  request.force_trace = sampled;
  if (sampled || config_.slow_query_ms > 0) {
    const uint64_t trace_id =
        request.trace_id != 0 ? request.trace_id : sequence;
    pending.trace = std::make_unique<obs::RequestTrace>(
        trace_id, request.method, pending.admitted);
  }
  pending.request = std::move(request);
  std::future<ExpandResult> future = pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) {
      Metrics().rejected.Increment();
      pending.promise.set_value(
          ExpandResult{Status::Unavailable("service draining"), {}});
      return future;
    }
    if (static_cast<int>(queue_.size()) >= config_.max_queue) {
      // Admission control: shed immediately instead of growing the
      // backlog past the configured bound.
      Metrics().shed.Increment();
      pending.promise.set_value(ExpandResult{
          Status::Unavailable("overloaded: queue depth at limit"), {}});
      return future;
    }
    queue_.push_back(std::move(pending));
    inflight_.fetch_add(1, std::memory_order_relaxed);
    Metrics().accepted.Increment();
    Metrics().queue_depth.Set(static_cast<int64_t>(queue_.size()));
    Metrics().queue_peak.UpdateMax(static_cast<int64_t>(queue_.size()));
  }
  scheduler_cv_.notify_all();
  return future;
}

ExpandResult ExpansionService::ExpandSync(ExpandRequest request) {
  return Submit(std::move(request)).get();
}

int ExpansionService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(queue_.size());
}

bool ExpansionService::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

void ExpansionService::FinishTrace(
    Pending& pending, std::chrono::steady_clock::time_point end) {
  if (pending.trace == nullptr) return;
  obs::RequestTraceData data = pending.trace->Finish(end);
  pending.trace.reset();
  const bool slow =
      config_.slow_query_ms > 0 &&
      data.total_us >= static_cast<int64_t>(config_.slow_query_ms) * 1000;
  if (slow) Metrics().slow_queries.Increment();
  if (slow || pending.request.force_trace) {
    // `traced` counts exactly the traces that are published. Counting at
    // admission would also tally requests that were then shed (their
    // speculative trace is dropped unrecorded) and speculative slow-query
    // traces that never crossed the threshold.
    Metrics().traced.Increment();
    obs::SlowQueryLog::Global().Record(std::move(data));
  }
}

Status ExpansionService::EnableSharding(const ShardSpec& spec) {
  if (!spec.valid()) {
    return Status::InvalidArgument(
        "invalid shard spec: index " + std::to_string(spec.index) + " of " +
        std::to_string(spec.count));
  }
  shard_spec_ = spec;
  shard_store_.reset();
  // A single-shard "cluster" serves scatter calls off the full store —
  // the partition is the identity, so no derived store is needed.
  if (spec.count > 1) {
    shard_store_ = pipeline_.BuildShardStore(spec);
    if (shard_store_ == nullptr) {
      return Status::Internal("shard store construction failed");
    }
  }
  return Status::Ok();
}

StatusOr<std::vector<ShardScoredEntity>> ExpansionService::ScatterRetrieve(
    const Query& query, size_t size) const {
  if (draining()) return Status::Unavailable("service draining");
  Metrics().scatter_retrieves.Increment();
  const EntityStore& store =
      shard_store_ != nullptr ? *shard_store_ : pipeline_.store();
  const std::vector<EntityId>& candidates = pipeline_.candidates();
  const std::vector<EntityId> seeds = SortedSeedsOf(query);
  // The shard's slice of the full scan: stride over the global candidate
  // list (position p belongs to shard p % count), skip seeds, score the
  // survivors with the exact centroid kernel, and keep the top `size` by
  // RanksBefore over *global* positions. Same loop body as RetExpan's
  // non-ANN InitialExpansion, restricted to this shard's positions — so
  // the union of all shards' results is a superset of the global top
  // `size`, score- and tie-break-identical.
  std::vector<size_t> positions;
  std::vector<EntityId> non_seed;
  positions.reserve(candidates.size() / static_cast<size_t>(shard_spec_.count) +
                    1);
  non_seed.reserve(positions.capacity());
  for (size_t p = static_cast<size_t>(shard_spec_.index);
       p < candidates.size(); p += static_cast<size_t>(shard_spec_.count)) {
    const EntityId id = candidates[p];
    if (std::binary_search(seeds.begin(), seeds.end(), id)) continue;
    positions.push_back(p);
    non_seed.push_back(id);
  }
  const std::vector<float> scores =
      store.SeedCentroidScores(query.pos_seeds, non_seed);
  TopKStream stream(size);
  for (size_t i = 0; i < positions.size(); ++i) {
    stream.Push(scores[i], positions[i]);
  }
  const std::vector<ScoredIndex> scored = stream.TakeSortedDescending();
  std::vector<ShardScoredEntity> entities;
  entities.reserve(scored.size());
  for (const ScoredIndex& s : scored) {
    entities.push_back(ShardScoredEntity{
        s.score, static_cast<uint64_t>(s.index), candidates[s.index]});
  }
  return entities;
}

StatusOr<ShardScores> ExpansionService::ScatterScore(
    const Query& query, const std::vector<EntityId>& ids) const {
  if (draining()) return Status::Unavailable("service draining");
  Metrics().scatter_scores.Increment();
  const EntityStore& store =
      shard_store_ != nullptr ? *shard_store_ : pipeline_.store();
  ShardScores scores;
  scores.pos = store.SeedCentroidScores(query.pos_seeds, ids);
  scores.neg = store.SeedCentroidScores(query.neg_seeds, ids);
  return scores;
}

StatusOr<Query> ExpansionService::QueryByIndex(uint32_t index) const {
  const std::vector<Query>& queries = pipeline_.dataset().queries;
  if (index >= queries.size()) {
    return Status::OutOfRange("query index " + std::to_string(index) +
                              " out of range (have " +
                              std::to_string(queries.size()) + ")");
  }
  Metrics().lookups.Increment();
  return queries[index];
}

void ExpansionService::Drain() {
  std::call_once(drain_once_, [this] {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      draining_ = true;
    }
    scheduler_cv_.notify_all();
    if (scheduler_.joinable()) scheduler_.join();
  });
}

void ExpansionService::SchedulerLoop() {
  while (true) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      scheduler_cv_.wait(lock,
                         [this] { return draining_ || !queue_.empty(); });
      if (queue_.empty()) return;  // draining and fully served
      // Dynamic micro-batching: give a partial batch a short window to
      // fill before running it. Draining skips the window — latency no
      // longer matters, only finishing the backlog.
      if (static_cast<int>(queue_.size()) < config_.max_batch &&
          config_.batch_wait_ms > 0 && !draining_) {
        scheduler_cv_.wait_for(
            lock, std::chrono::milliseconds(config_.batch_wait_ms), [this] {
              return static_cast<int>(queue_.size()) >= config_.max_batch ||
                     draining_;
            });
      }
      const size_t take = std::min<size_t>(
          static_cast<size_t>(config_.max_batch), queue_.size());
      batch.reserve(take);
      const auto dequeued = std::chrono::steady_clock::now();
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        batch.back().dequeued = dequeued;
        queue_.pop_front();
      }
      Metrics().queue_depth.Set(static_cast<int64_t>(queue_.size()));
    }
    ExecuteBatch(std::move(batch));
  }
}

void ExpansionService::ExecuteBatch(std::vector<Pending> batch) {
  if (batch.empty()) return;
  if (config_.synthetic_delay_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config_.synthetic_delay_ms));
  }
  Metrics().batches.Increment();
  Metrics().batch_size.Observe(static_cast<int64_t>(batch.size()));

  // Expired deadlines complete without executing; resolving the expander
  // happens on the scheduler thread because a first use may lazily train
  // pipeline substrates (a mutation the parallel section must not race).
  struct Runnable {
    Pending* pending;
    Expander* expander;
  };
  std::vector<Runnable> runnable;
  runnable.reserve(batch.size());
  const auto now = std::chrono::steady_clock::now();
  for (Pending& pending : batch) {
    if (pending.has_deadline && now >= pending.deadline) {
      Metrics().timeout.Increment();
      const int64_t latency = ElapsedUs(pending.admitted);
      Metrics().latency_us.Observe(latency);
      Metrics().latency_us_1m.Observe(latency);
      if (pending.trace != nullptr) {
        pending.trace->AddInterval("queue_wait", pending.admitted,
                                   pending.dequeued);
        FinishTrace(pending, std::chrono::steady_clock::now());
      }
      inflight_.fetch_sub(1, std::memory_order_relaxed);
      pending.promise.set_value(ExpandResult{
          Status::DeadlineExceeded("deadline expired before execution"),
          {}});
      continue;
    }
    Expander* expander = GetOrBuildExpander(pending.request.method);
    if (expander == nullptr) {  // unreachable: Submit validates methods
      inflight_.fetch_sub(1, std::memory_order_relaxed);
      pending.promise.set_value(ExpandResult{
          Status::Internal("expander vanished: " + pending.request.method),
          {}});
      continue;
    }
    runnable.push_back({&pending, expander});
  }

  // One lane per request. Expand is logically const, and any parallelism
  // inside an expander collapses to the exact sequential path when
  // invoked from a pool task, so rankings are independent of batch
  // composition and thread count.
  ThreadPool::Global().ParallelFor(
      0, static_cast<int64_t>(runnable.size()), /*grain=*/1, [&](int64_t i) {
        Runnable& item = runnable[static_cast<size_t>(i)];
        Pending& pending = *item.pending;
        obs::RequestTrace* trace = pending.trace.get();
        const auto exec_start = std::chrono::steady_clock::now();
        if (trace != nullptr) {
          // The two waiting stages, then the compute stage opened below;
          // together with the residual they tile the request end to end.
          trace->AddInterval("queue_wait", pending.admitted,
                             pending.dequeued);
          trace->AddInterval("batch_wait", pending.dequeued, exec_start);
        }
        ExpandResult result;
        {
          // Bind the trace to this lane so every UW_SPAN the expander
          // opens (retrieval, rerank, beam rounds, ...) records into it.
          // Nested ParallelFor calls run inline on a pool lane, so the
          // whole expansion stays on this thread.
          obs::ScopedRequestBinding binding(trace);
          const int handle =
              trace != nullptr ? trace->BeginSpan("execute") : -1;
          // Thread the request deadline into the expander so anytime
          // methods (GenExpan) degrade to best-so-far instead of blowing
          // the tail; budget-blind methods ignore it.
          ExpandBudget expand_budget;
          if (pending.has_deadline) expand_budget.deadline = pending.deadline;
          ExpandOutcome outcome = item.expander->ExpandWithBudget(
              pending.request.query,
              static_cast<size_t>(pending.request.k), expand_budget);
          result.ranking = std::move(outcome.ranking);
          result.degraded = outcome.degraded;
          if (trace != nullptr) trace->EndSpan(handle);
        }
        result.status = Status::Ok();
        if (result.degraded) Metrics().degraded.Increment();
        const auto end = std::chrono::steady_clock::now();
        const int64_t latency = std::chrono::duration_cast<
                                    std::chrono::microseconds>(
                                    end - pending.admitted)
                                    .count();
        Metrics().completed.Increment();
        Metrics().latency_us.Observe(latency);
        Metrics().latency_us_1m.Observe(latency);
        // Publish the trace before resolving the future so a client that
        // observes completion also observes its slow-log entry.
        FinishTrace(pending, end);
        inflight_.fetch_sub(1, std::memory_order_relaxed);
        pending.promise.set_value(std::move(result));
      });
}

}  // namespace serve
}  // namespace ultrawiki
