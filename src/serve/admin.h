#ifndef ULTRAWIKI_SERVE_ADMIN_H_
#define ULTRAWIKI_SERVE_ADMIN_H_

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "serve/service.h"

namespace ultrawiki {
namespace serve {

/// Live telemetry sidecar for uw_serve: a second listener (bound by
/// `UW_ADMIN_PORT`) speaking just enough HTTP/1.0 for curl and a
/// Prometheus scraper, so the serving process can be inspected mid-load
/// without touching the request plane. Routes:
///
///   /metrics  Prometheus text exposition of every registered metric,
///             including the sliding-window serving percentiles
///             (uw_serve_latency_us_1m quantile series).
///   /healthz  "ok" while serving, 503 "draining" once drain started.
///   /statusz  one-line JSON: draining flag, queue depth, in-flight
///             count, accepted/slow-trace totals, slow-log capacity.
///   /slow     the slow-query log as Chrome trace-event JSON — save and
///             load into chrome://tracing or Perfetto.
///   /slowz    the same traces as plain structured JSON for scripts.
///
/// One short-lived handler thread per connection (mirrors TcpServer;
/// admin traffic is a human or a scraper, not a fleet). Responses are
/// built from lock-free metric snapshots and the mutex-guarded slow-log
/// ring, so scraping under full serving load is safe — asserted by the
/// concurrent-scrape test under TSan.
class AdminServer {
 public:
  /// `service` must outlive the admin server.
  explicit AdminServer(ExpansionService& service);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Binds 0.0.0.0:`port` (0 picks an ephemeral port), listens, and
  /// spawns the accept thread. Call at most once.
  Status Start(int port);

  /// The bound port (after a successful Start).
  int port() const { return port_; }

  /// Stops accepting, joins the handlers; idempotent.
  void Shutdown();

  /// Route dispatch, exposed for tests: the response body and content
  /// type for `path`, or a 404 body. Exactly what a socket client gets.
  struct HttpReply {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };
  HttpReply Handle(const std::string& path) const;

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  ExpansionService& service_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex conn_mutex_;  // guards conn_threads_
  std::vector<std::thread> conn_threads_;
  std::once_flag shutdown_once_;
};

}  // namespace serve
}  // namespace ultrawiki

#endif  // ULTRAWIKI_SERVE_ADMIN_H_
