#ifndef ULTRAWIKI_SERVE_ADMIN_H_
#define ULTRAWIKI_SERVE_ADMIN_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "serve/service_host.h"
#include "serve/tcp_listener.h"

namespace ultrawiki {
namespace serve {

/// Live telemetry sidecar for uw_serve and the shard servers: a second
/// listener (bound by `UW_ADMIN_PORT`) speaking just enough HTTP/1.0 for
/// curl, a Prometheus scraper, and the cluster router's health poller, so
/// the serving process can be inspected mid-load without touching the
/// request plane. Routes:
///
///   /metrics  Prometheus text exposition of every registered metric,
///             including the sliding-window serving percentiles
///             (uw_serve_latency_us_1m quantile series).
///   /healthz  "ok" while serving, 503 "draining" once drain started.
///   /statusz  one-line JSON: draining flag, queue depth, in-flight
///             count, serving generation, shard scope, config knobs,
///             slow-log totals. The router's health poller keys its
///             replica load-balancing off the draining / queue_depth /
///             inflight fields.
///   /slow     the slow-query log as Chrome trace-event JSON — save and
///             load into chrome://tracing or Perfetto.
///   /slowz    the same traces as plain structured JSON for scripts.
///
/// One short-lived handler thread per connection (TcpListener; admin
/// traffic is a human, a scraper, or the router's poller — not a fleet).
/// Responses are built from lock-free metric snapshots and the
/// mutex-guarded slow-log ring, so scraping under full serving load is
/// safe — asserted by the concurrent-scrape test under TSan. Status
/// fields read the *current* generation, so a hot swap is visible on the
/// next scrape.
class AdminServer {
 public:
  /// `host` must outlive the admin server (the uw_serve / shard path:
  /// status follows the installed generation across hot swaps).
  explicit AdminServer(ServiceHost& host);

  /// Convenience for single-service setups (tests, benches): wraps
  /// `service` in an internally-owned single-generation ServiceHost.
  /// `service` must outlive the admin server.
  explicit AdminServer(ExpansionService& service);

  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Binds 0.0.0.0:`port` (0 picks an ephemeral port), listens, and
  /// spawns the accept thread. Call at most once.
  Status Start(int port);

  /// The bound port (after a successful Start).
  int port() const { return listener_.port(); }

  /// Stops accepting, joins the handlers; idempotent.
  void Shutdown();

  /// Route dispatch, exposed for tests: the response body and content
  /// type for `path`, or a 404 body. Exactly what a socket client gets.
  struct HttpReply {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };
  HttpReply Handle(const std::string& path) const;

 private:
  void HandleConnection(int fd);

  /// Set only by the ExpansionService convenience constructor.
  std::unique_ptr<ServiceHost> owned_host_;
  ServiceHost& host_;
  TcpListener listener_;
};

}  // namespace serve
}  // namespace ultrawiki

#endif  // ULTRAWIKI_SERVE_ADMIN_H_
