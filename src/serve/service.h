#ifndef ULTRAWIKI_SERVE_SERVICE_H_
#define ULTRAWIKI_SERVE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "expand/pipeline.h"
#include "obs/request_trace.h"
#include "serve/protocol.h"

namespace ultrawiki {
namespace serve {

/// Knobs of the online expansion service. `FromEnv()` resolves the
/// production defaults from the environment:
///
///   UW_SERVE_BATCH         max requests coalesced into one batch (16)
///   UW_SERVE_BATCH_WAIT_MS how long a forming batch waits to fill (1)
///   UW_SERVE_QUEUE         admission-controlled queue depth bound (256)
///   UW_SERVE_TIMEOUT_MS    default per-request deadline, 0 = none (0)
///   UW_TRACE_SAMPLE        trace every Nth accepted request, 0 = off (0)
///   UW_SLOW_QUERY_MS       log requests slower than this, 0 = off (0)
struct ServeConfig {
  int max_batch = 16;
  int batch_wait_ms = 1;
  int max_queue = 256;
  int default_timeout_ms = 0;
  /// Synthetic per-batch execution delay. Load-shaping knob for the
  /// overload bench and the shedding/deadline tests; leave 0 in
  /// production.
  int synthetic_delay_ms = 0;
  /// Trace every Nth accepted request (1 = all, 0 = only forced /
  /// slow-threshold traces). Tracing is passive: rankings are
  /// bit-identical at any sampling rate.
  int trace_sample = 0;
  /// Requests slower end-to-end than this land in the SlowQueryLog with
  /// their full span tree. 0 disables the slow-query log.
  int slow_query_ms = 0;

  static ServeConfig FromEnv();
};

/// One expansion request submitted to the service. `timeout_ms < 0`
/// inherits the config default; 0 disables the deadline.
struct ExpandRequest {
  std::string method;
  Query query;
  int k = 20;
  int timeout_ms = -1;
  /// Trace context from the wire (frame header extension). `trace_id` 0
  /// means none supplied — the service assigns its own if it decides to
  /// trace. `force_trace` (the header's sample flag) traces this request
  /// regardless of the sampling rate.
  uint64_t trace_id = 0;
  bool force_trace = false;
};

/// Status + ranking. On any non-OK status the ranking is empty.
/// `degraded` marks an OK result whose expander hit the request deadline
/// mid-flight and returned a budget-truncated (but valid, ranked)
/// best-so-far instead of timing out — the anytime-degradation contract.
struct ExpandResult {
  Status status;
  std::vector<EntityId> ranking;
  bool degraded = false;
};

/// Case-stable registry of method names the service can serve
/// ("retexpan", "genexpan", "probexpan", "setexpan", "case", "cgexpan",
/// "gpt4", "interaction"). Shared with the offline query runner.
const std::vector<std::string>& KnownMethods();

/// Builds the expander for `method`, or nullptr for an unknown name.
/// May lazily train pipeline substrates (contrast store, distributions).
std::unique_ptr<Expander> MakeExpanderByName(Pipeline& pipeline,
                                             const std::string& method);

/// Long-lived serving front-end over a resident Pipeline.
///
/// Requests enter a bounded MPMC queue (admission control: when
/// `max_queue` requests are already waiting, new arrivals are shed
/// immediately with kUnavailable rather than growing the backlog). A
/// dedicated scheduler thread coalesces up to `max_batch` requests —
/// waiting at most `batch_wait_ms` for a partial batch to fill — and
/// executes the batch on the global ThreadPool, one request per lane.
/// Expired deadlines complete with kDeadlineExceeded without executing.
///
/// Determinism: expanders are logically const (expander.h contract), so a
/// request's ranking is bit-identical whether it is served alone or
/// coalesced into any batch composition, at any thread count.
///
/// `Drain()` (also run by the destructor) stops admission, serves
/// everything already queued, and joins the scheduler — the graceful
/// SIGINT/SIGTERM path of `uw_serve`.
class ExpansionService {
 public:
  /// `pipeline` must outlive the service. Expander instances are created
  /// lazily on first use per method; `PrewarmMethods` front-loads that
  /// cost before traffic arrives.
  explicit ExpansionService(Pipeline& pipeline,
                            ServeConfig config = ServeConfig::FromEnv());
  ~ExpansionService();

  ExpansionService(const ExpansionService&) = delete;
  ExpansionService& operator=(const ExpansionService&) = delete;

  /// Builds the expanders for `methods` now. Unknown names fail.
  Status PrewarmMethods(const std::vector<std::string>& methods);

  /// Asynchronous submission; the future resolves when the request is
  /// served, shed, or timed out. Unknown methods and invalid k fail
  /// immediately with kInvalidArgument.
  std::future<ExpandResult> Submit(ExpandRequest request);

  /// Blocking convenience over Submit.
  ExpandResult ExpandSync(ExpandRequest request);

  /// Stops admission, serves the backlog, joins the scheduler.
  /// Idempotent.
  void Drain();

  // --- Shard role (cluster serving; see serve/router.h). ---

  /// Scopes the scatter plane to one shard of the deterministic candidate
  /// partition. With `count > 1` this builds (or loads from the artifact
  /// cache) the shard's EntityStore; `count == 1` serves scatter calls
  /// straight off the full store. Call before taking traffic — the shard
  /// store swap is not synchronized against in-flight scatter calls.
  Status EnableSharding(const ShardSpec& spec);

  /// Scatter recall: the top-`size` candidates of this service's shard
  /// slice by positive-seed centroid score, seeds excluded, carrying
  /// *global* candidate positions so the router's TopKStream merge
  /// reproduces the unsharded RanksBefore order bit for bit.
  StatusOr<std::vector<ShardScoredEntity>> ScatterRetrieve(
      const Query& query, size_t size) const;

  /// Scatter rerank support: pos/neg seed-centroid scores for explicit
  /// ids (scored on this shard's store; ids the store lacks score 0,
  /// exactly as the full scan scores them).
  StatusOr<ShardScores> ScatterScore(const Query& query,
                                     const std::vector<EntityId>& ids) const;

  /// Resolves a dataset query index (the wire `by_index` path).
  StatusOr<Query> QueryByIndex(uint32_t index) const;

  const ShardSpec& shard_spec() const { return shard_spec_; }

  const ServeConfig& config() const { return config_; }
  const Pipeline& pipeline() const { return pipeline_; }
  /// Requests currently waiting (excludes the executing batch).
  int queue_depth() const;
  /// Requests admitted but not yet resolved (queued + executing).
  int inflight() const { return inflight_.load(std::memory_order_relaxed); }
  /// True once Drain() has started (admission is closed).
  bool draining() const;

 private:
  struct Pending {
    ExpandRequest request;
    std::chrono::steady_clock::time_point admitted;
    std::chrono::steady_clock::time_point dequeued;
    std::chrono::steady_clock::time_point deadline;
    bool has_deadline = false;
    std::promise<ExpandResult> promise;
    /// Non-null only for traced requests (sampled / forced / slow-query
    /// threshold armed). Epoch = `admitted`.
    std::unique_ptr<obs::RequestTrace> trace;
  };

  void SchedulerLoop();
  void ExecuteBatch(std::vector<Pending> batch);
  Expander* GetOrBuildExpander(const std::string& method);
  /// Finishes a traced request: records the trace into the SlowQueryLog
  /// when it is slow or forced, then drops it.
  void FinishTrace(Pending& pending,
                   std::chrono::steady_clock::time_point end);

  Pipeline& pipeline_;
  const ServeConfig config_;

  /// Scatter-plane scope. `shard_store_` is null when this service serves
  /// the whole candidate list (count == 1); otherwise it holds the rows
  /// of the shard's slice plus every query seed (expand/pipeline.h).
  ShardSpec shard_spec_;
  std::unique_ptr<EntityStore> shard_store_;

  mutable std::mutex mutex_;  // guards queue_ and draining_
  std::condition_variable scheduler_cv_;
  std::deque<Pending> queue_;
  bool draining_ = false;

  std::mutex expander_mutex_;  // guards expanders_ and pipeline mutation
  std::map<std::string, std::unique_ptr<Expander>> expanders_;

  std::once_flag drain_once_;
  std::thread scheduler_;

  /// Admission sequence (drives the every-Nth sampling decision) and the
  /// live in-flight gauge for the admin endpoint.
  std::atomic<uint64_t> sequence_{0};
  std::atomic<int> inflight_{0};
};

}  // namespace serve
}  // namespace ultrawiki

#endif  // ULTRAWIKI_SERVE_SERVICE_H_
