#include "llm_oracle/oracle.h"

#include <algorithm>

#include "common/logging.h"
#include "math/topk.h"

namespace ultrawiki {

LlmOracle::LlmOracle(const GeneratedWorld* world, OracleConfig config)
    : world_(world), config_(config) {
  UW_CHECK_NE(world, nullptr);
}

Rng LlmOracle::CallRng(std::span<const EntityId> a, EntityId b,
                       uint64_t salt) const {
  uint64_t hash = config_.seed ^ (salt * 0x9E3779B97F4A7C15ULL);
  auto mix = [&hash](uint64_t v) {
    hash ^= v + 0x9E3779B97F4A7C15ULL + (hash << 6) + (hash >> 2);
  };
  for (EntityId id : a) mix(static_cast<uint64_t>(static_cast<uint32_t>(id)));
  mix(static_cast<uint64_t>(static_cast<uint32_t>(b)));
  return Rng(hash);
}

double LlmOracle::ErrorRateFor(EntityId candidate) const {
  if (candidate < 0 ||
      static_cast<size_t>(candidate) >= world_->corpus.entity_count()) {
    return 0.5;
  }
  const Entity& entity = world_->corpus.entity(candidate);
  return entity.is_long_tail ? config_.long_tail_error_rate
                             : config_.base_error_rate;
}

std::vector<std::pair<int, int>> LlmOracle::TrueSharedAttributes(
    std::span<const EntityId> seeds) const {
  std::vector<std::pair<int, int>> shared;
  if (seeds.empty()) return shared;
  const Entity& first = world_->corpus.entity(seeds[0]);
  if (first.class_id == kBackgroundClassId) return shared;
  for (EntityId id : seeds) {
    if (world_->corpus.entity(id).class_id != first.class_id) return shared;
  }
  for (size_t a = 0; a < first.attribute_values.size(); ++a) {
    bool all_same = true;
    for (EntityId id : seeds) {
      if (world_->corpus.entity(id).attribute_values[a] !=
          first.attribute_values[a]) {
        all_same = false;
        break;
      }
    }
    if (all_same) {
      shared.emplace_back(static_cast<int>(a), first.attribute_values[a]);
    }
  }
  return shared;
}

bool LlmOracle::JudgeConsistent(std::span<const EntityId> seeds,
                                EntityId candidate) const {
  Rng rng = CallRng(seeds, candidate, /*salt=*/1);
  if (candidate < 0 ||
      static_cast<size_t>(candidate) >= world_->corpus.entity_count()) {
    return rng.Bernoulli(0.5);
  }
  const std::vector<std::pair<int, int>> shared =
      TrueSharedAttributes(seeds);
  const Entity& entity = world_->corpus.entity(candidate);
  bool truth = !seeds.empty() &&
               entity.class_id ==
                   world_->corpus.entity(seeds[0]).class_id;
  if (truth) {
    for (const auto& [attr, value] : shared) {
      if (entity.attribute_values[static_cast<size_t>(attr)] != value) {
        truth = false;
        break;
      }
    }
  }
  if (rng.Bernoulli(ErrorRateFor(candidate))) return !truth;
  return truth;
}

ClassId LlmOracle::InferClassName(std::span<const EntityId> seeds) const {
  Rng rng = CallRng(seeds, kInvalidEntityId, /*salt=*/2);
  ClassId majority = kBackgroundClassId;
  if (!seeds.empty()) {
    majority = world_->corpus.entity(seeds[0]).class_id;
  }
  if (majority == kBackgroundClassId) {
    return static_cast<ClassId>(rng.UniformUint64(world_->schema.size()));
  }
  if (rng.Bernoulli(config_.cot_class_name_error)) {
    const ClassId wrong = static_cast<ClassId>(
        rng.UniformUint64(world_->schema.size() - 1));
    return wrong >= majority ? wrong + 1 : wrong;
  }
  return majority;
}

std::vector<std::pair<int, int>> LlmOracle::InferSharedAttributes(
    std::span<const EntityId> seeds, bool negative_side) const {
  Rng rng = CallRng(seeds, kInvalidEntityId,
                    /*salt=*/negative_side ? 4 : 3);
  const double error_rate = negative_side ? config_.cot_neg_attr_error
                                          : config_.cot_pos_attr_error;
  std::vector<std::pair<int, int>> inferred;
  const std::vector<std::pair<int, int>> shared =
      TrueSharedAttributes(seeds);
  if (shared.empty()) return inferred;
  const ClassId class_id = world_->corpus.entity(seeds[0]).class_id;
  const FineClassSpec& spec =
      world_->schema[static_cast<size_t>(class_id)];
  for (const auto& [attr, value] : shared) {
    if (!rng.Bernoulli(error_rate)) {
      inferred.emplace_back(attr, value);
      continue;
    }
    // Failed reasoning: half the time the attribute is silently missed,
    // half the time a wrong value is asserted (the damaging case).
    if (rng.Bernoulli(0.5)) continue;
    const int value_count =
        static_cast<int>(spec.attributes[static_cast<size_t>(attr)]
                             .values.size());
    if (value_count < 2) continue;
    int wrong = rng.UniformInt(0, value_count - 2);
    if (wrong >= value) ++wrong;
    inferred.emplace_back(attr, wrong);
  }
  return inferred;
}

std::vector<EntityId> LlmOracle::ExpandGenerative(
    const Query& query, const UltraWikiDataset& dataset, size_t k) const {
  // Seed sets as lookup tables; seeds are never re-expanded.
  std::vector<EntityId> all_seeds = query.pos_seeds;
  all_seeds.insert(all_seeds.end(), query.neg_seeds.begin(),
                   query.neg_seeds.end());
  std::sort(all_seeds.begin(), all_seeds.end());

  const std::vector<std::pair<int, int>> pos_shared =
      TrueSharedAttributes(query.pos_seeds);
  const std::vector<std::pair<int, int>> neg_shared =
      TrueSharedAttributes(query.neg_seeds);
  const ClassId class_id =
      query.pos_seeds.empty()
          ? kBackgroundClassId
          : world_->corpus.entity(query.pos_seeds[0]).class_id;

  std::vector<ScoredIndex> scored;
  scored.reserve(dataset.candidates.size());
  for (size_t i = 0; i < dataset.candidates.size(); ++i) {
    const EntityId id = dataset.candidates[i];
    if (std::binary_search(all_seeds.begin(), all_seeds.end(), id)) continue;
    Rng rng = CallRng(query.pos_seeds, id, /*salt=*/5);
    const Entity& entity = world_->corpus.entity(id);
    float score = static_cast<float>(rng.UniformDouble()) * 0.25f;
    // Long-tail entities: GPT-4 often has no usable knowledge and the
    // judgment degenerates to noise.
    const bool knowledge_gap =
        entity.is_long_tail &&
        rng.Bernoulli(config_.long_tail_error_rate);
    if (!knowledge_gap) {
      const bool misjudge = rng.Bernoulli(ErrorRateFor(id));
      bool class_ok = entity.class_id == class_id &&
                      class_id != kBackgroundClassId;
      bool pos_ok = class_ok;
      if (class_ok) {
        for (const auto& [attr, value] : pos_shared) {
          if (entity.attribute_values[static_cast<size_t>(attr)] != value) {
            pos_ok = false;
            break;
          }
        }
      }
      bool neg_hit = class_ok && !neg_shared.empty();
      if (neg_hit) {
        for (const auto& [attr, value] : neg_shared) {
          if (entity.attribute_values[static_cast<size_t>(attr)] != value) {
            neg_hit = false;
            break;
          }
        }
      }
      if (misjudge) {
        pos_ok = !pos_ok;
      }
      // Recognizing that an entity carries the *negative* attributes is
      // harder than matching the positive ones (the prompt's negative
      // constraint is frequently ignored), so negative filtering is
      // noisier than positive matching.
      if (neg_hit && rng.Bernoulli(0.55 + ErrorRateFor(id))) {
        neg_hit = false;
      }
      if (class_ok) score += 0.5f;
      if (pos_ok) score += 1.0f;
      if (neg_hit) score -= 0.35f;
    }
    scored.push_back(ScoredIndex{score, i});
  }
  SortByScoreDescending(scored);

  // Assemble the ranked list, interleaving hallucinated entities: GPT-4
  // freely invents surface forms outside the candidate vocabulary.
  std::vector<EntityId> ranking;
  Rng rng = CallRng(query.pos_seeds, kInvalidEntityId, /*salt=*/6);
  size_t next = 0;
  while (ranking.size() < k &&
         (next < scored.size() ||
          rng.Bernoulli(config_.hallucination_rate))) {
    if (rng.Bernoulli(config_.hallucination_rate)) {
      ranking.push_back(kHallucinatedEntityId);
      continue;
    }
    if (next >= scored.size()) break;
    ranking.push_back(dataset.candidates[scored[next].index]);
    ++next;
  }
  return ranking;
}

}  // namespace ultrawiki
