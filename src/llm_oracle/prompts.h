#ifndef ULTRAWIKI_LLM_ORACLE_PROMPTS_H_
#define ULTRAWIKI_LLM_ORACLE_PROMPTS_H_

#include <string>
#include <vector>

#include "corpus/generator.h"

namespace ultrawiki {

/// Renders the paper's appendix prompt templates (Tables 13–15) against
/// concrete entities. The LLM oracle *simulates* the answers; these
/// renderers make the simulated calls auditable — every oracle judgment
/// corresponds to exactly one of these prompts — and give adopters the
/// literal strings to send to a real LLM instead.

/// Table 13: classify candidate entities by consistency with the seed
/// entities' shared attributes (used to mine L_pos / L_neg).
std::string RenderClassificationPrompt(
    const GeneratedWorld& world, const std::vector<EntityId>& seeds,
    const std::vector<EntityId>& candidates);

/// Table 14: Prompt_g — few-shot list continuation that elicits entities
/// similar to the given three ("iron, copper, aluminum and zinc. ...").
std::string RenderGenerationPrompt(const GeneratedWorld& world,
                                   const std::vector<EntityId>& examples);

/// Table 15: Prompt_c — class-name induction from three entities.
std::string RenderClassNamePrompt(const GeneratedWorld& world,
                                  const std::vector<EntityId>& examples);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_LLM_ORACLE_PROMPTS_H_
