#include "llm_oracle/prompts.h"

#include <sstream>

namespace ultrawiki {
namespace {

std::string NameOf(const GeneratedWorld& world, EntityId id) {
  return world.corpus.entity(id).name;
}

std::string JoinNames(const GeneratedWorld& world,
                      const std::vector<EntityId>& ids) {
  std::string out;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out += ", ";
    out += NameOf(world, ids[i]);
  }
  return out;
}

}  // namespace

std::string RenderClassificationPrompt(
    const GeneratedWorld& world, const std::vector<EntityId>& seeds,
    const std::vector<EntityId>& candidates) {
  std::ostringstream out;
  out << "I have a task that involves classifying candidate entities "
         "based on their alignment with a seed entity set. The seed "
         "entities are grouped together because they share certain "
         "attributes, referred to as seed attributes. I need you to "
         "identify the seed attributes and use them to classify each "
         "candidate entity into one of two categories: 1) consistent "
         "with the seed entity set in terms of seed attributes, or 0) "
         "inconsistent.\n\n"
      << "Input:\nSeed entities: [" << JoinNames(world, seeds) << "]\n"
      << "Candidate entities: [" << JoinNames(world, candidates)
      << "], total " << candidates.size() << " entities\nOutput:";
  return out.str();
}

std::string RenderGenerationPrompt(const GeneratedWorld& world,
                                   const std::vector<EntityId>& examples) {
  std::ostringstream out;
  out << "iron, copper, aluminum and zinc.\n"
      << "math, physics, chemistry and biology.\n";
  for (size_t i = 0; i < examples.size(); ++i) {
    if (i > 0) out << ", ";
    out << NameOf(world, examples[i]);
  }
  out << " and ____";
  return out.str();
}

std::string RenderClassNamePrompt(const GeneratedWorld& world,
                                  const std::vector<EntityId>& examples) {
  std::ostringstream out;
  out << "Generate a class name that accurately represents the following "
         "entities. This class name should encompass all the given "
         "entities and reflect their shared characteristics.\nExamples:\n"
         "[Tiger, Lion, Cheetah] -> Big Cats\n"
         "[Shakespeare, Tolstoy, Hemingway] -> Famous Authors\n"
         "[Mercury, Venus, Mars] -> Planets in the Solar System\n"
      << "[" << JoinNames(world, examples) << "] -> ____";
  return out.str();
}

}  // namespace ultrawiki
