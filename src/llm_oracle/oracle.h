#ifndef ULTRAWIKI_LLM_ORACLE_ORACLE_H_
#define ULTRAWIKI_LLM_ORACLE_ORACLE_H_

#include <span>
#include <utility>
#include <vector>

#include "corpus/generator.h"
#include "dataset/dataset.h"

namespace ultrawiki {

/// Noise profile of the simulated large language model. The oracle holds
/// the ground-truth attribute table (its "web-scale knowledge") but errs:
/// uniformly at `base_error_rate`, much more on long-tail entities, and —
/// in generative mode — by hallucinating non-existent entities. These are
/// exactly the GPT-4 failure modes the paper reports (§6.2 (6)).
struct OracleConfig {
  uint64_t seed = 13;
  /// Per-judgment error probability for well-known entities.
  double base_error_rate = 0.10;
  /// Error probability when the judged entity is long-tail.
  double long_tail_error_rate = 0.40;
  /// Probability of emitting a hallucinated (non-candidate) entity at each
  /// rank slot of the generative baseline.
  double hallucination_rate = 0.10;
  /// Chain-of-thought inference error rates (LLaMA-grade reasoning):
  /// class-name inference is reliable, positive-attribute inference decent,
  /// negative-attribute inference poor (paper §6.4.3 (3)).
  double cot_class_name_error = 0.10;
  double cot_pos_attr_error = 0.20;
  double cot_neg_attr_error = 0.55;
};

/// Sentinel returned in generative rankings for hallucinated entities;
/// never matches any target set.
inline constexpr EntityId kHallucinatedEntityId = -2;

/// The GPT-4 / LLaMA-reasoning stand-in. All judgments are deterministic
/// functions of (config seed, the queried ids), independent of call order,
/// so every experiment is reproducible.
class LlmOracle {
 public:
  /// `world` must outlive the oracle.
  LlmOracle(const GeneratedWorld* world, OracleConfig config = {});

  /// Attribute-consistency classification (the paper's Table-13 prompt):
  /// does `candidate` share the attribute values common to `seeds`?
  /// Ground truth with noise; long-tail candidates are judged near-random.
  bool JudgeConsistent(std::span<const EntityId> seeds,
                       EntityId candidate) const;

  /// Infers the fine-grained class of `seeds` (chain-of-thought step 1);
  /// wrong with probability cot_class_name_error.
  ClassId InferClassName(std::span<const EntityId> seeds) const;

  /// Infers the (attr, value) constraints shared by `seeds`
  /// (chain-of-thought steps 2–3). `negative_side` selects the much
  /// noisier negative-attribute reasoning. Returned pairs may be wrong or
  /// missing.
  std::vector<std::pair<int, int>> InferSharedAttributes(
      std::span<const EntityId> seeds, bool negative_side) const;

  /// The zero-shot generative GPT-4 baseline: rank `k` entities for the
  /// query given both positive and negative seeds. The list may contain
  /// kHallucinatedEntityId entries (fake entity names) and degrades on
  /// long-tail classes.
  std::vector<EntityId> ExpandGenerative(
      const Query& query, const UltraWikiDataset& dataset, size_t k) const;

  /// True shared (attr, value) pairs of `seeds` — exposed for the
  /// ground-truth chain-of-thought variants (Table 9 "GT") and the
  /// ground-truth retrieval augmentation (Table 8 "GT Attributes").
  std::vector<std::pair<int, int>> TrueSharedAttributes(
      std::span<const EntityId> seeds) const;

  const OracleConfig& config() const { return config_; }

 private:
  /// Deterministic per-call randomness: a generator derived from the
  /// oracle seed and the queried ids.
  Rng CallRng(std::span<const EntityId> a, EntityId b, uint64_t salt) const;

  double ErrorRateFor(EntityId candidate) const;

  const GeneratedWorld* world_;
  OracleConfig config_;
};

}  // namespace ultrawiki

#endif  // ULTRAWIKI_LLM_ORACLE_ORACLE_H_
