#ifndef ULTRAWIKI_CORPUS_TYPES_H_
#define ULTRAWIKI_CORPUS_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ultrawiki {

/// Identifier of an entity in the candidate vocabulary.
using EntityId = int32_t;
inline constexpr EntityId kInvalidEntityId = -1;

/// Identifier of a fine-grained semantic class.
using ClassId = int32_t;
/// ClassId of background entities (sampled Wikipedia pages that belong to no
/// fine-grained class; they populate the candidate vocabulary as negatives).
inline constexpr ClassId kBackgroundClassId = -1;

/// One attribute of a fine-grained semantic class, e.g. <continent> for
/// "countries". `values` enumerates the closed value set; `clue_tokens[v]`
/// is the canonical surface phrase that reveals value `v` (used by list
/// pages, knowledge-base text, and chain-of-thought prompts), while
/// `clue_variants[v]` holds the paraphrase set context sentences sample
/// from. Paraphrase variety is what separates representation learning from
/// surface matching: embeddings can learn that the variants are
/// equivalent, lexical retrieval cannot — mirroring real Wikipedia prose.
struct AttributeDef {
  std::string name;
  std::vector<std::string> values;
  std::vector<std::vector<std::string>> clue_tokens;
  std::vector<std::vector<std::vector<std::string>>> clue_variants;
  /// Probability that a context sentence of an entity reveals this
  /// attribute. Lower rates make the attribute harder to learn.
  double signal_rate = 0.55;
  /// Probability that a revealing sentence uses the canonical phrase
  /// rather than one of the paraphrases.
  double canonical_rate = 0.3;
};

/// Static description of one fine-grained semantic class (paper Table 11).
struct FineClassSpec {
  std::string name;             // e.g. "countries"
  std::string coarse_category;  // e.g. "Location"
  std::string singular_noun;    // used by sentence templates
  std::string plural_noun;      // used by list sentences and CoT prompts
  int entity_count = 0;         // paper-scale count, scaled by config
  std::vector<AttributeDef> attributes;
  std::vector<std::string> topic_tokens;  // generic class-flavour words
  int name_style = 0;  // style tag for the entity name generator
};

/// A candidate entity. `attribute_values[a]` indexes into the class
/// schema's `attributes[a].values`; empty for background entities.
struct Entity {
  EntityId id = kInvalidEntityId;
  std::string name;
  std::vector<std::string> name_tokens;
  ClassId class_id = kBackgroundClassId;
  std::vector<int> attribute_values;
  /// Long-tail entities have fewer context sentences and are harder for the
  /// LLM-oracle (mirrors the paper's lesser-known Chinese cities etc.).
  bool is_long_tail = false;
};

}  // namespace ultrawiki

#endif  // ULTRAWIKI_CORPUS_TYPES_H_
