#include "corpus/knowledge_base.h"

#include "common/logging.h"

namespace ultrawiki {
namespace {

const std::vector<TokenId>& EmptyTokens() {
  static const std::vector<TokenId>* empty = new std::vector<TokenId>();
  return *empty;
}

}  // namespace

void KnowledgeBase::Add(EntityId id, std::vector<TokenId> introduction,
                        std::vector<TokenId> wikidata_attributes) {
  UW_CHECK_EQ(static_cast<size_t>(id), introductions_.size())
      << "KnowledgeBase entries must be added densely in id order";
  introductions_.push_back(std::move(introduction));
  wikidata_attributes_.push_back(std::move(wikidata_attributes));
}

const std::vector<TokenId>& KnowledgeBase::IntroductionOf(EntityId id) const {
  if (id < 0 || static_cast<size_t>(id) >= introductions_.size()) {
    return EmptyTokens();
  }
  return introductions_[static_cast<size_t>(id)];
}

const std::vector<TokenId>& KnowledgeBase::WikidataAttributesOf(
    EntityId id) const {
  if (id < 0 || static_cast<size_t>(id) >= wikidata_attributes_.size()) {
    return EmptyTokens();
  }
  return wikidata_attributes_[static_cast<size_t>(id)];
}

}  // namespace ultrawiki
