#ifndef ULTRAWIKI_CORPUS_GENERATOR_H_
#define ULTRAWIKI_CORPUS_GENERATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "corpus/corpus.h"
#include "corpus/knowledge_base.h"
#include "corpus/schema.h"
#include "corpus/types.h"

namespace ultrawiki {

/// Controls the synthetic-Wikipedia generator. Defaults target the "bench"
/// scale: large enough that every experiment's shape matches the paper,
/// small enough that each benchmark binary finishes in seconds on one core.
struct GeneratorConfig {
  uint64_t seed = 1;

  /// Entity-count multiplier relative to the paper-scale counts of
  /// Table 11 (scale 1.0 reproduces 2,848 in-class entities).
  double scale = 0.35;
  int min_entities_per_class = 40;

  /// Context sentences per regular / long-tail entity.
  int sentences_per_entity = 24;
  int long_tail_sentences = 4;
  double long_tail_fraction = 0.15;

  /// Background entities sampled from "other Wikipedia pages". A fraction
  /// are generated confusable (they reuse class topic vocabulary), which
  /// the dataset pipeline's BM25 mining then surfaces as hard negatives.
  int background_entity_count = 400;
  double background_confusable_fraction = 0.5;
  int background_sentences_per_entity = 4;

  /// Wikipedia-list-page stand-ins: "A , B , C and D are <class> with
  /// <attr> <value> ." sentences grouping co-attributed entities. These are
  /// what make generative expansion learnable, exactly as list pages do for
  /// the paper's further-pretrained LLaMA.
  int list_sentences_per_value = 20;
  int list_group_min = 3;
  int list_group_max = 8;

  /// "X is similar to Y" sentences; pair selection is weighted by the
  /// number of shared attribute values so LM similarity (paper Eq. 7)
  /// carries an ultra-fine-grained signal.
  double similarity_sentences_per_entity = 8.0;

  /// Shared pool of filler words mixed into every sentence.
  int noise_vocab_size = 800;

  /// Junk properties per Wikidata attribute dump (the "YouTube channel
  /// ID" effect of Table 8).
  int wikidata_junk_attributes = 4;

  /// --- Streaming scaling mode (GenerateScaledEntities) ---
  /// Total entities of the streamed scaling corpus (100k–1M+ territory for
  /// the ANN benches). 0 = off; GenerateWorld ignores these knobs either
  /// way — the scaled corpus is produced entity-by-entity through a sink,
  /// never materialized, so memory stays bounded by one entity's
  /// sentences. All four knobs are part of FingerprintConfig.
  int64_t scale_entities = 0;
  /// Fine-grained classes the scaled entities cycle through; each class
  /// gets its own hashed topic vocabulary, so rows built from the stream
  /// cluster by class (what gives the IVF bench a meaningful recall@k).
  int scale_classes = 64;
  int scale_sentences_per_entity = 3;
  int scale_sentence_tokens = 12;
};

/// Everything the generator produces: the populated corpus, the external
/// knowledge base, the (scaled) schema, and the ground-truth value index
/// used by the dataset pipeline and the oracle.
struct GeneratedWorld {
  std::vector<FineClassSpec> schema;
  Corpus corpus;
  KnowledgeBase kb;
  /// entities_by_value[class][attr][value] -> entity ids holding that value.
  std::vector<std::vector<std::vector<std::vector<EntityId>>>>
      entities_by_value;
  /// Ids of background (no-class) entities, in generation order; the
  /// confusable ones come first.
  std::vector<EntityId> background_entities;
  /// FingerprintConfig of the GeneratorConfig this world was generated
  /// from (set by GenerateWorld, preserved by world snapshots). 0 means
  /// unknown provenance — e.g. a hand-produced TSV world — and disables
  /// derived-artifact caching for the world.
  uint64_t fingerprint = 0;
};

/// Deterministic hash of every generator knob; worlds from equal configs
/// are identical, so this fingerprint keys the artifact cache.
uint64_t FingerprintConfig(const GeneratorConfig& config);

/// Runs steps 1–2 of the UltraWiki construction pipeline on synthetic
/// material: creates classes + entities (step 1) and the entity-labelled
/// sentence corpus plus knowledge base (step 2). Deterministic in
/// `config.seed`.
GeneratedWorld GenerateWorld(const GeneratorConfig& config);

/// One streamed entity of the scaling corpus. Tokens are 64-bit hashes
/// (no Vocabulary is built at this scale); consumers fold them into
/// fixed-dimension rows via hashed projection (ann/scaled_store.h).
struct ScaledEntity {
  EntityId id = 0;
  int class_id = 0;
  /// One attribute value in [0, 8) varying within the class — the
  /// within-class structure that makes nearest-neighbor rankings over the
  /// scaled rows non-degenerate.
  int attribute_value = 0;
  std::vector<std::vector<uint64_t>> sentences;
};

/// Streams `config.scale_entities` synthetic entities (ascending id order)
/// into `sink`, which must not retain the reference past the call. Each
/// entity's token stream is derived from an id-keyed child seed, so the
/// output is deterministic in (seed, scaling knobs) and independent of
/// everything the sink does. Requires scale_entities > 0.
void GenerateScaledEntities(
    const GeneratorConfig& config,
    const std::function<void(const ScaledEntity&)>& sink);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_CORPUS_GENERATOR_H_
