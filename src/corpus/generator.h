#ifndef ULTRAWIKI_CORPUS_GENERATOR_H_
#define ULTRAWIKI_CORPUS_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "corpus/corpus.h"
#include "corpus/knowledge_base.h"
#include "corpus/schema.h"
#include "corpus/types.h"

namespace ultrawiki {

/// Controls the synthetic-Wikipedia generator. Defaults target the "bench"
/// scale: large enough that every experiment's shape matches the paper,
/// small enough that each benchmark binary finishes in seconds on one core.
struct GeneratorConfig {
  uint64_t seed = 1;

  /// Entity-count multiplier relative to the paper-scale counts of
  /// Table 11 (scale 1.0 reproduces 2,848 in-class entities).
  double scale = 0.35;
  int min_entities_per_class = 40;

  /// Context sentences per regular / long-tail entity.
  int sentences_per_entity = 24;
  int long_tail_sentences = 4;
  double long_tail_fraction = 0.15;

  /// Background entities sampled from "other Wikipedia pages". A fraction
  /// are generated confusable (they reuse class topic vocabulary), which
  /// the dataset pipeline's BM25 mining then surfaces as hard negatives.
  int background_entity_count = 400;
  double background_confusable_fraction = 0.5;
  int background_sentences_per_entity = 4;

  /// Wikipedia-list-page stand-ins: "A , B , C and D are <class> with
  /// <attr> <value> ." sentences grouping co-attributed entities. These are
  /// what make generative expansion learnable, exactly as list pages do for
  /// the paper's further-pretrained LLaMA.
  int list_sentences_per_value = 20;
  int list_group_min = 3;
  int list_group_max = 8;

  /// "X is similar to Y" sentences; pair selection is weighted by the
  /// number of shared attribute values so LM similarity (paper Eq. 7)
  /// carries an ultra-fine-grained signal.
  double similarity_sentences_per_entity = 8.0;

  /// Shared pool of filler words mixed into every sentence.
  int noise_vocab_size = 800;

  /// Junk properties per Wikidata attribute dump (the "YouTube channel
  /// ID" effect of Table 8).
  int wikidata_junk_attributes = 4;
};

/// Everything the generator produces: the populated corpus, the external
/// knowledge base, the (scaled) schema, and the ground-truth value index
/// used by the dataset pipeline and the oracle.
struct GeneratedWorld {
  std::vector<FineClassSpec> schema;
  Corpus corpus;
  KnowledgeBase kb;
  /// entities_by_value[class][attr][value] -> entity ids holding that value.
  std::vector<std::vector<std::vector<std::vector<EntityId>>>>
      entities_by_value;
  /// Ids of background (no-class) entities, in generation order; the
  /// confusable ones come first.
  std::vector<EntityId> background_entities;
  /// FingerprintConfig of the GeneratorConfig this world was generated
  /// from (set by GenerateWorld, preserved by world snapshots). 0 means
  /// unknown provenance — e.g. a hand-produced TSV world — and disables
  /// derived-artifact caching for the world.
  uint64_t fingerprint = 0;
};

/// Deterministic hash of every generator knob; worlds from equal configs
/// are identical, so this fingerprint keys the artifact cache.
uint64_t FingerprintConfig(const GeneratorConfig& config);

/// Runs steps 1–2 of the UltraWiki construction pipeline on synthetic
/// material: creates classes + entities (step 1) and the entity-labelled
/// sentence corpus plus knowledge base (step 2). Deterministic in
/// `config.seed`.
GeneratedWorld GenerateWorld(const GeneratorConfig& config);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_CORPUS_GENERATOR_H_
