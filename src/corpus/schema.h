#ifndef ULTRAWIKI_CORPUS_SCHEMA_H_
#define ULTRAWIKI_CORPUS_SCHEMA_H_

#include <vector>

#include "corpus/types.h"

namespace ultrawiki {

/// Returns the 10 fine-grained semantic class specifications of UltraWiki
/// (paper Table 11): names, coarse categories, paper-scale entity counts,
/// and the 2–3 attributes per class with their closed value sets. Clue
/// tokens are filled in here deterministically (value word + attribute
/// word), so the schema is self-contained.
std::vector<FineClassSpec> BuildUltraWikiSchema();

/// Scales the per-class entity counts by `scale`, clamping below at
/// `min_entities` so every class can still produce ultra-fine-grained
/// classes that meet the n_thred requirement.
std::vector<FineClassSpec> ScaledSchema(double scale, int min_entities);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_CORPUS_SCHEMA_H_
