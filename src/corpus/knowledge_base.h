#ifndef ULTRAWIKI_CORPUS_KNOWLEDGE_BASE_H_
#define ULTRAWIKI_CORPUS_KNOWLEDGE_BASE_H_

#include <vector>

#include "corpus/types.h"
#include "text/vocabulary.h"

namespace ultrawiki {

/// The Wikidata stand-in: per-entity external knowledge consumed by the
/// retrieval-augmentation strategy (paper §5.1.3 / §5.2.3 and Table 8).
/// Three knowledge sources are distinguished exactly as in Table 8:
///   - introductions: fluent encyclopedic lead text (mostly reliable);
///   - Wikidata-style attribute dumps: correct attribute clues mixed with
///     many rarely-useful properties ("YouTube channel ID"-style junk);
///   - ground-truth attribute text is produced on demand per ultra-class
///     by the retrieval-augmentation module, not stored here.
class KnowledgeBase {
 public:
  KnowledgeBase() = default;

  KnowledgeBase(KnowledgeBase&&) = default;
  KnowledgeBase& operator=(KnowledgeBase&&) = default;
  KnowledgeBase(const KnowledgeBase&) = delete;
  KnowledgeBase& operator=(const KnowledgeBase&) = delete;

  /// Registers knowledge for the entity with the given id; ids must be
  /// registered densely in order (0, 1, 2, ...).
  void Add(EntityId id, std::vector<TokenId> introduction,
           std::vector<TokenId> wikidata_attributes);

  /// Introduction tokens of `id` (empty if never registered).
  const std::vector<TokenId>& IntroductionOf(EntityId id) const;

  /// Wikidata-style attribute-dump tokens of `id`.
  const std::vector<TokenId>& WikidataAttributesOf(EntityId id) const;

  size_t size() const { return introductions_.size(); }

 private:
  std::vector<std::vector<TokenId>> introductions_;
  std::vector<std::vector<TokenId>> wikidata_attributes_;
};

}  // namespace ultrawiki

#endif  // ULTRAWIKI_CORPUS_KNOWLEDGE_BASE_H_
