#include "corpus/corpus.h"

#include "common/logging.h"

namespace ultrawiki {

EntityId Corpus::AddEntity(Entity entity) {
  const EntityId id = static_cast<EntityId>(entities_.size());
  entity.id = id;
  entities_.push_back(std::move(entity));
  sentences_of_entity_.emplace_back();
  return id;
}

void Corpus::AddSentence(Sentence sentence) {
  UW_CHECK_GE(sentence.entity, 0);
  UW_CHECK_LT(static_cast<size_t>(sentence.entity), entities_.size());
  UW_CHECK_GE(sentence.mention_begin, 0);
  UW_CHECK_LE(
      static_cast<size_t>(sentence.mention_begin + sentence.mention_len),
      sentence.tokens.size());
  const int index = static_cast<int>(sentences_.size());
  sentences_of_entity_[static_cast<size_t>(sentence.entity)].push_back(index);
  sentences_.push_back(std::move(sentence));
}

void Corpus::AddAuxiliarySentence(std::vector<TokenId> tokens) {
  auxiliary_.push_back(std::move(tokens));
}

const Entity& Corpus::entity(EntityId id) const {
  UW_CHECK_GE(id, 0);
  UW_CHECK_LT(static_cast<size_t>(id), entities_.size());
  return entities_[static_cast<size_t>(id)];
}

const Sentence& Corpus::sentence(size_t index) const {
  UW_CHECK_LT(index, sentences_.size());
  return sentences_[index];
}

const std::vector<int>& Corpus::SentencesOf(EntityId id) const {
  UW_CHECK_GE(id, 0);
  UW_CHECK_LT(static_cast<size_t>(id), sentences_of_entity_.size());
  return sentences_of_entity_[static_cast<size_t>(id)];
}

std::vector<TokenId> Corpus::InternWords(
    const std::vector<std::string>& words) {
  std::vector<TokenId> ids;
  ids.reserve(words.size());
  for (const std::string& word : words) {
    ids.push_back(tokens_.AddToken(word));
  }
  return ids;
}

std::string Corpus::Render(const std::vector<TokenId>& token_ids) const {
  std::string out;
  for (size_t i = 0; i < token_ids.size(); ++i) {
    if (i > 0) out += ' ';
    out += tokens_.TokenOf(token_ids[i]);
  }
  return out;
}

std::vector<EntityId> Corpus::EntitiesOfClass(ClassId class_id) const {
  std::vector<EntityId> out;
  for (const Entity& entity : entities_) {
    if (entity.class_id == class_id) out.push_back(entity.id);
  }
  return out;
}

std::vector<EntityId> Corpus::AllEntityIds() const {
  std::vector<EntityId> out;
  out.reserve(entities_.size());
  for (const Entity& entity : entities_) out.push_back(entity.id);
  return out;
}

}  // namespace ultrawiki
