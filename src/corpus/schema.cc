#include "corpus/schema.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace ultrawiki {
namespace {

/// Builds an attribute whose clue phrase in generated text is
/// "<attr_word> <value>", e.g. "continent asia". The attribute word comes
/// from the schema name so every attribute has a distinct surface signal.
AttributeDef MakeAttribute(const std::string& name,
                           const std::string& attr_word,
                           std::vector<std::string> values,
                           double signal_rate) {
  AttributeDef def;
  def.name = name;
  def.values = std::move(values);
  def.signal_rate = signal_rate;
  def.clue_tokens.reserve(def.values.size());
  def.clue_variants.reserve(def.values.size());
  // Paraphrase suffixes derive distinct surface forms per value
  // ("asia" / "asian" / "asiese" ...); the canonical phrase carries the
  // attribute word, the paraphrases usually do not — so lexical overlap
  // between two mentions of the same value is far from guaranteed.
  static constexpr const char* kSuffixes[] = {"n", "ese", "ic", "ite",
                                              "ian"};
  for (const std::string& value : def.values) {
    def.clue_tokens.push_back({attr_word, value});
    std::vector<std::vector<std::string>> variants;
    variants.push_back({attr_word, value});  // canonical
    for (const char* suffix : kSuffixes) {
      variants.push_back({value + suffix});
    }
    def.clue_variants.push_back(std::move(variants));
  }
  return def;
}

}  // namespace

std::vector<FineClassSpec> BuildUltraWikiSchema() {
  std::vector<FineClassSpec> specs;
  specs.reserve(10);

  {
    FineClassSpec spec;
    spec.name = "canada universities";
    spec.coarse_category = "Organization";
    spec.singular_noun = "university";
    spec.plural_noun = "universities";
    spec.entity_count = 99;
    spec.attributes = {
        MakeAttribute("<loc-province>", "province",
                      {"ontario", "quebec", "alberta", "manitoba"}, 0.60),
        MakeAttribute("<type>", "funding", {"public", "private"}, 0.50),
    };
    spec.topic_tokens = {"campus", "faculty", "students", "degree",
                         "research", "college"};
    specs.push_back(std::move(spec));
  }
  {
    FineClassSpec spec;
    spec.name = "china cities";
    spec.coarse_category = "Location";
    spec.singular_noun = "city";
    spec.plural_noun = "cities";
    spec.entity_count = 675;
    spec.attributes = {
        MakeAttribute("<province>", "province",
                      {"henan", "hebei", "shandong", "sichuan", "yunnan",
                       "gansu"},
                      0.60),
        MakeAttribute("<prefecture>", "ranking",
                      {"prefecture", "county"}, 0.50),
    };
    spec.topic_tokens = {"district", "population", "railway",
                         "industry", "river", "municipal"};
    specs.push_back(std::move(spec));
  }
  {
    FineClassSpec spec;
    spec.name = "countries";
    spec.coarse_category = "Location";
    spec.singular_noun = "country";
    spec.plural_noun = "countries";
    spec.entity_count = 190;
    spec.attributes = {
        MakeAttribute("<continent>", "continent",
                      {"asia", "europe", "africa", "americas", "oceania"},
                      0.60),
        MakeAttribute("<driving-side>", "driving", {"left", "right"}, 0.50),
        MakeAttribute("<per-capita-income>", "income",
                      {"low", "middle", "high"}, 0.45),
    };
    spec.topic_tokens = {"government", "border", "capital",
                         "economy", "treaty", "nation"};
    specs.push_back(std::move(spec));
  }
  {
    FineClassSpec spec;
    spec.name = "us airports";
    spec.coarse_category = "Location";
    spec.singular_noun = "airport";
    spec.plural_noun = "airports";
    spec.entity_count = 370;
    spec.attributes = {
        MakeAttribute("<role>", "role",
                      {"commercial", "reliever", "general"}, 0.60),
        MakeAttribute("<loc-state>", "state",
                      {"michigan", "texas", "california", "florida", "ohio",
                       "alaska"},
                      0.50),
    };
    spec.topic_tokens = {"runway", "terminal", "passengers",
                         "aviation", "cargo", "flights"};
    specs.push_back(std::move(spec));
  }
  {
    FineClassSpec spec;
    spec.name = "us national monuments";
    spec.coarse_category = "Location";
    spec.singular_noun = "monument";
    spec.plural_noun = "monuments";
    spec.entity_count = 112;
    spec.attributes = {
        MakeAttribute("<loc-state>", "state",
                      {"arizona", "utah", "newmexico", "colorado"}, 0.60),
        MakeAttribute("<agency>", "agency",
                      {"parkservice", "landbureau", "forestservice"}, 0.50),
    };
    spec.topic_tokens = {"preserve", "heritage", "visitors",
                         "proclamation", "acres", "trail"};
    specs.push_back(std::move(spec));
  }
  {
    FineClassSpec spec;
    spec.name = "mobile phone brands";
    spec.coarse_category = "Product";
    spec.singular_noun = "brand";
    spec.plural_noun = "phone brands";
    spec.entity_count = 159;
    spec.attributes = {
        MakeAttribute("<loc-continent>", "headquarters",
                      {"asia", "europe", "america"}, 0.60),
        MakeAttribute("<status>", "status", {"active", "defunct"}, 0.50),
    };
    spec.topic_tokens = {"handset", "smartphone", "device",
                         "market", "android", "screen"};
    specs.push_back(std::move(spec));
  }
  {
    FineClassSpec spec;
    spec.name = "percussion instruments";
    spec.coarse_category = "Product";
    spec.singular_noun = "instrument";
    spec.plural_noun = "percussion instruments";
    spec.entity_count = 128;
    spec.attributes = {
        MakeAttribute("<type>", "family",
                      {"idiophone", "membranophone"}, 0.60),
        MakeAttribute("<source-continent>", "origin",
                      {"africa", "asia", "europe", "americas"}, 0.50),
    };
    spec.topic_tokens = {"rhythm", "drummer", "ensemble",
                         "wooden", "pitch", "ceremonial"};
    specs.push_back(std::move(spec));
  }
  {
    FineClassSpec spec;
    spec.name = "nobel laureates";
    spec.coarse_category = "Person";
    spec.singular_noun = "laureate";
    spec.plural_noun = "nobel laureates";
    spec.entity_count = 952;
    spec.attributes = {
        MakeAttribute("<prize>", "prize",
                      {"physics", "chemistry", "medicine", "literature",
                       "peace", "economics"},
                      0.60),
        MakeAttribute("<gender>", "gender", {"male", "female"}, 0.50),
    };
    spec.topic_tokens = {"awarded", "discovery", "ceremony",
                         "professor", "laureate", "stockholm"};
    specs.push_back(std::move(spec));
  }
  {
    FineClassSpec spec;
    spec.name = "us presidents";
    spec.coarse_category = "Person";
    spec.singular_noun = "president";
    spec.plural_noun = "presidents";
    spec.entity_count = 45;
    spec.attributes = {
        MakeAttribute("<party>", "party",
                      {"democratic", "republican"}, 0.60),
        MakeAttribute("<birth-state>", "birthplace",
                      {"virginia", "ohio", "newyork"}, 0.50),
    };
    spec.topic_tokens = {"election", "congress", "veto",
                         "cabinet", "inaugural", "administration"};
    specs.push_back(std::move(spec));
  }
  {
    FineClassSpec spec;
    spec.name = "chemical elements";
    spec.coarse_category = "Miscellaneous";
    spec.singular_noun = "element";
    spec.plural_noun = "chemical elements";
    spec.entity_count = 118;
    spec.attributes = {
        MakeAttribute("<period>", "period",
                      {"two", "three", "four", "five"}, 0.60),
        MakeAttribute("<phase-at-r.t.>", "phase",
                      {"solid", "liquid", "gas"}, 0.50),
    };
    spec.topic_tokens = {"atomic", "isotope", "reaction",
                         "electron", "metallic", "compound"};
    specs.push_back(std::move(spec));
  }

  for (size_t i = 0; i < specs.size(); ++i) {
    specs[i].name_style = static_cast<int>(i);
  }
  return specs;
}

std::vector<FineClassSpec> ScaledSchema(double scale, int min_entities) {
  UW_CHECK_GT(scale, 0.0);
  std::vector<FineClassSpec> specs = BuildUltraWikiSchema();
  for (FineClassSpec& spec : specs) {
    const int scaled =
        static_cast<int>(static_cast<double>(spec.entity_count) * scale);
    spec.entity_count = std::max(scaled, min_entities);
  }
  return specs;
}

}  // namespace ultrawiki
