#ifndef ULTRAWIKI_CORPUS_CORPUS_H_
#define ULTRAWIKI_CORPUS_CORPUS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "corpus/types.h"
#include "text/vocabulary.h"

namespace ultrawiki {

/// One entity-labelled sentence of the corpus `D`. Tokens include the
/// entity mention inline at [mention_begin, mention_begin + mention_len);
/// consumers that need a masked view (the entity encoder) skip that span,
/// consumers that need surface text (the LM) use the tokens as-is. This is
/// the dual role the paper gets from Wikipedia hyperlink anchors.
struct Sentence {
  EntityId entity = kInvalidEntityId;
  std::vector<TokenId> tokens;
  int mention_begin = 0;
  int mention_len = 0;
};

/// The corpus substrate: the candidate-entity registry, the token
/// vocabulary, the entity-labelled sentences with a per-entity index, and
/// auxiliary unlabelled sentences (list pages / background prose) that feed
/// LM pretraining but carry no mention annotation.
class Corpus {
 public:
  Corpus() = default;

  // Movable but not copyable: the corpus is a large shared substrate.
  Corpus(Corpus&&) = default;
  Corpus& operator=(Corpus&&) = default;
  Corpus(const Corpus&) = delete;
  Corpus& operator=(const Corpus&) = delete;

  /// Registers an entity; assigns and returns its id.
  EntityId AddEntity(Entity entity);

  /// Adds a labelled sentence; updates the per-entity index.
  void AddSentence(Sentence sentence);

  /// Adds an unlabelled sentence (LM training only).
  void AddAuxiliarySentence(std::vector<TokenId> tokens);

  const Entity& entity(EntityId id) const;
  size_t entity_count() const { return entities_.size(); }

  const Sentence& sentence(size_t index) const;
  size_t sentence_count() const { return sentences_.size(); }

  /// Indices of the sentences mentioning `id` (possibly empty).
  const std::vector<int>& SentencesOf(EntityId id) const;

  const std::vector<std::vector<TokenId>>& auxiliary_sentences() const {
    return auxiliary_;
  }

  Vocabulary& tokens() { return tokens_; }
  const Vocabulary& tokens() const { return tokens_; }

  /// Interns each word of `words` and returns the id sequence.
  std::vector<TokenId> InternWords(const std::vector<std::string>& words);

  /// Renders a token-id sequence back to text (space-joined).
  std::string Render(const std::vector<TokenId>& token_ids) const;

  /// Entities of `class_id` in id order.
  std::vector<EntityId> EntitiesOfClass(ClassId class_id) const;

  /// All entity ids (the candidate vocabulary `V`).
  std::vector<EntityId> AllEntityIds() const;

 private:
  Vocabulary tokens_;
  std::vector<Entity> entities_;
  std::vector<Sentence> sentences_;
  std::vector<std::vector<int>> sentences_of_entity_;
  std::vector<std::vector<TokenId>> auxiliary_;
};

}  // namespace ultrawiki

#endif  // ULTRAWIKI_CORPUS_CORPUS_H_
