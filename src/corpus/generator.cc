#include "corpus/generator.h"

#include <algorithm>
#include <string>

#include "common/hash.h"
#include "common/logging.h"
#include "text/name_generator.h"
#include "text/tokenizer.h"

namespace ultrawiki {
namespace {

/// Internal helper bundling the generator state.
class WorldBuilder {
 public:
  explicit WorldBuilder(const GeneratorConfig& config)
      : config_(config),
        rng_(config.seed),
        names_(Rng(config.seed ^ 0xABCDEF0123456789ULL)) {}

  GeneratedWorld Build();

 private:
  void MakeNoiseVocabulary();
  void MakeEntities();
  void MakeContextSentences();
  void MakeListSentences();
  void MakeSimilaritySentences();
  void MakeBackgroundSentences();
  void MakeKnowledgeBase();

  std::vector<TokenId> NameTokens(const Entity& entity);
  void AppendWords(std::vector<TokenId>& tokens,
                   const std::vector<std::string>& words);
  void AppendNoise(std::vector<TokenId>& tokens, int count);
  void AppendTopic(std::vector<TokenId>& tokens, const FineClassSpec& spec,
                   int count);
  /// Appends the canonical clue phrase for (class, attr, value).
  void AppendClue(std::vector<TokenId>& tokens, const FineClassSpec& spec,
                  int attr, int value);

  /// Appends a sampled clue paraphrase (canonical with canonical_rate).
  void AppendClueVariant(std::vector<TokenId>& tokens,
                         const FineClassSpec& spec, int attr, int value);

  GeneratorConfig config_;
  Rng rng_;
  NameGenerator names_;
  GeneratedWorld world_;
  std::vector<TokenId> noise_tokens_;
  TokenId comma_ = kInvalidTokenId;
  TokenId period_ = kInvalidTokenId;
};

GeneratedWorld WorldBuilder::Build() {
  world_.schema =
      ScaledSchema(config_.scale, config_.min_entities_per_class);
  comma_ = world_.corpus.tokens().AddToken(",");
  period_ = world_.corpus.tokens().AddToken(".");
  MakeNoiseVocabulary();
  MakeEntities();
  MakeContextSentences();
  MakeListSentences();
  MakeSimilaritySentences();
  MakeBackgroundSentences();
  MakeKnowledgeBase();
  return std::move(world_);
}

void WorldBuilder::MakeNoiseVocabulary() {
  NameGenerator noise_names(rng_.Fork());
  noise_tokens_.reserve(config_.noise_vocab_size);
  for (int i = 0; i < config_.noise_vocab_size; ++i) {
    noise_tokens_.push_back(
        world_.corpus.tokens().AddToken(noise_names.NextName(1, 97)));
  }
}

void WorldBuilder::MakeEntities() {
  world_.entities_by_value.resize(world_.schema.size());
  for (size_t c = 0; c < world_.schema.size(); ++c) {
    const FineClassSpec& spec = world_.schema[c];
    auto& by_value = world_.entities_by_value[c];
    by_value.resize(spec.attributes.size());
    for (size_t a = 0; a < spec.attributes.size(); ++a) {
      by_value[a].resize(spec.attributes[a].values.size());
    }
    for (int i = 0; i < spec.entity_count; ++i) {
      Entity entity;
      entity.name = names_.NextName(2, spec.name_style, 2);
      Tokenizer tokenizer;
      entity.name_tokens = tokenizer.Tokenize(entity.name);
      entity.class_id = static_cast<ClassId>(c);
      entity.is_long_tail = rng_.Bernoulli(config_.long_tail_fraction);
      // Mildly skewed value distribution: earlier values are more common,
      // mirroring real attribute skew (most countries drive on the right).
      for (const AttributeDef& attr : spec.attributes) {
        std::vector<double> weights(attr.values.size());
        for (size_t v = 0; v < weights.size(); ++v) {
          weights[v] = 1.0 / (1.0 + 0.25 * static_cast<double>(v));
        }
        entity.attribute_values.push_back(
            static_cast<int>(rng_.Categorical(weights)));
      }
      const EntityId id = world_.corpus.AddEntity(std::move(entity));
      const Entity& stored = world_.corpus.entity(id);
      for (size_t a = 0; a < spec.attributes.size(); ++a) {
        by_value[a][static_cast<size_t>(stored.attribute_values[a])]
            .push_back(id);
      }
    }
  }
  // Background entities: first the confusable ones, then generic ones.
  const int confusable = static_cast<int>(
      config_.background_confusable_fraction *
      static_cast<double>(config_.background_entity_count));
  for (int i = 0; i < config_.background_entity_count; ++i) {
    Entity entity;
    entity.name = names_.NextName(2, 50 + (i % 7), 2);
    Tokenizer tokenizer;
    entity.name_tokens = tokenizer.Tokenize(entity.name);
    entity.class_id = kBackgroundClassId;
    entity.is_long_tail = i >= confusable;  // generic ones are obscure pages
    const EntityId id = world_.corpus.AddEntity(std::move(entity));
    world_.background_entities.push_back(id);
  }
}

std::vector<TokenId> WorldBuilder::NameTokens(const Entity& entity) {
  std::vector<TokenId> ids;
  ids.reserve(entity.name_tokens.size());
  for (const std::string& word : entity.name_tokens) {
    ids.push_back(world_.corpus.tokens().AddToken(word));
  }
  return ids;
}

void WorldBuilder::AppendWords(std::vector<TokenId>& tokens,
                               const std::vector<std::string>& words) {
  for (const std::string& word : words) {
    tokens.push_back(world_.corpus.tokens().AddToken(word));
  }
}

void WorldBuilder::AppendNoise(std::vector<TokenId>& tokens, int count) {
  for (int i = 0; i < count; ++i) {
    tokens.push_back(
        noise_tokens_[rng_.UniformUint64(noise_tokens_.size())]);
  }
}

void WorldBuilder::AppendTopic(std::vector<TokenId>& tokens,
                               const FineClassSpec& spec, int count) {
  for (int i = 0; i < count; ++i) {
    const size_t pick = rng_.UniformUint64(spec.topic_tokens.size());
    tokens.push_back(world_.corpus.tokens().AddToken(spec.topic_tokens[pick]));
  }
}

void WorldBuilder::AppendClue(std::vector<TokenId>& tokens,
                              const FineClassSpec& spec, int attr,
                              int value) {
  const AttributeDef& def = spec.attributes[static_cast<size_t>(attr)];
  AppendWords(tokens, def.clue_tokens[static_cast<size_t>(value)]);
}

void WorldBuilder::AppendClueVariant(std::vector<TokenId>& tokens,
                                     const FineClassSpec& spec, int attr,
                                     int value) {
  const AttributeDef& def = spec.attributes[static_cast<size_t>(attr)];
  const auto& variants = def.clue_variants[static_cast<size_t>(value)];
  if (variants.size() <= 1 || rng_.Bernoulli(def.canonical_rate)) {
    AppendWords(tokens, variants[0]);
    return;
  }
  const size_t pick = 1 + rng_.UniformUint64(variants.size() - 1);
  AppendWords(tokens, variants[pick]);
}

void WorldBuilder::MakeContextSentences() {
  for (EntityId id = 0;
       id < static_cast<EntityId>(world_.corpus.entity_count()); ++id) {
    const Entity entity = world_.corpus.entity(id);
    if (entity.class_id == kBackgroundClassId) continue;
    const FineClassSpec& spec =
        world_.schema[static_cast<size_t>(entity.class_id)];
    const int sentence_count = entity.is_long_tail
                                   ? config_.long_tail_sentences
                                   : config_.sentences_per_entity;
    const std::vector<TokenId> name_ids = NameTokens(entity);
    for (int s = 0; s < sentence_count; ++s) {
      Sentence sentence;
      sentence.entity = id;
      std::vector<TokenId>& tokens = sentence.tokens;
      AppendWords(tokens, {"the", spec.singular_noun});
      sentence.mention_begin = static_cast<int>(tokens.size());
      sentence.mention_len = static_cast<int>(name_ids.size());
      tokens.insert(tokens.end(), name_ids.begin(), name_ids.end());
      // Each attribute clue appears with its signal rate; this is the only
      // statistical channel through which attribute values reach the
      // learned models, exactly like attribute mentions in Wikipedia prose.
      for (size_t a = 0; a < spec.attributes.size(); ++a) {
        if (rng_.Bernoulli(spec.attributes[a].signal_rate)) {
          AppendWords(tokens, {"with"});
          AppendClueVariant(tokens, spec, static_cast<int>(a),
                            entity.attribute_values[a]);
        }
      }
      AppendTopic(tokens, spec, rng_.UniformInt(1, 2));
      AppendNoise(tokens, rng_.UniformInt(3, 6));
      tokens.push_back(period_);
      world_.corpus.AddSentence(std::move(sentence));
    }
  }
}

void WorldBuilder::MakeListSentences() {
  const TokenId and_token = world_.corpus.tokens().AddToken("and");
  const TokenId are_token = world_.corpus.tokens().AddToken("are");
  const TokenId with_token = world_.corpus.tokens().AddToken("with");
  for (size_t c = 0; c < world_.schema.size(); ++c) {
    const FineClassSpec& spec = world_.schema[c];
    for (size_t a = 0; a < spec.attributes.size(); ++a) {
      for (size_t v = 0; v < spec.attributes[a].values.size(); ++v) {
        const std::vector<EntityId>& members =
            world_.entities_by_value[c][a][v];
        if (members.size() < 2) continue;
        for (int rep = 0; rep < config_.list_sentences_per_value; ++rep) {
          const int group_size = std::min<int>(
              static_cast<int>(members.size()),
              rng_.UniformInt(config_.list_group_min,
                              config_.list_group_max));
          std::vector<EntityId> group =
              rng_.SampleWithoutReplacement(members, group_size);
          std::vector<TokenId> tokens;
          for (size_t g = 0; g < group.size(); ++g) {
            if (g + 1 == group.size() && group.size() > 1) {
              tokens.push_back(and_token);
            } else if (g > 0) {
              tokens.push_back(comma_);
            }
            const std::vector<TokenId> name_ids =
                NameTokens(world_.corpus.entity(group[g]));
            tokens.insert(tokens.end(), name_ids.begin(), name_ids.end());
          }
          tokens.push_back(are_token);
          AppendWords(tokens, Tokenizer().Tokenize(spec.plural_noun));
          tokens.push_back(with_token);
          AppendClue(tokens, spec, static_cast<int>(a),
                     static_cast<int>(v));
          tokens.push_back(period_);
          world_.corpus.AddAuxiliarySentence(std::move(tokens));
        }
      }
    }
  }
}

void WorldBuilder::MakeSimilaritySentences() {
  const std::vector<std::string> connector = {"is", "similar", "to"};
  for (size_t c = 0; c < world_.schema.size(); ++c) {
    const std::vector<EntityId> members =
        world_.corpus.EntitiesOfClass(static_cast<ClassId>(c));
    if (members.size() < 2) continue;
    const int total = static_cast<int>(
        config_.similarity_sentences_per_entity *
        static_cast<double>(members.size()));
    for (int s = 0; s < total; ++s) {
      const EntityId left = members[rng_.UniformUint64(members.size())];
      // Weight partners by the number of shared attribute values, so LM
      // similarity carries an ultra-fine-grained signal beyond class
      // membership.
      std::vector<double> weights(members.size());
      const Entity& left_entity = world_.corpus.entity(left);
      for (size_t j = 0; j < members.size(); ++j) {
        if (members[j] == left) {
          weights[j] = 0.0;
          continue;
        }
        const Entity& right_entity = world_.corpus.entity(members[j]);
        int shared = 0;
        for (size_t a = 0; a < left_entity.attribute_values.size(); ++a) {
          if (left_entity.attribute_values[a] ==
              right_entity.attribute_values[a]) {
            ++shared;
          }
        }
        weights[j] = 1.0 + 5.0 * static_cast<double>(shared * shared);
      }
      const EntityId right = members[rng_.Categorical(weights)];
      std::vector<TokenId> tokens = NameTokens(world_.corpus.entity(left));
      AppendWords(tokens, connector);
      const std::vector<TokenId> right_ids =
          NameTokens(world_.corpus.entity(right));
      tokens.insert(tokens.end(), right_ids.begin(), right_ids.end());
      tokens.push_back(period_);
      world_.corpus.AddAuxiliarySentence(std::move(tokens));
    }
  }
}

void WorldBuilder::MakeBackgroundSentences() {
  const int confusable = static_cast<int>(
      config_.background_confusable_fraction *
      static_cast<double>(config_.background_entity_count));
  for (int i = 0;
       i < static_cast<int>(world_.background_entities.size()); ++i) {
    const EntityId id = world_.background_entities[static_cast<size_t>(i)];
    const Entity entity = world_.corpus.entity(id);
    const std::vector<TokenId> name_ids = NameTokens(entity);
    // Confusable pages borrow the topic vocabulary (and class noun) of one
    // target class; BM25 mining later surfaces them as hard negatives.
    const bool is_confusable = i < confusable;
    const size_t style_class = rng_.UniformUint64(world_.schema.size());
    for (int s = 0; s < config_.background_sentences_per_entity; ++s) {
      Sentence sentence;
      sentence.entity = id;
      std::vector<TokenId>& tokens = sentence.tokens;
      AppendWords(tokens, {"the"});
      if (is_confusable) {
        AppendWords(tokens, {world_.schema[style_class].singular_noun});
      } else {
        AppendWords(tokens, {"page"});
      }
      sentence.mention_begin = static_cast<int>(tokens.size());
      sentence.mention_len = static_cast<int>(name_ids.size());
      tokens.insert(tokens.end(), name_ids.begin(), name_ids.end());
      if (is_confusable) {
        AppendTopic(tokens, world_.schema[style_class],
                    rng_.UniformInt(1, 2));
      }
      AppendNoise(tokens, rng_.UniformInt(2, 4));
      tokens.push_back(period_);
      world_.corpus.AddSentence(std::move(sentence));
    }
  }
}

void WorldBuilder::MakeKnowledgeBase() {
  NameGenerator junk_names(rng_.Fork());
  for (EntityId id = 0;
       id < static_cast<EntityId>(world_.corpus.entity_count()); ++id) {
    const Entity entity = world_.corpus.entity(id);
    std::vector<TokenId> intro;
    std::vector<TokenId> dump;
    const std::vector<TokenId> name_ids = NameTokens(entity);
    intro.insert(intro.end(), name_ids.begin(), name_ids.end());
    if (entity.class_id == kBackgroundClassId) {
      AppendWords(intro, {"is", "a", "page"});
      AppendNoise(intro, 2);
      AppendNoise(dump, 4);
    } else {
      const FineClassSpec& spec =
          world_.schema[static_cast<size_t>(entity.class_id)];
      AppendWords(intro, {"is", "a", spec.singular_noun});
      // Real encyclopedic leads are class-flavoured prose: they carry the
      // domain vocabulary, reveal each attribute with high-but-imperfect
      // probability, and mix in incidental filler.
      AppendTopic(intro, spec, 2);
      for (size_t a = 0; a < spec.attributes.size(); ++a) {
        if (!rng_.Bernoulli(0.75)) continue;
        AppendWords(intro, {"with"});
        AppendClue(intro, spec, static_cast<int>(a),
                   entity.attribute_values[a]);
      }
      AppendNoise(intro, rng_.UniformInt(2, 3));
      // The Wikidata-style dump has the same true clues buried under junk
      // properties (the "YouTube channel ID" effect of Table 8).
      for (size_t a = 0; a < spec.attributes.size(); ++a) {
        AppendClue(dump, spec, static_cast<int>(a),
                   entity.attribute_values[a]);
      }
      for (int j = 0; j < config_.wikidata_junk_attributes; ++j) {
        AppendWords(dump, Tokenizer().Tokenize(junk_names.NextName(2, 31)));
        AppendNoise(dump, 1);
      }
    }
    world_.kb.Add(id, std::move(intro), std::move(dump));
  }
}

}  // namespace

uint64_t FingerprintConfig(const GeneratorConfig& config) {
  Fnv1a hash;
  hash.Mix("GeneratorConfig");
  hash.Mix(config.seed);
  hash.Mix(config.scale);
  hash.Mix(config.min_entities_per_class);
  hash.Mix(config.sentences_per_entity);
  hash.Mix(config.long_tail_sentences);
  hash.Mix(config.long_tail_fraction);
  hash.Mix(config.background_entity_count);
  hash.Mix(config.background_confusable_fraction);
  hash.Mix(config.background_sentences_per_entity);
  hash.Mix(config.list_sentences_per_value);
  hash.Mix(config.list_group_min);
  hash.Mix(config.list_group_max);
  hash.Mix(config.similarity_sentences_per_entity);
  hash.Mix(config.noise_vocab_size);
  hash.Mix(config.wikidata_junk_attributes);
  // Scaling knobs: a GeneratedWorld never depends on them, but cached
  // scaled-store artifacts are keyed on this fingerprint too, so leaving
  // them out would alias different scaled corpora to one cache entry.
  hash.Mix(config.scale_entities);
  hash.Mix(config.scale_classes);
  hash.Mix(config.scale_sentences_per_entity);
  hash.Mix(config.scale_sentence_tokens);
  return hash.digest();
}

GeneratedWorld GenerateWorld(const GeneratorConfig& config) {
  WorldBuilder builder(config);
  GeneratedWorld world = builder.Build();
  world.fingerprint = FingerprintConfig(config);
  return world;
}

namespace {

/// Stable 64-bit token hash for the scaled corpus' implicit vocabulary.
uint64_t ScaledToken(std::string_view tag, uint64_t a, uint64_t b) {
  Fnv1a hash;
  hash.Mix(tag);
  hash.Mix(a);
  hash.Mix(b);
  return hash.digest();
}

}  // namespace

void GenerateScaledEntities(
    const GeneratorConfig& config,
    const std::function<void(const ScaledEntity&)>& sink) {
  UW_CHECK_GT(config.scale_entities, 0)
      << "scaling mode is off (scale_entities == 0)";
  const int classes = std::max(1, config.scale_classes);
  const int sentences = std::max(1, config.scale_sentences_per_entity);
  const int tokens_per_sentence = std::max(4, config.scale_sentence_tokens);
  // Per-class topic vocabularies, hashed — tiny and reusable across the
  // whole stream. Each class also has 8 attribute-value tokens.
  constexpr int kTopicPool = 16;
  constexpr int kAttributeValues = 8;
  ScaledEntity entity;  // reused so the stream allocates O(1) buffers
  for (int64_t id = 0; id < config.scale_entities; ++id) {
    entity.id = static_cast<EntityId>(id);
    entity.class_id = static_cast<int>(id % classes);
    // Id-keyed child seed: entity id's stream never depends on how many
    // entities precede it, so any subrange regenerates identically.
    Fnv1a child;
    child.Mix("ScaledEntity");
    child.Mix(config.seed);
    child.Mix(static_cast<uint64_t>(id));
    Rng rng(child.digest());
    entity.attribute_value = static_cast<int>(rng.UniformUint64(
        static_cast<uint64_t>(kAttributeValues)));
    entity.sentences.assign(static_cast<size_t>(sentences), {});
    const auto class_id = static_cast<uint64_t>(entity.class_id);
    for (auto& sentence : entity.sentences) {
      sentence.reserve(static_cast<size_t>(tokens_per_sentence));
      // Class topic tokens dominate (the class signal), one attribute
      // token carries the within-class structure, and the rest is
      // per-entity hashed noise.
      const int topic = tokens_per_sentence * 2 / 3;
      for (int t = 0; t < topic; ++t) {
        sentence.push_back(ScaledToken(
            "topic", class_id,
            rng.UniformUint64(static_cast<uint64_t>(kTopicPool))));
      }
      sentence.push_back(ScaledToken(
          "attr", class_id, static_cast<uint64_t>(entity.attribute_value)));
      while (sentence.size() < static_cast<size_t>(tokens_per_sentence)) {
        sentence.push_back(ScaledToken("noise", static_cast<uint64_t>(id),
                                       rng.NextUint64()));
      }
    }
    sink(entity);
  }
}

}  // namespace ultrawiki
