#include "dataset/stats.h"

#include <set>

namespace ultrawiki {

DatasetStats ComputeDatasetStats(const GeneratedWorld& world,
                                 const UltraWikiDataset& dataset) {
  DatasetStats stats;
  stats.entity_count = static_cast<int64_t>(world.corpus.entity_count());
  stats.candidate_count = static_cast<int64_t>(dataset.candidates.size());
  stats.sentence_count = static_cast<int64_t>(world.corpus.sentence_count());
  stats.auxiliary_sentence_count =
      static_cast<int64_t>(world.corpus.auxiliary_sentences().size());
  stats.fine_class_count = static_cast<int>(world.schema.size());
  stats.ultra_class_count = static_cast<int>(dataset.classes.size());
  stats.query_count = static_cast<int>(dataset.queries.size());
  stats.fleiss_kappa = dataset.annotation.fleiss_kappa;
  stats.hard_negative_count = dataset.hard_negative_count;

  double pos_sum = 0.0;
  double neg_sum = 0.0;
  for (const UltraClass& ultra : dataset.classes) {
    pos_sum += static_cast<double>(ultra.positive_targets.size());
    neg_sum += static_cast<double>(ultra.negative_targets.size());
    const std::pair<int, int> combo(static_cast<int>(ultra.pos_attrs.size()),
                                    static_cast<int>(ultra.neg_attrs.size()));
    ++stats.attr_combo_counts[combo];
  }
  if (!dataset.classes.empty()) {
    stats.avg_positive_targets =
        pos_sum / static_cast<double>(dataset.classes.size());
    stats.avg_negative_targets =
        neg_sum / static_cast<double>(dataset.classes.size());
  }

  double pos_seed_sum = 0.0;
  double neg_seed_sum = 0.0;
  for (const Query& query : dataset.queries) {
    pos_seed_sum += static_cast<double>(query.pos_seeds.size());
    neg_seed_sum += static_cast<double>(query.neg_seeds.size());
  }
  if (!dataset.queries.empty()) {
    stats.avg_pos_seeds =
        pos_seed_sum / static_cast<double>(dataset.queries.size());
    stats.avg_neg_seeds =
        neg_seed_sum / static_cast<double>(dataset.queries.size());
  }

  // Per fine-grained class counts.
  stats.per_class.resize(world.schema.size(), {0, 0});
  for (size_t c = 0; c < world.schema.size(); ++c) {
    stats.per_class[c].first = world.schema[c].entity_count;
  }
  for (const UltraClass& ultra : dataset.classes) {
    ++stats.per_class[static_cast<size_t>(ultra.fine_class)].second;
  }

  // Intra-fine-class target overlap rate: fraction of ultra-class pairs in
  // the same fine class whose union target sets (P ∪ N) intersect.
  int64_t pairs = 0;
  int64_t overlapping = 0;
  for (size_t i = 0; i < dataset.classes.size(); ++i) {
    std::set<EntityId> targets_i(dataset.classes[i].positive_targets.begin(),
                                 dataset.classes[i].positive_targets.end());
    targets_i.insert(dataset.classes[i].negative_targets.begin(),
                     dataset.classes[i].negative_targets.end());
    for (size_t j = i + 1; j < dataset.classes.size(); ++j) {
      if (dataset.classes[i].fine_class != dataset.classes[j].fine_class) {
        continue;
      }
      ++pairs;
      bool intersects = false;
      for (EntityId id : dataset.classes[j].positive_targets) {
        if (targets_i.contains(id)) {
          intersects = true;
          break;
        }
      }
      if (!intersects) {
        for (EntityId id : dataset.classes[j].negative_targets) {
          if (targets_i.contains(id)) {
            intersects = true;
            break;
          }
        }
      }
      if (intersects) ++overlapping;
    }
  }
  stats.intra_fine_overlap_rate =
      pairs > 0 ? static_cast<double>(overlapping) /
                      static_cast<double>(pairs)
                : 0.0;
  return stats;
}

}  // namespace ultrawiki
