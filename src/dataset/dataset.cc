#include "dataset/dataset.h"

#include <algorithm>
#include <array>
#include <map>
#include <set>

#include "common/logging.h"
#include "index/bm25.h"
#include "io/artifact_cache.h"
#include "io/snapshot.h"
#include "obs/trace.h"

namespace ultrawiki {
namespace {

/// Paper Table 11: ultra-fine-grained class counts per fine-grained class.
constexpr std::array<int, 10> kPaperUltraCounts = {10, 50, 68, 74, 12,
                                                   7,  10, 11, 5,  14};

/// A candidate ultra-class before threshold filtering.
struct CandidateClass {
  std::vector<int> pos_attrs;
  std::vector<int> pos_values;
  std::vector<int> neg_attrs;
  std::vector<int> neg_values;
};

/// True when `entity_values[attrs[i]] == values[i]` for all i.
bool MatchesAll(const std::vector<int>& entity_values,
                const std::vector<int>& attrs,
                const std::vector<int>& values) {
  for (size_t i = 0; i < attrs.size(); ++i) {
    const size_t a = static_cast<size_t>(attrs[i]);
    if (a >= entity_values.size()) return false;
    if (entity_values[a] != values[i]) return false;
  }
  return true;
}

/// Enumerates all value assignments for the attribute subset `attrs`.
void EnumerateValueAssignments(const FineClassSpec& spec,
                               const std::vector<int>& attrs,
                               std::vector<std::vector<int>>* out) {
  std::vector<int> current(attrs.size(), 0);
  while (true) {
    out->push_back(current);
    size_t pos = 0;
    while (pos < attrs.size()) {
      const size_t limit =
          spec.attributes[static_cast<size_t>(attrs[pos])].values.size();
      if (static_cast<size_t>(++current[pos]) < limit) break;
      current[pos] = 0;
      ++pos;
    }
    if (pos == attrs.size()) break;
  }
}

/// Enumerates attribute subsets of the given size.
std::vector<std::vector<int>> AttributeSubsets(int attr_count, int size) {
  std::vector<std::vector<int>> subsets;
  std::vector<int> indices(static_cast<size_t>(size));
  // Simple iterative combination enumeration.
  for (int i = 0; i < size; ++i) indices[static_cast<size_t>(i)] = i;
  if (size > attr_count) return subsets;
  while (true) {
    subsets.push_back(indices);
    int pos = size - 1;
    while (pos >= 0 &&
           indices[static_cast<size_t>(pos)] == attr_count - size + pos) {
      --pos;
    }
    if (pos < 0) break;
    ++indices[static_cast<size_t>(pos)];
    for (int i = pos + 1; i < size; ++i) {
      indices[static_cast<size_t>(i)] =
          indices[static_cast<size_t>(i - 1)] + 1;
    }
  }
  return subsets;
}

/// Builds all candidate (A^pos=V^pos, A^neg=V^neg) combinations of the
/// given sizes for one class.
std::vector<CandidateClass> EnumerateCandidates(const FineClassSpec& spec,
                                                int pos_size, int neg_size) {
  std::vector<CandidateClass> out;
  const int attr_count = static_cast<int>(spec.attributes.size());
  for (const auto& pos_attrs : AttributeSubsets(attr_count, pos_size)) {
    std::vector<std::vector<int>> pos_assignments;
    EnumerateValueAssignments(spec, pos_attrs, &pos_assignments);
    for (const auto& neg_attrs : AttributeSubsets(attr_count, neg_size)) {
      std::vector<std::vector<int>> neg_assignments;
      EnumerateValueAssignments(spec, neg_attrs, &neg_assignments);
      for (const auto& pos_values : pos_assignments) {
        for (const auto& neg_values : neg_assignments) {
          // Forbid a degenerate class where positive and negative
          // constraints are identical (nothing to separate) and forbid
          // direct contradictions (same attr with same value on both
          // sides).
          bool degenerate = false;
          bool identical = pos_attrs == neg_attrs;
          if (identical && pos_values == neg_values) degenerate = true;
          for (size_t i = 0; i < pos_attrs.size() && !degenerate; ++i) {
            for (size_t j = 0; j < neg_attrs.size(); ++j) {
              if (pos_attrs[i] == neg_attrs[j] &&
                  pos_values[i] == neg_values[j]) {
                degenerate = true;
                break;
              }
            }
          }
          if (degenerate) continue;
          out.push_back(CandidateClass{pos_attrs, pos_values, neg_attrs,
                                       neg_values});
        }
      }
    }
  }
  return out;
}

}  // namespace

StatusOr<UltraWikiDataset> BuildDataset(const GeneratedWorld& world,
                                        const DatasetConfig& config) {
  if (config.n_thred < 1) {
    return Status::InvalidArgument("n_thred must be >= 1");
  }
  if (config.min_seeds < 1 || config.max_seeds < config.min_seeds) {
    return Status::InvalidArgument("invalid seed-count range");
  }
  Rng rng(config.seed);
  UltraWikiDataset dataset;

  // ---- Step 3: attribute annotation (simulated). ----
  dataset.annotation = AnnotateWorld(world, config.annotation);

  // ---- Step 4: negative-aware ultra-fine-grained class generation. ----
  for (size_t c = 0; c < world.schema.size(); ++c) {
    const FineClassSpec& spec = world.schema[c];
    const std::vector<EntityId> members =
        world.corpus.EntitiesOfClass(static_cast<ClassId>(c));

    auto materialize = [&](const CandidateClass& cand,
                           UltraClass* ultra) -> bool {
      ultra->fine_class = static_cast<ClassId>(c);
      ultra->pos_attrs = cand.pos_attrs;
      ultra->pos_values = cand.pos_values;
      ultra->neg_attrs = cand.neg_attrs;
      ultra->neg_values = cand.neg_values;
      ultra->attrs_identical = cand.pos_attrs == cand.neg_attrs;
      for (EntityId id : members) {
        const std::vector<int>& values =
            dataset.annotation.values[static_cast<size_t>(id)];
        const bool pos_match =
            MatchesAll(values, cand.pos_attrs, cand.pos_values);
        const bool neg_match =
            MatchesAll(values, cand.neg_attrs, cand.neg_values);
        if (neg_match) ultra->negative_targets.push_back(id);
        if (pos_match && !neg_match) ultra->positive_targets.push_back(id);
      }
      return static_cast<int>(ultra->positive_targets.size()) >=
                 config.n_thred &&
             static_cast<int>(ultra->negative_targets.size()) >=
                 config.n_thred;
    };

    // Pool of viable (1,1) classes and viable higher-order classes.
    std::vector<UltraClass> simple_pool;
    for (const CandidateClass& cand : EnumerateCandidates(spec, 1, 1)) {
      UltraClass ultra;
      if (materialize(cand, &ultra)) simple_pool.push_back(std::move(ultra));
    }
    std::vector<UltraClass> higher_pool;
    const int attr_count = static_cast<int>(spec.attributes.size());
    for (int ps = 1; ps <= attr_count; ++ps) {
      for (int ns = 1; ns <= attr_count; ++ns) {
        if (ps == 1 && ns == 1) continue;
        // Table 12 shapes: (1,2), (2,1), (2,2) and (3,3) for 3-attr
        // classes; skip shapes like (1,3)/(3,1) that the paper lacks.
        const bool allowed = (ps <= 2 && ns <= 2) || (ps == 3 && ns == 3);
        if (!allowed) continue;
        for (const CandidateClass& cand :
             EnumerateCandidates(spec, ps, ns)) {
          UltraClass ultra;
          if (materialize(cand, &ultra)) {
            higher_pool.push_back(std::move(ultra));
          }
        }
      }
    }

    const int cap = std::max(
        2, static_cast<int>(static_cast<double>(kPaperUltraCounts[c]) *
                            config.ultra_class_scale));
    int higher_target = static_cast<int>(
        config.higher_order_fraction * static_cast<double>(cap) + 0.5);
    higher_target =
        std::min<int>(higher_target, static_cast<int>(higher_pool.size()));
    const int simple_target = std::min<int>(
        cap - higher_target, static_cast<int>(simple_pool.size()));

    rng.Shuffle(simple_pool);
    rng.Shuffle(higher_pool);
    for (int i = 0; i < simple_target; ++i) {
      dataset.classes.push_back(std::move(simple_pool[static_cast<size_t>(i)]));
    }
    // Round-robin over the attribute-count shapes so (1,2), (2,1), (2,2)
    // and (3,3) are all represented when available (Table 12 / Table 6).
    std::map<std::pair<int, int>, std::vector<UltraClass*>> by_shape;
    for (UltraClass& ultra : higher_pool) {
      by_shape[{static_cast<int>(ultra.pos_attrs.size()),
                static_cast<int>(ultra.neg_attrs.size())}]
          .push_back(&ultra);
    }
    int taken = 0;
    size_t round = 0;
    while (taken < higher_target) {
      bool any = false;
      for (auto& [shape, list] : by_shape) {
        if (round < list.size() && taken < higher_target) {
          dataset.classes.push_back(std::move(*list[round]));
          ++taken;
          any = true;
        }
      }
      if (!any) break;
      ++round;
    }
  }
  if (dataset.classes.empty()) {
    return Status::FailedPrecondition(
        "no ultra-fine-grained class met n_thred; increase scale");
  }

  // ---- Queries: 3 per ultra-class, 3-5 positive and negative seeds. ----
  for (size_t u = 0; u < dataset.classes.size(); ++u) {
    const UltraClass& ultra = dataset.classes[u];
    for (int q = 0; q < config.queries_per_class; ++q) {
      Query query;
      query.ultra_class = static_cast<int>(u);
      const int pos_k = std::min<int>(
          rng.UniformInt(config.min_seeds, config.max_seeds),
          static_cast<int>(ultra.positive_targets.size()));
      const int neg_k = std::min<int>(
          rng.UniformInt(config.min_seeds, config.max_seeds),
          static_cast<int>(ultra.negative_targets.size()));
      query.pos_seeds = rng.SampleWithoutReplacement(
          ultra.positive_targets, static_cast<size_t>(pos_k));
      query.neg_seeds = rng.SampleWithoutReplacement(
          ultra.negative_targets, static_cast<size_t>(neg_k));
      dataset.queries.push_back(std::move(query));
    }
  }

  // ---- Candidate vocabulary: in-class entities + mined background. ----
  for (EntityId id = 0;
       id < static_cast<EntityId>(world.corpus.entity_count()); ++id) {
    if (world.corpus.entity(id).class_id != kBackgroundClassId) {
      dataset.candidates.push_back(id);
    }
  }
  const std::vector<EntityId>& pool = world.background_entities;
  const int keep = static_cast<int>(config.background_keep_fraction *
                                    static_cast<double>(pool.size()));
  if (keep > 0 && !pool.empty()) {
    // BM25 hard-negative mining: index each background entity's sentences
    // as one document and query with each class's topical text; admit the
    // most similar pages first. The index depends only on the world, so it
    // is cached keyed on the world's generator fingerprint (fingerprint 0
    // = unknown provenance = never cached).
    ArtifactCache& cache = ArtifactCache::Global();
    const uint64_t index_key =
        world.fingerprint == 0
            ? 0
            : CombineFingerprints({world.fingerprint});
    InvertedIndex index = [&]() -> InvertedIndex {
      if (world.fingerprint != 0) {
        UW_SPAN("cache.load_index");
        auto cached = TryLoadCached(cache, "mined-index", index_key,
                                    [](const std::string& path) {
                                      return LoadIndexSnapshot(path);
                                    });
        if (cached.has_value()) return std::move(*cached);
      }
      UW_SPAN("dataset.build_index");
      InvertedIndex built;
      for (EntityId id : pool) {
        std::vector<TokenId> doc;
        for (int s : world.corpus.SentencesOf(id)) {
          const Sentence& sentence =
              world.corpus.sentence(static_cast<size_t>(s));
          doc.insert(doc.end(), sentence.tokens.begin(),
                     sentence.tokens.end());
        }
        built.AddDocument(doc);
      }
      built.Freeze();
      if (world.fingerprint != 0) {
        StoreCached(cache, "mined-index", index_key,
                    [&built](const std::string& path) {
                      return SaveIndexSnapshot(built, path);
                    });
      }
      return built;
    }();
    Bm25Scorer scorer(&index);
    std::vector<std::vector<TokenId>> class_queries;
    class_queries.reserve(world.schema.size());
    for (const FineClassSpec& spec : world.schema) {
      std::vector<TokenId> query;
      const Vocabulary& vocab = world.corpus.tokens();
      const TokenId noun = vocab.Lookup(spec.singular_noun);
      if (noun != kInvalidTokenId) query.push_back(noun);
      for (const std::string& topic : spec.topic_tokens) {
        const TokenId t = vocab.Lookup(topic);
        if (t != kInvalidTokenId) query.push_back(t);
      }
      class_queries.push_back(std::move(query));
    }
    // Per-class pruned top-k searches in one parallel batch instead of
    // dense score vectors over the whole pool: the global top
    // `hard_target` documents by max-over-classes score are provably
    // contained in the union of the per-class top `hard_target` lists
    // (a doc's best-scoring class ranks at least as many docs ahead of it
    // as the global ranking does), and each doc's exact max score is its
    // score in that best class, which its top-k entry carries. The merged
    // ranking is therefore identical to the old dense max-reduction —
    // minus never-matched docs, which scored 0 and were only ever
    // admitted as "hard" negatives by the score-0 padding bug.
    const int hard_target = static_cast<int>(
        config.hard_negative_fraction * static_cast<double>(keep));
    std::set<size_t> admitted;
    if (hard_target > 0) {
      const std::vector<std::vector<ScoredIndex>> per_class =
          scorer.SearchBatch(class_queries, static_cast<size_t>(hard_target));
      std::map<size_t, float> best;
      for (const std::vector<ScoredIndex>& hits : per_class) {
        for (const ScoredIndex& hit : hits) {
          auto [it, inserted] = best.try_emplace(hit.index, hit.score);
          if (!inserted) it->second = std::max(it->second, hit.score);
        }
      }
      std::vector<ScoredIndex> merged;
      merged.reserve(best.size());
      for (const auto& [doc, score] : best) {
        merged.push_back(ScoredIndex{score, doc});
      }
      merged = TopKOfPairs(std::move(merged), static_cast<size_t>(hard_target));
      for (const ScoredIndex& hit : merged) admitted.insert(hit.index);
    }
    dataset.hard_negative_count = static_cast<int>(admitted.size());
    // Fill the remainder uniformly from the unadmitted pool.
    std::vector<size_t> rest;
    for (size_t i = 0; i < pool.size(); ++i) {
      if (!admitted.contains(i)) rest.push_back(i);
    }
    rng.Shuffle(rest);
    for (size_t i = 0; i < rest.size() &&
                       admitted.size() < static_cast<size_t>(keep);
         ++i) {
      admitted.insert(rest[i]);
    }
    for (size_t i : admitted) dataset.candidates.push_back(pool[i]);
  }
  std::sort(dataset.candidates.begin(), dataset.candidates.end());

  return dataset;
}

}  // namespace ultrawiki
