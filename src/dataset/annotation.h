#ifndef ULTRAWIKI_DATASET_ANNOTATION_H_
#define ULTRAWIKI_DATASET_ANNOTATION_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "corpus/generator.h"

namespace ultrawiki {

/// Configuration of the simulated step-3 annotation process (paper §4.1):
/// a fraction of attribute values is auto-filled from Wikidata; the rest is
/// labelled by `annotator_count` independent annotators with a per-label
/// error rate, resolved by majority vote.
struct AnnotationConfig {
  uint64_t seed = 11;
  /// Fraction of (entity, attribute) cells the Wikidata script resolves.
  double auto_coverage = 0.6;
  int annotator_count = 3;
  /// Probability an annotator labels a cell incorrectly (uniform over the
  /// wrong values). 0.05 lands Fleiss' kappa near the paper's 0.90.
  double annotator_error_rate = 0.04;
};

/// Output of the annotation simulation.
struct AnnotationResult {
  /// values[entity][attr] = annotated value index (majority vote / auto).
  /// Indexed only for in-class entities; background entities are empty.
  std::vector<std::vector<int>> values;
  /// Fleiss' kappa over the manually annotated cells (weighted average
  /// across attributes).
  double fleiss_kappa = 0.0;
  int64_t manual_cells = 0;
  int64_t auto_cells = 0;
  /// Fraction of annotated values that disagree with ground truth.
  double residual_error_rate = 0.0;
};

/// Runs the simulated annotation over every in-class entity of `world`.
AnnotationResult AnnotateWorld(const GeneratedWorld& world,
                               const AnnotationConfig& config);

/// Fleiss' kappa for `ratings`, an items × categories count matrix where
/// each row sums to the (constant) number of raters. Returns 1.0 when
/// agreement is perfect and expected agreement is also 1 (degenerate case).
double FleissKappa(const std::vector<std::vector<int>>& ratings);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_DATASET_ANNOTATION_H_
