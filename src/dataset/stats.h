#ifndef ULTRAWIKI_DATASET_STATS_H_
#define ULTRAWIKI_DATASET_STATS_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "dataset/dataset.h"

namespace ultrawiki {

/// Aggregate statistics of a constructed dataset, covering the numbers the
/// paper reports in Table 1 (dataset comparison), Table 11 (per-class
/// details), Table 12 (attribute-count combinations) and Fig. 3.
struct DatasetStats {
  int64_t entity_count = 0;
  int64_t candidate_count = 0;
  int64_t sentence_count = 0;
  int64_t auxiliary_sentence_count = 0;
  int fine_class_count = 0;
  int ultra_class_count = 0;
  int query_count = 0;
  double avg_positive_targets = 0.0;
  double avg_negative_targets = 0.0;
  double avg_pos_seeds = 0.0;
  double avg_neg_seeds = 0.0;
  double fleiss_kappa = 0.0;
  int hard_negative_count = 0;
  /// Fraction of ultra-class pairs within the same fine class whose target
  /// sets intersect (the paper reports ~99%).
  double intra_fine_overlap_rate = 0.0;

  /// Per fine-grained class: (entity count, ultra-class count).
  std::vector<std::pair<int, int>> per_class;

  /// (|A^pos|, |A^neg|) -> ultra-class count (Table 12).
  std::map<std::pair<int, int>, int> attr_combo_counts;
};

/// Computes statistics of `dataset` against its `world`.
DatasetStats ComputeDatasetStats(const GeneratedWorld& world,
                                 const UltraWikiDataset& dataset);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_DATASET_STATS_H_
