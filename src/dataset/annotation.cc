#include "dataset/annotation.h"

#include <algorithm>

#include "common/logging.h"

namespace ultrawiki {

double FleissKappa(const std::vector<std::vector<int>>& ratings) {
  if (ratings.empty()) return 1.0;
  const size_t categories = ratings[0].size();
  UW_CHECK_GT(categories, 0u);
  int raters = 0;
  for (int c : ratings[0]) raters += c;
  UW_CHECK_GT(raters, 1);

  const double n = static_cast<double>(raters);
  const double item_count = static_cast<double>(ratings.size());

  // Per-item agreement P_i and category proportions p_j.
  double p_bar = 0.0;
  std::vector<double> category_mass(categories, 0.0);
  for (const auto& row : ratings) {
    UW_CHECK_EQ(row.size(), categories);
    int row_sum = 0;
    double agreement = 0.0;
    for (size_t j = 0; j < categories; ++j) {
      row_sum += row[j];
      agreement += static_cast<double>(row[j]) *
                   static_cast<double>(row[j] - 1);
      category_mass[j] += static_cast<double>(row[j]);
    }
    UW_CHECK_EQ(row_sum, raters);
    p_bar += agreement / (n * (n - 1.0));
  }
  p_bar /= item_count;

  double p_expected = 0.0;
  for (size_t j = 0; j < categories; ++j) {
    const double p_j = category_mass[j] / (item_count * n);
    p_expected += p_j * p_j;
  }
  if (p_expected >= 1.0) return 1.0;
  return (p_bar - p_expected) / (1.0 - p_expected);
}

AnnotationResult AnnotateWorld(const GeneratedWorld& world,
                               const AnnotationConfig& config) {
  Rng rng(config.seed);
  AnnotationResult result;
  result.values.resize(world.corpus.entity_count());

  // One kappa table per attribute arity; we aggregate a weighted average.
  // Key: number of categories -> items for that arity.
  int64_t disagreements = 0;
  int64_t annotated_total = 0;
  double kappa_weighted_sum = 0.0;
  int64_t kappa_weight = 0;

  for (size_t c = 0; c < world.schema.size(); ++c) {
    const FineClassSpec& spec = world.schema[c];
    const std::vector<EntityId> members =
        world.corpus.EntitiesOfClass(static_cast<ClassId>(c));
    for (size_t a = 0; a < spec.attributes.size(); ++a) {
      const int value_count =
          static_cast<int>(spec.attributes[a].values.size());
      std::vector<std::vector<int>> manual_ratings;
      std::vector<EntityId> manual_entities;
      for (EntityId id : members) {
        const Entity& entity = world.corpus.entity(id);
        auto& row = result.values[static_cast<size_t>(id)];
        if (row.size() != spec.attributes.size()) {
          row.assign(spec.attributes.size(), -1);
        }
        const int truth = entity.attribute_values[a];
        if (rng.Bernoulli(config.auto_coverage)) {
          // Wikidata auto-annotation: exact.
          row[a] = truth;
          ++result.auto_cells;
        } else {
          // Three independent annotators with an error model; majority
          // vote, ties broken toward the lowest value index.
          std::vector<int> votes(static_cast<size_t>(value_count), 0);
          for (int r = 0; r < config.annotator_count; ++r) {
            int label = truth;
            if (value_count > 1 &&
                rng.Bernoulli(config.annotator_error_rate)) {
              int wrong = rng.UniformInt(0, value_count - 2);
              if (wrong >= truth) ++wrong;
              label = wrong;
            }
            ++votes[static_cast<size_t>(label)];
          }
          const int majority = static_cast<int>(
              std::max_element(votes.begin(), votes.end()) - votes.begin());
          row[a] = majority;
          manual_ratings.push_back(std::move(votes));
          manual_entities.push_back(id);
          ++result.manual_cells;
        }
        ++annotated_total;
        if (row[a] != truth) ++disagreements;
      }
      if (manual_ratings.size() >= 2) {
        const double kappa = FleissKappa(manual_ratings);
        kappa_weighted_sum +=
            kappa * static_cast<double>(manual_ratings.size());
        kappa_weight += static_cast<int64_t>(manual_ratings.size());
      }
    }
  }
  result.fleiss_kappa =
      kappa_weight > 0 ? kappa_weighted_sum / static_cast<double>(kappa_weight)
                       : 1.0;
  result.residual_error_rate =
      annotated_total > 0
          ? static_cast<double>(disagreements) /
                static_cast<double>(annotated_total)
          : 0.0;
  return result;
}

}  // namespace ultrawiki
