#ifndef ULTRAWIKI_DATASET_DATASET_H_
#define ULTRAWIKI_DATASET_DATASET_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "corpus/generator.h"
#include "dataset/annotation.h"

namespace ultrawiki {

/// One ultra-fine-grained semantic class: a fine-grained class constrained
/// by positive attribute values (A^pos = V^pos) and negative attribute
/// values (A^neg = V^neg). `positive_targets` is P (match V^pos and do not
/// match V^neg); `negative_targets` is N (match V^neg).
struct UltraClass {
  ClassId fine_class = 0;
  std::vector<int> pos_attrs;
  std::vector<int> pos_values;
  std::vector<int> neg_attrs;
  std::vector<int> neg_values;
  std::vector<EntityId> positive_targets;
  std::vector<EntityId> negative_targets;

  /// True when A^pos and A^neg are the same attribute set (the paper's
  /// "emphasis" case of Table 4); false means "unwanted semantics".
  bool attrs_identical = false;
};

/// One query: an ultra-class index plus 3–5 positive and negative seeds.
struct Query {
  int ultra_class = 0;
  std::vector<EntityId> pos_seeds;
  std::vector<EntityId> neg_seeds;
};

/// Configuration of steps 3–4 of the construction pipeline plus candidate
/// vocabulary assembly.
struct DatasetConfig {
  uint64_t seed = 7;
  /// Minimum |P| and |N| for an ultra-class to be kept (paper n_thred=6).
  int n_thred = 6;
  int queries_per_class = 3;
  int min_seeds = 3;
  int max_seeds = 5;
  /// Scales the per-fine-class ultra-class caps of Table 11.
  double ultra_class_scale = 0.35;
  /// Fraction of higher-order attribute combinations (|A|>1) among kept
  /// classes; Table 12 has ~9% non-(1,1) classes.
  double higher_order_fraction = 0.09;
  AnnotationConfig annotation;
  /// Fraction of the background pool admitted to the candidate vocabulary
  /// through BM25 hard-negative mining (the rest is sampled uniformly).
  double hard_negative_fraction = 0.5;
  double background_keep_fraction = 1.0;
};

/// The constructed UltraWiki dataset: ultra-classes, queries, candidate
/// vocabulary V, and annotation bookkeeping.
struct UltraWikiDataset {
  std::vector<UltraClass> classes;
  std::vector<Query> queries;
  /// Candidate vocabulary V: all in-class entities + admitted background.
  std::vector<EntityId> candidates;
  AnnotationResult annotation;
  /// Number of background entities admitted via BM25 mining.
  int hard_negative_count = 0;

  /// Convenience: the ultra-class of a query.
  const UltraClass& ClassOf(const Query& query) const {
    return classes[static_cast<size_t>(query.ultra_class)];
  }
};

/// Runs steps 3–4 of the pipeline over a generated world and assembles the
/// candidate vocabulary. Deterministic in `config.seed`.
StatusOr<UltraWikiDataset> BuildDataset(const GeneratedWorld& world,
                                        const DatasetConfig& config);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_DATASET_DATASET_H_
