#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace ultrawiki {

std::vector<std::string> SplitString(std::string_view text, char delimiter) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(delimiter, start);
    if (end == std::string_view::npos) end = text.size();
    if (end > start) pieces.emplace_back(text.substr(start, end - start));
    start = end + 1;
  }
  return pieces;
}

std::vector<std::string> SplitStringKeepEmpty(std::string_view text,
                                              char delimiter) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t end = text.find(delimiter, start);
    if (end == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      break;
    }
    pieces.emplace_back(text.substr(start, end - start));
    start = end + 1;
  }
  return pieces;
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) result += separator;
    result += pieces[i];
  }
  return result;
}

std::string ToLowerAscii(std::string_view text) {
  std::string result(text);
  for (char& c : result) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return result;
}

std::string StripAsciiWhitespace(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  if (needed <= 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string result(static_cast<size_t>(needed), '\0');
  std::vsnprintf(result.data(), result.size() + 1, format, args_copy);
  va_end(args_copy);
  return result;
}

std::string FormatDouble(double value, int digits) {
  return StrFormat("%.*f", digits, value);
}

}  // namespace ultrawiki
