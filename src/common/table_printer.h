#ifndef ULTRAWIKI_COMMON_TABLE_PRINTER_H_
#define ULTRAWIKI_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace ultrawiki {

/// Column-aligned plain-text table writer used by the benchmark harness to
/// print paper-style result tables.
class TablePrinter {
 public:
  /// `title` is printed above the table; may be empty.
  explicit TablePrinter(std::string title = "");

  /// Sets the header row. Must be called before adding rows.
  void SetHeader(std::vector<std::string> header);

  /// Appends one data row; its width must match the header.
  void AddRow(std::vector<std::string> row);

  /// Appends a horizontal separator line between row groups.
  void AddSeparator();

  /// Renders the table to `os`.
  void Print(std::ostream& os) const;

  /// Renders the table to a string.
  std::string ToString() const;

  size_t row_count() const { return rows_.size(); }

 private:
  struct Row {
    bool is_separator = false;
    std::vector<std::string> cells;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace ultrawiki

#endif  // ULTRAWIKI_COMMON_TABLE_PRINTER_H_
