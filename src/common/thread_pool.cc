#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ultrawiki {
namespace {

/// Set while a pool task runs on this thread; nested ParallelFor calls
/// detect it and run inline instead of re-entering the pool.
thread_local bool tl_inside_pool_task = false;

/// Pool utilization metrics (see README "Observability"). The sequential
/// fallback path (one lane, nested calls, single-index ranges) is
/// deliberately uninstrumented: no tasks exist there.
struct PoolMetrics {
  obs::Counter& tasks_submitted = obs::GetCounter("pool.tasks_submitted");
  obs::Counter& tasks_run = obs::GetCounter("pool.tasks_run");
  obs::Counter& steals = obs::GetCounter("pool.steals");
  obs::Counter& assist_runs = obs::GetCounter("pool.assist_runs");
  obs::Gauge& peak_queue_depth = obs::GetGauge("pool.peak_queue_depth");
};

PoolMetrics& Metrics() {
  static PoolMetrics* metrics = new PoolMetrics();
  return *metrics;
}

std::mutex& GlobalPoolMutex() {
  static std::mutex mutex;
  return mutex;
}

std::unique_ptr<ThreadPool>& GlobalPoolSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

int ThreadPool::DefaultThreadCount() {
  if (const char* env = std::getenv("UW_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  std::unique_ptr<ThreadPool>& slot = GlobalPoolSlot();
  if (slot == nullptr) slot = std::make_unique<ThreadPool>();
  return *slot;
}

Status ThreadPool::SetGlobalThreadCount(int thread_count) {
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  std::unique_ptr<ThreadPool>& slot = GlobalPoolSlot();
  if (slot != nullptr && slot->inflight() > 0) {
    Status status = Status::FailedPrecondition(
        "SetGlobalThreadCount while the global pool has " +
        std::to_string(slot->inflight()) + " ParallelFor call(s) in flight");
    UW_LOG(Error) << status.message();
    return status;
  }
  slot = std::make_unique<ThreadPool>(thread_count);
  return Status::Ok();
}

ThreadPool::ThreadPool(int thread_count) {
  // Register the pool metrics eagerly so snapshots list them (at zero)
  // even for runs that never leave the sequential fallback.
  Metrics();
  thread_count_ = thread_count > 0 ? thread_count : DefaultThreadCount();
  const int worker_count = thread_count_ - 1;
  queues_.reserve(static_cast<size_t>(worker_count));
  for (int i = 0; i < worker_count; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(static_cast<size_t>(worker_count));
  for (int i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_.store(true, std::memory_order_release);
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::TryRunOneTask(int self) {
  Task task;
  const int n = static_cast<int>(queues_.size());
  for (int offset = 0; offset < n && !task; ++offset) {
    // The owner starts with its own queue; everyone else scans from 0.
    const int idx = self >= 0 ? (self + offset) % n : offset;
    WorkerQueue& q = *queues_[static_cast<size_t>(idx)];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (q.tasks.empty()) continue;
    if (idx == self) {
      task = std::move(q.tasks.front());
      q.tasks.pop_front();
    } else {
      task = std::move(q.tasks.back());
      q.tasks.pop_back();
      // The submitting thread helping out is expected; a worker raiding
      // another worker's queue is load imbalance worth watching.
      if (self < 0) {
        Metrics().assist_runs.Increment();
      } else {
        Metrics().steals.Increment();
      }
    }
    queued_tasks_.fetch_sub(1, std::memory_order_relaxed);
  }
  if (!task) return false;
  Metrics().tasks_run.Increment();
  tl_inside_pool_task = true;
  task();
  tl_inside_pool_task = false;
  return true;
}

void ThreadPool::WorkerLoop(int self) {
  while (true) {
    while (TryRunOneTask(self)) {
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             queued_tasks_.load(std::memory_order_relaxed) > 0;
    });
    if (stop_.load(std::memory_order_acquire)) return;
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t)>& fn) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  // Every path (including the sequential fallback) counts as in-flight
  // work: user code is running and the pool object must stay alive.
  struct InflightScope {
    explicit InflightScope(std::atomic<int64_t>& counter) : counter(counter) {
      counter.fetch_add(1, std::memory_order_acq_rel);
    }
    ~InflightScope() { counter.fetch_sub(1, std::memory_order_acq_rel); }
    std::atomic<int64_t>& counter;
  } inflight_scope(inflight_);
  // Exact sequential fallback: one lane, a nested call from inside a pool
  // task, or a range too small to split.
  if (thread_count_ == 1 || tl_inside_pool_task || n == 1) {
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  if (grain <= 0) {
    // ~4 chunks per lane balances stealing against queue traffic.
    grain = std::max<int64_t>(1, n / (4 * static_cast<int64_t>(thread_count_)));
  }
  const int64_t chunk_count = (n + grain - 1) / grain;

  struct BatchState {
    std::atomic<int64_t> remaining;
    std::mutex mutex;
    std::condition_variable done;
  };
  auto state = std::make_shared<BatchState>();
  state->remaining.store(chunk_count, std::memory_order_relaxed);

  // When tracing, tasks re-root their spans under the span path open on
  // this (submitting) thread, so worker-side spans nest under the stage
  // that spawned them instead of dangling at the root.
  std::shared_ptr<const std::vector<std::string>> trace_path;
  if (obs::TraceEnabled()) {
    std::vector<std::string> path = obs::CurrentSpanPath();
    if (!path.empty()) {
      trace_path = std::make_shared<const std::vector<std::string>>(
          std::move(path));
    }
  }
  Metrics().tasks_submitted.Increment(chunk_count);

  for (int64_t c = 0; c < chunk_count; ++c) {
    const int64_t chunk_begin = begin + c * grain;
    const int64_t chunk_end = std::min<int64_t>(chunk_begin + grain, end);
    Task task = [state, chunk_begin, chunk_end, &fn, trace_path] {
      obs::ScopedTaskParent trace_parent(trace_path.get());
      for (int64_t i = chunk_begin; i < chunk_end; ++i) fn(i);
      if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Take the lock so the submitter cannot miss the final notify
        // between its predicate check and its wait.
        std::lock_guard<std::mutex> lock(state->mutex);
        state->done.notify_all();
      }
    };
    WorkerQueue& q = *queues_[static_cast<size_t>(c % static_cast<int64_t>(
                                  queues_.size()))];
    {
      std::lock_guard<std::mutex> lock(q.mutex);
      q.tasks.push_back(std::move(task));
    }
    Metrics().peak_queue_depth.UpdateMax(
        queued_tasks_.fetch_add(1, std::memory_order_relaxed) + 1);
  }
  {
    // Pair the notify with the workers' wait predicate.
    std::lock_guard<std::mutex> lock(wake_mutex_);
  }
  wake_cv_.notify_all();

  // The submitting thread works too: steal chunks until none are queued,
  // then block for the stragglers other lanes are still running.
  while (state->remaining.load(std::memory_order_acquire) > 0) {
    if (TryRunOneTask(/*self=*/-1)) continue;
    std::unique_lock<std::mutex> lock(state->mutex);
    state->done.wait_for(lock, std::chrono::milliseconds(1), [&state] {
      return state->remaining.load(std::memory_order_acquire) == 0;
    });
  }
}

}  // namespace ultrawiki
