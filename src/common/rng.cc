#include "common/rng.h"

#include <cmath>

namespace ultrawiki {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformUint64(uint64_t bound) {
  UW_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int Rng::UniformInt(int lo, int hi) {
  UW_CHECK_LE(lo, hi);
  return lo + static_cast<int>(UniformUint64(
                  static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

float Rng::UniformFloat(float lo, float hi) {
  return lo + static_cast<float>(UniformDouble()) * (hi - lo);
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  const double u2 = UniformDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  UW_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    UW_CHECK_GE(w, 0.0);
    total += w;
  }
  UW_CHECK_GT(total, 0.0);
  double target = UniformDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace ultrawiki
