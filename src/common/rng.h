#ifndef ULTRAWIKI_COMMON_RNG_H_
#define ULTRAWIKI_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace ultrawiki {

/// Deterministic pseudo-random generator (xoshiro256** seeded via
/// splitmix64). Every stochastic component in the library takes an explicit
/// Rng so all experiments are reproducible bit-for-bit across runs.
class Rng {
 public:
  /// Seeds the generator; equal seeds produce equal streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t UniformUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int UniformInt(int lo, int hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform float in [lo, hi).
  float UniformFloat(float lo, float hi);

  /// Standard normal variate (Box–Muller).
  double Gaussian();

  /// Bernoulli draw with success probability `p`.
  bool Bernoulli(double p);

  /// Draws an index in [0, weights.size()) with probability proportional to
  /// `weights[i]`. Weights must be non-negative with a positive sum.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    if (items.size() < 2) return;
    for (size_t i = items.size() - 1; i > 0; --i) {
      size_t j = UniformUint64(i + 1);
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// Samples `k` distinct items uniformly without replacement. If
  /// `k >= items.size()` returns a shuffled copy of all items.
  template <typename T>
  std::vector<T> SampleWithoutReplacement(const std::vector<T>& items,
                                          size_t k) {
    std::vector<T> pool = items;
    Shuffle(pool);
    if (k < pool.size()) pool.resize(k);
    return pool;
  }

  /// Derives an independent child generator; useful for giving each
  /// component its own stream while keeping one top-level seed.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace ultrawiki

#endif  // ULTRAWIKI_COMMON_RNG_H_
