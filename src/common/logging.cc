#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace ultrawiki {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

FatalLogMessage::FatalLogMessage(const char* file, int line) {
  stream_ << "[F " << Basename(file) << ":" << line << "] ";
}

FatalLogMessage::~FatalLogMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::abort();
}

}  // namespace internal_logging
}  // namespace ultrawiki
