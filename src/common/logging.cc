#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>

namespace ultrawiki {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

int ParseLogLevelEnv() {
  const char* env = std::getenv("UW_LOG_LEVEL");
  if (env == nullptr || *env == '\0') {
    return static_cast<int>(LogLevel::kInfo);
  }
  if (env[0] >= '0' && env[0] <= '3' && env[1] == '\0') return env[0] - '0';
  auto matches = [env](const char* name) {
    for (size_t i = 0; name[i] != '\0' || env[i] != '\0'; ++i) {
      const char c = static_cast<char>(
          env[i] >= 'A' && env[i] <= 'Z' ? env[i] - 'A' + 'a' : env[i]);
      if (c != name[i]) return false;
    }
    return true;
  };
  if (matches("debug")) return static_cast<int>(LogLevel::kDebug);
  if (matches("info")) return static_cast<int>(LogLevel::kInfo);
  if (matches("warning") || matches("warn")) {
    return static_cast<int>(LogLevel::kWarning);
  }
  if (matches("error")) return static_cast<int>(LogLevel::kError);
  return static_cast<int>(LogLevel::kInfo);
}

/// Threshold; initialized from UW_LOG_LEVEL on first use (-1 = unread).
std::atomic<int> g_min_level{-1};

int MinLevel() {
  int level = g_min_level.load(std::memory_order_relaxed);
  if (level < 0) {
    int expected = -1;
    g_min_level.compare_exchange_strong(expected, ParseLogLevelEnv(),
                                        std::memory_order_relaxed);
    level = g_min_level.load(std::memory_order_relaxed);
  }
  return level;
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

/// Small sequential thread ids: readable and stable within a process,
/// unlike the opaque std::thread::id representation.
int LocalThreadId() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// Serializes the final write so concurrent UW_LOG lines from pool
/// workers cannot interleave mid-line. Leaky: logging must work during
/// static destruction.
std::mutex& EmitMutex() {
  static std::mutex* mutex = new std::mutex();
  return *mutex;
}

/// ISO-8601 UTC wall-clock with millisecond resolution, e.g.
/// "2026-08-05T12:34:56.789Z".
void FormatTimestamp(char* buffer, size_t size) {
  std::timespec ts{};
  std::timespec_get(&ts, TIME_UTC);
  std::tm utc{};
  gmtime_r(&ts.tv_sec, &utc);
  char date[32];
  std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%S", &utc);
  std::snprintf(buffer, size, "%s.%03ldZ", date, ts.tv_nsec / 1000000);
}

void Emit(const char* level, const char* file, int line,
          const std::string& message) {
  char timestamp[48];
  FormatTimestamp(timestamp, sizeof(timestamp));
  std::lock_guard<std::mutex> lock(EmitMutex());
  std::fprintf(stderr, "[%s %s t%d %s:%d] %s\n", timestamp, level,
               LocalThreadId(), Basename(file), line, message.c_str());
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() { return static_cast<LogLevel>(MinLevel()); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) < MinLevel()) return;
  Emit(LevelName(level_), file_, line_, stream_.str());
}

FatalLogMessage::FatalLogMessage(const char* file, int line)
    : file_(file), line_(line) {}

FatalLogMessage::~FatalLogMessage() {
  Emit("F", file_, line_, stream_.str());
  std::abort();
}

}  // namespace internal_logging
}  // namespace ultrawiki
