#include "common/table_printer.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace ultrawiki {

TablePrinter::TablePrinter(std::string title) : title_(std::move(title)) {}

void TablePrinter::SetHeader(std::vector<std::string> header) {
  UW_CHECK(rows_.empty()) << "SetHeader must precede AddRow";
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  UW_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(Row{false, std::move(row)});
}

void TablePrinter::AddSeparator() { rows_.push_back(Row{true, {}}); }

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const Row& row : rows_) {
    if (row.is_separator) continue;
    for (size_t i = 0; i < row.cells.size(); ++i) {
      widths[i] = std::max(widths[i], row.cells[i].size());
    }
  }

  auto print_line = [&os, &widths]() {
    os << '+';
    for (size_t w : widths) {
      os << std::string(w + 2, '-') << '+';
    }
    os << '\n';
  };
  auto print_cells = [&os, &widths](const std::vector<std::string>& cells) {
    os << '|';
    for (size_t i = 0; i < cells.size(); ++i) {
      os << ' ' << cells[i] << std::string(widths[i] - cells[i].size(), ' ')
         << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  print_line();
  print_cells(header_);
  print_line();
  for (const Row& row : rows_) {
    if (row.is_separator) {
      print_line();
    } else {
      print_cells(row.cells);
    }
  }
  print_line();
}

std::string TablePrinter::ToString() const {
  std::ostringstream os;
  Print(os);
  return os.str();
}

}  // namespace ultrawiki
