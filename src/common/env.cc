#include "common/env.h"

#include <cstdlib>
#include <limits>
#include <string>

#include "common/logging.h"

namespace ultrawiki {

std::optional<int> ParseIntStrict(std::string_view text) {
  if (text.empty()) return std::nullopt;
  size_t i = 0;
  bool negative = false;
  if (text[0] == '+' || text[0] == '-') {
    negative = text[0] == '-';
    i = 1;
  }
  if (i == text.size()) return std::nullopt;
  long long value = 0;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + (c - '0');
    if (value > static_cast<long long>(std::numeric_limits<int>::max()) + 1) {
      return std::nullopt;
    }
  }
  if (negative) value = -value;
  if (value < std::numeric_limits<int>::min() ||
      value > std::numeric_limits<int>::max()) {
    return std::nullopt;
  }
  return static_cast<int>(value);
}

int EnvInt(const char* name, int fallback, int min_value) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  const std::optional<int> parsed = ParseIntStrict(env);
  if (!parsed.has_value()) {
    UW_LOG(Warning) << name << "=" << env
                    << " is not an integer; using " << fallback;
    return fallback;
  }
  if (*parsed < min_value) {
    UW_LOG(Warning) << name << "=" << env << " out of range; using "
                    << fallback;
    return fallback;
  }
  return *parsed;
}

}  // namespace ultrawiki
