#ifndef ULTRAWIKI_COMMON_STRING_UTIL_H_
#define ULTRAWIKI_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace ultrawiki {

/// Splits `text` on `delimiter`, dropping empty pieces.
std::vector<std::string> SplitString(std::string_view text, char delimiter);

/// Splits `text` on `delimiter`, keeping empty pieces.
std::vector<std::string> SplitStringKeepEmpty(std::string_view text,
                                              char delimiter);

/// Joins `pieces` with `separator`.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view separator);

/// ASCII lower-casing.
std::string ToLowerAscii(std::string_view text);

/// Strips leading/trailing ASCII whitespace.
std::string StripAsciiWhitespace(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a double with `digits` decimal places (fixed notation).
std::string FormatDouble(double value, int digits);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_COMMON_STRING_UTIL_H_
