#ifndef ULTRAWIKI_COMMON_ENV_H_
#define ULTRAWIKI_COMMON_ENV_H_

#include <optional>
#include <string_view>

namespace ultrawiki {

/// Strictly parses `text` as a base-10 integer: optional sign, digits,
/// nothing else. Trailing garbage ("64k"), empty strings, and values
/// outside int range all return nullopt — unlike atoi, which silently
/// truncates "64k" to 64 and maps garbage to 0.
std::optional<int> ParseIntStrict(std::string_view text);

/// Resolves an integer knob from the environment. Returns `fallback`
/// when `name` is unset; warns and returns `fallback` when the value
/// does not parse strictly or is below `min_value`, so a typo like
/// UW_SERVE_QUEUE=64k is loud instead of silently becoming 64.
int EnvInt(const char* name, int fallback, int min_value);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_COMMON_ENV_H_
