#ifndef ULTRAWIKI_COMMON_STATUS_H_
#define ULTRAWIKI_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace ultrawiki {

/// Error categories used across the library. Mirrors the small set of
/// failure modes a retrieval/expansion pipeline can hit.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kFailedPrecondition = 3,
  kOutOfRange = 4,
  kInternal = 5,
  kUnimplemented = 6,
  /// A per-request deadline elapsed before the work ran (serving layer).
  kDeadlineExceeded = 7,
  /// The system refused the work — overloaded or shutting down. Retryable.
  kUnavailable = 8,
};

/// Returns a human-readable name for `code` ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeToString(StatusCode code);

/// Lightweight error-or-success value. The library does not use exceptions
/// on fallible paths; functions that can fail return `Status` or
/// `StatusOr<T>`.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and a diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "CODE: message".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Holds either a value of type `T` or an error `Status`. Accessing the
/// value of a non-OK StatusOr aborts, so callers must check `ok()` first.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value: allows `return value;` in StatusOr functions.
  StatusOr(T value) : payload_(std::move(value)) {}
  /// Implicit from error status: allows `return Status::NotFound(...);`.
  StatusOr(Status status) : payload_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Returns the error status; OK if this holds a value.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(payload_);
  }

  const T& value() const& {
    AbortIfError();
    return std::get<T>(payload_);
  }
  T& value() & {
    AbortIfError();
    return std::get<T>(payload_);
  }
  T&& value() && {
    AbortIfError();
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  std::variant<T, Status> payload_;
};

namespace internal_status {
[[noreturn]] void DieOnBadStatusAccess(const Status& status);
}  // namespace internal_status

template <typename T>
void StatusOr<T>::AbortIfError() const {
  if (!ok()) {
    internal_status::DieOnBadStatusAccess(std::get<Status>(payload_));
  }
}

}  // namespace ultrawiki

#endif  // ULTRAWIKI_COMMON_STATUS_H_
