#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace ultrawiki {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  result += ": ";
  result += message_;
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal_status {

void DieOnBadStatusAccess(const Status& status) {
  std::fprintf(stderr, "Accessed value of errored StatusOr: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal_status
}  // namespace ultrawiki
