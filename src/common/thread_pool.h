#ifndef ULTRAWIKI_COMMON_THREAD_POOL_H_
#define ULTRAWIKI_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace ultrawiki {

/// Work-stealing thread pool behind every parallel stage of the library
/// (per-query evaluation, entity-store construction, batched BM25, the
/// bench harness).
///
/// Determinism contract: `ParallelFor`/`ParallelMap` only parallelise
/// *independent per-index work* — each index writes its own output slot,
/// and any reduction over the slots is performed by the caller in index
/// order. Results are therefore bit-identical to the sequential path for
/// every thread count; `thread_count == 1` does not even touch the worker
/// machinery (exact sequential fallback).
///
/// Thread count resolution: an explicit constructor argument wins;
/// otherwise the `UW_THREADS` environment variable; otherwise
/// `std::thread::hardware_concurrency()`.
class ThreadPool {
 public:
  /// `thread_count <= 0` means "use DefaultThreadCount()". A pool of
  /// `n` executes with `n` concurrent lanes: `n - 1` worker threads plus
  /// the calling thread, which always participates in its own batches.
  explicit ThreadPool(int thread_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of concurrent execution lanes (always >= 1).
  int thread_count() const { return thread_count_; }

  /// `UW_THREADS` if set to a positive integer, else hardware concurrency
  /// (at least 1).
  static int DefaultThreadCount();

  /// Process-wide shared pool, created lazily with DefaultThreadCount().
  static ThreadPool& Global();

  /// Replaces the global pool with one of `thread_count` lanes. Intended
  /// for tests and benchmarks that compare thread counts in one process.
  /// Fails with kFailedPrecondition — and leaves the existing pool
  /// untouched — if the global pool has parallel work in flight (an
  /// `inflight()` check), since destroying a pool mid-ParallelFor is
  /// undefined behaviour and, from inside one of its own tasks, a
  /// guaranteed self-join deadlock.
  static Status SetGlobalThreadCount(int thread_count);

  /// Number of ParallelFor invocations currently executing on this pool
  /// (including sequential-fallback and nested inline calls). Exact only
  /// once callers are quiescent; used to refuse unsafe pool swaps.
  int64_t inflight() const {
    return inflight_.load(std::memory_order_acquire);
  }

  /// Calls `fn(i)` for every i in [begin, end), splitting the range into
  /// chunks of `grain` indices (`grain <= 0` picks one automatically).
  /// Blocks until every index has run. Calls made from inside a pool task
  /// run inline (sequentially) — nesting never deadlocks and never
  /// changes results.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t)>& fn);

  /// Ordered-reduction map: returns {fn(0), fn(1), ..., fn(n-1)} with each
  /// slot written by exactly one task, so the output order — and any
  /// fold the caller performs over it — is independent of scheduling.
  template <typename T>
  std::vector<T> ParallelMap(int64_t n, const std::function<T(int64_t)>& fn,
                             int64_t grain = 0) {
    std::vector<T> out(static_cast<size_t>(n > 0 ? n : 0));
    ParallelFor(0, n, grain,
                [&](int64_t i) { out[static_cast<size_t>(i)] = fn(i); });
    return out;
  }

 private:
  using Task = std::function<void()>;

  /// One double-ended queue per worker: the owner pops newest-first from
  /// the front, thieves (other workers and the submitting thread) steal
  /// oldest-first from the back.
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void WorkerLoop(int self);

  /// Runs one task if any queue has one: `self`'s own queue first (front),
  /// then the other queues (back). `self < 0` (the submitting thread)
  /// steals only. Returns false when every queue was empty.
  bool TryRunOneTask(int self);

  int thread_count_ = 1;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<int64_t> queued_tasks_{0};
  std::atomic<int64_t> inflight_{0};
  std::atomic<bool> stop_{false};
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
};

}  // namespace ultrawiki

#endif  // ULTRAWIKI_COMMON_THREAD_POOL_H_
