#ifndef ULTRAWIKI_COMMON_HASH_H_
#define ULTRAWIKI_COMMON_HASH_H_

#include <bit>
#include <cstdint>
#include <string_view>
#include <type_traits>

namespace ultrawiki {

/// Incremental FNV-1a (64-bit) hasher used to fingerprint configuration
/// structs for the artifact cache. Every field is mixed through the same
/// byte-level primitive, floats by bit pattern, so fingerprints are stable
/// across platforms and across runs — two configs hash equal iff every
/// mixed field is bit-identical.
class Fnv1a {
 public:
  void MixBytes(const void* data, size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      hash_ ^= static_cast<uint64_t>(bytes[i]);
      hash_ *= 0x100000001b3ULL;
    }
  }

  /// Arithmetic values are widened to a fixed 8-byte little-endian
  /// representation (floats via their bit pattern) before mixing, so the
  /// fingerprint does not depend on the host's integer widths.
  template <typename T,
            typename = std::enable_if_t<std::is_arithmetic_v<T>>>
  void Mix(T value) {
    uint64_t wide;
    if constexpr (std::is_same_v<T, float>) {
      wide = std::bit_cast<uint32_t>(value);
    } else if constexpr (std::is_same_v<T, double>) {
      wide = std::bit_cast<uint64_t>(value);
    } else {
      wide = static_cast<uint64_t>(value);
    }
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i) {
      bytes[i] = static_cast<unsigned char>((wide >> (8 * i)) & 0xFF);
    }
    MixBytes(bytes, sizeof(bytes));
  }

  /// Length-prefixed, so Mix("ab"), Mix("c") differs from Mix("a"),
  /// Mix("bc").
  void Mix(std::string_view text) {
    Mix(static_cast<uint64_t>(text.size()));
    MixBytes(text.data(), text.size());
  }

  uint64_t digest() const { return hash_; }

 private:
  uint64_t hash_ = 0xcbf29ce484222325ULL;
};

}  // namespace ultrawiki

#endif  // ULTRAWIKI_COMMON_HASH_H_
