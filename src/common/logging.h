#ifndef ULTRAWIKI_COMMON_LOGGING_H_
#define ULTRAWIKI_COMMON_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

namespace ultrawiki {

/// Log severities, in increasing order. Messages below the global threshold
/// are suppressed.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum severity that is emitted. Defaults to the
/// `UW_LOG_LEVEL` environment variable (a name — debug, info, warning,
/// error — or the numeric value 0-3), read once at startup; kInfo when
/// unset or unparseable.
void SetLogLevel(LogLevel level);

/// Returns the current minimum severity.
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink; emits the accumulated message on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Variant that aborts the process after emitting; used by CHECK macros.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace ultrawiki

#define UW_LOG(level)                                             \
  ::ultrawiki::internal_logging::LogMessage(                      \
      ::ultrawiki::LogLevel::k##level, __FILE__, __LINE__)        \
      .stream()

#define UW_LOG_CONCAT_INNER(a, b) a##b
#define UW_LOG_CONCAT(a, b) UW_LOG_CONCAT_INNER(a, b)

/// Rate-limited UW_LOG for per-item diagnostics inside (possibly
/// parallel) loops: emits the 1st, (n+1)th, (2n+1)th, ... occurrence of
/// this call site, counted with one atomic shared across all threads, so
/// a warning that fires per candidate cannot flood stderr. Must be used
/// as a standalone statement (it declares a static counter).
#define UW_LOG_EVERY_N(level, n)                                          \
  static ::std::atomic<int64_t> UW_LOG_CONCAT(uw_log_occurrences_,        \
                                              __LINE__){0};               \
  if (UW_LOG_CONCAT(uw_log_occurrences_, __LINE__)                        \
              .fetch_add(1, ::std::memory_order_relaxed) %                \
          (n) !=                                                          \
      0) {                                                                \
  } else                                                                  \
    UW_LOG(level)

/// Aborts with a message when `cond` is false. Active in all build modes:
/// these guard library invariants, not user errors (which return Status).
#define UW_CHECK(cond)                                                    \
  if (cond) {                                                             \
  } else                                                                  \
    ::ultrawiki::internal_logging::FatalLogMessage(__FILE__, __LINE__)    \
            .stream()                                                     \
        << "Check failed: " #cond " "

#define UW_CHECK_OP(a, b, op) UW_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "
#define UW_CHECK_EQ(a, b) UW_CHECK_OP(a, b, ==)
#define UW_CHECK_NE(a, b) UW_CHECK_OP(a, b, !=)
#define UW_CHECK_LT(a, b) UW_CHECK_OP(a, b, <)
#define UW_CHECK_LE(a, b) UW_CHECK_OP(a, b, <=)
#define UW_CHECK_GT(a, b) UW_CHECK_OP(a, b, >)
#define UW_CHECK_GE(a, b) UW_CHECK_OP(a, b, >=)

/// Debug-only UW_CHECK: active when NDEBUG is not defined, compiled to a
/// dead branch (condition unevaluated) in release builds. For invariants
/// that are too expensive to verify on the hot path, e.g. sortedness of a
/// top-k result under the total-order comparator.
#ifndef NDEBUG
#define UW_DCHECK(cond) UW_CHECK(cond)
#else
#define UW_DCHECK(cond) \
  while (false) UW_CHECK(true)
#endif

/// Aborts if `status_expr` is not OK.
#define UW_CHECK_OK(status_expr)                                       \
  do {                                                                 \
    const ::ultrawiki::Status _uw_st = (status_expr);                  \
    UW_CHECK(_uw_st.ok()) << _uw_st.ToString();                        \
  } while (0)

#endif  // ULTRAWIKI_COMMON_LOGGING_H_
