#ifndef ULTRAWIKI_BASELINES_CASE_H_
#define ULTRAWIKI_BASELINES_CASE_H_

#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "embedding/entity_store.h"
#include "expand/expander.h"
#include "index/bm25.h"

namespace ultrawiki {

/// CaSE configuration (Yu et al. 2019).
struct CaseConfig {
  /// Rank-fusion weight of the lexical (BM25) channel vs the distributed
  /// representation channel.
  double lexical_weight = 0.35;
  /// Sentences per entity concatenated into its lexical document.
  int max_sentences_per_entity = 5;
};

/// CaSE: one-shot corpus-based set expansion fusing lexical features
/// (BM25 over per-entity context documents) with distributed
/// representations (cosine over a pretrained-but-not-task-tuned encoder
/// store). Negative seeds are ignored (predates them).
class CaSE : public Expander {
 public:
  /// Builds the per-entity document index. `corpus`, `store`, and
  /// `candidates` must outlive the expander. `store` should come from a
  /// generic (not entity-prediction-tuned) encoder, mirroring CaSE's
  /// pre-BERT-era embeddings.
  CaSE(const Corpus* corpus, const EntityStore* store,
       const std::vector<EntityId>* candidates, CaseConfig config = {});

  std::vector<EntityId> Expand(const Query& query, size_t k) override;
  std::string name() const override { return "CaSE"; }

 private:
  std::vector<TokenId> DocumentOf(EntityId id) const;

  const Corpus* corpus_;
  const EntityStore* store_;
  const std::vector<EntityId>* candidates_;
  CaseConfig config_;
  InvertedIndex index_;  // one document per candidate, in candidate order
};

}  // namespace ultrawiki

#endif  // ULTRAWIKI_BASELINES_CASE_H_
