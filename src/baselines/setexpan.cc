#include "baselines/setexpan.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/logging.h"
#include "obs/trace.h"
#include "math/topk.h"

namespace ultrawiki {
namespace {

/// Positional skip-gram feature key: token id plus a signed offset bucket.
uint64_t FeatureKey(TokenId token, int offset) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(token)) << 8) ^
         static_cast<uint64_t>(static_cast<uint32_t>(offset + 16));
}

}  // namespace

SetExpan::SetExpan(const Corpus* corpus,
                   const std::vector<EntityId>* candidates,
                   SetExpanConfig config)
    : candidates_(candidates), config_(config) {
  UW_CHECK_NE(corpus, nullptr);
  UW_CHECK_NE(candidates, nullptr);

  // Raw feature counts per entity.
  std::unordered_map<EntityId, std::unordered_map<uint64_t, int>> counts;
  std::unordered_map<uint64_t, int> document_frequency;
  for (EntityId id : *candidates) {
    auto& entity_counts = counts[id];
    for (int s : corpus->SentencesOf(id)) {
      const Sentence& sentence = corpus->sentence(static_cast<size_t>(s));
      const int begin = sentence.mention_begin;
      const int end = sentence.mention_begin + sentence.mention_len;
      const int size = static_cast<int>(sentence.tokens.size());
      for (int w = 1; w <= config.context_window; ++w) {
        const int left = begin - w;
        if (left >= 0) {
          ++entity_counts[FeatureKey(sentence.tokens[static_cast<size_t>(
                                         left)],
                                     -w)];
        }
        const int right = end + w - 1;
        if (right < size) {
          ++entity_counts[FeatureKey(sentence.tokens[static_cast<size_t>(
                                         right)],
                                     w)];
        }
      }
    }
    for (const auto& [feature, count] : entity_counts) {
      ++document_frequency[feature];
    }
  }

  // TF-IDF weights and both index directions.
  const double total_entities =
      static_cast<double>(candidates->size()) + 1.0;
  for (auto& [entity, entity_counts] : counts) {
    auto& features = entity_features_[entity];
    features.reserve(entity_counts.size());
    for (const auto& [feature, count] : entity_counts) {
      const double idf = std::log(
          total_entities /
          (static_cast<double>(document_frequency[feature]) + 0.5));
      const float weight = static_cast<float>(
          std::log(1.0 + static_cast<double>(count)) * std::max(idf, 0.0));
      if (weight <= 0.0f) continue;
      features.emplace_back(feature, weight);
      feature_entities_[feature].emplace_back(entity, weight);
    }
    std::sort(features.begin(), features.end());
  }
}

std::vector<EntityId> SetExpan::Expand(const Query& query, size_t k) {
  UW_SPAN("setexpan.expand");
  const std::vector<EntityId> seeds = SortedSeedsOf(query);
  std::set<EntityId> current(query.pos_seeds.begin(), query.pos_seeds.end());

  // Mean reciprocal rank accumulated over iterations.
  std::unordered_map<EntityId, double> ensemble;

  for (int iteration = 0; iteration < config_.iterations; ++iteration) {
    UW_SPAN("setexpan.iteration");
    // Feature selection: affinity of each feature with the current set.
    std::unordered_map<uint64_t, double> feature_affinity;
    for (EntityId member : current) {
      const auto it = entity_features_.find(member);
      if (it == entity_features_.end()) continue;
      for (const auto& [feature, weight] : it->second) {
        feature_affinity[feature] += static_cast<double>(weight);
      }
    }
    std::vector<std::pair<double, uint64_t>> ranked_features;
    ranked_features.reserve(feature_affinity.size());
    for (const auto& [feature, affinity] : feature_affinity) {
      ranked_features.emplace_back(affinity, feature);
    }
    const size_t feature_budget = std::min<size_t>(
        static_cast<size_t>(config_.selected_features),
        ranked_features.size());
    std::partial_sort(ranked_features.begin(),
                      ranked_features.begin() +
                          static_cast<long>(feature_budget),
                      ranked_features.end(),
                      [](const auto& a, const auto& b) {
                        if (a.first != b.first) return a.first > b.first;
                        return a.second < b.second;
                      });
    ranked_features.resize(feature_budget);

    // Candidate scoring over the selected features' postings.
    std::unordered_map<EntityId, double> scores;
    for (const auto& [affinity, feature] : ranked_features) {
      const auto it = feature_entities_.find(feature);
      if (it == feature_entities_.end()) continue;
      const double feature_weight = std::sqrt(affinity);
      for (const auto& [entity, weight] : it->second) {
        scores[entity] += feature_weight * static_cast<double>(weight);
      }
    }
    std::vector<std::pair<double, EntityId>> ranking;
    ranking.reserve(scores.size());
    for (const auto& [entity, score] : scores) {
      if (current.contains(entity)) continue;
      if (std::binary_search(seeds.begin(), seeds.end(), entity)) continue;
      ranking.emplace_back(score, entity);
    }
    std::sort(ranking.begin(), ranking.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });

    // Rank ensemble + set growth.
    for (size_t r = 0; r < ranking.size(); ++r) {
      ensemble[ranking[r].second] += 1.0 / static_cast<double>(r + 1);
    }
    const size_t grow = std::min<size_t>(
        static_cast<size_t>(config_.added_per_iteration), ranking.size());
    for (size_t r = 0; r < grow; ++r) current.insert(ranking[r].second);
  }

  std::vector<std::pair<double, EntityId>> final_ranking;
  final_ranking.reserve(ensemble.size());
  for (const auto& [entity, score] : ensemble) {
    final_ranking.emplace_back(score, entity);
  }
  std::sort(final_ranking.begin(), final_ranking.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  std::vector<EntityId> result;
  result.reserve(std::min(k, final_ranking.size()));
  for (size_t i = 0; i < final_ranking.size() && result.size() < k; ++i) {
    result.push_back(final_ranking[i].second);
  }
  return result;
}

}  // namespace ultrawiki
