#ifndef ULTRAWIKI_BASELINES_CGEXPAN_H_
#define ULTRAWIKI_BASELINES_CGEXPAN_H_

#include <string>
#include <vector>

#include "corpus/generator.h"
#include "embedding/entity_store.h"
#include "expand/expander.h"
#include "lm/association.h"

namespace ultrawiki {

/// CGExpan configuration (Zhang et al. 2020).
struct CgExpanConfig {
  /// Rank-fusion weight of the class-name compatibility channel.
  double class_name_weight = 0.1;
};

/// CGExpan: class-guided expansion. The language model first infers the
/// class name of the seed set (here: the class noun with the highest
/// association to the seed surface forms — the Hearst-pattern probing of
/// the original), then candidates are ranked by a fusion of embedding
/// similarity and compatibility with that class name. Works at the
/// fine-grained conceptual level only; negative seeds are ignored.
class CgExpan : public Expander {
 public:
  /// `store` should be a pretrained-but-not-task-tuned encoder store
  /// (the original uses vanilla BERT). All pointers must outlive this.
  CgExpan(const GeneratedWorld* world, const EntityStore* store,
          const AssociationModel* association,
          const std::vector<EntityId>* candidates,
          CgExpanConfig config = {});

  std::vector<EntityId> Expand(const Query& query, size_t k) override;
  std::string name() const override { return "CGExpan"; }

  /// The class noun inferred for `seeds` (exposed for tests).
  TokenId InferClassNoun(const std::vector<EntityId>& seeds) const;

 private:
  double NameAssociation(EntityId id, TokenId target) const;

  const GeneratedWorld* world_;
  const EntityStore* store_;
  const AssociationModel* association_;
  const std::vector<EntityId>* candidates_;
  CgExpanConfig config_;
  std::vector<TokenId> class_nouns_;  // singular noun token per class
};

}  // namespace ultrawiki

#endif  // ULTRAWIKI_BASELINES_CGEXPAN_H_
