#ifndef ULTRAWIKI_BASELINES_GPT4_BASELINE_H_
#define ULTRAWIKI_BASELINES_GPT4_BASELINE_H_

#include <string>

#include "expand/expander.h"
#include "llm_oracle/oracle.h"

namespace ultrawiki {

/// The zero-shot generative LLM baseline: a prompt containing both
/// positive and negative seed entities is sent to the (simulated) GPT-4,
/// which returns a ranked list — unconstrained, so it hallucinates
/// non-existent entities and degrades on long-tail classes, the two
/// failure modes §6.2 (6) documents.
class Gpt4Baseline : public Expander {
 public:
  /// `oracle` and `dataset` must outlive the expander.
  Gpt4Baseline(const LlmOracle* oracle, const UltraWikiDataset* dataset);

  std::vector<EntityId> Expand(const Query& query, size_t k) override;
  std::string name() const override { return "GPT-4"; }

 private:
  const LlmOracle* oracle_;
  const UltraWikiDataset* dataset_;
};

}  // namespace ultrawiki

#endif  // ULTRAWIKI_BASELINES_GPT4_BASELINE_H_
