#include "baselines/cgexpan.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/trace.h"
#include "math/topk.h"

namespace ultrawiki {

CgExpan::CgExpan(const GeneratedWorld* world, const EntityStore* store,
                 const AssociationModel* association,
                 const std::vector<EntityId>* candidates,
                 CgExpanConfig config)
    : world_(world),
      store_(store),
      association_(association),
      candidates_(candidates),
      config_(config) {
  UW_CHECK_NE(world, nullptr);
  UW_CHECK_NE(store, nullptr);
  UW_CHECK_NE(association, nullptr);
  UW_CHECK_NE(candidates, nullptr);
  for (const FineClassSpec& spec : world->schema) {
    class_nouns_.push_back(
        world->corpus.tokens().Lookup(spec.singular_noun));
  }
}

double CgExpan::NameAssociation(EntityId id, TokenId target) const {
  if (target == kInvalidTokenId) return 0.0;
  const Entity& entity = world_->corpus.entity(id);
  double sum = 0.0;
  int used = 0;
  for (const std::string& word : entity.name_tokens) {
    const TokenId token = world_->corpus.tokens().Lookup(word);
    if (token == kInvalidTokenId) continue;
    sum += association_->Probability(token, target);
    ++used;
  }
  return used > 0 ? sum / static_cast<double>(used) : 0.0;
}

TokenId CgExpan::InferClassNoun(const std::vector<EntityId>& seeds) const {
  TokenId best = kInvalidTokenId;
  double best_score = -1.0;
  for (TokenId noun : class_nouns_) {
    if (noun == kInvalidTokenId) continue;
    double score = 0.0;
    for (EntityId seed : seeds) score += NameAssociation(seed, noun);
    if (score > best_score) {
      best_score = score;
      best = noun;
    }
  }
  return best;
}

std::vector<EntityId> CgExpan::Expand(const Query& query, size_t k) {
  UW_SPAN("cgexpan.expand");
  const std::vector<EntityId> seeds = SortedSeedsOf(query);
  const TokenId class_noun = InferClassNoun(query.pos_seeds);

  std::vector<float> cosine(candidates_->size(), 0.0f);
  std::vector<float> class_fit(candidates_->size(), 0.0f);
  for (size_t i = 0; i < candidates_->size(); ++i) {
    const EntityId id = (*candidates_)[i];
    double sum = 0.0;
    for (EntityId seed : query.pos_seeds) {
      sum += static_cast<double>(store_->Similarity(id, seed));
    }
    cosine[i] = query.pos_seeds.empty()
                    ? 0.0f
                    : static_cast<float>(
                          sum / static_cast<double>(query.pos_seeds.size()));
    class_fit[i] = static_cast<float>(NameAssociation(id, class_noun));
  }

  auto rank_positions = [](const std::vector<float>& scores) {
    std::vector<size_t> order(scores.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&scores](size_t a, size_t b) {
      if (scores[a] != scores[b]) return scores[a] > scores[b];
      return a < b;
    });
    std::vector<double> position(scores.size());
    for (size_t rank = 0; rank < order.size(); ++rank) {
      position[order[rank]] = static_cast<double>(rank);
    }
    return position;
  };
  const std::vector<double> cosine_rank = rank_positions(cosine);
  const std::vector<double> class_rank = rank_positions(class_fit);

  std::vector<ScoredIndex> fused;
  fused.reserve(candidates_->size());
  const double w = config_.class_name_weight;
  for (size_t i = 0; i < candidates_->size(); ++i) {
    const EntityId id = (*candidates_)[i];
    if (std::binary_search(seeds.begin(), seeds.end(), id)) continue;
    const double blended = (1.0 - w) * cosine_rank[i] + w * class_rank[i];
    fused.push_back(ScoredIndex{-static_cast<float>(blended), i});
  }
  fused = TopKOfPairs(std::move(fused), k);
  std::vector<EntityId> result;
  result.reserve(fused.size());
  for (const ScoredIndex& s : fused) {
    result.push_back((*candidates_)[s.index]);
  }
  return result;
}

}  // namespace ultrawiki
