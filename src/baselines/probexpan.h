#ifndef ULTRAWIKI_BASELINES_PROBEXPAN_H_
#define ULTRAWIKI_BASELINES_PROBEXPAN_H_

#include <string>
#include <vector>

#include "expand/expander.h"
#include "embedding/entity_store.h"

namespace ultrawiki {

/// ProbExpan configuration. `use_negative_rerank` is off by default (the
/// published method has no negative seeds); Table 5's "+ Neg Rerank" row
/// turns it on, exploiting the module's scalability.
struct ProbExpanConfig {
  int initial_list_size = 200;
  int rerank_segment_length = 20;
  bool use_negative_rerank = false;
};

/// The prior state-of-the-art retrieval baseline. Architecturally the
/// same expand/rerank skeleton as RetExpan, but entities are represented
/// by the *probability distribution over the candidate vocabulary at the
/// [MASK] token* rather than the hidden state — the discrete, coarser
/// representation the paper identifies as ProbExpan's limitation (§6.2
/// (2)). The representation difference alone reproduces the gap.
class ProbExpan : public Expander {
 public:
  /// `distributions` is indexed by EntityId (empty slot = absent);
  /// both pointers must outlive the expander.
  ProbExpan(const std::vector<SparseVec>* distributions,
            const std::vector<EntityId>* candidates,
            ProbExpanConfig config = {}, std::string name = "ProbExpan");

  std::vector<EntityId> Expand(const Query& query, size_t k) override;
  std::string name() const override { return name_; }

  /// Mean cosine similarity between distribution representations.
  double SeedSimilarity(const std::vector<EntityId>& seeds,
                        EntityId candidate) const;

 private:
  const std::vector<SparseVec>* distributions_;
  const std::vector<EntityId>* candidates_;
  ProbExpanConfig config_;
  std::string name_;
};

}  // namespace ultrawiki

#endif  // ULTRAWIKI_BASELINES_PROBEXPAN_H_
