#include "baselines/gpt4_baseline.h"

#include "common/logging.h"

namespace ultrawiki {

Gpt4Baseline::Gpt4Baseline(const LlmOracle* oracle,
                           const UltraWikiDataset* dataset)
    : oracle_(oracle), dataset_(dataset) {
  UW_CHECK_NE(oracle, nullptr);
  UW_CHECK_NE(dataset, nullptr);
}

std::vector<EntityId> Gpt4Baseline::Expand(const Query& query, size_t k) {
  return oracle_->ExpandGenerative(query, *dataset_, k);
}

}  // namespace ultrawiki
