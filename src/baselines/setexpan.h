#ifndef ULTRAWIKI_BASELINES_SETEXPAN_H_
#define ULTRAWIKI_BASELINES_SETEXPAN_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "corpus/corpus.h"
#include "expand/expander.h"

namespace ultrawiki {

/// SetExpan configuration (Shen et al. 2017): iterative context-feature
/// selection with rank ensembling.
struct SetExpanConfig {
  /// Tokens considered on each side of the entity mention.
  int context_window = 3;
  /// Skip-gram features selected per iteration (by seed-set affinity).
  int selected_features = 60;
  /// Bootstrapping iterations whose rankings are ensembled.
  int iterations = 4;
  /// Entities added to the seed set after each iteration.
  int added_per_iteration = 8;
};

/// The classic corpus-based probabilistic baseline: entities are bags of
/// positional skip-gram context features with TF-IDF weights; each round
/// selects the features most associated with the current set, ranks
/// candidates by them, and the final ranking ensembles the per-round
/// rankings by mean reciprocal rank. Negative seeds are ignored (the
/// published method predates them).
class SetExpan : public Expander {
 public:
  /// Precomputes the feature index over `candidates`' sentences. Both
  /// pointers must outlive the expander.
  SetExpan(const Corpus* corpus, const std::vector<EntityId>* candidates,
           SetExpanConfig config = {});

  std::vector<EntityId> Expand(const Query& query, size_t k) override;
  std::string name() const override { return "SetExpan"; }

  /// Number of distinct skip-gram features observed (for tests).
  size_t feature_count() const { return feature_entities_.size(); }

 private:
  using FeatureId = uint64_t;

  /// feature -> (entity, tf-idf weight) postings.
  std::unordered_map<FeatureId, std::vector<std::pair<EntityId, float>>>
      feature_entities_;
  /// entity -> (feature, tf-idf weight), sorted by feature.
  std::unordered_map<EntityId, std::vector<std::pair<FeatureId, float>>>
      entity_features_;
  const std::vector<EntityId>* candidates_;
  SetExpanConfig config_;
};

}  // namespace ultrawiki

#endif  // ULTRAWIKI_BASELINES_SETEXPAN_H_
