#include "baselines/probexpan.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/trace.h"
#include "expand/rerank.h"
#include "math/topk.h"

namespace ultrawiki {

ProbExpan::ProbExpan(const std::vector<SparseVec>* distributions,
                     const std::vector<EntityId>* candidates,
                     ProbExpanConfig config, std::string name)
    : distributions_(distributions),
      candidates_(candidates),
      config_(config),
      name_(std::move(name)) {
  UW_CHECK_NE(distributions, nullptr);
  UW_CHECK_NE(candidates, nullptr);
}

double ProbExpan::SeedSimilarity(const std::vector<EntityId>& seeds,
                                 EntityId candidate) const {
  if (seeds.empty()) return 0.0;
  if (candidate < 0 ||
      static_cast<size_t>(candidate) >= distributions_->size()) {
    return 0.0;
  }
  const SparseVec& cand = (*distributions_)[static_cast<size_t>(candidate)];
  if (cand.entries.empty()) return 0.0;
  double sum = 0.0;
  for (EntityId seed : seeds) {
    if (seed < 0 || static_cast<size_t>(seed) >= distributions_->size()) {
      continue;
    }
    const SparseVec& s = (*distributions_)[static_cast<size_t>(seed)];
    if (s.entries.empty()) continue;
    sum += static_cast<double>(SparseCosine(cand, s));
  }
  return sum / static_cast<double>(seeds.size());
}

std::vector<EntityId> ProbExpan::Expand(const Query& query, size_t k) {
  UW_SPAN("probexpan.expand");
  const std::vector<EntityId> seeds = SortedSeedsOf(query);
  std::vector<ScoredIndex> scored;
  scored.reserve(candidates_->size());
  for (size_t i = 0; i < candidates_->size(); ++i) {
    const EntityId id = (*candidates_)[i];
    if (std::binary_search(seeds.begin(), seeds.end(), id)) continue;
    scored.push_back(ScoredIndex{
        static_cast<float>(SeedSimilarity(query.pos_seeds, id)), i});
  }
  const size_t initial_size = std::max<size_t>(
      k, static_cast<size_t>(config_.initial_list_size));
  scored = TopKOfPairs(std::move(scored), initial_size);
  std::vector<EntityId> list;
  list.reserve(scored.size());
  for (const ScoredIndex& s : scored) list.push_back((*candidates_)[s.index]);

  if (config_.use_negative_rerank && !query.neg_seeds.empty()) {
    list = SegmentedRerank(
        list,
        [this, &query](EntityId id) {
          return SeedSimilarity(query.neg_seeds, id);
        },
        config_.rerank_segment_length);
  }
  if (list.size() > k) list.resize(k);
  return list;
}

}  // namespace ultrawiki
