#include "baselines/case.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/trace.h"
#include "math/topk.h"

namespace ultrawiki {

CaSE::CaSE(const Corpus* corpus, const EntityStore* store,
           const std::vector<EntityId>* candidates, CaseConfig config)
    : corpus_(corpus),
      store_(store),
      candidates_(candidates),
      config_(config) {
  UW_CHECK_NE(corpus, nullptr);
  UW_CHECK_NE(store, nullptr);
  UW_CHECK_NE(candidates, nullptr);
  for (EntityId id : *candidates) {
    index_.AddDocument(DocumentOf(id));
  }
  // Scoring runs against the frozen block-compressed form; CaSE's rank
  // fusion consumes every candidate's score, so it stays on ScoreAll.
  index_.Freeze();
}

std::vector<TokenId> CaSE::DocumentOf(EntityId id) const {
  std::vector<TokenId> doc;
  const std::vector<int>& sentence_ids = corpus_->SentencesOf(id);
  const int limit = std::min<int>(config_.max_sentences_per_entity,
                                  static_cast<int>(sentence_ids.size()));
  for (int s = 0; s < limit; ++s) {
    const Sentence& sentence =
        corpus_->sentence(static_cast<size_t>(sentence_ids[static_cast<size_t>(s)]));
    for (size_t i = 0; i < sentence.tokens.size(); ++i) {
      const int pos = static_cast<int>(i);
      if (pos >= sentence.mention_begin &&
          pos < sentence.mention_begin + sentence.mention_len) {
        continue;  // drop the mention itself; features are contextual
      }
      doc.push_back(sentence.tokens[i]);
    }
  }
  return doc;
}

std::vector<EntityId> CaSE::Expand(const Query& query, size_t k) {
  UW_SPAN("case.expand");
  const std::vector<EntityId> seeds = SortedSeedsOf(query);

  // Lexical channel: BM25 of every candidate document against the
  // concatenated positive-seed documents.
  std::vector<TokenId> lexical_query;
  for (EntityId seed : query.pos_seeds) {
    const std::vector<TokenId> doc = DocumentOf(seed);
    lexical_query.insert(lexical_query.end(), doc.begin(), doc.end());
  }
  Bm25Scorer scorer(&index_);
  const std::vector<float> bm25 = scorer.ScoreAll(lexical_query);

  // Distributed channel: mean cosine to the positive seeds.
  std::vector<float> cosine(candidates_->size(), 0.0f);
  for (size_t i = 0; i < candidates_->size(); ++i) {
    const EntityId id = (*candidates_)[i];
    double sum = 0.0;
    for (EntityId seed : query.pos_seeds) {
      sum += static_cast<double>(store_->Similarity(id, seed));
    }
    cosine[i] = query.pos_seeds.empty()
                    ? 0.0f
                    : static_cast<float>(
                          sum / static_cast<double>(query.pos_seeds.size()));
  }

  // Scale-free rank fusion of the two channels.
  auto rank_positions = [](const std::vector<float>& scores) {
    std::vector<size_t> order(scores.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&scores](size_t a, size_t b) {
      if (scores[a] != scores[b]) return scores[a] > scores[b];
      return a < b;
    });
    std::vector<double> position(scores.size());
    for (size_t rank = 0; rank < order.size(); ++rank) {
      position[order[rank]] = static_cast<double>(rank);
    }
    return position;
  };
  const std::vector<double> lexical_rank = rank_positions(bm25);
  const std::vector<double> distributed_rank = rank_positions(cosine);

  std::vector<ScoredIndex> fused;
  fused.reserve(candidates_->size());
  const double w = config_.lexical_weight;
  for (size_t i = 0; i < candidates_->size(); ++i) {
    const EntityId id = (*candidates_)[i];
    if (std::binary_search(seeds.begin(), seeds.end(), id)) continue;
    const double blended =
        w * lexical_rank[i] + (1.0 - w) * distributed_rank[i];
    fused.push_back(ScoredIndex{-static_cast<float>(blended), i});
  }
  fused = TopKOfPairs(std::move(fused), k);
  std::vector<EntityId> result;
  result.reserve(fused.size());
  for (const ScoredIndex& s : fused) result.push_back((*candidates_)[s.index]);
  return result;
}

}  // namespace ultrawiki
