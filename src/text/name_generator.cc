#include "text/name_generator.h"

#include <array>

#include "common/logging.h"

namespace ultrawiki {
namespace {

constexpr std::array<const char*, 20> kOnsets = {
    "b", "d", "f", "g", "h", "j", "k", "l", "m", "n",
    "p", "r", "s", "t", "v", "z", "ch", "sh", "th", "br"};
constexpr std::array<const char*, 8> kVowels = {"a", "e", "i",  "o",
                                                "u", "ai", "ia", "or"};
constexpr std::array<const char*, 8> kCodas = {"", "", "n", "m",
                                               "l", "r", "s", "k"};

}  // namespace

NameGenerator::NameGenerator(Rng rng) : rng_(rng) {}

std::string NameGenerator::MakeWord(int syllables, int style_tag) {
  std::string word;
  for (int s = 0; s < syllables; ++s) {
    // Style tag rotates the onset distribution so each semantic class gets a
    // loosely coherent surface style without reducing uniqueness.
    const size_t onset_idx =
        (rng_.UniformUint64(kOnsets.size()) +
         static_cast<size_t>(style_tag) * 3) %
        kOnsets.size();
    word += kOnsets[onset_idx];
    word += kVowels[rng_.UniformUint64(kVowels.size())];
    if (s + 1 == syllables) {
      word += kCodas[rng_.UniformUint64(kCodas.size())];
    }
  }
  return word;
}

std::string NameGenerator::NextName(int max_words, int style_tag,
                                    int min_words) {
  UW_CHECK_GE(min_words, 1);
  UW_CHECK_GE(max_words, min_words);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const int words = rng_.UniformInt(min_words, max_words);
    std::string name;
    for (int w = 0; w < words; ++w) {
      if (w > 0) name += ' ';
      name += MakeWord(rng_.UniformInt(2, 3), style_tag);
    }
    if (used_.insert(name).second) return name;
  }
  // Fall back to a numbered suffix if the syllable space is exhausted.
  std::string base = MakeWord(3, style_tag);
  int suffix = 0;
  while (true) {
    std::string candidate = base + " " + std::to_string(suffix++);
    if (used_.insert(candidate).second) return candidate;
  }
}

}  // namespace ultrawiki
