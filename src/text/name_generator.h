#ifndef ULTRAWIKI_TEXT_NAME_GENERATOR_H_
#define ULTRAWIKI_TEXT_NAME_GENERATOR_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.h"

namespace ultrawiki {

/// Generates unique, pronounceable multi-token entity names from syllables
/// (e.g. "veladora karim"). Multi-token names matter: the prefix-trie
/// constrained decoding of GenExpan (paper Fig. 6) is only exercised when
/// entity surface forms span several tokens that share prefixes.
class NameGenerator {
 public:
  explicit NameGenerator(Rng rng);

  /// Returns a fresh unique name of `min_words`–`max_words` words;
  /// optional `style_tag` biases syllable choice so entities of one
  /// semantic class share a loose surface style (mirrors real-world
  /// naming regularities).
  std::string NextName(int max_words = 2, int style_tag = 0,
                       int min_words = 1);

  /// Number of names handed out so far.
  size_t generated_count() const { return used_.size(); }

 private:
  std::string MakeWord(int syllables, int style_tag);

  Rng rng_;
  std::unordered_set<std::string> used_;
};

}  // namespace ultrawiki

#endif  // ULTRAWIKI_TEXT_NAME_GENERATOR_H_
