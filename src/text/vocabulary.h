#ifndef ULTRAWIKI_TEXT_VOCABULARY_H_
#define ULTRAWIKI_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace ultrawiki {

/// Token identifier. kInvalidTokenId marks "not interned".
using TokenId = int32_t;
inline constexpr TokenId kInvalidTokenId = -1;

/// Bidirectional string↔id interning table with frequency counts. One
/// instance serves as the token vocabulary of the corpus; another as the
/// candidate-entity vocabulary `V` of the task formulation.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Interns `token`, returning its id (existing or fresh) and bumping its
  /// frequency by `count`.
  TokenId AddToken(std::string_view token, int64_t count = 1);

  /// Returns the id of `token` or kInvalidTokenId if absent (no insertion).
  TokenId Lookup(std::string_view token) const;

  /// Returns the string of `id`; id must be valid.
  const std::string& TokenOf(TokenId id) const;

  /// Occurrence count accumulated through AddToken.
  int64_t CountOf(TokenId id) const;

  bool Contains(std::string_view token) const {
    return Lookup(token) != kInvalidTokenId;
  }

  size_t size() const { return tokens_.size(); }

  /// All frequencies, indexed by id (for negative-sampling tables).
  std::vector<double> FrequenciesAsWeights(double power = 1.0) const;

 private:
  std::unordered_map<std::string, TokenId> index_;
  std::vector<std::string> tokens_;
  std::vector<int64_t> counts_;
};

}  // namespace ultrawiki

#endif  // ULTRAWIKI_TEXT_VOCABULARY_H_
