#ifndef ULTRAWIKI_TEXT_TOKENIZER_H_
#define ULTRAWIKI_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace ultrawiki {

/// Rule-based word tokenizer: lower-cases ASCII, splits on whitespace, and
/// detaches punctuation into separate tokens. The WordPiece machinery of the
/// paper's BERT is unnecessary here because the synthetic corpus has a
/// closed vocabulary; word-level tokens play the same role.
class Tokenizer {
 public:
  Tokenizer() = default;

  /// Tokenizes `text` into lower-case word/punctuation tokens.
  std::vector<std::string> Tokenize(std::string_view text) const;

  /// Joins tokens back into display text with simple detokenization rules
  /// (no space before punctuation).
  std::string Detokenize(const std::vector<std::string>& tokens) const;
};

}  // namespace ultrawiki

#endif  // ULTRAWIKI_TEXT_TOKENIZER_H_
