#include "text/tokenizer.h"

#include <cctype>

namespace ultrawiki {
namespace {

bool IsPunct(char c) {
  switch (c) {
    case '.':
    case ',':
    case ';':
    case ':':
    case '!':
    case '?':
    case '(':
    case ')':
    case '"':
      return true;
    default:
      return false;
  }
}

}  // namespace

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&tokens, &current]() {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };
  for (char raw : text) {
    const char c =
        static_cast<char>(std::tolower(static_cast<unsigned char>(raw)));
    if (std::isspace(static_cast<unsigned char>(c))) {
      flush();
    } else if (IsPunct(c)) {
      flush();
      tokens.push_back(std::string(1, c));
    } else {
      current.push_back(c);
    }
  }
  flush();
  return tokens;
}

std::string Tokenizer::Detokenize(const std::vector<std::string>& tokens) const {
  std::string out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    const bool is_punct = tok.size() == 1 && IsPunct(tok[0]);
    if (i > 0 && !is_punct) out += ' ';
    out += tok;
  }
  return out;
}

}  // namespace ultrawiki
