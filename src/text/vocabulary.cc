#include "text/vocabulary.h"

#include <cmath>

#include "common/logging.h"

namespace ultrawiki {

TokenId Vocabulary::AddToken(std::string_view token, int64_t count) {
  auto it = index_.find(std::string(token));
  if (it != index_.end()) {
    counts_[it->second] += count;
    return it->second;
  }
  const TokenId id = static_cast<TokenId>(tokens_.size());
  tokens_.emplace_back(token);
  counts_.push_back(count);
  index_.emplace(tokens_.back(), id);
  return id;
}

TokenId Vocabulary::Lookup(std::string_view token) const {
  auto it = index_.find(std::string(token));
  if (it == index_.end()) return kInvalidTokenId;
  return it->second;
}

const std::string& Vocabulary::TokenOf(TokenId id) const {
  UW_CHECK_GE(id, 0);
  UW_CHECK_LT(static_cast<size_t>(id), tokens_.size());
  return tokens_[static_cast<size_t>(id)];
}

int64_t Vocabulary::CountOf(TokenId id) const {
  UW_CHECK_GE(id, 0);
  UW_CHECK_LT(static_cast<size_t>(id), counts_.size());
  return counts_[static_cast<size_t>(id)];
}

std::vector<double> Vocabulary::FrequenciesAsWeights(double power) const {
  std::vector<double> weights(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    weights[i] = std::pow(static_cast<double>(counts_[i]), power);
  }
  return weights;
}

}  // namespace ultrawiki
