#include "expand/genexpan.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/logging.h"
#include "common/string_util.h"
#include "expand/rerank.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ultrawiki {

const char* CotModeName(CotMode mode) {
  switch (mode) {
    case CotMode::kNone:
      return "none";
    case CotMode::kGtClassName:
      return "GT CN";
    case CotMode::kGenClassName:
      return "Gen CN";
    case CotMode::kGenClassNameGenPos:
      return "Gen CN + Gen Pos";
    case CotMode::kGenClassNameGtPos:
      return "Gen CN + GT Pos";
    case CotMode::kGenClassNameGenPosGenNeg:
      return "Gen CN + Gen Pos + Gen Neg";
    case CotMode::kGenClassNameGtPosGtNeg:
      return "Gen CN + GT Pos + GT Neg";
  }
  return "unknown";
}

namespace {

bool CotHasClassName(CotMode mode) { return mode != CotMode::kNone; }

bool CotClassNameIsGenerated(CotMode mode) {
  return mode != CotMode::kGtClassName && mode != CotMode::kNone;
}

bool CotHasPosAttrs(CotMode mode) {
  switch (mode) {
    case CotMode::kGenClassNameGenPos:
    case CotMode::kGenClassNameGtPos:
    case CotMode::kGenClassNameGenPosGenNeg:
    case CotMode::kGenClassNameGtPosGtNeg:
      return true;
    default:
      return false;
  }
}

bool CotPosAttrsAreGenerated(CotMode mode) {
  return mode == CotMode::kGenClassNameGenPos ||
         mode == CotMode::kGenClassNameGenPosGenNeg;
}

bool CotHasNegAttrs(CotMode mode) {
  return mode == CotMode::kGenClassNameGenPosGenNeg ||
         mode == CotMode::kGenClassNameGtPosGtNeg;
}

bool CotNegAttrsAreGenerated(CotMode mode) {
  return mode == CotMode::kGenClassNameGenPosGenNeg;
}

}  // namespace

uint64_t GenExpanQueryFingerprint(const Query& query) {
  uint64_t hash = 0x51ED2701B7A6C145ULL;
  auto mix = [&hash](uint64_t v) {
    hash ^= v + 0x9E3779B97F4A7C15ULL + (hash << 6) + (hash >> 2);
  };
  // Length tags delimit the two seed streams: without them
  // pos=[a,b],neg=[] and pos=[a],neg=[b] fold to the same value and the
  // two queries share an RNG stream.
  mix(static_cast<uint64_t>(query.pos_seeds.size()));
  for (EntityId id : query.pos_seeds) mix(static_cast<uint64_t>(id));
  mix(static_cast<uint64_t>(query.neg_seeds.size()));
  for (EntityId id : query.neg_seeds) mix(static_cast<uint64_t>(id));
  return hash;
}

namespace {

/// Normalized descending-rank positions in [0,1]: the best score gets 0.
/// Ties receive their fractional (mean) rank, so a large group of
/// indistinguishable scores — e.g. entities at the association floor —
/// shares one neutral value instead of being spread across the range.
std::vector<double> RankNormalize(const std::vector<double>& scores) {
  const size_t n = scores.size();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&scores](size_t a, size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });
  std::vector<double> ranks(n, 0.0);
  const double denom = n > 1 ? static_cast<double>(n - 1) : 1.0;
  size_t pos = 0;
  while (pos < n) {
    size_t end = pos;
    while (end + 1 < n && scores[order[end + 1]] == scores[order[pos]]) {
      ++end;
    }
    const double mean_rank =
        (static_cast<double>(pos) + static_cast<double>(end)) / 2.0 / denom;
    for (size_t i = pos; i <= end; ++i) ranks[order[i]] = mean_rank;
    pos = end + 1;
  }
  return ranks;
}

}  // namespace

GenExpan::GenExpan(const GeneratedWorld* world, const HybridLm* lm,
                   const PrefixTrie* trie,
                   const LmEntitySimilarity* similarity,
                   const LlmOracle* oracle, GenExpanConfig config,
                   std::string name)
    : world_(world),
      lm_(lm),
      trie_(trie),
      similarity_(similarity),
      oracle_(oracle),
      config_(config),
      name_(std::move(name)) {
  UW_CHECK_NE(world, nullptr);
  UW_CHECK_NE(lm, nullptr);
  UW_CHECK_NE(trie, nullptr);
  UW_CHECK_NE(similarity, nullptr);
  UW_CHECK_NE(oracle, nullptr);
  comma_ = world_->corpus.tokens().Lookup(",");
  and_token_ = world_->corpus.tokens().Lookup("and");
  with_token_ = world_->corpus.tokens().Lookup("with");
}

std::vector<TokenId> GenExpan::NameTokensOf(EntityId id) const {
  std::vector<TokenId> tokens;
  for (const std::string& word : world_->corpus.entity(id).name_tokens) {
    const TokenId token = world_->corpus.tokens().Lookup(word);
    if (token != kInvalidTokenId) tokens.push_back(token);
  }
  return tokens;
}

std::vector<TokenId> GenExpan::CotPrefix(const Query& query) const {
  std::vector<TokenId> prefix;
  if (!CotHasClassName(config_.cot)) return prefix;
  // Step 1: fine-grained class name (Prompt_c analogue).
  ClassId class_id;
  if (CotClassNameIsGenerated(config_.cot)) {
    class_id = oracle_->InferClassName(query.pos_seeds);
  } else {
    class_id = query.pos_seeds.empty()
                   ? kBackgroundClassId
                   : world_->corpus.entity(query.pos_seeds[0]).class_id;
  }
  if (class_id == kBackgroundClassId) return prefix;
  const FineClassSpec& spec =
      world_->schema[static_cast<size_t>(class_id)];
  for (const std::string& word : SplitString(spec.plural_noun, ' ')) {
    const TokenId token = world_->corpus.tokens().Lookup(word);
    if (token != kInvalidTokenId) prefix.push_back(token);
  }
  // Step 2: positive attributes shared by the seeds.
  if (CotHasPosAttrs(config_.cot)) {
    const std::vector<std::pair<int, int>> attrs =
        CotPosAttrsAreGenerated(config_.cot)
            ? oracle_->InferSharedAttributes(query.pos_seeds,
                                             /*negative_side=*/false)
            : oracle_->TrueSharedAttributes(query.pos_seeds);
    for (const auto& [attr, value] : attrs) {
      if (attr < 0 ||
          static_cast<size_t>(attr) >= spec.attributes.size()) {
        continue;
      }
      const AttributeDef& def = spec.attributes[static_cast<size_t>(attr)];
      if (value < 0 ||
          static_cast<size_t>(value) >= def.clue_tokens.size()) {
        continue;
      }
      if (with_token_ != kInvalidTokenId) prefix.push_back(with_token_);
      // Value-discriminative token only (see CotNegativeClues); repeated
      // so its vote is not drowned by the six seed-name tokens.
      const auto& phrase = def.clue_tokens[static_cast<size_t>(value)];
      if (!phrase.empty()) {
        const TokenId token = world_->corpus.tokens().Lookup(phrase.back());
        if (token != kInvalidTokenId) {
          prefix.push_back(token);
          prefix.push_back(token);
        }
      }
    }
  }
  return prefix;
}

std::vector<TokenId> GenExpan::CotNegativeClues(const Query& query) const {
  std::vector<TokenId> clues;
  if (!CotHasNegAttrs(config_.cot) || query.neg_seeds.empty()) return clues;
  const ClassId class_id =
      world_->corpus.entity(query.neg_seeds[0]).class_id;
  if (class_id == kBackgroundClassId) return clues;
  const FineClassSpec& spec =
      world_->schema[static_cast<size_t>(class_id)];
  const std::vector<std::pair<int, int>> attrs =
      CotNegAttrsAreGenerated(config_.cot)
          ? oracle_->InferSharedAttributes(query.neg_seeds,
                                           /*negative_side=*/true)
          : oracle_->TrueSharedAttributes(query.neg_seeds);
  for (const auto& [attr, value] : attrs) {
    if (attr < 0 || static_cast<size_t>(attr) >= spec.attributes.size()) {
      continue;
    }
    const AttributeDef& def = spec.attributes[static_cast<size_t>(attr)];
    if (value < 0 || static_cast<size_t>(value) >= def.clue_tokens.size()) {
      continue;
    }
    // Only the value-discriminative token: the attribute word is shared
    // across all values of the attribute and would dilute the match.
    const auto& phrase = def.clue_tokens[static_cast<size_t>(value)];
    if (!phrase.empty()) {
      const TokenId token = world_->corpus.tokens().Lookup(phrase.back());
      if (token != kInvalidTokenId) clues.push_back(token);
    }
  }
  return clues;
}

std::vector<TokenId> GenExpan::BuildPrompt(
    const std::vector<TokenId>& cot_prefix,
    const std::vector<EntityId>& prompt_seeds) const {
  std::vector<TokenId> prompt = cot_prefix;
  if (config_.retrieval_augmentation) {
    for (EntityId id : prompt_seeds) {
      switch (config_.ra_source) {
        case RaSource::kIntroduction: {
          const std::vector<TokenId>& intro = world_->kb.IntroductionOf(id);
          prompt.insert(prompt.end(), intro.begin(), intro.end());
          break;
        }
        case RaSource::kWikidataAttributes: {
          const std::vector<TokenId>& dump =
              world_->kb.WikidataAttributesOf(id);
          prompt.insert(prompt.end(), dump.begin(), dump.end());
          break;
        }
        case RaSource::kGroundTruthAttributes: {
          const Entity& entity = world_->corpus.entity(id);
          if (entity.class_id == kBackgroundClassId) break;
          const FineClassSpec& spec =
              world_->schema[static_cast<size_t>(entity.class_id)];
          for (size_t a = 0; a < spec.attributes.size(); ++a) {
            const auto& clue =
                spec.attributes[a].clue_tokens[static_cast<size_t>(
                    entity.attribute_values[a])];
            for (const std::string& word : clue) {
              const TokenId token = world_->corpus.tokens().Lookup(word);
              if (token != kInvalidTokenId) prompt.push_back(token);
            }
          }
          break;
        }
        case RaSource::kNone:
          break;
      }
    }
  }
  for (size_t i = 0; i < prompt_seeds.size(); ++i) {
    if (i > 0 && comma_ != kInvalidTokenId) prompt.push_back(comma_);
    const std::vector<TokenId> name = NameTokensOf(prompt_seeds[i]);
    prompt.insert(prompt.end(), name.begin(), name.end());
  }
  // Trailing "and" invites the next list element (Prompt_g's "and ___").
  if (and_token_ != kInvalidTokenId) prompt.push_back(and_token_);
  return prompt;
}

double GenExpan::ClueMatchScore(EntityId id,
                                const std::vector<TokenId>& clues) const {
  if (clues.empty()) return 0.0;
  const std::vector<TokenId> name = NameTokensOf(id);
  if (name.empty()) return 0.0;
  double sum = 0.0;
  for (TokenId n : name) {
    for (TokenId c : clues) {
      sum += lm_->association().Probability(n, c);
    }
  }
  return sum / static_cast<double>(name.size() * clues.size());
}

std::vector<EntityId> GenExpan::Expand(const Query& query, size_t k) {
  return ExpandWithBudget(query, k, ExpandBudget{}).ranking;
}

ExpandOutcome GenExpan::ExpandWithBudget(const Query& query, size_t k,
                                         const ExpandBudget& budget) {
  UW_SPAN("genexpan.expand");
  obs::GetCounter("genexpan.queries").Increment();
  Rng rng(config_.seed ^ GenExpanQueryFingerprint(query));
  const std::vector<EntityId> seeds = SortedSeedsOf(query);
  std::set<EntityId> seen(seeds.begin(), seeds.end());

  // Combine the per-request budget with the expander's standing one:
  // earliest deadline, smallest expansion cap.
  std::optional<std::chrono::steady_clock::time_point> deadline =
      budget.deadline;
  if (config_.time_budget_ms > 0) {
    const auto own = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(config_.time_budget_ms);
    if (!deadline.has_value() || own < *deadline) deadline = own;
  }
  int64_t max_expansions = std::max<int64_t>(budget.max_expansions, 0);
  if (config_.max_expansions > 0 &&
      (max_expansions == 0 || config_.max_expansions < max_expansions)) {
    max_expansions = config_.max_expansions;
  }

  // Per-query generation state shared across rounds: sorted trie-child
  // snapshots, memoized prompt contexts, and the CoT prefix (the oracle
  // is deterministic per query, so one call covers every round).
  BeamSearchCache beam_cache;
  const std::vector<TokenId> cot_prefix = CotPrefix(query);

  struct Admitted {
    EntityId entity;
    int round;
    double score;
  };
  std::vector<Admitted> expansion;
  std::vector<EntityId> expansion_pool;  // valid entities for re-prompting
  int stale_rounds = 0;
  int64_t expansions_spent = 0;
  bool degraded = false;

  for (int round = 0; round < config_.max_rounds; ++round) {
    if (expansion.size() >= k) break;
    if (stale_rounds >= config_.stale_rounds_to_stop) break;
    // Round 0 always runs (the beam's first-chunk guarantee makes even a
    // pre-expired deadline productive); later rounds stop at the gate.
    if (round > 0 && deadline.has_value() &&
        std::chrono::steady_clock::now() >= *deadline) {
      degraded = true;
      break;
    }
    UW_SPAN("genexpan.round");

    // Prompt entities: round 0 takes 3 positive seeds; later rounds take
    // 2 positive seeds + 1 previously expanded entity (paper §5.2.1).
    std::vector<EntityId> prompt_seeds;
    if (round == 0 || expansion_pool.empty()) {
      prompt_seeds = rng.SampleWithoutReplacement(query.pos_seeds,
                                                  std::min<size_t>(
                                                      3, query.pos_seeds.size()));
    } else {
      prompt_seeds = rng.SampleWithoutReplacement(query.pos_seeds,
                                                  std::min<size_t>(
                                                      2, query.pos_seeds.size()));
      prompt_seeds.push_back(
          expansion_pool[rng.UniformUint64(expansion_pool.size())]);
    }
    const std::vector<TokenId> prompt = BuildPrompt(cot_prefix, prompt_seeds);

    obs::GetCounter("genexpan.rounds").Increment();
    BeamSearchConfig beam_config;
    beam_config.beam_width = config_.beam_width;
    beam_config.deadline = deadline;
    if (max_expansions > 0) {
      const int64_t remaining = max_expansions - expansions_spent;
      if (remaining <= 0) {
        degraded = true;
        break;
      }
      beam_config.max_expansions = remaining;
    }
    BeamSearchResult search = ConstrainedBeamSearchWithBudget(
        *lm_, *trie_, prompt, beam_config, &beam_cache);
    expansions_spent += search.expansions;
    if (search.truncated) degraded = true;
    std::vector<GeneratedEntity>& generated = search.entities;
    obs::GetCounter("genexpan.generated")
        .Increment(static_cast<int64_t>(generated.size()));

    // New entities only.
    std::vector<GeneratedEntity> fresh;
    for (const GeneratedEntity& g : generated) {
      if (!seen.contains(g.entity)) fresh.push_back(g);
    }
    if (search.truncated && fresh.empty()) break;
    if (fresh.empty()) {
      ++stale_rounds;
      continue;
    }
    stale_rounds = 0;

    // Entity selection: positive similarity score (Eq. 7), keep the top-p
    // fraction.
    std::vector<std::pair<double, EntityId>> scored;
    scored.reserve(fresh.size());
    for (const GeneratedEntity& g : fresh) {
      scored.emplace_back(
          similarity_->SeedScore(query.pos_seeds, g.entity), g.entity);
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    const size_t keep = std::max<size_t>(
        1, static_cast<size_t>(config_.top_p_fraction *
                               static_cast<double>(scored.size())));
    for (size_t i = 0; i < keep; ++i) {
      const EntityId id = scored[i].second;
      seen.insert(id);
      // "- Prefix constrain" ablation: a fraction of generation slots is
      // spent on decoded strings outside the candidate vocabulary; they
      // enter the ranked list as hallucinations.
      if (!config_.use_prefix_constraint &&
          rng.Bernoulli(config_.unconstrained_invalid_rate)) {
        obs::GetCounter("genexpan.hallucinations").Increment();
        expansion.push_back(
            Admitted{kHallucinatedEntityId, round, scored[i].first});
        continue;
      }
      obs::GetCounter("genexpan.admitted").Increment();
      expansion.push_back(Admitted{id, round, scored[i].first});
      expansion_pool.push_back(id);
    }
    // A truncated round still admits what it found (best-effort above),
    // but further rounds would only dig the deadline deeper.
    if (search.truncated) break;
  }

  // Final ordering: positive similarity score (Eq. 7) across all rounds,
  // with round as the tie-break (earlier admissions are more trusted).
  std::stable_sort(expansion.begin(), expansion.end(),
                   [](const Admitted& a, const Admitted& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.round < b.round;
                   });
  std::vector<EntityId> list;
  list.reserve(expansion.size());
  for (const Admitted& a : expansion) list.push_back(a.entity);

  // Entity re-ranking against the negative seeds (plus CoT negative
  // clues when available), scale-free via rank fusion.
  if (config_.use_negative_rerank && !query.neg_seeds.empty() &&
      !list.empty()) {
    UW_SPAN("genexpan.rerank");
    const std::vector<TokenId> neg_clues = CotNegativeClues(query);
    std::vector<double> seed_scores;
    std::vector<double> clue_scores;
    seed_scores.reserve(list.size());
    clue_scores.reserve(list.size());
    for (EntityId id : list) {
      if (id == kHallucinatedEntityId) {
        // Unknown surface form: neutral negative evidence.
        seed_scores.push_back(0.0);
        clue_scores.push_back(0.0);
        continue;
      }
      // Contrastive key (see RetExpan): margin of negative-seed over
      // positive-seed similarity, so entities that merely belong to the
      // same fine-grained class are not penalized.
      seed_scores.push_back(similarity_->SeedScore(query.neg_seeds, id) -
                            similarity_->SeedScore(query.pos_seeds, id));
      clue_scores.push_back(ClueMatchScore(id, neg_clues));
    }
    const std::vector<double> seed_ranks = RankNormalize(seed_scores);
    std::vector<double> neg_like(list.size());
    if (neg_clues.empty()) {
      neg_like = seed_ranks;
    } else {
      const std::vector<double> clue_ranks = RankNormalize(clue_scores);
      for (size_t i = 0; i < list.size(); ++i) {
        neg_like[i] = 0.65 * seed_ranks[i] + 0.35 * clue_ranks[i];
      }
    }
    // neg_like is a descending-rank position: 0 = strongest negative
    // evidence. Re-rank each segment ascending by (1 - neg_like), so the
    // most negative-like entities land at the segment's end.
    std::vector<double> keys(list.size());
    for (size_t i = 0; i < list.size(); ++i) keys[i] = 1.0 - neg_like[i];
    list = SegmentedRerankByPosition(list, keys,
                                     config_.rerank_segment_length);
  }
  if (list.size() > k) list.resize(k);
  if (degraded) obs::GetCounter("genexpan.truncated").Increment();
  return ExpandOutcome{std::move(list), degraded};
}

}  // namespace ultrawiki
