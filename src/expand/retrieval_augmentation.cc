#include "expand/retrieval_augmentation.h"

#include "common/logging.h"

namespace ultrawiki {

const char* RaSourceName(RaSource source) {
  switch (source) {
    case RaSource::kNone:
      return "none";
    case RaSource::kIntroduction:
      return "entity introduction";
    case RaSource::kWikidataAttributes:
      return "wikidata attributes";
    case RaSource::kGroundTruthAttributes:
      return "gt attributes";
  }
  return "unknown";
}

namespace {

/// Copies `tokens` dropping the entity's own surface-form tokens: the
/// augmentation text is consumed by the *masked*-context encoder, so the
/// mention inside it must be masked exactly like the sentence mention
/// (otherwise the prefix leaks entity identity and the encoder learns a
/// lookup table instead of attribute semantics).
std::vector<TokenId> WithoutMention(const GeneratedWorld& world, EntityId id,
                                    const std::vector<TokenId>& tokens) {
  std::vector<TokenId> name;
  for (const std::string& word : world.corpus.entity(id).name_tokens) {
    const TokenId token = world.corpus.tokens().Lookup(word);
    if (token != kInvalidTokenId) name.push_back(token);
  }
  std::vector<TokenId> out;
  out.reserve(tokens.size());
  for (TokenId token : tokens) {
    bool is_name = false;
    for (TokenId n : name) {
      if (n == token) {
        is_name = true;
        break;
      }
    }
    if (!is_name) out.push_back(token);
  }
  return out;
}

}  // namespace

std::vector<std::vector<TokenId>> BuildEntityPrefixes(
    const GeneratedWorld& world, RaSource source) {
  std::vector<std::vector<TokenId>> prefixes(world.corpus.entity_count());
  if (source == RaSource::kNone) return prefixes;
  for (EntityId id = 0;
       id < static_cast<EntityId>(world.corpus.entity_count()); ++id) {
    switch (source) {
      case RaSource::kIntroduction:
        prefixes[static_cast<size_t>(id)] =
            WithoutMention(world, id, world.kb.IntroductionOf(id));
        break;
      case RaSource::kWikidataAttributes:
        prefixes[static_cast<size_t>(id)] =
            WithoutMention(world, id, world.kb.WikidataAttributesOf(id));
        break;
      case RaSource::kGroundTruthAttributes: {
        // The clean clue tokens of every annotated attribute: what a
        // perfect ultra-fine-grained retriever would fetch.
        const Entity& entity = world.corpus.entity(id);
        if (entity.class_id == kBackgroundClassId) break;
        const FineClassSpec& spec =
            world.schema[static_cast<size_t>(entity.class_id)];
        std::vector<TokenId>& prefix = prefixes[static_cast<size_t>(id)];
        for (size_t a = 0; a < spec.attributes.size(); ++a) {
          const int value = entity.attribute_values[a];
          for (const std::string& word :
               spec.attributes[a].clue_tokens[static_cast<size_t>(value)]) {
            const TokenId token = world.corpus.tokens().Lookup(word);
            if (token != kInvalidTokenId) prefix.push_back(token);
          }
        }
        break;
      }
      case RaSource::kNone:
        break;
    }
  }
  return prefixes;
}

}  // namespace ultrawiki
