#ifndef ULTRAWIKI_EXPAND_RETEXPAN_H_
#define ULTRAWIKI_EXPAND_RETEXPAN_H_

#include <string>
#include <vector>

#include "embedding/entity_store.h"
#include "expand/expander.h"

namespace ultrawiki {

/// RetExpan hyper-parameters.
struct RetExpanConfig {
  /// |L0|: size of the initial expansion list (recall stage). Negative
  /// seeds are deliberately ignored here so entities of the fine-grained
  /// class are not lost (paper §5.1.1).
  int initial_list_size = 200;
  /// Segment length l of the segmented re-ranking.
  int rerank_segment_length = 20;
  /// Disable to obtain the "- Neg Rerank" ablation of Table 5.
  bool use_negative_rerank = true;
};

/// The retrieval-based framework (paper §5.1): entity representation →
/// entity expansion by mean cosine similarity to the positive seeds
/// (Eq. 4) → segmented re-ranking by negative-seed similarity. The entity
/// representations come from an EntityStore built over a trained context
/// encoder; swapping in a store built from a contrastively-tuned or
/// retrieval-augmented encoder yields the +Contrast / +RA variants without
/// changing this class.
class RetExpan : public Expander {
 public:
  /// `store` and `candidates` must outlive the expander.
  RetExpan(const EntityStore* store,
           const std::vector<EntityId>* candidates,
           RetExpanConfig config = {}, std::string name = "RetExpan");

  std::vector<EntityId> Expand(const Query& query, size_t k) override;
  std::string name() const override { return name_; }

  /// Mean cosine similarity of `candidate` to `seeds` (paper Eq. 4).
  /// Per-pair scalar path, kept as the reference the batched
  /// EntityStore::SeedCentroidScores ranking is validated against.
  double SeedSimilarity(const std::vector<EntityId>& seeds,
                        EntityId candidate) const;

  /// The recall stage only: top-`size` candidates by positive-seed
  /// similarity, seeds excluded (exposed for the contrastive-data miner
  /// and the framework-interaction experiments).
  std::vector<EntityId> InitialExpansion(const Query& query,
                                         size_t size) const;

  const RetExpanConfig& config() const { return config_; }

 private:
  const EntityStore* store_;
  const std::vector<EntityId>* candidates_;
  RetExpanConfig config_;
  std::string name_;
};

}  // namespace ultrawiki

#endif  // ULTRAWIKI_EXPAND_RETEXPAN_H_
