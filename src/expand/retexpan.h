#ifndef ULTRAWIKI_EXPAND_RETEXPAN_H_
#define ULTRAWIKI_EXPAND_RETEXPAN_H_

#include <string>
#include <vector>

#include "ann/ivf_index.h"
#include "embedding/entity_store.h"
#include "expand/expander.h"

namespace ultrawiki {

/// RetExpan hyper-parameters.
struct RetExpanConfig {
  /// |L0|: size of the initial expansion list (recall stage). Negative
  /// seeds are deliberately ignored here so entities of the fine-grained
  /// class are not lost (paper §5.1.1).
  int initial_list_size = 200;
  /// Segment length l of the segmented re-ranking.
  int rerank_segment_length = 20;
  /// Disable to obtain the "- Neg Rerank" ablation of Table 5.
  bool use_negative_rerank = true;
  /// IVF lists probed by the ANN first stage when an index is attached
  /// (SetAnnIndex). 0 = the index's configured default. The recall knob:
  /// nprobe == nlist reproduces the exact full scan bit for bit.
  /// Pipeline::MakeRetExpan resolves UW_ANN_NPROBE here.
  int ann_nprobe = 0;
  /// The ANN first stage only engages when the candidate vocabulary is at
  /// least this large; smaller vocabularies take the exact scan (its cost
  /// is already trivial, and the IVF adds constant overhead). Tests set 0
  /// to force the ANN path at tiny scale.
  size_t ann_min_candidates = 4096;
};

/// The retrieval-based framework (paper §5.1): entity representation →
/// entity expansion by mean cosine similarity to the positive seeds
/// (Eq. 4) → segmented re-ranking by negative-seed similarity. The entity
/// representations come from an EntityStore built over a trained context
/// encoder; swapping in a store built from a contrastively-tuned or
/// retrieval-augmented encoder yields the +Contrast / +RA variants without
/// changing this class.
class RetExpan : public Expander {
 public:
  /// `store` and `candidates` must outlive the expander.
  RetExpan(const EntityStore* store,
           const std::vector<EntityId>* candidates,
           RetExpanConfig config = {}, std::string name = "RetExpan");

  std::vector<EntityId> Expand(const Query& query, size_t k) override;
  std::string name() const override { return name_; }

  /// Mean cosine similarity of `candidate` to `seeds` (paper Eq. 4).
  /// Per-pair scalar path, kept as the reference the batched
  /// EntityStore::SeedCentroidScores ranking is validated against.
  double SeedSimilarity(const std::vector<EntityId>& seeds,
                        EntityId candidate) const;

  /// The recall stage only: top-`size` candidates by positive-seed
  /// similarity, seeds excluded (exposed for the contrastive-data miner
  /// and the framework-interaction experiments).
  std::vector<EntityId> InitialExpansion(const Query& query,
                                         size_t size) const;

  /// Attaches an ANN first stage (nullptr detaches). `ann` must be built
  /// over the same EntityStore this expander ranks with and must outlive
  /// the expander. When attached — and the candidate vocabulary clears
  /// `config.ann_min_candidates` — InitialExpansion retrieves an IVF
  /// candidate superset and reranks it with the exact centroid kernel;
  /// candidates absent from the store keep their exact score of 0, so at
  /// nprobe == nlist the ranking is bit-identical to the full scan.
  void SetAnnIndex(const IvfIndex* ann);

  const RetExpanConfig& config() const { return config_; }

 private:
  const EntityStore* store_;
  const std::vector<EntityId>* candidates_;
  RetExpanConfig config_;
  std::string name_;
  const IvfIndex* ann_ = nullptr;
  /// Position of each EntityId in `candidates_` (-1 = not a candidate);
  /// built by SetAnnIndex so the ANN path keeps the full scan's
  /// position-based tie-break. Indexed by id.
  std::vector<int64_t> position_of_;
  /// Candidate positions whose entity is absent from the store. The full
  /// scan scores them exactly 0; the ANN path pushes that same 0 so the
  /// tail of a ranking that reaches zero-scored entities stays identical.
  std::vector<size_t> absent_positions_;
};

}  // namespace ultrawiki

#endif  // ULTRAWIKI_EXPAND_RETEXPAN_H_
