#include "expand/pipeline.h"

#include <cstdlib>
#include <utility>

#include "common/logging.h"
#include "io/artifact_cache.h"
#include "io/model_io.h"
#include "io/snapshot.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ultrawiki {

PipelineConfig PipelineConfig::Bench() {
  PipelineConfig config;
  config.generator.seed = 1;
  config.generator.scale = 0.35;
  config.dataset.seed = 7;
  config.encoder_train.epochs = 10;
  config.weak_encoder_train.epochs = 4;
  config.weak_encoder_train.learning_rate = 0.04f;
  config.weak_encoder_train.seed = 55;
  return config;
}

PipelineConfig PipelineConfig::Tiny() {
  PipelineConfig config;
  config.generator.seed = 1;
  config.generator.scale = 0.12;
  config.generator.min_entities_per_class = 30;
  config.generator.background_entity_count = 120;
  config.generator.sentences_per_entity = 10;
  config.dataset.ultra_class_scale = 0.12;
  config.encoder_train.epochs = 2;
  config.weak_encoder_train.epochs = 4;
  config.weak_encoder_train.seed = 55;
  config.contrast.epochs = 1;
  return config;
}

Pipeline::Pipeline(const PipelineConfig& config, GeneratedWorld world)
    : config_(config), world_(std::move(world)) {}

Pipeline Pipeline::Build(const PipelineConfig& config) {
  UW_SPAN("pipeline.build");
  ArtifactCache& cache = ArtifactCache::Global();

  // World: loaded from the snapshot cache when a previous run generated it
  // from an identical GeneratorConfig, else generated and cached.
  const uint64_t world_key = FingerprintConfig(config.generator);
  Pipeline pipeline = [&config, &cache, world_key] {
    {
      UW_SPAN("cache.load_world");
      auto cached = TryLoadCached(cache, "world", world_key,
                                  [](const std::string& path) {
                                    return LoadWorldSnapshot(path);
                                  });
      if (cached.has_value()) {
        return Pipeline(config, std::move(*cached));
      }
    }
    UW_SPAN("generate_world");
    GeneratedWorld world = GenerateWorld(config.generator);
    StoreCached(cache, "world", world_key,
                [&world](const std::string& path) {
                  return SaveWorldSnapshot(world, path);
                });
    return Pipeline(config, std::move(world));
  }();
  {
    UW_SPAN("build_dataset");
    auto built = BuildDataset(pipeline.world_, config.dataset);
    UW_CHECK(built.ok()) << built.status();
    pipeline.dataset_ = std::move(built).value();
  }

  pipeline.oracle_ =
      std::make_unique<LlmOracle>(&pipeline.world_, config.oracle);

  // Main encoder: entity-prediction training over the full corpus, cached
  // keyed on the world's provenance plus every training knob. A world of
  // unknown provenance (fingerprint 0, e.g. loaded from TSV) disables
  // derived-artifact caching — there is nothing sound to key on.
  const Corpus& corpus = pipeline.world_.corpus;
  const bool derivable = pipeline.world_.fingerprint != 0;
  const uint64_t encoder_key =
      derivable ? CombineFingerprints(
                      {pipeline.world_.fingerprint,
                       FingerprintConfig(config.encoder),
                       FingerprintConfig(config.encoder_train)})
                : 0;
  if (derivable) {
    UW_SPAN("cache.load_encoder");
    auto cached = TryLoadCached(cache, "encoder", encoder_key,
                                [](const std::string& path) {
                                  return LoadEncoder(path);
                                });
    if (cached.has_value()) {
      pipeline.encoder_ =
          std::make_unique<ContextEncoder>(std::move(*cached));
    }
  }
  if (pipeline.encoder_ == nullptr) {
    pipeline.encoder_ = std::make_unique<ContextEncoder>(
        corpus.tokens().size(), corpus.entity_count(), config.encoder);
    pipeline.encoder_->SetTokenWeights(
        ComputeSifTokenWeights(corpus.tokens()));
    {
      UW_SPAN("train_encoder");
      TrainEntityPrediction(corpus, *pipeline.encoder_,
                            config.encoder_train);
    }
    if (derivable) {
      StoreCached(cache, "encoder", encoder_key,
                  [&pipeline](const std::string& path) {
                    return SaveEncoder(*pipeline.encoder_, path);
                  });
    }
  }

  // Entity store: cached keyed on the encoder key plus the store and
  // dataset configs (the build set is the dataset's candidate vocabulary).
  const uint64_t store_key =
      derivable ? CombineFingerprints({encoder_key,
                                       FingerprintConfig(config.store),
                                       FingerprintConfig(config.dataset)})
                : 0;
  pipeline.store_key_ = store_key;
  if (derivable) {
    UW_SPAN("cache.load_store");
    auto cached = TryLoadCached(cache, "store", store_key,
                                [](const std::string& path) {
                                  return LoadEntityStoreSnapshot(path);
                                });
    if (cached.has_value()) {
      pipeline.store_ =
          std::make_unique<EntityStore>(std::move(*cached));
    }
  }
  if (pipeline.store_ == nullptr) {
    UW_SPAN("entity_store");
    pipeline.store_ = std::make_unique<EntityStore>(EntityStore::Build(
        corpus, *pipeline.encoder_, pipeline.dataset_.candidates,
        config.store));
    if (derivable) {
      StoreCached(cache, "store", store_key,
                  [&pipeline](const std::string& path) {
                    return SaveEntityStoreSnapshot(*pipeline.store_, path);
                  });
    }
  }

  // Language model: "further pretraining" on the corpus.
  {
    UW_SPAN("lm_pretrain");
    pipeline.lm_ =
        std::make_unique<HybridLm>(corpus.tokens().size(), config.lm);
    pipeline.lm_->SetStopTokens(pipeline.StopTokens());
    pipeline.TrainLmOn(*pipeline.lm_, config.lm_pretrain_fraction);
  }

  // Prefix trie over candidate surface forms.
  {
    UW_SPAN("build_trie");
    pipeline.trie_ = std::make_unique<PrefixTrie>();
    for (EntityId id : pipeline.dataset_.candidates) {
      std::vector<TokenId> name;
      for (const std::string& word : corpus.entity(id).name_tokens) {
        const TokenId token = corpus.tokens().Lookup(word);
        if (token != kInvalidTokenId) name.push_back(token);
      }
      if (name.empty()) {
        UW_LOG_EVERY_N(Warning, 100)
            << "candidate entity " << id
            << " has no in-vocabulary name tokens; skipping trie insert";
        continue;
      }
      pipeline.trie_->Insert(name, id);
    }
  }
  pipeline.similarity_ =
      std::make_unique<LmEntitySimilarity>(corpus, *pipeline.lm_);
  obs::GetGauge("pipeline.candidates").Set(
      static_cast<int64_t>(pipeline.dataset_.candidates.size()));
  obs::GetGauge("pipeline.corpus_sentences")
      .Set(static_cast<int64_t>(corpus.sentence_count()));
  return pipeline;
}

void Pipeline::TrainLmOn(HybridLm& lm, double fraction) const {
  UW_CHECK_GT(fraction, 0.0);
  const Corpus& corpus = world_.corpus;
  // Deterministic subsampling by index stride keeps the retained subset
  // stable across runs.
  auto keep = [fraction](size_t index) {
    if (fraction >= 1.0) return true;
    const double position =
        static_cast<double>(index % 1000) / 1000.0;
    return position < fraction;
  };
  for (size_t s = 0; s < corpus.sentence_count(); ++s) {
    if (!keep(s)) continue;
    lm.AddSentence(corpus.sentence(s).tokens);
  }
  const auto& auxiliary = corpus.auxiliary_sentences();
  for (size_t s = 0; s < auxiliary.size(); ++s) {
    if (!keep(s)) continue;
    lm.AddSentence(auxiliary[s]);
  }
  lm.Finalize();
}

std::unordered_set<TokenId> Pipeline::StopTokens() const {
  std::unordered_set<TokenId> stops;
  for (const char* word :
       {"the", "is", "are", "a", "with", "and", "similar", "to", "page",
        ",", "."}) {
    const TokenId token = world_.corpus.tokens().Lookup(word);
    if (token != kInvalidTokenId) stops.insert(token);
  }
  return stops;
}

const EntityStore& Pipeline::weak_store() {
  if (weak_store_ == nullptr) {
    UW_SPAN("pipeline.weak_store");
    const Corpus& corpus = world_.corpus;
    EncoderConfig weak_config = config_.encoder;
    weak_config.seed = config_.encoder.seed ^ 0x5151;
    weak_encoder_ = std::make_unique<ContextEncoder>(
        corpus.tokens().size(), corpus.entity_count(), weak_config);
    weak_encoder_->SetTokenWeights(ComputeSifTokenWeights(corpus.tokens()));
    TrainEntityPrediction(corpus, *weak_encoder_,
                          config_.weak_encoder_train);
    weak_store_ = std::make_unique<EntityStore>(EntityStore::Build(
        corpus, *weak_encoder_, dataset_.candidates, config_.store));
  }
  return *weak_store_;
}

const EntityStore& Pipeline::static_store() {
  if (static_store_ == nullptr) {
    UW_SPAN("pipeline.static_store");
    const Corpus& corpus = world_.corpus;
    EncoderConfig static_config = config_.encoder;
    static_config.seed = config_.encoder.seed ^ 0x9292;
    static_encoder_ = std::make_unique<ContextEncoder>(
        corpus.tokens().size(), corpus.entity_count(), static_config);
    static_encoder_->SetTokenWeights(
        ComputeSifTokenWeights(corpus.tokens()));
    EntityPredictionTrainConfig train = config_.weak_encoder_train;
    train.epochs = 1;
    train.learning_rate = 0.03f;
    train.seed = config_.weak_encoder_train.seed ^ 0x11;
    TrainEntityPrediction(corpus, *static_encoder_, train);
    static_store_ = std::make_unique<EntityStore>(EntityStore::Build(
        corpus, *static_encoder_, dataset_.candidates, config_.store));
  }
  return *static_store_;
}

const EntityStore& Pipeline::contrast_store() {
  if (contrast_store_ == nullptr) {
    UW_SPAN("pipeline.contrast_store");
    contrast_store_ = BuildContrastStore(config_.contrast, config_.miner);
  }
  return *contrast_store_;
}

std::unique_ptr<EntityStore> Pipeline::BuildContrastStore(
    const ContrastiveTrainConfig& train, const MinerConfig& miner) {
  // Mine training data with the base RetExpan recall stage + oracle.
  RetExpan base(store_.get(), &dataset_.candidates);
  const ContrastiveData data =
      MineContrastiveData(world_, dataset_, base, *oracle_, miner);
  // Tune a clone of the main encoder; alternate with entity prediction to
  // preserve the underlying semantics (paper appendix B).
  auto tuned = std::make_unique<ContextEncoder>(encoder_->Clone());
  for (int epoch = 0; epoch < train.epochs; ++epoch) {
    ContrastiveTrainConfig one_epoch = train;
    one_epoch.epochs = 1;
    one_epoch.seed = train.seed + static_cast<uint64_t>(epoch);
    TrainContrastive(world_.corpus, *tuned, data, one_epoch);
    EntityPredictionTrainConfig refresh = config_.encoder_train;
    refresh.epochs = 1;
    refresh.seed = config_.encoder_train.seed + 101 +
                   static_cast<uint64_t>(epoch);
    refresh.learning_rate = config_.encoder_train.min_learning_rate;
    TrainEntityPrediction(world_.corpus, *tuned, refresh);
  }
  return std::make_unique<EntityStore>(EntityStore::Build(
      world_.corpus, *tuned, dataset_.candidates, config_.store));
}

const EntityStore& Pipeline::ra_store(RaSource source) {
  const size_t index = static_cast<size_t>(source);
  UW_CHECK_LT(index, 4u);
  if (ra_stores_[index] == nullptr) {
    UW_SPAN("pipeline.ra_store");
    // Retrain a fresh encoder with the augmentation prefixes applied to
    // every training sentence, then extract representations with the same
    // prefixes (paper §5.1.3: "during both training and inference").
    const auto prefixes = std::make_shared<
        std::vector<std::vector<TokenId>>>(
        BuildEntityPrefixes(world_, source));
    const Corpus& corpus = world_.corpus;
    EncoderConfig ra_config = config_.encoder;
    ra_config.seed = config_.encoder.seed ^ (0x77AA + index);
    ContextEncoder encoder(corpus.tokens().size(), corpus.entity_count(),
                           ra_config);
    encoder.SetTokenWeights(ComputeSifTokenWeights(corpus.tokens()));
    EntityPredictionTrainConfig train = config_.encoder_train;
    train.entity_prefixes = prefixes.get();
    TrainEntityPrediction(corpus, encoder, train);
    EntityStoreConfig store_config = config_.store;
    store_config.entity_prefixes = prefixes.get();
    ra_stores_[index] = std::make_unique<EntityStore>(EntityStore::Build(
        corpus, encoder, dataset_.candidates, store_config));
  }
  return *ra_stores_[index];
}

const std::vector<SparseVec>& Pipeline::distributions() {
  if (distributions_ == nullptr) {
    UW_SPAN("pipeline.distributions");
    EntityStoreConfig config = config_.store;
    config.max_sentences_per_entity =
        std::min(config.max_sentences_per_entity, 3);
    config.distribution_temperature = 6.0f;
    distributions_ = std::make_unique<std::vector<SparseVec>>(
        BuildSparseDistributions(world_.corpus, *encoder_,
                                 dataset_.candidates, config,
                                 config_.distribution_top_k));
  }
  return *distributions_;
}

const IvfIndex& Pipeline::ann_index() {
  if (ann_index_ == nullptr) {
    UW_SPAN("pipeline.ann_index");
    // Keyed on the store's provenance plus the ANN config: a different
    // store, generator, encoder, or IVF knob is a different index.
    const uint64_t ann_key =
        store_key_ != 0
            ? CombineFingerprints({store_key_,
                                   FingerprintConfig(config_.ann)})
            : 0;
    ArtifactCache& cache = ArtifactCache::Global();
    if (ann_key != 0) {
      UW_SPAN("cache.load_ann");
      auto cached = TryLoadCached(
          cache, "ann", ann_key, [this](const std::string& path) {
            return LoadAnnIndexSnapshot(path, config_.ann);
          });
      if (cached.has_value()) {
        ann_index_ = std::make_unique<IvfIndex>(std::move(*cached));
        return *ann_index_;
      }
    }
    ann_index_ = std::make_unique<IvfIndex>(
        IvfIndex::Build(*store_, config_.ann));
    if (ann_key != 0) {
      StoreCached(cache, "ann", ann_key,
                  [this](const std::string& path) {
                    return SaveAnnIndexSnapshot(*ann_index_, path);
                  });
    }
  }
  return *ann_index_;
}

std::vector<size_t> ShardCandidatePositions(size_t candidate_count,
                                            const ShardSpec& spec) {
  UW_CHECK(spec.valid()) << "bad shard spec " << spec.index << "/"
                         << spec.count;
  std::vector<size_t> positions;
  positions.reserve(candidate_count / static_cast<size_t>(spec.count) + 1);
  for (size_t p = static_cast<size_t>(spec.index); p < candidate_count;
       p += static_cast<size_t>(spec.count)) {
    positions.push_back(p);
  }
  return positions;
}

uint64_t Pipeline::ShardStoreKey(const ShardSpec& spec) const {
  if (store_key_ == 0) return 0;
  // Distinct type tag so a shard store never collides with the full
  // store or another derived artifact under the same provenance.
  return CombineFingerprints({store_key_, 0x5348415244ull /* "SHARD" */,
                              static_cast<uint64_t>(spec.count),
                              static_cast<uint64_t>(spec.index)});
}

std::unique_ptr<EntityStore> Pipeline::BuildShardStore(
    const ShardSpec& spec) {
  UW_CHECK(spec.valid()) << "bad shard spec " << spec.index << "/"
                         << spec.count;
  UW_SPAN("pipeline.build_shard_store");
  ArtifactCache& cache = ArtifactCache::Global();
  const uint64_t key = ShardStoreKey(spec);
  if (key != 0) {
    auto cached = TryLoadCached(cache, "shard_store", key,
                                [](const std::string& path) {
                                  return LoadEntityStoreSnapshot(path);
                                });
    if (cached.has_value()) {
      return std::make_unique<EntityStore>(std::move(*cached));
    }
  }
  // Rows for the shard's candidate slice plus every seed entity of every
  // dataset query. Seed replication keeps SeedCentroidOf bit-exact on
  // every shard: the centroid folds the same unit rows in the same
  // argument order as the full store.
  std::vector<Vec> hidden(store_->slot_count());
  int64_t rows = 0;
  const auto keep = [&](EntityId id) {
    if (id < 0 || static_cast<size_t>(id) >= hidden.size()) return;
    if (!store_->Has(id) || !hidden[static_cast<size_t>(id)].empty()) return;
    const std::span<const float> row = store_->HiddenOf(id);
    hidden[static_cast<size_t>(id)].assign(row.begin(), row.end());
    ++rows;
  };
  for (const size_t position :
       ShardCandidatePositions(dataset_.candidates.size(), spec)) {
    keep(dataset_.candidates[position]);
  }
  for (const Query& query : dataset_.queries) {
    for (const EntityId id : query.pos_seeds) keep(id);
    for (const EntityId id : query.neg_seeds) keep(id);
  }
  obs::GetCounter("pipeline.shard_store_builds").Increment();
  obs::GetGauge("pipeline.shard_store_rows").Set(rows);
  auto shard_store = std::make_unique<EntityStore>(
      EntityStore::Restore(store_->dim(), std::move(hidden)));
  if (key != 0) {
    StoreCached(cache, "shard_store", key,
                [&shard_store](const std::string& path) {
                  return SaveEntityStoreSnapshot(*shard_store, path);
                });
  }
  return shard_store;
}

std::unique_ptr<EntityStore> Pipeline::BuildEncoderStore(
    const EntityPredictionTrainConfig& train) {
  const Corpus& corpus = world_.corpus;
  ContextEncoder encoder(corpus.tokens().size(), corpus.entity_count(),
                         config_.encoder);
  encoder.SetTokenWeights(ComputeSifTokenWeights(corpus.tokens()));
  TrainEntityPrediction(corpus, encoder, train);
  return std::make_unique<EntityStore>(EntityStore::Build(
      corpus, encoder, dataset_.candidates, config_.store));
}

std::unique_ptr<HybridLm> Pipeline::BuildLmVariant(
    const HybridLmConfig& config, double pretrain_fraction) const {
  auto lm = std::make_unique<HybridLm>(world_.corpus.tokens().size(),
                                       config);
  lm->SetStopTokens(StopTokens());
  TrainLmOn(*lm, pretrain_fraction);
  return lm;
}

std::unique_ptr<RetExpan> Pipeline::MakeRetExpan(RetExpanConfig config) {
  // Recall knobs: UW_ANN_ENABLE attaches the IVF first stage to the main
  // store's expander; UW_ANN_NPROBE widens/narrows its probe (explicit
  // config wins, matching the GenExpan budget knobs). The contrast/RA
  // variants rank with different stores, so they never get this index.
  const bool ann = AnnEnabledFromEnv();
  if (ann && config.ann_nprobe <= 0) {
    config.ann_nprobe = AnnNprobeFromEnv();
  }
  auto expander = std::make_unique<RetExpan>(
      store_.get(), &dataset_.candidates, config);
  if (ann) expander->SetAnnIndex(&ann_index());
  return expander;
}

std::unique_ptr<RetExpan> Pipeline::MakeRetExpanContrast(
    RetExpanConfig config) {
  return std::make_unique<RetExpan>(&contrast_store(),
                                    &dataset_.candidates, config,
                                    "RetExpan+Contrast");
}

std::unique_ptr<RetExpan> Pipeline::MakeRetExpanRa(RaSource source,
                                                   RetExpanConfig config) {
  return std::make_unique<RetExpan>(
      &ra_store(source), &dataset_.candidates, config,
      std::string("RetExpan+RA(") + RaSourceName(source) + ")");
}

namespace {

int64_t EnvBudget(const char* name) {
  if (const char* env = std::getenv(name)) {
    const long long parsed = std::atoll(env);
    if (parsed > 0) return static_cast<int64_t>(parsed);
    UW_LOG(Warning) << name << "=" << env << " is not positive; ignoring";
  }
  return 0;
}

}  // namespace

std::unique_ptr<GenExpan> Pipeline::MakeGenExpan(GenExpanConfig config) {
  // Standing anytime budgets; explicit config values win over the env.
  if (config.time_budget_ms <= 0) {
    config.time_budget_ms = EnvBudget("UW_GENEXPAN_TIME_BUDGET_MS");
  }
  if (config.max_expansions <= 0) {
    config.max_expansions = EnvBudget("UW_GENEXPAN_MAX_EXPANSIONS");
  }
  std::string name = "GenExpan";
  if (config.cot != CotMode::kNone) {
    name += std::string("+CoT(") + CotModeName(config.cot) + ")";
  }
  if (config.retrieval_augmentation) {
    name += std::string("+RA(") + RaSourceName(config.ra_source) + ")";
  }
  if (!config.use_prefix_constraint) name += "-PrefixConstraint";
  return std::make_unique<GenExpan>(&world_, lm_.get(), trie_.get(),
                                    similarity_.get(), oracle_.get(),
                                    config, std::move(name));
}

std::unique_ptr<ProbExpan> Pipeline::MakeProbExpan(ProbExpanConfig config) {
  return std::make_unique<ProbExpan>(&distributions(),
                                     &dataset_.candidates, config);
}

std::unique_ptr<SetExpan> Pipeline::MakeSetExpan(SetExpanConfig config) {
  return std::make_unique<SetExpan>(&world_.corpus, &dataset_.candidates,
                                    config);
}

std::unique_ptr<CaSE> Pipeline::MakeCaSE(CaseConfig config) {
  return std::make_unique<CaSE>(&world_.corpus, &static_store(),
                                &dataset_.candidates, config);
}

std::unique_ptr<CgExpan> Pipeline::MakeCgExpan(CgExpanConfig config) {
  return std::make_unique<CgExpan>(&world_, &weak_store(),
                                   &lm_->association(),
                                   &dataset_.candidates, config);
}

std::unique_ptr<Gpt4Baseline> Pipeline::MakeGpt4Baseline() {
  return std::make_unique<Gpt4Baseline>(oracle_.get(), &dataset_);
}

std::unique_ptr<InteractionExpander> Pipeline::MakeInteraction(
    InteractionOrder order, InteractionConfig config) {
  return std::make_unique<InteractionExpander>(
      order, &world_, store_.get(), &dataset_.candidates, lm_.get(),
      similarity_.get(), oracle_.get(), config);
}

}  // namespace ultrawiki
