#include "expand/rerank.h"

#include <algorithm>

#include "common/logging.h"

namespace ultrawiki {

std::vector<EntityId> SegmentedRerank(
    const std::vector<EntityId>& initial,
    const std::function<double(EntityId)>& negative_score,
    int segment_length) {
  std::vector<double> scores;
  scores.reserve(initial.size());
  for (EntityId id : initial) scores.push_back(negative_score(id));
  return SegmentedRerankByPosition(initial, scores, segment_length);
}

std::vector<EntityId> SegmentedRerankByPosition(
    const std::vector<EntityId>& initial,
    const std::vector<double>& negative_scores, int segment_length) {
  UW_CHECK_GT(segment_length, 0);
  UW_CHECK_EQ(initial.size(), negative_scores.size());
  struct Scored {
    EntityId entity;
    double neg_score;
    size_t original_rank;
  };
  std::vector<EntityId> result;
  result.reserve(initial.size());
  for (size_t begin = 0; begin < initial.size();
       begin += static_cast<size_t>(segment_length)) {
    const size_t end = std::min(
        initial.size(), begin + static_cast<size_t>(segment_length));
    std::vector<Scored> segment;
    segment.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      segment.push_back(Scored{initial[i], negative_scores[i], i});
    }
    std::stable_sort(segment.begin(), segment.end(),
                     [](const Scored& a, const Scored& b) {
                       if (a.neg_score != b.neg_score) {
                         return a.neg_score < b.neg_score;
                       }
                       return a.original_rank < b.original_rank;
                     });
    for (const Scored& s : segment) result.push_back(s.entity);
  }
  return result;
}

}  // namespace ultrawiki
