#ifndef ULTRAWIKI_EXPAND_EXPANDER_H_
#define ULTRAWIKI_EXPAND_EXPANDER_H_

#include <vector>

#include "dataset/dataset.h"

namespace ultrawiki {

/// Interface every expansion method implements: given a query (positive +
/// negative seeds), return a ranked entity list of up to `k` entries.
/// Implementations must never return the query's own seed entities.
/// Entries may include kHallucinatedEntityId (generative baselines).
///
/// Concurrency contract: the evaluator and the bench harness call
/// `Expand` from multiple threads at once (one query per task), so
/// implementations must keep `Expand` logically const — precompute
/// indices in the constructor and derive any randomness per call (e.g.
/// an Rng seeded from the query), never from shared mutable state.
class Expander {
 public:
  virtual ~Expander() = default;

  /// Ranks candidates for `query`, best first.
  virtual std::vector<EntityId> Expand(const Query& query, size_t k) = 0;

  /// Human-readable method name (used by the benchmark harness).
  virtual std::string name() const = 0;
};

/// Utility: the union of a query's positive and negative seeds, sorted —
/// the set expansion must exclude.
std::vector<EntityId> SortedSeedsOf(const Query& query);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_EXPAND_EXPANDER_H_
