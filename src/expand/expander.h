#ifndef ULTRAWIKI_EXPAND_EXPANDER_H_
#define ULTRAWIKI_EXPAND_EXPANDER_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "dataset/dataset.h"

namespace ultrawiki {

/// Per-query anytime budget. Methods that honor it (GenExpan) degrade to
/// a best-so-far ranking when a budget trips instead of blowing the
/// latency tail; methods that don't simply ignore it.
struct ExpandBudget {
  /// Absolute wall-clock deadline (the serving layer derives it from the
  /// request timeout). nullopt = none.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Cap on beam expansions across the whole query. <= 0 = unlimited.
  int64_t max_expansions = 0;
};

/// A ranking plus whether any budget truncated the work that produced it.
/// A degraded ranking is still a valid (sorted, seed-free) ranking — just
/// computed from fewer generation rounds/expansions.
struct ExpandOutcome {
  std::vector<EntityId> ranking;
  bool degraded = false;
};

/// Interface every expansion method implements: given a query (positive +
/// negative seeds), return a ranked entity list of up to `k` entries.
/// Implementations must never return the query's own seed entities.
/// Entries may include kHallucinatedEntityId (generative baselines).
///
/// Concurrency contract: the evaluator and the bench harness call
/// `Expand` from multiple threads at once (one query per task), so
/// implementations must keep `Expand` logically const — precompute
/// indices in the constructor and derive any randomness per call (e.g.
/// an Rng seeded from the query), never from shared mutable state.
class Expander {
 public:
  virtual ~Expander() = default;

  /// Ranks candidates for `query`, best first.
  virtual std::vector<EntityId> Expand(const Query& query, size_t k) = 0;

  /// Budget-aware variant. The default ignores the budget (correct for
  /// methods with flat per-query cost); anytime methods override it and
  /// must return a ranking bit-identical to `Expand` whenever no budget
  /// triggers.
  virtual ExpandOutcome ExpandWithBudget(const Query& query, size_t k,
                                         const ExpandBudget& budget) {
    (void)budget;
    return ExpandOutcome{Expand(query, k), /*degraded=*/false};
  }

  /// Human-readable method name (used by the benchmark harness).
  virtual std::string name() const = 0;
};

/// Utility: the union of a query's positive and negative seeds, sorted —
/// the set expansion must exclude.
std::vector<EntityId> SortedSeedsOf(const Query& query);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_EXPAND_EXPANDER_H_
