#ifndef ULTRAWIKI_EXPAND_EXPANDER_H_
#define ULTRAWIKI_EXPAND_EXPANDER_H_

#include <vector>

#include "dataset/dataset.h"

namespace ultrawiki {

/// Interface every expansion method implements: given a query (positive +
/// negative seeds), return a ranked entity list of up to `k` entries.
/// Implementations must never return the query's own seed entities.
/// Entries may include kHallucinatedEntityId (generative baselines).
class Expander {
 public:
  virtual ~Expander() = default;

  /// Ranks candidates for `query`, best first.
  virtual std::vector<EntityId> Expand(const Query& query, size_t k) = 0;

  /// Human-readable method name (used by the benchmark harness).
  virtual std::string name() const = 0;
};

/// Utility: the union of a query's positive and negative seeds, sorted —
/// the set expansion must exclude.
std::vector<EntityId> SortedSeedsOf(const Query& query);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_EXPAND_EXPANDER_H_
