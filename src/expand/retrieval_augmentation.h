#ifndef ULTRAWIKI_EXPAND_RETRIEVAL_AUGMENTATION_H_
#define ULTRAWIKI_EXPAND_RETRIEVAL_AUGMENTATION_H_

#include <vector>

#include "corpus/generator.h"

namespace ultrawiki {

/// The three external-knowledge sources compared in paper Table 8.
enum class RaSource {
  kNone,
  /// Fluent encyclopedic introductions (the default +RA strategy).
  kIntroduction,
  /// Wikidata-style attribute dumps: correct clues diluted by junk
  /// properties, hence the weakest variant.
  kWikidataAttributes,
  /// The clean ground-truth attribute clues (upper bound).
  kGroundTruthAttributes,
};

const char* RaSourceName(RaSource source);

/// Materializes the per-entity augmentation prefix for `source`, indexed
/// by EntityId. These prefixes are prepended to every sentence context of
/// the entity during both encoder training and representation extraction
/// (paper §5.1.3), and to generation prompts in GenExpan+RA (§5.2.3).
std::vector<std::vector<TokenId>> BuildEntityPrefixes(
    const GeneratedWorld& world, RaSource source);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_EXPAND_RETRIEVAL_AUGMENTATION_H_
