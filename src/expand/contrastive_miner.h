#ifndef ULTRAWIKI_EXPAND_CONTRASTIVE_MINER_H_
#define ULTRAWIKI_EXPAND_CONTRASTIVE_MINER_H_

#include "embedding/contrastive.h"
#include "expand/retexpan.h"
#include "llm_oracle/oracle.h"

namespace ultrawiki {

/// Mining configuration (paper §5.1.2, "Ultra-fine-grained Training
/// Data"). |L_pos| = |L_neg| = 10 in the paper; the noise analysis of
/// Fig. 7c varies them.
struct MinerConfig {
  uint64_t seed = 17;
  /// Top-T entities of L0 submitted to the oracle per side.
  int top_t = 30;
  /// Cap on mined entities per side (before seeds are merged in).
  int l_size = 10;
  /// Normal negatives sampled from other fine-grained classes (L0-bar).
  int other_class_samples = 12;
};

/// For every query: runs the base RetExpan recall stage, asks the LLM
/// oracle which of the top-T entities are attribute-consistent with the
/// positive (negative) seeds — the Table-13 prompt — and assembles the
/// contrastive groups (L_pos, L_neg merged with the seeds, plus an
/// other-class sample and the seed-name conditioning tokens).
ContrastiveData MineContrastiveData(const GeneratedWorld& world,
                                    const UltraWikiDataset& dataset,
                                    const RetExpan& base_expander,
                                    const LlmOracle& oracle,
                                    const MinerConfig& config = {});

}  // namespace ultrawiki

#endif  // ULTRAWIKI_EXPAND_CONTRASTIVE_MINER_H_
