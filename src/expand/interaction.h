#ifndef ULTRAWIKI_EXPAND_INTERACTION_H_
#define ULTRAWIKI_EXPAND_INTERACTION_H_

#include <memory>
#include <string>

#include "embedding/entity_store.h"
#include "expand/genexpan.h"
#include "expand/retexpan.h"

namespace ultrawiki {

/// Order of the two-stage framework interaction (paper §6.5, Table 10):
/// model A produces a high-recall candidate subset, model B re-expands
/// restricted to it.
enum class InteractionOrder { kRetThenGen, kGenThenRet };

struct InteractionConfig {
  /// Size of the high-recall subset A hands to B. The paper uses 1000 of
  /// 51K candidates; this default scales the same "far larger than any
  /// target set, far smaller than the vocabulary" ratio down to the bench
  /// corpus.
  int recall_size = 350;
  RetExpanConfig retexpan;
  GenExpanConfig genexpan;
};

/// RetExpan+GenExpan / GenExpan+RetExpan pipelines. Stage B operates on a
/// per-query restriction of the candidate vocabulary: a query-local prefix
/// trie (Ret→Gen) or a query-local candidate list (Gen→Ret).
class InteractionExpander : public Expander {
 public:
  InteractionExpander(InteractionOrder order, const GeneratedWorld* world,
                      const EntityStore* store,
                      const std::vector<EntityId>* candidates,
                      const HybridLm* lm,
                      const LmEntitySimilarity* similarity,
                      const LlmOracle* oracle,
                      InteractionConfig config = {});

  std::vector<EntityId> Expand(const Query& query, size_t k) override;
  std::string name() const override;

 private:
  std::vector<EntityId> ExpandRetThenGen(const Query& query, size_t k);
  std::vector<EntityId> ExpandGenThenRet(const Query& query, size_t k);

  InteractionOrder order_;
  const GeneratedWorld* world_;
  const EntityStore* store_;
  const std::vector<EntityId>* candidates_;
  const HybridLm* lm_;
  const LmEntitySimilarity* similarity_;
  const LlmOracle* oracle_;
  InteractionConfig config_;
};

}  // namespace ultrawiki

#endif  // ULTRAWIKI_EXPAND_INTERACTION_H_
