#include "expand/interaction.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "lm/prefix_trie.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ultrawiki {

InteractionExpander::InteractionExpander(
    InteractionOrder order, const GeneratedWorld* world,
    const EntityStore* store, const std::vector<EntityId>* candidates,
    const HybridLm* lm, const LmEntitySimilarity* similarity,
    const LlmOracle* oracle, InteractionConfig config)
    : order_(order),
      world_(world),
      store_(store),
      candidates_(candidates),
      lm_(lm),
      similarity_(similarity),
      oracle_(oracle),
      config_(config) {
  UW_CHECK_NE(world, nullptr);
  UW_CHECK_NE(store, nullptr);
  UW_CHECK_NE(candidates, nullptr);
  UW_CHECK_NE(lm, nullptr);
  UW_CHECK_NE(similarity, nullptr);
  UW_CHECK_NE(oracle, nullptr);
}

std::string InteractionExpander::name() const {
  return order_ == InteractionOrder::kRetThenGen ? "RetExpan+GenExpan"
                                                 : "GenExpan+RetExpan";
}

namespace {

/// Ensembles stage A's and stage B's rankings of the shared subset by
/// mean rank position: the two paradigms vote, so an entity must rank
/// well under both the feature-similarity view and the generative view to
/// stay on top. Entities absent from one list take that list's end rank.
std::vector<EntityId> FuseRankings(const std::vector<EntityId>& a,
                                   const std::vector<EntityId>& b,
                                   size_t k) {
  std::unordered_map<EntityId, double> position_a;
  std::unordered_map<EntityId, double> position_b;
  for (size_t i = 0; i < a.size(); ++i) {
    position_a.emplace(a[i], static_cast<double>(i));
  }
  for (size_t i = 0; i < b.size(); ++i) {
    position_b.emplace(b[i], static_cast<double>(i));
  }
  std::vector<std::pair<double, EntityId>> fused;
  fused.reserve(position_a.size());
  for (const auto& [id, pos_a] : position_a) {
    const auto it = position_b.find(id);
    const double pos_b = it != position_b.end()
                             ? it->second
                             : static_cast<double>(b.size());
    fused.emplace_back(pos_a + pos_b, id);
  }
  std::sort(fused.begin(), fused.end(), [](const auto& x, const auto& y) {
    if (x.first != y.first) return x.first < y.first;
    return x.second < y.second;
  });
  std::vector<EntityId> out;
  out.reserve(std::min(k, fused.size()));
  for (size_t i = 0; i < fused.size() && out.size() < k; ++i) {
    out.push_back(fused[i].second);
  }
  return out;
}

}  // namespace

std::vector<EntityId> InteractionExpander::ExpandRetThenGen(
    const Query& query, size_t k) {
  UW_SPAN("interaction.ret_then_gen");
  obs::GetCounter("interaction.queries").Increment();
  // Stage A: RetExpan recall over the full vocabulary.
  RetExpan recall(store_, candidates_, config_.retexpan);
  const std::vector<EntityId> subset = recall.InitialExpansion(
      query, static_cast<size_t>(config_.recall_size));
  // Stage B: GenExpan constrained to a query-local trie over the subset.
  PrefixTrie trie;
  {
    UW_SPAN("interaction.build_subset_trie");
    for (EntityId id : subset) {
      std::vector<TokenId> name;
      for (const std::string& word :
           world_->corpus.entity(id).name_tokens) {
        const TokenId token = world_->corpus.tokens().Lookup(word);
        if (token != kInvalidTokenId) name.push_back(token);
      }
      if (name.empty()) {
        UW_LOG_EVERY_N(Warning, 100)
            << "recalled entity " << id
            << " has no in-vocabulary name tokens; stage B cannot "
               "generate it";
        continue;
      }
      trie.Insert(name, id);
    }
  }
  GenExpan generator(world_, lm_, &trie, similarity_, oracle_,
                     config_.genexpan, "GenExpan(stage B)");
  const std::vector<EntityId> reranked = generator.Expand(query, k);
  return FuseRankings(reranked, subset, k);
}

std::vector<EntityId> InteractionExpander::ExpandGenThenRet(
    const Query& query, size_t k) {
  UW_SPAN("interaction.gen_then_ret");
  obs::GetCounter("interaction.queries").Increment();
  // Stage A: GenExpan recall over the full trie.
  PrefixTrie trie;
  {
    UW_SPAN("interaction.build_full_trie");
    for (EntityId id : *candidates_) {
      std::vector<TokenId> name;
      for (const std::string& word :
           world_->corpus.entity(id).name_tokens) {
        const TokenId token = world_->corpus.tokens().Lookup(word);
        if (token != kInvalidTokenId) name.push_back(token);
      }
      if (name.empty()) {
        UW_LOG_EVERY_N(Warning, 100)
            << "candidate entity " << id
            << " has no in-vocabulary name tokens; stage A cannot "
               "generate it";
        continue;
      }
      trie.Insert(name, id);
    }
  }
  GenExpanConfig recall_config = config_.genexpan;
  recall_config.use_negative_rerank = false;  // recall stage only
  GenExpan recall(world_, lm_, &trie, similarity_, oracle_, recall_config,
                  "GenExpan(stage A)");
  // Stage A's ordered list, minus hallucination sentinels and duplicates
  // (first occurrence wins, preserving the generative ranking).
  std::vector<EntityId> ordered;
  {
    std::set<EntityId> seen;
    for (EntityId id :
         recall.Expand(query, static_cast<size_t>(config_.recall_size))) {
      if (id == kHallucinatedEntityId) continue;
      if (seen.insert(id).second) ordered.push_back(id);
    }
  }
  if (ordered.empty()) return {};
  // Stage B: RetExpan over the subset, ensembled with stage A's order.
  std::vector<EntityId> subset = ordered;
  std::sort(subset.begin(), subset.end());
  RetExpan reranker(store_, &subset, config_.retexpan);
  const std::vector<EntityId> stage_b = reranker.Expand(query, k);
  return FuseRankings(stage_b, ordered, k);
}

std::vector<EntityId> InteractionExpander::Expand(const Query& query,
                                                  size_t k) {
  return order_ == InteractionOrder::kRetThenGen
             ? ExpandRetThenGen(query, k)
             : ExpandGenThenRet(query, k);
}

}  // namespace ultrawiki
