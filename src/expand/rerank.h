#ifndef ULTRAWIKI_EXPAND_RERANK_H_
#define ULTRAWIKI_EXPAND_RERANK_H_

#include <functional>
#include <vector>

#include "corpus/types.h"

namespace ultrawiki {

/// Segmented re-ranking (paper §5.1.1, "Entity Re-ranking"): splits the
/// initial list into ⌈|L0|/l⌉ consecutive segments and sorts each segment
/// by ascending negative-seed similarity, pushing entities that share the
/// negative attributes toward the segment's end while preventing noisy
/// entities with accidentally-low sco^neg from jumping to the global top.
/// Ties keep the original (positive-score) order, so re-ranking is a
/// refinement, not a reshuffle.
std::vector<EntityId> SegmentedRerank(
    const std::vector<EntityId>& initial,
    const std::function<double(EntityId)>& negative_score,
    int segment_length);

/// Positional variant for lists that may contain duplicate entries (e.g.
/// hallucination sentinels): `negative_scores[i]` scores `initial[i]`.
std::vector<EntityId> SegmentedRerankByPosition(
    const std::vector<EntityId>& initial,
    const std::vector<double>& negative_scores, int segment_length);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_EXPAND_RERANK_H_
