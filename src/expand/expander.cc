#include "expand/expander.h"

#include <algorithm>

namespace ultrawiki {

std::vector<EntityId> SortedSeedsOf(const Query& query) {
  std::vector<EntityId> seeds = query.pos_seeds;
  seeds.insert(seeds.end(), query.neg_seeds.begin(), query.neg_seeds.end());
  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
  return seeds;
}

}  // namespace ultrawiki
