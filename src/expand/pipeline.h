#ifndef ULTRAWIKI_EXPAND_PIPELINE_H_
#define ULTRAWIKI_EXPAND_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "ann/ivf_index.h"
#include "baselines/case.h"
#include "baselines/cgexpan.h"
#include "baselines/gpt4_baseline.h"
#include "baselines/probexpan.h"
#include "baselines/setexpan.h"
#include "common/status.h"
#include "dataset/dataset.h"
#include "embedding/contrastive.h"
#include "embedding/encoder.h"
#include "embedding/entity_store.h"
#include "embedding/trainer.h"
#include "expand/contrastive_miner.h"
#include "expand/genexpan.h"
#include "expand/interaction.h"
#include "expand/retexpan.h"
#include "expand/retrieval_augmentation.h"
#include "llm_oracle/oracle.h"
#include "lm/hybrid_lm.h"
#include "lm/prefix_trie.h"
#include "lm/similarity.h"

namespace ultrawiki {

/// End-to-end configuration: corpus generation, dataset construction,
/// encoder/LM training, oracle noise. `Bench()` is the default profile
/// every benchmark binary uses; `Tiny()` keeps test suites fast.
struct PipelineConfig {
  GeneratorConfig generator;
  DatasetConfig dataset;
  EncoderConfig encoder;
  /// Entity-prediction training of the main encoder (RetExpan et al.).
  EntityPredictionTrainConfig encoder_train;
  /// Short training for the "pretrained but not task-tuned" encoder the
  /// pre-LLM baselines (CaSE, CGExpan) rank with.
  EntityPredictionTrainConfig weak_encoder_train;
  HybridLmConfig lm;
  /// Fraction of the corpus the LM sees. 1.0 = further-pretrained on the
  /// full corpus; the "- Further pretrain" ablation uses a small fraction
  /// (LLaMA's residual world knowledge without corpus pretraining).
  double lm_pretrain_fraction = 1.0;
  OracleConfig oracle;
  EntityStoreConfig store;
  /// Top-k kept per sparse distribution row (ProbExpan representation).
  int distribution_top_k = 48;
  ContrastiveTrainConfig contrast;
  MinerConfig miner;
  /// IVF first stage over the main store (ann_index()). Off by default in
  /// expanders — MakeRetExpan only attaches it under UW_ANN_ENABLE — but
  /// the index itself can always be built (and is snapshot-cached keyed on
  /// the store provenance plus this config).
  IvfConfig ann;

  static PipelineConfig Bench();
  static PipelineConfig Tiny();
};

/// One shard of a deterministic candidate partition: global candidate
/// position p belongs to shard p % count. Position-based (not id-based)
/// so the partition is stable under any id numbering and every shard's
/// slice preserves the global tie-break order.
struct ShardSpec {
  int index = 0;
  int count = 1;

  bool valid() const { return count >= 1 && index >= 0 && index < count; }
};

/// The global candidate positions owned by `spec` (ascending).
std::vector<size_t> ShardCandidatePositions(size_t candidate_count,
                                            const ShardSpec& spec);

/// Owns the generated world, the constructed dataset, and every trained
/// substrate, and hands out expander instances wired to them. All lazily
/// built pieces are cached; everything is deterministic in the configured
/// seeds.
class Pipeline {
 public:
  static Pipeline Build(const PipelineConfig& config);

  Pipeline(Pipeline&&) = default;
  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  const PipelineConfig& config() const { return config_; }
  const GeneratedWorld& world() const { return world_; }
  const UltraWikiDataset& dataset() const { return dataset_; }
  const std::vector<EntityId>& candidates() const {
    return dataset_.candidates;
  }
  const LlmOracle& oracle() const { return *oracle_; }
  const ContextEncoder& encoder() const { return *encoder_; }
  const EntityStore& store() const { return *store_; }
  const EntityStore& weak_store();
  /// Even weaker pre-neural store (word2vec-era distributed
  /// representations) used by CaSE's distributed channel.
  const EntityStore& static_store();
  const HybridLm& lm() const { return *lm_; }
  const PrefixTrie& trie() const { return *trie_; }
  const LmEntitySimilarity& similarity() const { return *similarity_; }

  // --- Cached strategy substrates. ---

  /// Store from the contrastively tuned encoder (+Contrast), mined with
  /// the default miner/training configs.
  const EntityStore& contrast_store();

  /// Store from an encoder retrained with the given augmentation prefixes
  /// (+RA). Cached per source.
  const EntityStore& ra_store(RaSource source);

  /// Sparse distribution representations (ProbExpan).
  const std::vector<SparseVec>& distributions();

  /// IVF-Flat first stage over the main store (config().ann), built
  /// lazily and cached in the artifact cache keyed on the store's
  /// provenance + the ANN config. MakeRetExpan attaches it when
  /// UW_ANN_ENABLE is set; callers can also attach it explicitly via
  /// RetExpan::SetAnnIndex.
  const IvfIndex& ann_index();

  /// Shard-scoped EntityStore for the serving cluster: rows for the
  /// shard's candidate slice plus every seed entity referenced by any
  /// dataset query (seeds are replicated to every shard so each computes
  /// the exact same seed centroid the full store folds). Rows are copied
  /// bit-for-bit and refinalized with the Restore() kernels, so shard
  /// scores equal full-store scores exactly. Cached in the artifact cache
  /// under ShardStoreKey (a kEntityStore snapshot), skipped when the
  /// store's provenance is unknown.
  std::unique_ptr<EntityStore> BuildShardStore(const ShardSpec& spec);

  /// Cache key of a shard store (0 = not cacheable).
  uint64_t ShardStoreKey(const ShardSpec& spec) const;

  /// Provenance fingerprint of the main store (0 = unknown; derived
  /// artifacts are then not cached). The cluster's shard manifest records
  /// it so router and shards can cross-check they serve one generation.
  uint64_t store_key() const { return store_key_; }

  // --- Custom (uncached) builds for ablations and sweeps. ---

  /// Contrastively tunes a clone of the main encoder with explicit
  /// configs and returns its store (caller owns).
  std::unique_ptr<EntityStore> BuildContrastStore(
      const ContrastiveTrainConfig& train, const MinerConfig& miner);

  /// Trains a fresh encoder with explicit entity-prediction config (e.g.
  /// a different label smoothing η) and returns its store (caller owns).
  std::unique_ptr<EntityStore> BuildEncoderStore(
      const EntityPredictionTrainConfig& train);

  /// Trains a fresh LM variant (Fig. 8 scaling) and returns it.
  std::unique_ptr<HybridLm> BuildLmVariant(const HybridLmConfig& config,
                                           double pretrain_fraction) const;

  // --- Expander factories (returned objects reference this pipeline and
  // must not outlive it). ---
  std::unique_ptr<RetExpan> MakeRetExpan(RetExpanConfig config = {});
  std::unique_ptr<RetExpan> MakeRetExpanContrast(RetExpanConfig config = {});
  std::unique_ptr<RetExpan> MakeRetExpanRa(
      RaSource source = RaSource::kIntroduction, RetExpanConfig config = {});
  std::unique_ptr<GenExpan> MakeGenExpan(GenExpanConfig config = {});
  std::unique_ptr<ProbExpan> MakeProbExpan(ProbExpanConfig config = {});
  std::unique_ptr<SetExpan> MakeSetExpan(SetExpanConfig config = {});
  std::unique_ptr<CaSE> MakeCaSE(CaseConfig config = {});
  std::unique_ptr<CgExpan> MakeCgExpan(CgExpanConfig config = {});
  std::unique_ptr<Gpt4Baseline> MakeGpt4Baseline();
  std::unique_ptr<InteractionExpander> MakeInteraction(
      InteractionOrder order, InteractionConfig config = {});

 private:
  Pipeline(const PipelineConfig& config, GeneratedWorld world);

  void TrainLmOn(HybridLm& lm, double fraction) const;
  std::unordered_set<TokenId> StopTokens() const;

  PipelineConfig config_;
  GeneratedWorld world_;
  UltraWikiDataset dataset_;
  std::unique_ptr<LlmOracle> oracle_;
  std::unique_ptr<ContextEncoder> encoder_;
  std::unique_ptr<EntityStore> store_;
  std::unique_ptr<ContextEncoder> weak_encoder_;
  std::unique_ptr<EntityStore> weak_store_;
  std::unique_ptr<ContextEncoder> static_encoder_;
  std::unique_ptr<EntityStore> static_store_;
  std::unique_ptr<HybridLm> lm_;
  std::unique_ptr<PrefixTrie> trie_;
  std::unique_ptr<LmEntitySimilarity> similarity_;
  std::unique_ptr<EntityStore> contrast_store_;
  std::unique_ptr<EntityStore> ra_stores_[4];
  std::unique_ptr<std::vector<SparseVec>> distributions_;
  std::unique_ptr<IvfIndex> ann_index_;
  /// Cache key of the main store (0 = unknown provenance, derived
  /// artifacts like the ANN index are then not cached).
  uint64_t store_key_ = 0;
};

}  // namespace ultrawiki

#endif  // ULTRAWIKI_EXPAND_PIPELINE_H_
