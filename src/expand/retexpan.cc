#include "expand/retexpan.h"

#include <algorithm>

#include "common/logging.h"
#include "expand/rerank.h"
#include "math/topk.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ultrawiki {

RetExpan::RetExpan(const EntityStore* store,
                   const std::vector<EntityId>* candidates,
                   RetExpanConfig config, std::string name)
    : store_(store),
      candidates_(candidates),
      config_(config),
      name_(std::move(name)) {
  UW_CHECK_NE(store, nullptr);
  UW_CHECK_NE(candidates, nullptr);
}

double RetExpan::SeedSimilarity(const std::vector<EntityId>& seeds,
                                EntityId candidate) const {
  if (seeds.empty()) return 0.0;
  double sum = 0.0;
  for (EntityId seed : seeds) {
    sum += static_cast<double>(store_->Similarity(candidate, seed));
  }
  return sum / static_cast<double>(seeds.size());
}

void RetExpan::SetAnnIndex(const IvfIndex* ann) {
  ann_ = ann;
  position_of_.clear();
  absent_positions_.clear();
  if (ann == nullptr) return;
  EntityId max_id = -1;
  for (const EntityId id : *candidates_) max_id = std::max(max_id, id);
  position_of_.assign(static_cast<size_t>(max_id) + 1, -1);
  for (size_t i = 0; i < candidates_->size(); ++i) {
    const EntityId id = (*candidates_)[i];
    UW_CHECK_GE(id, 0);
    UW_CHECK_LT(position_of_[static_cast<size_t>(id)], 0)
        << "duplicate candidate id " << id
        << " breaks the ANN-vs-full-scan position tie-break";
    position_of_[static_cast<size_t>(id)] = static_cast<int64_t>(i);
    if (!store_->Has(id)) absent_positions_.push_back(i);
  }
}

std::vector<EntityId> RetExpan::InitialExpansion(const Query& query,
                                                 size_t size) const {
  const std::vector<EntityId> seeds = SortedSeedsOf(query);
  const bool use_ann =
      ann_ != nullptr && candidates_->size() >= config_.ann_min_candidates;
  if (ann_ != nullptr && !use_ann) {
    obs::GetCounter("ann.fallback_exact").Increment();
  }
  TopKStream stream(size);
  if (use_ann) {
    // ANN recall: probe the IVF lists nearest the seed centroid, then
    // rerank the retrieved superset with the *exact* centroid kernel —
    // the very DotBlocked expression the full scan uses — so every
    // surviving candidate carries its full-scan score, and the only
    // approximation is which candidates were retrieved at all.
    UW_SPAN("retexpan.initial_expansion_ann");
    const Vec centroid = store_->SeedCentroidOf(query.pos_seeds);
    const int nprobe =
        config_.ann_nprobe > 0 ? config_.ann_nprobe : ann_->config().nprobe;
    // Seeds get filtered out below, so ask the first stage for enough
    // candidates that the rerank depth never starves.
    const std::vector<EntityId> retrieved =
        ann_->Candidates(centroid, nprobe, size + seeds.size());
    std::vector<size_t> positions;
    std::vector<EntityId> kept;
    positions.reserve(retrieved.size());
    kept.reserve(retrieved.size());
    for (const EntityId id : retrieved) {
      if (static_cast<size_t>(id) >= position_of_.size()) continue;
      const int64_t pos = position_of_[static_cast<size_t>(id)];
      if (pos < 0) continue;  // in the store but not a candidate
      if (std::binary_search(seeds.begin(), seeds.end(), id)) continue;
      positions.push_back(static_cast<size_t>(pos));
      kept.push_back(id);
    }
    const std::vector<float> scores = store_->CentroidScores(centroid, kept);
    obs::GetCounter("retexpan.candidates_scored")
        .Increment(static_cast<int64_t>(kept.size()));
    for (size_t i = 0; i < positions.size(); ++i) {
      stream.Push(scores[i], positions[i]);
    }
    // Candidates absent from the store score exactly 0 in the full scan
    // (zero unit row); push that same 0 so a ranking whose tail reaches
    // them is unchanged.
    for (const size_t pos : absent_positions_) {
      const EntityId id = (*candidates_)[pos];
      if (std::binary_search(seeds.begin(), seeds.end(), id)) continue;
      stream.Push(0.0f, pos);
    }
  } else {
    // Batched recall: one centroid fold plus one blocked dot per candidate
    // (EntityStore::SeedCentroidScores) instead of |seeds| per-pair cosines
    // with recomputed norms, streamed into a bounded top-k heap instead of
    // materialize-then-partial-sort. Candidate positions keep the original
    // index tie-break.
    UW_SPAN("retexpan.initial_expansion");
    std::vector<size_t> positions;
    std::vector<EntityId> non_seed;
    positions.reserve(candidates_->size());
    non_seed.reserve(candidates_->size());
    for (size_t i = 0; i < candidates_->size(); ++i) {
      const EntityId id = (*candidates_)[i];
      if (std::binary_search(seeds.begin(), seeds.end(), id)) continue;
      positions.push_back(i);
      non_seed.push_back(id);
    }
    const std::vector<float> scores =
        store_->SeedCentroidScores(query.pos_seeds, non_seed);
    obs::GetCounter("retexpan.candidates_scored")
        .Increment(static_cast<int64_t>(non_seed.size()));
    for (size_t i = 0; i < positions.size(); ++i) {
      stream.Push(scores[i], positions[i]);
    }
  }
  const std::vector<ScoredIndex> scored = stream.TakeSortedDescending();
  std::vector<EntityId> initial;
  initial.reserve(scored.size());
  for (const ScoredIndex& s : scored) {
    initial.push_back((*candidates_)[s.index]);
  }
  return initial;
}

std::vector<EntityId> RetExpan::Expand(const Query& query, size_t k) {
  UW_SPAN("retexpan.expand");
  obs::GetCounter("retexpan.queries").Increment();
  const size_t initial_size = std::max<size_t>(
      k, static_cast<size_t>(config_.initial_list_size));
  std::vector<EntityId> list = InitialExpansion(query, initial_size);
  if (config_.use_negative_rerank && !query.neg_seeds.empty()) {
    UW_SPAN("retexpan.rerank");
    obs::GetCounter("retexpan.reranked_lists").Increment();
    // Contrastive re-ranking key: how much more the candidate resembles
    // the negative seeds than the positive seeds. The raw sco^neg is
    // dominated by the shared fine-grained class (every in-class entity
    // scores high), so the margin is what actually isolates entities
    // aligned with the negative attributes.
    // The key is clamped at zero: entities whose negative evidence does
    // not exceed their positive evidence keep their original order (the
    // segment sort is stable), so re-ranking is a pure demotion of
    // negative-aligned entities, never a reshuffle of the positives.
    // Both sides' seed similarities come from one batched centroid pass
    // over the list instead of per-entity per-seed cosines.
    const std::vector<float> neg =
        store_->SeedCentroidScores(query.neg_seeds, list);
    const std::vector<float> pos =
        store_->SeedCentroidScores(query.pos_seeds, list);
    std::vector<double> margins(list.size(), 0.0);
    for (size_t i = 0; i < list.size(); ++i) {
      margins[i] = std::max(
          0.0, static_cast<double>(neg[i]) - static_cast<double>(pos[i]));
    }
    list = SegmentedRerankByPosition(list, margins,
                                     config_.rerank_segment_length);
  }
  if (list.size() > k) list.resize(k);
  return list;
}

}  // namespace ultrawiki
