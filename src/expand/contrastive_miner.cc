#include "expand/contrastive_miner.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ultrawiki {

ContrastiveData MineContrastiveData(const GeneratedWorld& world,
                                    const UltraWikiDataset& dataset,
                                    const RetExpan& base_expander,
                                    const LlmOracle& oracle,
                                    const MinerConfig& config) {
  UW_SPAN("mine_contrastive_data");
  ContrastiveData data;
  Rng rng(config.seed);

  // Pool of entities grouped by fine class, for other-class sampling.
  std::vector<std::vector<EntityId>> by_class(world.schema.size());
  for (EntityId id : dataset.candidates) {
    const ClassId class_id = world.corpus.entity(id).class_id;
    if (class_id != kBackgroundClassId) {
      by_class[static_cast<size_t>(class_id)].push_back(id);
    }
  }

  auto name_tokens = [&world](EntityId id, std::vector<TokenId>* out) {
    for (const std::string& word : world.corpus.entity(id).name_tokens) {
      const TokenId token = world.corpus.tokens().Lookup(word);
      if (token != kInvalidTokenId) out->push_back(token);
    }
  };

  for (const Query& query : dataset.queries) {
    ContrastiveGroup group;
    const std::vector<EntityId> initial = base_expander.InitialExpansion(
        query, static_cast<size_t>(config.top_t));

    // Oracle classification of the top-T entities (Table-13 prompt),
    // once against the positive seeds and once against the negative ones.
    for (EntityId id : initial) {
      if (static_cast<int>(group.l_pos.size()) < config.l_size &&
          oracle.JudgeConsistent(query.pos_seeds, id)) {
        group.l_pos.push_back(id);
      }
      if (static_cast<int>(group.l_neg.size()) < config.l_size &&
          oracle.JudgeConsistent(query.neg_seeds, id)) {
        group.l_neg.push_back(id);
      }
    }
    // Merge the seeds themselves (they are trusted members).
    group.l_pos.insert(group.l_pos.end(), query.pos_seeds.begin(),
                       query.pos_seeds.end());
    group.l_neg.insert(group.l_neg.end(), query.neg_seeds.begin(),
                       query.neg_seeds.end());
    // An entity judged consistent with both sides would make the pair
    // construction contradictory; drop it from the positive side.
    std::vector<EntityId> sorted_neg = group.l_neg;
    std::sort(sorted_neg.begin(), sorted_neg.end());
    group.l_pos.erase(
        std::remove_if(group.l_pos.begin(), group.l_pos.end(),
                       [&sorted_neg](EntityId id) {
                         return std::binary_search(sorted_neg.begin(),
                                                   sorted_neg.end(), id);
                       }),
        group.l_pos.end());

    // Normal negatives from other fine-grained classes (the L0-bar term
    // of Eq. 6 that prevents fine-grained semantic collapse).
    const ClassId query_class = dataset.ClassOf(query).fine_class;
    for (int s = 0; s < config.other_class_samples; ++s) {
      ClassId other = static_cast<ClassId>(
          rng.UniformUint64(world.schema.size()));
      if (other == query_class) {
        other = static_cast<ClassId>((other + 1) % world.schema.size());
      }
      const std::vector<EntityId>& pool =
          by_class[static_cast<size_t>(other)];
      if (pool.empty()) continue;
      group.other_class.push_back(pool[rng.UniformUint64(pool.size())]);
    }

    // Seed conditioning: positive then negative seed names, appended to
    // every sample of this group during training.
    for (EntityId id : query.pos_seeds) name_tokens(id, &group.conditioning);
    for (EntityId id : query.neg_seeds) name_tokens(id, &group.conditioning);

    obs::GetCounter("miner.pos_pairs_mined")
        .Increment(static_cast<int64_t>(group.l_pos.size()));
    obs::GetCounter("miner.neg_pairs_mined")
        .Increment(static_cast<int64_t>(group.l_neg.size()));
    data.groups.push_back(std::move(group));
  }
  obs::GetCounter("miner.groups_mined")
      .Increment(static_cast<int64_t>(data.groups.size()));
  return data;
}

}  // namespace ultrawiki
