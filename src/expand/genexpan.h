#ifndef ULTRAWIKI_EXPAND_GENEXPAN_H_
#define ULTRAWIKI_EXPAND_GENEXPAN_H_

#include <string>
#include <utility>
#include <vector>

#include "expand/expander.h"
#include "expand/retrieval_augmentation.h"
#include "llm_oracle/oracle.h"
#include "lm/beam_search.h"
#include "lm/similarity.h"

namespace ultrawiki {

/// Chain-of-thought configurations of paper Table 9. "Gt" variants take
/// the manually-labelled class name / attributes; "Gen" variants take the
/// LM oracle's (LLaMA-grade) inference, which is reliable for class names,
/// decent for positive attributes and poor for negative attributes.
enum class CotMode {
  kNone,
  kGtClassName,
  kGenClassName,
  kGenClassNameGenPos,
  kGenClassNameGtPos,
  kGenClassNameGenPosGenNeg,
  kGenClassNameGtPosGtNeg,
};

const char* CotModeName(CotMode mode);

/// GenExpan hyper-parameters (paper §5.2 and appendix C).
struct GenExpanConfig {
  uint64_t seed = 21;
  /// Beam size = entities generated per round (paper: 40).
  int beam_width = 40;
  /// Fraction of newly generated entities admitted per round by positive
  /// similarity (paper top-p = 0.7).
  double top_p_fraction = 0.7;
  int max_rounds = 25;
  /// Generation stops after this many rounds without a new entity
  /// (paper: 20; smaller by default to bound bench latency).
  int stale_rounds_to_stop = 5;
  int rerank_segment_length = 20;
  bool use_negative_rerank = true;
  /// Ablation "- Prefix constrain": without the trie, beam search roams
  /// the open token space and most decoded strings are not candidate
  /// entities. We keep the trie walk for the valid fraction and emit
  /// hallucinated entries for the invalid fraction — the measured effect
  /// (wasted rank slots, collapsed precision) matches Table 3; see
  /// DESIGN.md on this substitution.
  bool use_prefix_constraint = true;
  double unconstrained_invalid_rate = 0.45;
  CotMode cot = CotMode::kNone;
  /// +RA (paper §5.2.3): prepend the prompt entities' external knowledge
  /// at generation time only. `ra_source` picks the Table-8 variant.
  bool retrieval_augmentation = false;
  RaSource ra_source = RaSource::kIntroduction;
  /// Standing per-query anytime budgets, combined (min) with any
  /// per-request ExpandBudget. Resolved from UW_GENEXPAN_TIME_BUDGET_MS /
  /// UW_GENEXPAN_MAX_EXPANSIONS by Pipeline::MakeGenExpan. <= 0 = none.
  int64_t time_budget_ms = 0;
  int64_t max_expansions = 0;
};

/// The per-query RNG-stream fingerprint (seed sampling, ablation coin
/// flips). Pos and neg seed lists are length-tagged so queries differing
/// only in how seeds split across the two sides never share a stream.
/// Exposed for the collision regression test.
uint64_t GenExpanQueryFingerprint(const Query& query);

/// The generation-based framework (paper §5.2): iterative entity
/// generation with prefix-constrained beam search → entity selection by
/// LM similarity (Eq. 7) → segmented re-ranking against the negative
/// seeds. Chain-of-thought prepends inferred class/attribute text to the
/// generation prompt and (for negative attributes) sharpens the
/// re-ranking signal.
class GenExpan : public Expander {
 public:
  GenExpan(const GeneratedWorld* world, const HybridLm* lm,
           const PrefixTrie* trie, const LmEntitySimilarity* similarity,
           const LlmOracle* oracle, GenExpanConfig config = {},
           std::string name = "GenExpan");

  std::vector<EntityId> Expand(const Query& query, size_t k) override;

  /// Anytime expansion: threads the combined deadline/expansion budget
  /// into every beam-search round and stops the rounds loop once a budget
  /// trips, returning the (still fully ranked + reranked) best-so-far
  /// with `degraded` set. Bit-identical to `Expand` when nothing trips.
  ExpandOutcome ExpandWithBudget(const Query& query, size_t k,
                                 const ExpandBudget& budget) override;

  std::string name() const override { return name_; }

  const GenExpanConfig& config() const { return config_; }

 private:
  std::vector<TokenId> NameTokensOf(EntityId id) const;

  /// The Prompt_g analogue: `cot_prefix` (computed once per query — the
  /// oracle is deterministic) + optional RA intros + "e1 , e2 , e3 and".
  std::vector<TokenId> BuildPrompt(const std::vector<TokenId>& cot_prefix,
                                   const std::vector<EntityId>& prompt_seeds)
      const;

  /// Class-name + positive-attribute prefix tokens for the CoT mode.
  std::vector<TokenId> CotPrefix(const Query& query) const;

  /// Negative-attribute clue tokens used to sharpen re-ranking (empty
  /// unless the CoT mode carries negative attributes).
  std::vector<TokenId> CotNegativeClues(const Query& query) const;

  /// Association-channel match between an entity name and clue tokens.
  double ClueMatchScore(EntityId id,
                        const std::vector<TokenId>& clues) const;

  const GeneratedWorld* world_;
  const HybridLm* lm_;
  const PrefixTrie* trie_;
  const LmEntitySimilarity* similarity_;
  const LlmOracle* oracle_;
  GenExpanConfig config_;
  std::string name_;
  TokenId comma_ = kInvalidTokenId;
  TokenId and_token_ = kInvalidTokenId;
  TokenId with_token_ = kInvalidTokenId;
};

}  // namespace ultrawiki

#endif  // ULTRAWIKI_EXPAND_GENEXPAN_H_
