#ifndef ULTRAWIKI_MATH_SOFTMAX_H_
#define ULTRAWIKI_MATH_SOFTMAX_H_

#include <span>
#include <vector>

namespace ultrawiki {

/// Numerically stable log(sum(exp(x))).
double LogSumExp(std::span<const float> logits);

/// In-place softmax over `logits` (stable).
void SoftmaxInPlace(std::span<float> logits);

/// Returns softmax(logits) without modifying the input.
std::vector<float> Softmax(std::span<const float> logits);

/// In-place log-softmax (stable).
void LogSoftmaxInPlace(std::span<float> logits);

/// Numerically stable sigmoid.
float Sigmoid(float x);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_MATH_SOFTMAX_H_
