#ifndef ULTRAWIKI_MATH_OPTIMIZER_H_
#define ULTRAWIKI_MATH_OPTIMIZER_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ultrawiki {

/// Configuration for the Adam optimizer.
struct AdamConfig {
  float learning_rate = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  /// Decoupled L2 weight decay (AdamW-style); 0 disables it.
  float weight_decay = 0.0f;
};

/// Adam optimizer over a flat parameter buffer. Supports sparse updates
/// (only the touched slice pays moment-state maintenance), which matters for
/// embedding tables where each step touches a handful of rows.
class AdamOptimizer {
 public:
  AdamOptimizer(size_t parameter_count, AdamConfig config = {});

  /// Applies one Adam update for `grad` against the parameter slice
  /// `params` which starts at global `offset` in the parameter buffer.
  /// `params.size() == grad.size()` is required.
  void ApplySparse(size_t offset, std::span<float> params,
                   std::span<const float> grad);

  /// Advances the global timestep; call once per optimization step (after
  /// all ApplySparse calls for that step).
  void Step();

  size_t parameter_count() const { return m_.size(); }
  int64_t timestep() const { return timestep_; }
  const AdamConfig& config() const { return config_; }
  void set_learning_rate(float lr) { config_.learning_rate = lr; }

 private:
  AdamConfig config_;
  int64_t timestep_ = 1;
  std::vector<float> m_;
  std::vector<float> v_;
};

/// Plain SGD with optional gradient clipping; used where Adam's moment
/// state would dominate memory (e.g. throwaway probes in tests).
class SgdOptimizer {
 public:
  explicit SgdOptimizer(float learning_rate, float clip_norm = 0.0f)
      : learning_rate_(learning_rate), clip_norm_(clip_norm) {}

  /// params -= lr * grad (with optional per-call gradient norm clipping).
  void Apply(std::span<float> params, std::span<const float> grad) const;

  float learning_rate() const { return learning_rate_; }
  void set_learning_rate(float lr) { learning_rate_ = lr; }

 private:
  float learning_rate_;
  float clip_norm_;
};

}  // namespace ultrawiki

#endif  // ULTRAWIKI_MATH_OPTIMIZER_H_
