#include "math/matrix.h"

namespace ultrawiki {

void Matrix::InitUniform(Rng& rng, float scale) {
  for (float& v : data_) v = rng.UniformFloat(-scale, scale);
}

void Matrix::InitGaussian(Rng& rng, float stddev) {
  for (float& v : data_) {
    v = static_cast<float>(rng.Gaussian()) * stddev;
  }
}

void Matrix::MatVec(std::span<const float> x, std::span<float> y) const {
  UW_CHECK_EQ(x.size(), cols_);
  UW_CHECK_EQ(y.size(), rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const float* row = data_.data() + r * cols_;
    float sum = 0.0f;
    for (size_t c = 0; c < cols_; ++c) sum += row[c] * x[c];
    y[r] = sum;
  }
}

void Matrix::MatTVec(std::span<const float> x, std::span<float> y) const {
  UW_CHECK_EQ(x.size(), rows_);
  UW_CHECK_EQ(y.size(), cols_);
  for (size_t c = 0; c < cols_; ++c) y[c] = 0.0f;
  for (size_t r = 0; r < rows_; ++r) {
    const float* row = data_.data() + r * cols_;
    const float xr = x[r];
    if (xr == 0.0f) continue;
    for (size_t c = 0; c < cols_; ++c) y[c] += xr * row[c];
  }
}

}  // namespace ultrawiki
