#ifndef ULTRAWIKI_MATH_TOPK_H_
#define ULTRAWIKI_MATH_TOPK_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace ultrawiki {

/// A (score, index) result of a top-k selection.
struct ScoredIndex {
  float score = 0.0f;
  size_t index = 0;

  friend bool operator==(const ScoredIndex& a, const ScoredIndex& b) {
    return a.score == b.score && a.index == b.index;
  }
};

/// Returns the `k` highest-scoring indices over `scores`, sorted by
/// descending score (ties broken by ascending index for determinism).
std::vector<ScoredIndex> TopK(const std::vector<float>& scores, size_t k);

/// Like TopK but over explicit (score, index) pairs, e.g. after masking.
std::vector<ScoredIndex> TopKOfPairs(std::vector<ScoredIndex> pairs,
                                     size_t k);

/// Sorts pairs by descending score with ascending-index tie-break.
void SortByScoreDescending(std::vector<ScoredIndex>& pairs);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_MATH_TOPK_H_
