#ifndef ULTRAWIKI_MATH_TOPK_H_
#define ULTRAWIKI_MATH_TOPK_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace ultrawiki {

/// A (score, index) result of a top-k selection.
struct ScoredIndex {
  float score = 0.0f;
  size_t index = 0;

  friend bool operator==(const ScoredIndex& a, const ScoredIndex& b) {
    return a.score == b.score && a.index == b.index;
  }
};

/// Total-order "ranks strictly better" comparator: higher score first,
/// NaN after every finite score (and after ±inf), ascending index as the
/// final tie-break. Unlike a raw `a.score > b.score`, this is a strict
/// weak ordering even when scores contain NaN (possible upstream from
/// zero-norm divisions), so std::sort / std::partial_sort stay
/// well-defined and rankings stay deterministic.
bool RanksBefore(const ScoredIndex& a, const ScoredIndex& b);

/// Returns the `k` highest-scoring indices over `scores`, sorted by
/// `RanksBefore` (descending score; NaN sorts last; ties broken by
/// ascending index for determinism). Selects via a bounded streaming heap,
/// never a materialize-then-sort of the full score vector.
std::vector<ScoredIndex> TopK(const std::vector<float>& scores, size_t k);

/// Like TopK but over explicit (score, index) pairs, e.g. after masking.
std::vector<ScoredIndex> TopKOfPairs(std::vector<ScoredIndex> pairs,
                                     size_t k);

/// Sorts pairs with `RanksBefore` (descending score, NaN last,
/// ascending-index tie-break).
void SortByScoreDescending(std::vector<ScoredIndex>& pairs);

/// Streaming top-k selection: a bounded min-heap (worst element on top,
/// per RanksBefore) fed one score at a time, so producers that generate
/// scores on the fly — BM25 over a posting-list scan, RetExpan over a
/// candidate sweep — keep O(k) state instead of materializing and sorting
/// a full score vector. Deterministic: the kept set and the final order
/// depend only on the pushed (score, index) multiset, not on push order.
class TopKStream {
 public:
  explicit TopKStream(size_t k);

  /// Offers one scored index; kept only while it is among the best `k`
  /// seen so far. A NaN score ranks below every real score.
  void Push(float score, size_t index);
  void Push(const ScoredIndex& pair) { Push(pair.score, pair.index); }

  size_t size() const { return heap_.size(); }
  size_t k() const { return k_; }

  /// True once `k` elements are retained — from then on `Worst()` is the
  /// admission threshold: a later push enters only if it ranks before it.
  bool AtCapacity() const { return k_ > 0 && heap_.size() == k_; }

  /// The worst-ranked retained element (heap front). Only meaningful when
  /// AtCapacity(); producers use it as a dynamic pruning bound — any
  /// candidate provably not ranking before it can be skipped without
  /// changing the final result.
  const ScoredIndex& Worst() const { return heap_.front(); }

  /// Returns the retained elements ordered by RanksBefore (best first)
  /// and resets the stream for reuse.
  std::vector<ScoredIndex> TakeSortedDescending();

 private:
  size_t k_;
  std::vector<ScoredIndex> heap_;  // min-heap: heap_.front() is the worst
};

}  // namespace ultrawiki

#endif  // ULTRAWIKI_MATH_TOPK_H_
