#include "math/vec.h"

#include <cmath>

#include "common/logging.h"

namespace ultrawiki {

float Dot(std::span<const float> a, std::span<const float> b) {
  UW_CHECK_EQ(a.size(), b.size());
  float sum = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

void Axpy(float alpha, std::span<const float> x, std::span<float> y) {
  UW_CHECK_EQ(x.size(), y.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void Scale(float alpha, std::span<float> x) {
  for (float& v : x) v *= alpha;
}

float Norm(std::span<const float> x) {
  float sum = 0.0f;
  for (float v : x) sum += v * v;
  return std::sqrt(sum);
}

void NormalizeInPlace(std::span<float> x) {
  const float norm = Norm(x);
  if (norm <= 0.0f) return;
  Scale(1.0f / norm, x);
}

float CosineSimilarity(std::span<const float> a, std::span<const float> b) {
  const float na = Norm(a);
  const float nb = Norm(b);
  if (na <= 0.0f || nb <= 0.0f) return 0.0f;
  return Dot(a, b) / (na * nb);
}

void AccumulateInPlace(std::span<float> acc, std::span<const float> x) {
  UW_CHECK_EQ(acc.size(), x.size());
  for (size_t i = 0; i < acc.size(); ++i) acc[i] += x[i];
}

Vec MeanOfVectors(const std::vector<Vec>& vectors, size_t dim) {
  Vec mean(dim, 0.0f);
  if (vectors.empty()) return mean;
  for (const Vec& v : vectors) {
    AccumulateInPlace(mean, v);
  }
  Scale(1.0f / static_cast<float>(vectors.size()), mean);
  return mean;
}

void ZeroInPlace(std::span<float> x) {
  for (float& v : x) v = 0.0f;
}

}  // namespace ultrawiki
