#include "math/vec.h"

#include <cmath>

#include "common/logging.h"
#include "math/simd_kernels.h"

namespace ultrawiki {

float Dot(std::span<const float> a, std::span<const float> b) {
  // Same deterministic blocked double accumulation as the batch kernels:
  // a single running float sum loses low-order bits at large dims, where
  // near-tied candidates would flip order whenever a code change (or a
  // vectorizer) reassociated the summation.
  return static_cast<float>(DotBlocked(a, b));
}

void Axpy(float alpha, std::span<const float> x, std::span<float> y) {
  UW_CHECK_EQ(x.size(), y.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void Scale(float alpha, std::span<float> x) {
  for (float& v : x) v *= alpha;
}

float Norm(std::span<const float> x) {
  return static_cast<float>(NormBlocked(x));
}

void NormalizeInPlace(std::span<float> x) {
  const float norm = Norm(x);
  if (norm <= 0.0f) return;
  Scale(1.0f / norm, x);
}

float CosineSimilarity(std::span<const float> a, std::span<const float> b) {
  const double na = NormBlocked(a);
  const double nb = NormBlocked(b);
  if (na <= 0.0 || nb <= 0.0) return 0.0f;
  return static_cast<float>(DotBlocked(a, b) / (na * nb));
}

void AccumulateInPlace(std::span<float> acc, std::span<const float> x) {
  UW_CHECK_EQ(acc.size(), x.size());
  for (size_t i = 0; i < acc.size(); ++i) acc[i] += x[i];
}

Vec MeanOfVectors(const std::vector<Vec>& vectors, size_t dim) {
  Vec mean(dim, 0.0f);
  if (vectors.empty()) return mean;
  for (const Vec& v : vectors) {
    AccumulateInPlace(mean, v);
  }
  Scale(1.0f / static_cast<float>(vectors.size()), mean);
  return mean;
}

void ZeroInPlace(std::span<float> x) {
  for (float& v : x) v = 0.0f;
}

}  // namespace ultrawiki
