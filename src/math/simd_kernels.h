#ifndef ULTRAWIKI_MATH_SIMD_KERNELS_H_
#define ULTRAWIKI_MATH_SIMD_KERNELS_H_

#include <cstddef>
#include <span>
#include <vector>

namespace ultrawiki {

/// Blocked, compiler-vectorizable reduction kernels with a *fixed*
/// reduction order.
///
/// Every kernel accumulates into `kDotLanes` independent double-precision
/// lane accumulators (element i goes to lane i % kDotLanes) and reduces
/// the lanes with a fixed pairwise tree. Because the abstract-machine
/// operation order is fully determined by the input length — never by the
/// SIMD width the compiler picks, the thread count, or the machine — the
/// result is bit-identical everywhere, while the independent lanes leave
/// the compiler free to vectorize the inner loop without reassociating
/// floating-point math.
inline constexpr size_t kDotLanes = 8;

/// Dot product of `a` and `b` with deterministic blocked double
/// accumulation. Spans must have equal length.
double DotBlocked(std::span<const float> a, std::span<const float> b);

/// Sum of squares of `x` (same blocked accumulation as DotBlocked, single
/// pass).
double SquaredNormBlocked(std::span<const float> x);

/// L2 norm of `x` via SquaredNormBlocked.
double NormBlocked(std::span<const float> x);

/// Scores every row of the row-major `matrix` (`out.size()` rows of
/// `dim` floats each; `matrix.size() == out.size() * dim`) against
/// `query`, writing `out[r] = float(DotBlocked(row r, query))`. Rows are
/// processed in index order; each output is a pure function of its row
/// and the query, so the batch is deterministic at any thread count.
void DotBatch(std::span<const float> matrix, size_t dim,
              std::span<const float> query, std::span<float> out);

/// Convenience wrapper over DotBatch that allocates the output.
std::vector<float> ScoreMany(std::span<const float> matrix, size_t dim,
                             std::span<const float> query);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_MATH_SIMD_KERNELS_H_
