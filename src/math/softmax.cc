#include "math/softmax.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ultrawiki {

double LogSumExp(std::span<const float> logits) {
  UW_CHECK(!logits.empty());
  const float max_logit = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (float v : logits) sum += std::exp(static_cast<double>(v - max_logit));
  return static_cast<double>(max_logit) + std::log(sum);
}

void SoftmaxInPlace(std::span<float> logits) {
  if (logits.empty()) return;
  const float max_logit = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (float& v : logits) {
    v = std::exp(v - max_logit);
    sum += v;
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (float& v : logits) v *= inv;
}

std::vector<float> Softmax(std::span<const float> logits) {
  std::vector<float> out(logits.begin(), logits.end());
  SoftmaxInPlace(out);
  return out;
}

void LogSoftmaxInPlace(std::span<float> logits) {
  if (logits.empty()) return;
  const double lse = LogSumExp(logits);
  for (float& v : logits) v = static_cast<float>(v - lse);
}

float Sigmoid(float x) {
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

}  // namespace ultrawiki
