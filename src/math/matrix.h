#ifndef ULTRAWIKI_MATH_MATRIX_H_
#define ULTRAWIKI_MATH_MATRIX_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace ultrawiki {

/// Row-major dense float matrix. Rows are the natural unit (one embedding
/// per row), so row access returns a span over contiguous storage.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}

  /// Allocates a rows × cols matrix initialized to zero.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  std::span<float> Row(size_t r) {
    UW_CHECK_LT(r, rows_);
    return std::span<float>(data_.data() + r * cols_, cols_);
  }
  std::span<const float> Row(size_t r) const {
    UW_CHECK_LT(r, rows_);
    return std::span<const float>(data_.data() + r * cols_, cols_);
  }

  float& At(size_t r, size_t c) {
    UW_CHECK_LT(r, rows_);
    UW_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  float At(size_t r, size_t c) const {
    UW_CHECK_LT(r, rows_);
    UW_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  std::span<float> Flat() { return std::span<float>(data_); }
  std::span<const float> Flat() const {
    return std::span<const float>(data_);
  }

  /// Fills entries with U(-scale, scale); the standard embedding init.
  void InitUniform(Rng& rng, float scale);

  /// Fills entries with N(0, stddev^2).
  void InitGaussian(Rng& rng, float stddev);

  /// y = M x   (y has rows() entries, x has cols() entries).
  void MatVec(std::span<const float> x, std::span<float> y) const;

  /// y = M^T x  (y has cols() entries, x has rows() entries).
  void MatTVec(std::span<const float> x, std::span<float> y) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

}  // namespace ultrawiki

#endif  // ULTRAWIKI_MATH_MATRIX_H_
