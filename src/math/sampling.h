#ifndef ULTRAWIKI_MATH_SAMPLING_H_
#define ULTRAWIKI_MATH_SAMPLING_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace ultrawiki {

/// Walker alias table for O(1) sampling from a fixed discrete distribution.
/// Used for unigram-frequency negative sampling in the embedding trainer.
class AliasTable {
 public:
  /// Builds the table from non-negative `weights` (sum must be positive).
  explicit AliasTable(const std::vector<double>& weights);

  /// Draws an index with probability proportional to its weight.
  size_t Sample(Rng& rng) const;

  size_t size() const { return probabilities_.size(); }

  /// Probability mass assigned to index `i` (for testing).
  double ProbabilityOf(size_t i) const;

 private:
  std::vector<double> probabilities_;  // Acceptance probability per slot.
  std::vector<size_t> aliases_;        // Fallback index per slot.
  std::vector<double> normalized_;     // Original normalized weights.
};

/// Reservoir sampling: selects `k` items uniformly from a stream presented
/// as a vector, without materializing permutations.
template <typename T>
std::vector<T> ReservoirSample(const std::vector<T>& stream, size_t k,
                               Rng& rng) {
  std::vector<T> reservoir;
  reservoir.reserve(k);
  for (size_t i = 0; i < stream.size(); ++i) {
    if (reservoir.size() < k) {
      reservoir.push_back(stream[i]);
    } else {
      const size_t j = rng.UniformUint64(i + 1);
      if (j < k) reservoir[j] = stream[i];
    }
  }
  return reservoir;
}

}  // namespace ultrawiki

#endif  // ULTRAWIKI_MATH_SAMPLING_H_
