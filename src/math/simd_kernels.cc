#include "math/simd_kernels.h"

#include <cmath>

#include "common/logging.h"

namespace ultrawiki {
namespace {

/// Fixed pairwise tree over the lane accumulators. Written out explicitly
/// so the reduction order is part of the function's contract, not an
/// artifact of loop unrolling.
inline double ReduceLanes(const double lanes[kDotLanes]) {
  static_assert(kDotLanes == 8, "ReduceLanes is written for 8 lanes");
  const double s01 = lanes[0] + lanes[1];
  const double s23 = lanes[2] + lanes[3];
  const double s45 = lanes[4] + lanes[5];
  const double s67 = lanes[6] + lanes[7];
  return (s01 + s23) + (s45 + s67);
}

}  // namespace

double DotBlocked(std::span<const float> a, std::span<const float> b) {
  UW_CHECK_EQ(a.size(), b.size());
  double lanes[kDotLanes] = {};
  const size_t n = a.size();
  const size_t full = n - n % kDotLanes;
  // Independent lane accumulators: the compiler may run the lanes in one
  // vector register because no lane depends on another.
  for (size_t i = 0; i < full; i += kDotLanes) {
    for (size_t l = 0; l < kDotLanes; ++l) {
      lanes[l] += static_cast<double>(a[i + l]) * static_cast<double>(b[i + l]);
    }
  }
  for (size_t i = full; i < n; ++i) {
    lanes[i - full] +=
        static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return ReduceLanes(lanes);
}

double SquaredNormBlocked(std::span<const float> x) {
  double lanes[kDotLanes] = {};
  const size_t n = x.size();
  const size_t full = n - n % kDotLanes;
  for (size_t i = 0; i < full; i += kDotLanes) {
    for (size_t l = 0; l < kDotLanes; ++l) {
      const double v = static_cast<double>(x[i + l]);
      lanes[l] += v * v;
    }
  }
  for (size_t i = full; i < n; ++i) {
    const double v = static_cast<double>(x[i]);
    lanes[i - full] += v * v;
  }
  return ReduceLanes(lanes);
}

double NormBlocked(std::span<const float> x) {
  return std::sqrt(SquaredNormBlocked(x));
}

void DotBatch(std::span<const float> matrix, size_t dim,
              std::span<const float> query, std::span<float> out) {
  UW_CHECK_EQ(query.size(), dim);
  UW_CHECK_EQ(matrix.size(), out.size() * dim);
  for (size_t r = 0; r < out.size(); ++r) {
    out[r] = static_cast<float>(
        DotBlocked(matrix.subspan(r * dim, dim), query));
  }
}

std::vector<float> ScoreMany(std::span<const float> matrix, size_t dim,
                             std::span<const float> query) {
  UW_CHECK_GT(dim, 0u);
  std::vector<float> out(matrix.size() / dim, 0.0f);
  DotBatch(matrix, dim, query, out);
  return out;
}

}  // namespace ultrawiki
