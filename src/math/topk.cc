#include "math/topk.h"

namespace ultrawiki {
namespace {

bool ScoreGreater(const ScoredIndex& a, const ScoredIndex& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.index < b.index;
}

}  // namespace

void SortByScoreDescending(std::vector<ScoredIndex>& pairs) {
  std::sort(pairs.begin(), pairs.end(), ScoreGreater);
}

std::vector<ScoredIndex> TopKOfPairs(std::vector<ScoredIndex> pairs,
                                     size_t k) {
  if (k < pairs.size()) {
    std::partial_sort(pairs.begin(), pairs.begin() + k, pairs.end(),
                      ScoreGreater);
    pairs.resize(k);
  } else {
    SortByScoreDescending(pairs);
  }
  return pairs;
}

std::vector<ScoredIndex> TopK(const std::vector<float>& scores, size_t k) {
  std::vector<ScoredIndex> pairs;
  pairs.reserve(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    pairs.push_back(ScoredIndex{scores[i], i});
  }
  return TopKOfPairs(std::move(pairs), k);
}

}  // namespace ultrawiki
