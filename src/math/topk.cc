#include "math/topk.h"

#include <cmath>

#include "common/logging.h"

namespace ultrawiki {

bool RanksBefore(const ScoredIndex& a, const ScoredIndex& b) {
  const bool a_nan = std::isnan(a.score);
  const bool b_nan = std::isnan(b.score);
  if (a_nan != b_nan) return b_nan;  // any real score beats NaN
  if (!a_nan && a.score != b.score) return a.score > b.score;
  return a.index < b.index;
}

void SortByScoreDescending(std::vector<ScoredIndex>& pairs) {
  std::sort(pairs.begin(), pairs.end(), RanksBefore);
}

std::vector<ScoredIndex> TopKOfPairs(std::vector<ScoredIndex> pairs,
                                     size_t k) {
  if (k < pairs.size()) {
    std::partial_sort(pairs.begin(), pairs.begin() + k, pairs.end(),
                      RanksBefore);
    pairs.resize(k);
  } else {
    SortByScoreDescending(pairs);
  }
  UW_DCHECK(std::is_sorted(pairs.begin(), pairs.end(), RanksBefore))
      << "top-k result violates the RanksBefore total order";
  return pairs;
}

std::vector<ScoredIndex> TopK(const std::vector<float>& scores, size_t k) {
  TopKStream stream(k);
  for (size_t i = 0; i < scores.size(); ++i) stream.Push(scores[i], i);
  return stream.TakeSortedDescending();
}

TopKStream::TopKStream(size_t k) : k_(k) {
  heap_.reserve(std::min<size_t>(k, 4096));
}

void TopKStream::Push(float score, size_t index) {
  if (k_ == 0) return;
  const ScoredIndex next{score, index};
  if (heap_.size() < k_) {
    heap_.push_back(next);
    // With RanksBefore in the "less" role, the heap's maximum under that
    // order — the *worst-ranked* retained element — sits at the front.
    std::push_heap(heap_.begin(), heap_.end(), RanksBefore);
    return;
  }
  if (!RanksBefore(next, heap_.front())) return;  // not better than worst
  std::pop_heap(heap_.begin(), heap_.end(), RanksBefore);
  heap_.back() = next;
  std::push_heap(heap_.begin(), heap_.end(), RanksBefore);
}

std::vector<ScoredIndex> TopKStream::TakeSortedDescending() {
  std::sort(heap_.begin(), heap_.end(), RanksBefore);
  UW_DCHECK(std::is_sorted(heap_.begin(), heap_.end(), RanksBefore))
      << "streamed top-k result violates the RanksBefore total order";
  std::vector<ScoredIndex> result = std::move(heap_);
  heap_.clear();
  return result;
}

}  // namespace ultrawiki
