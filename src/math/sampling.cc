#include "math/sampling.h"

#include <deque>

#include "common/logging.h"

namespace ultrawiki {

AliasTable::AliasTable(const std::vector<double>& weights) {
  UW_CHECK(!weights.empty());
  const size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    UW_CHECK_GE(w, 0.0);
    total += w;
  }
  UW_CHECK_GT(total, 0.0);

  normalized_.resize(n);
  for (size_t i = 0; i < n; ++i) normalized_[i] = weights[i] / total;

  probabilities_.assign(n, 0.0);
  aliases_.assign(n, 0);

  // Scaled probabilities; partition into under- and over-full buckets.
  std::vector<double> scaled(n);
  std::deque<size_t> small;
  std::deque<size_t> large;
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = normalized_[i] * static_cast<double>(n);
    if (scaled[i] < 1.0) {
      small.push_back(i);
    } else {
      large.push_back(i);
    }
  }
  while (!small.empty() && !large.empty()) {
    const size_t s = small.front();
    small.pop_front();
    const size_t l = large.front();
    large.pop_front();
    probabilities_[s] = scaled[s];
    aliases_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      small.push_back(l);
    } else {
      large.push_back(l);
    }
  }
  while (!large.empty()) {
    probabilities_[large.front()] = 1.0;
    large.pop_front();
  }
  while (!small.empty()) {
    probabilities_[small.front()] = 1.0;
    small.pop_front();
  }
}

size_t AliasTable::Sample(Rng& rng) const {
  const size_t slot = rng.UniformUint64(probabilities_.size());
  if (rng.UniformDouble() < probabilities_[slot]) return slot;
  return aliases_[slot];
}

double AliasTable::ProbabilityOf(size_t i) const {
  UW_CHECK_LT(i, normalized_.size());
  return normalized_[i];
}

}  // namespace ultrawiki
