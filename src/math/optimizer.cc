#include "math/optimizer.h"

#include <cmath>

#include "common/logging.h"

namespace ultrawiki {

AdamOptimizer::AdamOptimizer(size_t parameter_count, AdamConfig config)
    : config_(config), m_(parameter_count, 0.0f), v_(parameter_count, 0.0f) {}

void AdamOptimizer::ApplySparse(size_t offset, std::span<float> params,
                                std::span<const float> grad) {
  UW_CHECK_EQ(params.size(), grad.size());
  UW_CHECK_LE(offset + params.size(), m_.size());
  const float lr = config_.learning_rate;
  const float b1 = config_.beta1;
  const float b2 = config_.beta2;
  const float eps = config_.epsilon;
  // Bias correction at the current timestep.
  const float bc1 =
      1.0f - std::pow(b1, static_cast<float>(timestep_));
  const float bc2 =
      1.0f - std::pow(b2, static_cast<float>(timestep_));
  for (size_t i = 0; i < params.size(); ++i) {
    const size_t j = offset + i;
    const float g = grad[i];
    m_[j] = b1 * m_[j] + (1.0f - b1) * g;
    v_[j] = b2 * v_[j] + (1.0f - b2) * g * g;
    const float m_hat = m_[j] / bc1;
    const float v_hat = v_[j] / bc2;
    float update = lr * m_hat / (std::sqrt(v_hat) + eps);
    if (config_.weight_decay > 0.0f) {
      update += lr * config_.weight_decay * params[i];
    }
    params[i] -= update;
  }
}

void AdamOptimizer::Step() { ++timestep_; }

void SgdOptimizer::Apply(std::span<float> params,
                         std::span<const float> grad) const {
  UW_CHECK_EQ(params.size(), grad.size());
  float scale = 1.0f;
  if (clip_norm_ > 0.0f) {
    float norm_sq = 0.0f;
    for (float g : grad) norm_sq += g * g;
    const float norm = std::sqrt(norm_sq);
    if (norm > clip_norm_) scale = clip_norm_ / norm;
  }
  for (size_t i = 0; i < params.size(); ++i) {
    params[i] -= learning_rate_ * scale * grad[i];
  }
}

}  // namespace ultrawiki
