#ifndef ULTRAWIKI_MATH_VEC_H_
#define ULTRAWIKI_MATH_VEC_H_

#include <cstddef>
#include <span>
#include <vector>

namespace ultrawiki {

/// Dense float vector used for entity/context representations.
using Vec = std::vector<float>;

/// Dot product; spans must have equal length. Accumulates with the
/// deterministic blocked double-precision kernel (simd_kernels.h), so the
/// result is bit-identical across machines, SIMD widths, and UW_THREADS.
float Dot(std::span<const float> a, std::span<const float> b);

/// y += alpha * x
void Axpy(float alpha, std::span<const float> x, std::span<float> y);

/// x *= alpha
void Scale(float alpha, std::span<float> x);

/// Euclidean norm (deterministic blocked accumulation, see Dot).
float Norm(std::span<const float> x);

/// In-place L2 normalization; leaves zero vectors untouched.
void NormalizeInPlace(std::span<float> x);

/// Cosine similarity; returns 0 when either vector is all-zero.
float CosineSimilarity(std::span<const float> a, std::span<const float> b);

/// Element-wise sum accumulated into `acc` (acc += x).
void AccumulateInPlace(std::span<float> acc, std::span<const float> x);

/// Returns the element-wise mean of `vectors`; all must share `dim`.
/// Returns a zero vector when `vectors` is empty.
Vec MeanOfVectors(const std::vector<Vec>& vectors, size_t dim);

/// Sets all entries to zero.
void ZeroInPlace(std::span<float> x);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_MATH_VEC_H_
