#include "lm/beam_search.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ultrawiki {
namespace {

/// Deadline polls are amortized over this many expansions so the hot loop
/// does not hit the clock per child.
constexpr size_t kBudgetCheckStride = 1024;

struct BeamItem {
  PrefixTrie::NodeId node = PrefixTrie::kRoot;
  std::vector<TokenId> generated;
  double log_prob = 0.0;
  LmScoringState state;
};

/// A proposed extension of beam[parent] by one trie child. Cheap to sort
/// and prune; the expensive state/token copies happen only for the at
/// most beam_width survivors.
struct Candidate {
  size_t parent = 0;
  TokenId token = -1;
  PrefixTrie::NodeId node = PrefixTrie::kRoot;
  double log_prob = 0.0;
};

uint64_t HashPrompt(std::span<const TokenId> prompt) {
  uint64_t hash = 1469598103934665603ULL;
  auto mix = [&hash](uint64_t v) {
    hash ^= v;
    hash *= 1099511628211ULL;
  };
  mix(static_cast<uint64_t>(prompt.size()));
  for (TokenId token : prompt) {
    mix(static_cast<uint64_t>(static_cast<uint32_t>(token)));
  }
  return hash;
}

}  // namespace

const BeamSearchCache::ChildList& BeamSearchCache::ChildrenOf(
    const PrefixTrie& trie, PrefixTrie::NodeId node) {
  const auto [it, inserted] = children_.try_emplace(node);
  if (inserted) {
    std::vector<std::pair<TokenId, PrefixTrie::NodeId>> sorted(
        trie.ChildrenOf(node).begin(), trie.ChildrenOf(node).end());
    std::sort(sorted.begin(), sorted.end());
    ChildList& list = it->second;
    list.tokens.reserve(sorted.size());
    list.nodes.reserve(sorted.size());
    for (const auto& [token, child] : sorted) {
      list.tokens.push_back(token);
      list.nodes.push_back(child);
    }
  }
  return it->second;
}

LmPromptContext& BeamSearchCache::PromptContextFor(
    const HybridLm& lm, std::span<const TokenId> prompt) {
  std::vector<std::unique_ptr<PromptEntry>>& bucket =
      prompts_[HashPrompt(prompt)];
  for (const std::unique_ptr<PromptEntry>& entry : bucket) {
    if (entry->prompt.size() == prompt.size() &&
        std::equal(entry->prompt.begin(), entry->prompt.end(),
                   prompt.begin())) {
      return entry->context;
    }
  }
  bucket.push_back(std::make_unique<PromptEntry>());
  PromptEntry& entry = *bucket.back();
  entry.prompt.assign(prompt.begin(), prompt.end());
  entry.context = lm.MakePromptContext(entry.prompt);
  ++prompt_count_;
  return entry.context;
}

BeamSearchResult ConstrainedBeamSearchWithBudget(
    const HybridLm& lm, const PrefixTrie& trie,
    std::span<const TokenId> prompt, const BeamSearchConfig& config,
    BeamSearchCache* cache) {
  UW_CHECK_GT(config.beam_width, 0);
  UW_SPAN("beam_search");
  BeamSearchCache local_cache;
  if (cache == nullptr) cache = &local_cache;

  LmPromptContext& prompt_context = cache->PromptContextFor(lm, prompt);

  std::vector<BeamItem> beam;
  beam.push_back(BeamItem{PrefixTrie::kRoot, {}, 0.0,
                          LmScoringState(lm, prompt_context)});
  std::unordered_map<EntityId, double> completed;
  // Flushed once per search; the expansion loop stays atomic-free.
  int64_t expansions = 0;
  int64_t prunes = 0;
  bool truncated = false;
  // Budget polls are suppressed until the first chunk of the first
  // hypothesis has been scored, so a pre-expired deadline still returns
  // the root's terminal children deterministically.
  bool polls_enabled = false;

  std::vector<double> probs;
  std::vector<Candidate> candidates;

  for (int depth = 0; depth < config.max_name_length && !beam.empty();
       ++depth) {
    candidates.clear();
    for (size_t parent = 0; parent < beam.size() && !truncated; ++parent) {
      const BeamItem& item = beam[parent];
      const BeamSearchCache::ChildList& children =
          cache->ChildrenOf(trie, item.node);
      const size_t generated_len = item.generated.size() + 1;
      size_t offset = 0;
      while (offset < children.size()) {
        if (polls_enabled && config.deadline.has_value() &&
            std::chrono::steady_clock::now() >= *config.deadline) {
          truncated = true;
          break;
        }
        size_t n = std::min(kBudgetCheckStride, children.size() - offset);
        if (config.max_expansions > 0) {
          const int64_t allowance = config.max_expansions - expansions;
          if (allowance <= 0) {
            truncated = true;
            break;
          }
          n = std::min(n, static_cast<size_t>(allowance));
        }
        probs.resize(n);
        item.state.NextTokenProbabilityBatch(
            std::span<const TokenId>(children.tokens).subspan(offset, n),
            probs);
        expansions += static_cast<int64_t>(n);
        for (size_t i = 0; i < n; ++i) {
          const PrefixTrie::NodeId child = children.nodes[offset + i];
          const double log_prob =
              item.log_prob + std::log(std::max(probs[i], 1e-12));
          const EntityId terminal = trie.TerminalOf(child);
          if (terminal != kInvalidEntityId) {
            const double score =
                config.length_normalize
                    ? log_prob / static_cast<double>(generated_len)
                    : log_prob;
            const auto cit = completed.find(terminal);
            if (cit == completed.end() || score > cit->second) {
              completed[terminal] = score;
            }
          }
          if (!trie.ChildrenOf(child).empty()) {
            candidates.push_back(Candidate{
                parent, children.tokens[offset + i], child, log_prob});
          }
        }
        offset += n;
        polls_enabled = true;
      }
    }
    if (truncated) break;

    // Keep the top beam_width partial hypotheses (by raw log prob;
    // hypotheses at the same depth have equal length). The candidate's
    // trie node is unique (the trie is a tree), so (log_prob desc, node
    // asc) is a total order and the beam cut is deterministic even under
    // exact score ties.
    if (candidates.size() > static_cast<size_t>(config.beam_width)) {
      prunes += static_cast<int64_t>(candidates.size()) - config.beam_width;
      std::partial_sort(candidates.begin(),
                        candidates.begin() + config.beam_width,
                        candidates.end(),
                        [](const Candidate& a, const Candidate& b) {
                          if (a.log_prob != b.log_prob) {
                            return a.log_prob > b.log_prob;
                          }
                          return a.node < b.node;
                        });
      candidates.resize(static_cast<size_t>(config.beam_width));
    }

    std::vector<BeamItem> next_beam;
    next_beam.reserve(candidates.size());
    for (const Candidate& candidate : candidates) {
      const BeamItem& parent = beam[candidate.parent];
      BeamItem item{candidate.node, parent.generated, candidate.log_prob,
                    parent.state};
      item.generated.push_back(candidate.token);
      item.state.Extend(candidate.token);
      next_beam.push_back(std::move(item));
    }
    beam = std::move(next_beam);
  }

  obs::GetCounter("beam.expansions").Increment(expansions);
  obs::GetCounter("beam.prunes").Increment(prunes);
  obs::GetCounter("beam.completed_entities")
      .Increment(static_cast<int64_t>(completed.size()));
  if (truncated) obs::GetCounter("beam.truncated").Increment(1);

  BeamSearchResult result;
  result.truncated = truncated;
  result.expansions = expansions;
  result.entities.reserve(completed.size());
  for (const auto& [entity, score] : completed) {
    result.entities.push_back(GeneratedEntity{entity, score});
  }
  std::sort(result.entities.begin(), result.entities.end(),
            [](const GeneratedEntity& a, const GeneratedEntity& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.entity < b.entity;
            });
  if (result.entities.size() > static_cast<size_t>(config.beam_width)) {
    result.entities.resize(static_cast<size_t>(config.beam_width));
  }
  return result;
}

std::vector<GeneratedEntity> ConstrainedBeamSearch(
    const HybridLm& lm, const PrefixTrie& trie,
    std::span<const TokenId> prompt, const BeamSearchConfig& config) {
  return ConstrainedBeamSearchWithBudget(lm, trie, prompt, config, nullptr)
      .entities;
}

}  // namespace ultrawiki
