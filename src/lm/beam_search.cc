#include "lm/beam_search.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ultrawiki {
namespace {

struct BeamItem {
  PrefixTrie::NodeId node = PrefixTrie::kRoot;
  std::vector<TokenId> generated;
  double log_prob = 0.0;
};

}  // namespace

std::vector<GeneratedEntity> ConstrainedBeamSearch(
    const HybridLm& lm, const PrefixTrie& trie,
    std::span<const TokenId> prompt, const BeamSearchConfig& config) {
  UW_CHECK_GT(config.beam_width, 0);
  UW_SPAN("beam_search");
  std::vector<BeamItem> beam = {BeamItem{}};
  std::unordered_map<EntityId, double> completed;
  // Flushed once per search; the expansion loop stays atomic-free.
  int64_t expansions = 0;
  int64_t prunes = 0;

  std::vector<TokenId> context(prompt.begin(), prompt.end());
  const size_t prompt_len = context.size();

  for (int depth = 0; depth < config.max_name_length && !beam.empty();
       ++depth) {
    std::vector<BeamItem> expanded;
    for (const BeamItem& item : beam) {
      // Rebuild the full context: prompt + generated-so-far.
      context.resize(prompt_len);
      context.insert(context.end(), item.generated.begin(),
                     item.generated.end());
      for (const auto& [token, child] : trie.ChildrenOf(item.node)) {
        ++expansions;
        const double p = lm.NextTokenProbability(context, token);
        BeamItem next;
        next.node = child;
        next.generated = item.generated;
        next.generated.push_back(token);
        next.log_prob = item.log_prob + std::log(std::max(p, 1e-12));
        const EntityId terminal = trie.TerminalOf(child);
        if (terminal != kInvalidEntityId) {
          const double score =
              config.length_normalize
                  ? next.log_prob /
                        static_cast<double>(next.generated.size())
                  : next.log_prob;
          auto it = completed.find(terminal);
          if (it == completed.end() || score > it->second) {
            completed[terminal] = score;
          }
        }
        if (!trie.ChildrenOf(child).empty()) {
          expanded.push_back(std::move(next));
        }
      }
    }
    // Keep the top beam_width partial hypotheses (by raw log prob;
    // hypotheses at the same depth have equal length).
    if (expanded.size() > static_cast<size_t>(config.beam_width)) {
      prunes += static_cast<int64_t>(expanded.size()) - config.beam_width;
      std::partial_sort(
          expanded.begin(),
          expanded.begin() + config.beam_width, expanded.end(),
          [](const BeamItem& a, const BeamItem& b) {
            return a.log_prob > b.log_prob;
          });
      expanded.resize(static_cast<size_t>(config.beam_width));
    }
    beam = std::move(expanded);
  }

  obs::GetCounter("beam.expansions").Increment(expansions);
  obs::GetCounter("beam.prunes").Increment(prunes);
  obs::GetCounter("beam.completed_entities")
      .Increment(static_cast<int64_t>(completed.size()));

  std::vector<GeneratedEntity> results;
  results.reserve(completed.size());
  for (const auto& [entity, score] : completed) {
    results.push_back(GeneratedEntity{entity, score});
  }
  std::sort(results.begin(), results.end(),
            [](const GeneratedEntity& a, const GeneratedEntity& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.entity < b.entity;
            });
  if (results.size() > static_cast<size_t>(config.beam_width)) {
    results.resize(static_cast<size_t>(config.beam_width));
  }
  return results;
}

}  // namespace ultrawiki
