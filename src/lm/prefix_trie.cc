#include "lm/prefix_trie.h"

#include "common/logging.h"

namespace ultrawiki {

PrefixTrie::PrefixTrie() { nodes_.emplace_back(); }

void PrefixTrie::Insert(std::span<const TokenId> name, EntityId entity) {
  UW_CHECK(!name.empty());
  NodeId current = kRoot;
  for (TokenId token : name) {
    auto& children = nodes_[static_cast<size_t>(current)].children;
    auto it = children.find(token);
    if (it == children.end()) {
      const NodeId fresh = static_cast<NodeId>(nodes_.size());
      children.emplace(token, fresh);
      nodes_.emplace_back();
      current = fresh;
    } else {
      current = it->second;
    }
  }
  Node& leaf = nodes_[static_cast<size_t>(current)];
  if (leaf.terminal == kInvalidEntityId) {
    leaf.terminal = entity;
    ++entity_count_;
  }
}

const std::unordered_map<TokenId, PrefixTrie::NodeId>&
PrefixTrie::ChildrenOf(NodeId node) const {
  UW_CHECK_GE(node, 0);
  UW_CHECK_LT(static_cast<size_t>(node), nodes_.size());
  return nodes_[static_cast<size_t>(node)].children;
}

EntityId PrefixTrie::TerminalOf(NodeId node) const {
  UW_CHECK_GE(node, 0);
  UW_CHECK_LT(static_cast<size_t>(node), nodes_.size());
  return nodes_[static_cast<size_t>(node)].terminal;
}

PrefixTrie::NodeId PrefixTrie::Walk(std::span<const TokenId> tokens) const {
  NodeId current = kRoot;
  for (TokenId token : tokens) {
    const auto& children = nodes_[static_cast<size_t>(current)].children;
    const auto it = children.find(token);
    if (it == children.end()) return -1;
    current = it->second;
  }
  return current;
}

}  // namespace ultrawiki
