#ifndef ULTRAWIKI_LM_SIMILARITY_H_
#define ULTRAWIKI_LM_SIMILARITY_H_

#include <span>
#include <vector>

#include "corpus/corpus.h"
#include "lm/hybrid_lm.h"

namespace ultrawiki {

/// LM-based entity similarity (paper Eq. 7): the geometric mean of the
/// conditional probability of generating e' from the template
/// "{e} is similar to". Implements both directions used by GenExpan:
/// selection (candidate vs positive seeds) and re-ranking (candidate vs
/// negative seeds).
class LmEntitySimilarity {
 public:
  /// `corpus` provides entity surface forms; `lm` must share its token
  /// vocabulary. Both must outlive this object.
  LmEntitySimilarity(const Corpus& corpus, const HybridLm& lm);

  /// sqrt-free geometric mean: exp(log P(e' | "{e} is similar to") / |e'|).
  double ConditionalScore(EntityId source, EntityId target) const;

  /// Mean of ConditionalScore(seed, candidate) over `seeds` — the paper's
  /// sco^pos / sco^neg for GenExpan.
  double SeedScore(std::span<const EntityId> seeds, EntityId candidate) const;

  /// Token-id form of an entity name.
  std::vector<TokenId> NameTokensOf(EntityId id) const;

 private:
  const Corpus& corpus_;
  const HybridLm& lm_;
  std::vector<TokenId> template_tokens_;  // "is similar to"
};

}  // namespace ultrawiki

#endif  // ULTRAWIKI_LM_SIMILARITY_H_
