#ifndef ULTRAWIKI_LM_HYBRID_LM_H_
#define ULTRAWIKI_LM_HYBRID_LM_H_

#include <memory>
#include <span>
#include <unordered_set>
#include <vector>

#include "lm/association.h"
#include "lm/ngram_lm.h"

namespace ultrawiki {

/// Hybrid LM configuration. `association_weight` is the mixing coefficient
/// μ of the long-range channel; 0 degrades the model to a pure n-gram LM.
struct HybridLmConfig {
  NgramLmConfig ngram;
  double association_weight = 0.9;
  /// Capacity knob for the association rows (<=0 keeps all). Smaller
  /// values emulate smaller model sizes (Fig. 8).
  int association_top_k = 0;
};

/// The LLaMA-7B stand-in: a local n-gram channel (syntax; what follows the
/// template glue) interpolated with a sentence co-occurrence channel
/// (topicality; which entities/clues belong with the prompt's tokens).
/// Prompts therefore condition on their full content, including class
/// names and attribute phrases injected by chain-of-thought reasoning,
/// which is the property the paper relies on LLaMA for.
class HybridLm {
 public:
  explicit HybridLm(size_t vocab_size, HybridLmConfig config = {});

  HybridLm(HybridLm&&) = default;
  HybridLm& operator=(HybridLm&&) = default;
  HybridLm(const HybridLm&) = delete;
  HybridLm& operator=(const HybridLm&) = delete;

  /// "Further pretraining" on one sentence: feeds both channels.
  void AddSentence(std::span<const TokenId> sentence);

  /// Marks tokens (template glue, punctuation) that the association
  /// channel ignores as conditioning evidence.
  void SetStopTokens(std::unordered_set<TokenId> stop_tokens);

  /// P(next | context): interpolation of the n-gram probability on the
  /// context suffix and the mean association probability over the
  /// informative context tokens.
  double NextTokenProbability(std::span<const TokenId> context,
                              TokenId next) const;

  /// Natural-log probability of `tokens` continuing `context`.
  double SequenceLogProbability(std::span<const TokenId> context,
                                std::span<const TokenId> tokens) const;

  /// Finalizes training (applies association truncation). Call once after
  /// the last AddSentence.
  void Finalize();

  const NgramLm& ngram() const { return ngram_; }
  const AssociationModel& association() const { return association_; }
  const HybridLmConfig& lm_config() const { return config_; }
  size_t vocab_size() const { return ngram_.vocab_size(); }

 private:
  HybridLmConfig config_;
  NgramLm ngram_;
  AssociationModel association_;
  std::unordered_set<TokenId> stop_tokens_;
};

}  // namespace ultrawiki

#endif  // ULTRAWIKI_LM_HYBRID_LM_H_
