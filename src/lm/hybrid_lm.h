#ifndef ULTRAWIKI_LM_HYBRID_LM_H_
#define ULTRAWIKI_LM_HYBRID_LM_H_

#include <memory>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lm/association.h"
#include "lm/ngram_lm.h"

namespace ultrawiki {

/// Hybrid LM configuration. `association_weight` is the mixing coefficient
/// μ of the long-range channel; 0 degrades the model to a pure n-gram LM.
struct HybridLmConfig {
  NgramLmConfig ngram;
  double association_weight = 0.9;
  /// Capacity knob for the association rows (<=0 keeps all). Smaller
  /// values emulate smaller model sizes (Fig. 8).
  int association_top_k = 0;
};

class HybridLm;

/// Per-prompt association evidence, resolved once and shared by every
/// scoring state derived from the same prompt. The association channel's
/// sum over context tokens is additive, so the prompt prefix's
/// contribution for a given next token never changes while the hypothesis
/// grows — it is memoized here on first request. Not thread-safe: use one
/// PromptContext per search/thread. Holds references into the LM, which
/// must outlive it and must not be mutated while it is alive.
class LmPromptContext {
 public:
  std::span<const TokenId> prompt() const { return prompt_; }
  /// Number of informative (non-stop, in-vocabulary) prompt tokens.
  int informative_count() const {
    return static_cast<int>(informative_.size());
  }
  /// Association sum of `next` against the informative prompt tokens, in
  /// prompt order — the same accumulation order (and therefore the same
  /// floating-point result) as a fresh left-to-right pass.
  double AssocPrefixSum(TokenId next);

 private:
  friend class HybridLm;
  const HybridLm* lm_ = nullptr;
  std::vector<TokenId> prompt_;
  std::vector<TokenId> informative_;  // informative prompt tokens, in order
  std::unordered_map<TokenId, double> memo_;
};

/// Incremental scoring state for one hypothesis: the n-gram backoff chain
/// resolved once per context (one ContextStats lookup per level), plus the
/// additive association sum split into the memoized prompt prefix and the
/// at-most-max-name-length generated extension. Scoring a next token is
/// O(order + generated) instead of O(context) — and produces bit-identical
/// probabilities to HybridLm::NextTokenProbability on the rebuilt context.
/// Copyable: beam branches copy the parent state and Extend by one token.
class LmScoringState {
 public:
  /// State for `prompt` alone (no generated tokens yet). `prompt_context`
  /// must outlive the state and every copy of it.
  LmScoringState(const HybridLm& lm, LmPromptContext& prompt_context);

  /// Appends one generated token to the hypothesis context.
  void Extend(TokenId token);

  /// P(next | prompt + generated): bit-identical to
  /// HybridLm::NextTokenProbability(prompt + generated, next).
  double NextTokenProbability(TokenId next) const;

  /// Scores a hypothesis's full child set in one call:
  /// out[i] = NextTokenProbability(nexts[i]). `out.size()` must equal
  /// `nexts.size()`.
  void NextTokenProbabilityBatch(std::span<const TokenId> nexts,
                                 std::span<double> out) const;

  size_t generated_size() const { return generated_; }

 private:
  const HybridLm* lm_ = nullptr;
  LmPromptContext* prompt_ = nullptr;
  /// Informative generated tokens, in generation order (the association
  /// delta on top of the prompt prefix sum).
  std::vector<TokenId> generated_informative_;
  size_t generated_ = 0;
  /// Rolling (order-1)-token suffix of prompt + generated, and its
  /// resolved backoff chain.
  std::vector<TokenId> suffix_;
  NgramLm::ScoringContext ngram_;
};

/// The LLaMA-7B stand-in: a local n-gram channel (syntax; what follows the
/// template glue) interpolated with a sentence co-occurrence channel
/// (topicality; which entities/clues belong with the prompt's tokens).
/// Prompts therefore condition on their full content, including class
/// names and attribute phrases injected by chain-of-thought reasoning,
/// which is the property the paper relies on LLaMA for.
class HybridLm {
 public:
  explicit HybridLm(size_t vocab_size, HybridLmConfig config = {});

  HybridLm(HybridLm&&) = default;
  HybridLm& operator=(HybridLm&&) = default;
  HybridLm(const HybridLm&) = delete;
  HybridLm& operator=(const HybridLm&) = delete;

  /// "Further pretraining" on one sentence: feeds both channels.
  void AddSentence(std::span<const TokenId> sentence);

  /// Marks tokens (template glue, punctuation) that the association
  /// channel ignores as conditioning evidence.
  void SetStopTokens(std::unordered_set<TokenId> stop_tokens);

  /// P(next | context): interpolation of the n-gram probability on the
  /// context suffix and the mean association probability over the
  /// informative context tokens. Reference (rebuild-per-call) evaluation;
  /// hot paths use MakePromptContext + LmScoringState, which is proven
  /// bit-identical to this.
  double NextTokenProbability(std::span<const TokenId> context,
                              TokenId next) const;

  /// Natural-log probability of `tokens` continuing `context`.
  double SequenceLogProbability(std::span<const TokenId> context,
                                std::span<const TokenId> tokens) const;

  /// Resolves the shared per-prompt association evidence for incremental
  /// scoring (see LmPromptContext / LmScoringState).
  LmPromptContext MakePromptContext(std::span<const TokenId> prompt) const;

  /// Finalizes training (applies association truncation). Call once after
  /// the last AddSentence.
  void Finalize();

  const NgramLm& ngram() const { return ngram_; }
  const AssociationModel& association() const { return association_; }
  const HybridLmConfig& lm_config() const { return config_; }
  size_t vocab_size() const { return ngram_.vocab_size(); }

 private:
  friend class LmPromptContext;
  friend class LmScoringState;

  bool IsInformative(TokenId token) const {
    return token >= 0 && !stop_tokens_.contains(token);
  }

  HybridLmConfig config_;
  NgramLm ngram_;
  AssociationModel association_;
  std::unordered_set<TokenId> stop_tokens_;
};

}  // namespace ultrawiki

#endif  // ULTRAWIKI_LM_HYBRID_LM_H_
