#include "lm/association.h"

#include <algorithm>

#include "common/logging.h"

namespace ultrawiki {

AssociationModel::AssociationModel(size_t vocab_size)
    : vocab_size_(vocab_size) {}

void AssociationModel::AddSentence(std::span<const TokenId> sentence) {
  for (size_t i = 0; i < sentence.size(); ++i) {
    const TokenId a = sentence[i];
    if (a < 0 || static_cast<size_t>(a) >= vocab_size_) continue;
    Row& row = rows_[a];
    for (size_t j = 0; j < sentence.size(); ++j) {
      if (i == j) continue;
      const TokenId b = sentence[j];
      if (b < 0 || static_cast<size_t>(b) >= vocab_size_) continue;
      ++row.counts[b];
      ++row.total;
      ++pair_count_;
    }
  }
}

double AssociationModel::Probability(TokenId context, TokenId next) const {
  const double floor = 1.0 / static_cast<double>(vocab_size_);
  if (context < 0 || next < 0) return floor;
  const auto it = rows_.find(context);
  if (it == rows_.end() || it->second.total == 0) return floor;
  const Row& row = it->second;
  const auto cit = row.counts.find(next);
  const double count =
      cit == row.counts.end() ? 0.0 : static_cast<double>(cit->second);
  // Uniform interpolation keeps unseen targets strictly positive without
  // letting the smoothing mass drown the observed counts (rows are much
  // smaller than the vocabulary).
  constexpr double kUniformWeight = 0.05;
  return (1.0 - kUniformWeight) * count / static_cast<double>(row.total) +
         kUniformWeight * floor;
}

void AssociationModel::TruncateRows(int top_k) {
  if (top_k <= 0) return;
  for (auto& [context, row] : rows_) {
    if (row.counts.size() <= static_cast<size_t>(top_k)) continue;
    std::vector<std::pair<TokenId, int32_t>> entries(row.counts.begin(),
                                                     row.counts.end());
    std::nth_element(
        entries.begin(), entries.begin() + top_k, entries.end(),
        [](const auto& a, const auto& b) {
          if (a.second != b.second) return a.second > b.second;
          return a.first < b.first;
        });
    entries.resize(static_cast<size_t>(top_k));
    row.counts.clear();
    row.total = 0;
    for (const auto& [token, count] : entries) {
      row.counts.emplace(token, count);
      row.total += count;
    }
  }
}

}  // namespace ultrawiki
