#ifndef ULTRAWIKI_LM_NGRAM_LM_H_
#define ULTRAWIKI_LM_NGRAM_LM_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "text/vocabulary.h"

namespace ultrawiki {

/// Hyper-parameters of the backoff n-gram model.
struct NgramLmConfig {
  /// Maximum n-gram order (5 lets the model condition on a 1–2-token
  /// entity name plus template glue, which is what constrained generation
  /// needs).
  int order = 5;
  /// Absolute discount mass moved to the lower order.
  double discount = 0.4;
  /// Additive smoothing of the unigram floor.
  double unigram_alpha = 0.5;
};

/// Count-based n-gram language model with interpolated absolute
/// discounting (Kneser–Ney style backoff chain). Contexts are stored by
/// 64-bit hash; with the corpus sizes this library targets, collisions are
/// statistically negligible and the approximation is standard for
/// hash-based LMs.
class NgramLm {
 private:
  struct ContextStats {
    int64_t total = 0;
    std::unordered_map<TokenId, int32_t> counts;
  };

 public:
  NgramLm(size_t vocab_size, NgramLmConfig config = {});

  /// Accumulates counts for every n-gram (orders 1..order) of `sentence`.
  /// A virtual begin-of-sentence context is implicit: n-grams are only
  /// counted inside the sentence (no padding tokens are introduced).
  void AddSentence(std::span<const TokenId> sentence);

  /// A context's backoff chain resolved once: one ContextStats lookup per
  /// backoff level (suffix lengths 1..order-1), after which any number of
  /// next tokens can be scored without re-hashing the context. Probability
  /// values are bit-identical to `NgramLm::Probability` on the same
  /// context. Holds pointers into the model's count tables — the model
  /// must not be mutated while a ScoringContext is alive.
  class ScoringContext {
   public:
    ScoringContext() = default;

    /// P(next | resolved context); 0 for out-of-vocabulary tokens.
    double Probability(TokenId next) const;

   private:
    friend class NgramLm;
    const NgramLm* lm_ = nullptr;
    /// chain_[k] = stats for the context suffix of length k+1, or nullptr
    /// where that level backs off (unseen or empty context).
    std::vector<const ContextStats*> chain_;
  };

  /// Resolves the backoff chain for `context` (at most the last order-1
  /// tokens are consulted).
  ScoringContext ResolveContext(std::span<const TokenId> context) const;

  /// P(next | context) via the interpolated backoff chain. Uses at most
  /// the last (order-1) tokens of `context`. Single-probe convenience
  /// over ResolveContext.
  double Probability(std::span<const TokenId> context, TokenId next) const;

  /// Sum of log P over `tokens` given `context`, extending the context
  /// with each consumed token. Natural log. Implemented on the resolved
  /// ScoringContext chain — only the rolling (order-1)-token suffix is
  /// maintained per step, never a full context rebuild.
  double SequenceLogProbability(std::span<const TokenId> context,
                                std::span<const TokenId> tokens) const;

  int64_t total_tokens() const { return total_tokens_; }
  size_t vocab_size() const { return vocab_size_; }
  const NgramLmConfig& config() const { return config_; }

 private:
  static uint64_t HashContext(std::span<const TokenId> context);

  NgramLmConfig config_;
  size_t vocab_size_;
  int64_t total_tokens_ = 0;
  std::vector<int64_t> unigram_counts_;
  /// contexts_[k] maps hash(context of length k+1) -> stats, k in
  /// [0, order-2].
  std::vector<std::unordered_map<uint64_t, ContextStats>> contexts_;
};

}  // namespace ultrawiki

#endif  // ULTRAWIKI_LM_NGRAM_LM_H_
