#ifndef ULTRAWIKI_LM_ASSOCIATION_H_
#define ULTRAWIKI_LM_ASSOCIATION_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "text/vocabulary.h"

namespace ultrawiki {

/// Sentence-level token co-occurrence model: P(target | context-token).
/// This is the long-range channel of the hybrid LM — it lets a prompt
/// condition generation on *all* of its tokens (entity names, inferred
/// class names, attribute clues), the role self-attention plays in the
/// paper's LLaMA. Rows can be truncated to their top-k entries, which is
/// the "model capacity" axis of the Fig. 8 scaling study.
class AssociationModel {
 public:
  explicit AssociationModel(size_t vocab_size);

  /// Counts all ordered co-occurring pairs within `sentence` (excluding
  /// self-pairs).
  void AddSentence(std::span<const TokenId> sentence);

  /// P(next | context) = count(context, next) / row_total with additive
  /// smoothing; returns the uniform floor for unseen rows.
  double Probability(TokenId context, TokenId next) const;

  /// Keeps only the `top_k` strongest targets per row (capacity knob);
  /// no-op when top_k <= 0.
  void TruncateRows(int top_k);

  size_t vocab_size() const { return vocab_size_; }
  int64_t pair_count() const { return pair_count_; }

 private:
  struct Row {
    int64_t total = 0;
    std::unordered_map<TokenId, int32_t> counts;
  };

  size_t vocab_size_;
  int64_t pair_count_ = 0;
  std::unordered_map<TokenId, Row> rows_;
};

}  // namespace ultrawiki

#endif  // ULTRAWIKI_LM_ASSOCIATION_H_
