#include "lm/hybrid_lm.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ultrawiki {

HybridLm::HybridLm(size_t vocab_size, HybridLmConfig config)
    : config_(config),
      ngram_(vocab_size, config.ngram),
      association_(vocab_size) {
  UW_CHECK_GE(config.association_weight, 0.0);
  UW_CHECK_LE(config.association_weight, 1.0);
}

void HybridLm::AddSentence(std::span<const TokenId> sentence) {
  ngram_.AddSentence(sentence);
  association_.AddSentence(sentence);
}

void HybridLm::SetStopTokens(std::unordered_set<TokenId> stop_tokens) {
  stop_tokens_ = std::move(stop_tokens);
}

double HybridLm::NextTokenProbability(std::span<const TokenId> context,
                                      TokenId next) const {
  const double ngram_p = ngram_.Probability(context, next);
  const double mu = config_.association_weight;
  if (mu <= 0.0) return ngram_p;
  double assoc_sum = 0.0;
  int informative = 0;
  for (TokenId token : context) {
    if (!IsInformative(token)) continue;
    assoc_sum += association_.Probability(token, next);
    ++informative;
  }
  if (informative == 0) return ngram_p;
  const double assoc_p = assoc_sum / static_cast<double>(informative);
  return (1.0 - mu) * ngram_p + mu * assoc_p;
}

double HybridLm::SequenceLogProbability(
    std::span<const TokenId> context,
    std::span<const TokenId> tokens) const {
  LmPromptContext prompt = MakePromptContext(context);
  LmScoringState state(*this, prompt);
  double log_prob = 0.0;
  for (TokenId token : tokens) {
    const double p = state.NextTokenProbability(token);
    log_prob += std::log(std::max(p, 1e-12));
    state.Extend(token);
  }
  return log_prob;
}

LmPromptContext HybridLm::MakePromptContext(
    std::span<const TokenId> prompt) const {
  LmPromptContext context;
  context.lm_ = this;
  context.prompt_.assign(prompt.begin(), prompt.end());
  for (TokenId token : prompt) {
    if (IsInformative(token)) context.informative_.push_back(token);
  }
  return context;
}

void HybridLm::Finalize() {
  association_.TruncateRows(config_.association_top_k);
}

double LmPromptContext::AssocPrefixSum(TokenId next) {
  const auto [it, inserted] = memo_.try_emplace(next, 0.0);
  if (inserted) {
    // Left-to-right over the informative prompt tokens: the same
    // accumulation order as a fresh full-context pass, so extending the
    // memoized sum with the generated tokens reproduces that pass's
    // floating-point result exactly.
    double sum = 0.0;
    for (TokenId token : informative_) {
      sum += lm_->association_.Probability(token, next);
    }
    it->second = sum;
  }
  return it->second;
}

LmScoringState::LmScoringState(const HybridLm& lm,
                               LmPromptContext& prompt_context)
    : lm_(&lm), prompt_(&prompt_context) {
  const std::span<const TokenId> prompt = prompt_context.prompt();
  const size_t window =
      static_cast<size_t>(std::max(lm.config_.ngram.order - 1, 0));
  if (prompt.size() > window) {
    suffix_.assign(prompt.end() - static_cast<ptrdiff_t>(window),
                   prompt.end());
  } else {
    suffix_.assign(prompt.begin(), prompt.end());
  }
  ngram_ = lm.ngram_.ResolveContext(suffix_);
}

void LmScoringState::Extend(TokenId token) {
  ++generated_;
  if (lm_->IsInformative(token)) generated_informative_.push_back(token);
  const size_t window =
      static_cast<size_t>(std::max(lm_->config_.ngram.order - 1, 0));
  suffix_.push_back(token);
  if (suffix_.size() > window) suffix_.erase(suffix_.begin());
  ngram_ = lm_->ngram_.ResolveContext(suffix_);
}

double LmScoringState::NextTokenProbability(TokenId next) const {
  const double ngram_p = ngram_.Probability(next);
  const double mu = lm_->config_.association_weight;
  if (mu <= 0.0) return ngram_p;
  double assoc_sum = prompt_->AssocPrefixSum(next);
  for (TokenId token : generated_informative_) {
    assoc_sum += lm_->association_.Probability(token, next);
  }
  const int informative =
      prompt_->informative_count() +
      static_cast<int>(generated_informative_.size());
  if (informative == 0) return ngram_p;
  const double assoc_p = assoc_sum / static_cast<double>(informative);
  return (1.0 - mu) * ngram_p + mu * assoc_p;
}

void LmScoringState::NextTokenProbabilityBatch(
    std::span<const TokenId> nexts, std::span<double> out) const {
  UW_CHECK_EQ(nexts.size(), out.size());
  for (size_t i = 0; i < nexts.size(); ++i) {
    out[i] = NextTokenProbability(nexts[i]);
  }
}

}  // namespace ultrawiki
