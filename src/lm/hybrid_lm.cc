#include "lm/hybrid_lm.h"

#include <cmath>

#include "common/logging.h"

namespace ultrawiki {

HybridLm::HybridLm(size_t vocab_size, HybridLmConfig config)
    : config_(config),
      ngram_(vocab_size, config.ngram),
      association_(vocab_size) {
  UW_CHECK_GE(config.association_weight, 0.0);
  UW_CHECK_LE(config.association_weight, 1.0);
}

void HybridLm::AddSentence(std::span<const TokenId> sentence) {
  ngram_.AddSentence(sentence);
  association_.AddSentence(sentence);
}

void HybridLm::SetStopTokens(std::unordered_set<TokenId> stop_tokens) {
  stop_tokens_ = std::move(stop_tokens);
}

double HybridLm::NextTokenProbability(std::span<const TokenId> context,
                                      TokenId next) const {
  const double ngram_p = ngram_.Probability(context, next);
  const double mu = config_.association_weight;
  if (mu <= 0.0) return ngram_p;
  double assoc_sum = 0.0;
  int informative = 0;
  for (TokenId token : context) {
    if (token < 0) continue;
    if (stop_tokens_.contains(token)) continue;
    assoc_sum += association_.Probability(token, next);
    ++informative;
  }
  if (informative == 0) return ngram_p;
  const double assoc_p = assoc_sum / static_cast<double>(informative);
  return (1.0 - mu) * ngram_p + mu * assoc_p;
}

double HybridLm::SequenceLogProbability(
    std::span<const TokenId> context,
    std::span<const TokenId> tokens) const {
  std::vector<TokenId> full(context.begin(), context.end());
  double log_prob = 0.0;
  for (TokenId token : tokens) {
    const double p = NextTokenProbability(full, token);
    log_prob += std::log(std::max(p, 1e-12));
    full.push_back(token);
  }
  return log_prob;
}

void HybridLm::Finalize() {
  association_.TruncateRows(config_.association_top_k);
}

}  // namespace ultrawiki
