#ifndef ULTRAWIKI_LM_PREFIX_TRIE_H_
#define ULTRAWIKI_LM_PREFIX_TRIE_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "corpus/types.h"
#include "text/vocabulary.h"

namespace ultrawiki {

/// Token-level prefix tree over candidate-entity surface forms (paper
/// Fig. 6). During constrained decoding the beam may only follow root→leaf
/// paths, guaranteeing every generated entity is a real candidate — the
/// property that separates GenExpan from hallucinating baselines.
class PrefixTrie {
 public:
  PrefixTrie();

  /// Inserts an entity surface form. Duplicate token sequences keep the
  /// first entity (candidate names are unique in practice).
  void Insert(std::span<const TokenId> name, EntityId entity);

  /// Node handle; 0 is the root.
  using NodeId = int32_t;
  static constexpr NodeId kRoot = 0;

  /// Children of `node` as (token, child-node) pairs.
  const std::unordered_map<TokenId, NodeId>& ChildrenOf(NodeId node) const;

  /// Entity completed at `node`, or kInvalidEntityId.
  EntityId TerminalOf(NodeId node) const;

  /// Walks `tokens` from the root; returns the reached node or -1.
  NodeId Walk(std::span<const TokenId> tokens) const;

  size_t node_count() const { return nodes_.size(); }
  size_t entity_count() const { return entity_count_; }

 private:
  struct Node {
    std::unordered_map<TokenId, NodeId> children;
    EntityId terminal = kInvalidEntityId;
  };

  std::vector<Node> nodes_;
  size_t entity_count_ = 0;
};

}  // namespace ultrawiki

#endif  // ULTRAWIKI_LM_PREFIX_TRIE_H_
