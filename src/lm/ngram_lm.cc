#include "lm/ngram_lm.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ultrawiki {

NgramLm::NgramLm(size_t vocab_size, NgramLmConfig config)
    : config_(config),
      vocab_size_(vocab_size),
      unigram_counts_(vocab_size, 0) {
  UW_CHECK_GE(config.order, 1);
  UW_CHECK_GT(config.discount, 0.0);
  UW_CHECK_LT(config.discount, 1.0);
  contexts_.resize(static_cast<size_t>(config.order - 1));
}

uint64_t NgramLm::HashContext(std::span<const TokenId> context) {
  // FNV-1a over the token ids plus the length, so contexts of different
  // lengths never collide by construction.
  uint64_t hash = 1469598103934665603ULL;
  auto mix = [&hash](uint64_t v) {
    hash ^= v;
    hash *= 1099511628211ULL;
  };
  mix(static_cast<uint64_t>(context.size()));
  for (TokenId token : context) {
    mix(static_cast<uint64_t>(static_cast<uint32_t>(token)));
  }
  return hash;
}

void NgramLm::AddSentence(std::span<const TokenId> sentence) {
  for (size_t i = 0; i < sentence.size(); ++i) {
    const TokenId next = sentence[i];
    if (next < 0 || static_cast<size_t>(next) >= vocab_size_) continue;
    ++unigram_counts_[static_cast<size_t>(next)];
    ++total_tokens_;
    const int max_len = std::min<int>(config_.order - 1, static_cast<int>(i));
    for (int len = 1; len <= max_len; ++len) {
      const std::span<const TokenId> context =
          sentence.subspan(i - static_cast<size_t>(len),
                           static_cast<size_t>(len));
      ContextStats& stats =
          contexts_[static_cast<size_t>(len - 1)][HashContext(context)];
      ++stats.total;
      ++stats.counts[next];
    }
  }
}

NgramLm::ScoringContext NgramLm::ResolveContext(
    std::span<const TokenId> context) const {
  ScoringContext resolved;
  resolved.lm_ = this;
  const int max_len = std::min<int>(config_.order - 1,
                                    static_cast<int>(context.size()));
  resolved.chain_.resize(static_cast<size_t>(std::max(max_len, 0)), nullptr);
  for (int len = 1; len <= max_len; ++len) {
    const std::span<const TokenId> suffix =
        context.subspan(context.size() - static_cast<size_t>(len));
    const auto& table = contexts_[static_cast<size_t>(len - 1)];
    const auto it = table.find(HashContext(suffix));
    // A missing or empty level backs off, exactly like the recursive
    // chain: leave the slot null so evaluation skips it.
    if (it != table.end() && it->second.total != 0) {
      resolved.chain_[static_cast<size_t>(len - 1)] = &it->second;
    }
  }
  return resolved;
}

double NgramLm::ScoringContext::Probability(TokenId next) const {
  UW_DCHECK(lm_ != nullptr);
  if (next < 0 || static_cast<size_t>(next) >= lm_->vocab_size_) return 0.0;
  // Bottom-up evaluation of the same expression tree the recursive
  // backoff builds top-down: p_len = direct + backoff_mass * p_{len-1},
  // seeded with the smoothed unigram floor. Identical operations in
  // identical order, so the result is bit-identical to the recursion.
  const double alpha = lm_->config_.unigram_alpha;
  const double numer =
      static_cast<double>(
          lm_->unigram_counts_[static_cast<size_t>(next)]) +
      alpha;
  const double denom =
      static_cast<double>(lm_->total_tokens_) +
      alpha * static_cast<double>(lm_->vocab_size_);
  double p = numer / denom;
  const double discount = lm_->config_.discount;
  for (const ContextStats* stats : chain_) {
    if (stats == nullptr) continue;
    const double total = static_cast<double>(stats->total);
    double count = 0.0;
    const auto cit = stats->counts.find(next);
    if (cit != stats->counts.end()) count = static_cast<double>(cit->second);
    const double direct = std::max(count - discount, 0.0) / total;
    const double backoff_mass =
        discount * static_cast<double>(stats->counts.size()) / total;
    p = direct + backoff_mass * p;
  }
  return p;
}

double NgramLm::Probability(std::span<const TokenId> context,
                            TokenId next) const {
  return ResolveContext(context).Probability(next);
}

double NgramLm::SequenceLogProbability(
    std::span<const TokenId> context,
    std::span<const TokenId> tokens) const {
  // Rolling (order-1)-token suffix instead of a full context rebuild per
  // step; only the suffix can influence the backoff chain.
  const size_t window = static_cast<size_t>(std::max(config_.order - 1, 0));
  std::vector<TokenId> suffix;
  if (context.size() > window) {
    suffix.assign(context.end() - static_cast<ptrdiff_t>(window),
                  context.end());
  } else {
    suffix.assign(context.begin(), context.end());
  }
  double log_prob = 0.0;
  for (TokenId token : tokens) {
    const double p = ResolveContext(suffix).Probability(token);
    log_prob += std::log(std::max(p, 1e-12));
    suffix.push_back(token);
    if (suffix.size() > window) suffix.erase(suffix.begin());
  }
  return log_prob;
}

}  // namespace ultrawiki
