#include "lm/ngram_lm.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ultrawiki {

NgramLm::NgramLm(size_t vocab_size, NgramLmConfig config)
    : config_(config),
      vocab_size_(vocab_size),
      unigram_counts_(vocab_size, 0) {
  UW_CHECK_GE(config.order, 1);
  UW_CHECK_GT(config.discount, 0.0);
  UW_CHECK_LT(config.discount, 1.0);
  contexts_.resize(static_cast<size_t>(config.order - 1));
}

uint64_t NgramLm::HashContext(std::span<const TokenId> context) {
  // FNV-1a over the token ids plus the length, so contexts of different
  // lengths never collide by construction.
  uint64_t hash = 1469598103934665603ULL;
  auto mix = [&hash](uint64_t v) {
    hash ^= v;
    hash *= 1099511628211ULL;
  };
  mix(static_cast<uint64_t>(context.size()));
  for (TokenId token : context) {
    mix(static_cast<uint64_t>(static_cast<uint32_t>(token)));
  }
  return hash;
}

void NgramLm::AddSentence(std::span<const TokenId> sentence) {
  for (size_t i = 0; i < sentence.size(); ++i) {
    const TokenId next = sentence[i];
    if (next < 0 || static_cast<size_t>(next) >= vocab_size_) continue;
    ++unigram_counts_[static_cast<size_t>(next)];
    ++total_tokens_;
    const int max_len = std::min<int>(config_.order - 1, static_cast<int>(i));
    for (int len = 1; len <= max_len; ++len) {
      const std::span<const TokenId> context =
          sentence.subspan(i - static_cast<size_t>(len),
                           static_cast<size_t>(len));
      ContextStats& stats =
          contexts_[static_cast<size_t>(len - 1)][HashContext(context)];
      ++stats.total;
      ++stats.counts[next];
    }
  }
}

double NgramLm::BackoffProbability(std::span<const TokenId> context,
                                   TokenId next, int length) const {
  if (length == 0) {
    const double alpha = config_.unigram_alpha;
    const double numer =
        static_cast<double>(unigram_counts_[static_cast<size_t>(next)]) +
        alpha;
    const double denom =
        static_cast<double>(total_tokens_) +
        alpha * static_cast<double>(vocab_size_);
    return numer / denom;
  }
  const std::span<const TokenId> suffix =
      context.subspan(context.size() - static_cast<size_t>(length));
  const auto& table = contexts_[static_cast<size_t>(length - 1)];
  const auto it = table.find(HashContext(suffix));
  if (it == table.end() || it->second.total == 0) {
    return BackoffProbability(context, next, length - 1);
  }
  const ContextStats& stats = it->second;
  const double total = static_cast<double>(stats.total);
  const double discount = config_.discount;
  double count = 0.0;
  const auto cit = stats.counts.find(next);
  if (cit != stats.counts.end()) count = static_cast<double>(cit->second);
  const double direct = std::max(count - discount, 0.0) / total;
  const double backoff_mass =
      discount * static_cast<double>(stats.counts.size()) / total;
  return direct +
         backoff_mass * BackoffProbability(context, next, length - 1);
}

double NgramLm::Probability(std::span<const TokenId> context,
                            TokenId next) const {
  if (next < 0 || static_cast<size_t>(next) >= vocab_size_) return 0.0;
  const int max_len = std::min<int>(config_.order - 1,
                                    static_cast<int>(context.size()));
  return BackoffProbability(context, next, max_len);
}

double NgramLm::SequenceLogProbability(
    std::span<const TokenId> context,
    std::span<const TokenId> tokens) const {
  std::vector<TokenId> full(context.begin(), context.end());
  double log_prob = 0.0;
  for (TokenId token : tokens) {
    const double p = Probability(full, token);
    log_prob += std::log(std::max(p, 1e-12));
    full.push_back(token);
  }
  return log_prob;
}

}  // namespace ultrawiki
