#ifndef ULTRAWIKI_LM_BEAM_SEARCH_H_
#define ULTRAWIKI_LM_BEAM_SEARCH_H_

#include <span>
#include <utility>
#include <vector>

#include "corpus/types.h"
#include "lm/hybrid_lm.h"
#include "lm/prefix_trie.h"

namespace ultrawiki {

/// Prefix-constrained beam search configuration. `beam_width` matches the
/// paper's beam size of 40, which also bounds the number of entities
/// generated per round.
struct BeamSearchConfig {
  int beam_width = 40;
  int max_name_length = 8;
  /// Length normalization: completed names are ranked by the geometric
  /// mean of their per-token probabilities (exp(logp / len)), balancing
  /// different token counts exactly as paper Eq. 7 does.
  bool length_normalize = true;
};

/// A completed generation: the entity and its (length-normalized) log
/// probability.
struct GeneratedEntity {
  EntityId entity = kInvalidEntityId;
  double score = 0.0;

  friend bool operator==(const GeneratedEntity& a, const GeneratedEntity& b) {
    return a.entity == b.entity && a.score == b.score;
  }
};

/// Generates up to `beam_width` candidate entities continuing `prompt`
/// under `lm`, constrained to the root→leaf paths of `trie` (paper Fig. 6:
/// "for a certain node, its child nodes represent subsequent tokens that
/// are allowed to be generated"). Results are sorted by descending score;
/// ties break by ascending entity id for determinism.
std::vector<GeneratedEntity> ConstrainedBeamSearch(
    const HybridLm& lm, const PrefixTrie& trie,
    std::span<const TokenId> prompt, const BeamSearchConfig& config = {});

}  // namespace ultrawiki

#endif  // ULTRAWIKI_LM_BEAM_SEARCH_H_
