#ifndef ULTRAWIKI_LM_BEAM_SEARCH_H_
#define ULTRAWIKI_LM_BEAM_SEARCH_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "corpus/types.h"
#include "lm/hybrid_lm.h"
#include "lm/prefix_trie.h"

namespace ultrawiki {

/// Prefix-constrained beam search configuration. `beam_width` matches the
/// paper's beam size of 40, which also bounds the number of entities
/// generated per round.
struct BeamSearchConfig {
  int beam_width = 40;
  int max_name_length = 8;
  /// Length normalization: completed names are ranked by the geometric
  /// mean of their per-token probabilities (exp(logp / len)), balancing
  /// different token counts exactly as paper Eq. 7 does.
  bool length_normalize = true;
  /// Anytime budgets. When either trips, the search stops early and
  /// returns the completions found so far with `truncated` set — rankings
  /// are only guaranteed identical to an unbudgeted run when neither
  /// triggers. <= 0 means unlimited expansions; nullopt means no deadline.
  int64_t max_expansions = 0;
  std::optional<std::chrono::steady_clock::time_point> deadline;
};

/// A completed generation: the entity and its (length-normalized) log
/// probability.
struct GeneratedEntity {
  EntityId entity = kInvalidEntityId;
  double score = 0.0;

  friend bool operator==(const GeneratedEntity& a, const GeneratedEntity& b) {
    return a.entity == b.entity && a.score == b.score;
  }
};

/// Outcome of one budgeted search. `truncated` marks a search that hit a
/// budget and returned best-so-far; `expansions` is the number of
/// (hypothesis × trie-child) scorings actually performed.
struct BeamSearchResult {
  std::vector<GeneratedEntity> entities;
  bool truncated = false;
  int64_t expansions = 0;
};

/// Reusable per-query generation state: sorted trie-child snapshots per
/// node and memoized per-prompt LM contexts (see LmPromptContext). Sharing
/// one cache across the rounds of a query amortizes the child-snapshot
/// sort and the prompt-prefix association sums; repeated prompts (same
/// sampled seeds) hit the memo directly. Not thread-safe — use one cache
/// per query/thread. Holds pointers into the trie and LM, which must
/// outlive it unmutated.
class BeamSearchCache {
 public:
  /// A node's children as parallel arrays, sorted by token id so
  /// iteration order is deterministic (the trie's unordered_map is not).
  struct ChildList {
    std::vector<TokenId> tokens;
    std::vector<PrefixTrie::NodeId> nodes;
    size_t size() const { return tokens.size(); }
  };

  const ChildList& ChildrenOf(const PrefixTrie& trie, PrefixTrie::NodeId node);

  /// The memoized association/prompt state for `prompt`, keyed by its
  /// token sequence (hash + equality check, so distinct prompts never
  /// alias).
  LmPromptContext& PromptContextFor(const HybridLm& lm,
                                    std::span<const TokenId> prompt);

  size_t cached_nodes() const { return children_.size(); }
  size_t cached_prompts() const { return prompt_count_; }

 private:
  struct PromptEntry {
    std::vector<TokenId> prompt;
    LmPromptContext context;
  };

  std::unordered_map<PrefixTrie::NodeId, ChildList> children_;
  /// hash -> entries with that hash (unique_ptr keeps LmPromptContext
  /// references stable while buckets grow).
  std::unordered_map<uint64_t, std::vector<std::unique_ptr<PromptEntry>>>
      prompts_;
  size_t prompt_count_ = 0;
};

/// Generates up to `beam_width` candidate entities continuing `prompt`
/// under `lm`, constrained to the root→leaf paths of `trie` (paper Fig. 6:
/// "for a certain node, its child nodes represent subsequent tokens that
/// are allowed to be generated"). Results are sorted by descending score;
/// ties break by ascending entity id for determinism. `cache` may be null
/// (a search-local cache is used); pass a per-query cache to reuse state
/// across rounds. When a budget in `config` trips, the result carries the
/// best-so-far completions with `truncated` set; budget polls never fire
/// before the first chunk of the first hypothesis, so even a pre-expired
/// deadline deterministically scores the root's children.
BeamSearchResult ConstrainedBeamSearchWithBudget(
    const HybridLm& lm, const PrefixTrie& trie,
    std::span<const TokenId> prompt, const BeamSearchConfig& config,
    BeamSearchCache* cache);

/// Budget-free convenience wrapper returning just the ranked entities.
std::vector<GeneratedEntity> ConstrainedBeamSearch(
    const HybridLm& lm, const PrefixTrie& trie,
    std::span<const TokenId> prompt, const BeamSearchConfig& config = {});

}  // namespace ultrawiki

#endif  // ULTRAWIKI_LM_BEAM_SEARCH_H_
