#include "lm/similarity.h"

#include <cmath>

#include "common/logging.h"

namespace ultrawiki {

LmEntitySimilarity::LmEntitySimilarity(const Corpus& corpus,
                                       const HybridLm& lm)
    : corpus_(corpus), lm_(lm) {
  for (const char* word : {"is", "similar", "to"}) {
    const TokenId id = corpus_.tokens().Lookup(word);
    if (id != kInvalidTokenId) template_tokens_.push_back(id);
  }
}

std::vector<TokenId> LmEntitySimilarity::NameTokensOf(EntityId id) const {
  const Entity& entity = corpus_.entity(id);
  std::vector<TokenId> tokens;
  tokens.reserve(entity.name_tokens.size());
  for (const std::string& word : entity.name_tokens) {
    const TokenId token = corpus_.tokens().Lookup(word);
    if (token != kInvalidTokenId) tokens.push_back(token);
  }
  return tokens;
}

double LmEntitySimilarity::ConditionalScore(EntityId source,
                                            EntityId target) const {
  const std::vector<TokenId> target_tokens = NameTokensOf(target);
  if (target_tokens.empty()) return 0.0;
  std::vector<TokenId> context = NameTokensOf(source);
  context.insert(context.end(), template_tokens_.begin(),
                 template_tokens_.end());
  const double log_prob =
      lm_.SequenceLogProbability(context, target_tokens);
  return std::exp(log_prob / static_cast<double>(target_tokens.size()));
}

double LmEntitySimilarity::SeedScore(std::span<const EntityId> seeds,
                                     EntityId candidate) const {
  if (seeds.empty()) return 0.0;
  double sum = 0.0;
  for (EntityId seed : seeds) {
    sum += ConditionalScore(seed, candidate);
  }
  return sum / static_cast<double>(seeds.size());
}

}  // namespace ultrawiki
