#include "index/inverted_index.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ultrawiki {

DocId InvertedIndex::AddDocument(const std::vector<TokenId>& tokens) {
  UW_CHECK(!frozen_) << "AddDocument on a frozen index";
  const DocId doc = static_cast<DocId>(doc_lengths_.size());
  if (tokens.empty()) {
    UW_LOG_EVERY_N(Warning, 100)
        << "indexing empty document " << doc
        << "; it can never match a query";
  }
  // Aggregate term frequencies first so each term gets one posting.
  std::map<TokenId, int32_t> frequencies;
  for (TokenId token : tokens) ++frequencies[token];
  for (const auto& [term, tf] : frequencies) {
    postings_[term].push_back(Posting{doc, tf});
  }
  obs::GetCounter("index.documents_added").Increment();
  obs::GetCounter("index.postings_created")
      .Increment(static_cast<int64_t>(frequencies.size()));
  total_postings_ += static_cast<int64_t>(frequencies.size());
  doc_lengths_.push_back(static_cast<int32_t>(tokens.size()));
  total_length_ += static_cast<int64_t>(tokens.size());
  return doc;
}

void InvertedIndex::Freeze() {
  if (frozen_) return;
  UW_SPAN("index.freeze");
  std::vector<TokenId> order;
  order.reserve(postings_.size());
  for (const auto& [term, postings] : postings_) order.push_back(term);
  std::sort(order.begin(), order.end());

  terms_.clear();
  blocks_.clear();
  payload_.clear();
  terms_.reserve(order.size());
  for (const TokenId term : order) {
    const std::vector<Posting>& postings = postings_.at(term);
    CompressedTermList list;
    list.term = term;
    list.doc_frequency = static_cast<int64_t>(postings.size());
    list.block_begin = static_cast<uint32_t>(blocks_.size());
    std::array<int32_t, kPostingBlockSize> docs;
    std::array<int32_t, kPostingBlockSize> tfs;
    int32_t previous_doc = -1;
    for (size_t begin = 0; begin < postings.size();
         begin += kPostingBlockSize) {
      const size_t count =
          std::min(kPostingBlockSize, postings.size() - begin);
      PostingBlockMeta meta;
      meta.count = static_cast<uint32_t>(count);
      meta.offset = payload_.size();
      meta.max_tf = 0;
      meta.min_dl = INT32_MAX;
      for (size_t i = 0; i < count; ++i) {
        const Posting& posting = postings[begin + i];
        docs[i] = posting.doc;
        tfs[i] = posting.term_frequency;
        meta.max_tf = std::max(meta.max_tf, posting.term_frequency);
        meta.min_dl = std::min(meta.min_dl, DocumentLength(posting.doc));
      }
      meta.last_doc = docs[count - 1];
      meta.length = static_cast<uint32_t>(EncodePostingBlock(
          std::span<const int32_t>(docs.data(), count),
          std::span<const int32_t>(tfs.data(), count), previous_doc,
          &payload_));
      previous_doc = meta.last_doc;
      blocks_.push_back(meta);
    }
    list.block_end = static_cast<uint32_t>(blocks_.size());
    terms_.push_back(list);
  }
  postings_.clear();
  frozen_ = true;
  obs::GetCounter("index.frozen").Increment();
  obs::GetCounter("index.bytes_compressed")
      .Increment(static_cast<int64_t>(payload_.size()));
  obs::GetCounter("index.bytes_raw")
      .Increment(static_cast<int64_t>(raw_posting_bytes()));
}

InvertedIndex InvertedIndex::Restore(
    std::vector<int32_t> doc_lengths,
    std::unordered_map<TokenId, std::vector<Posting>> postings) {
  InvertedIndex index;
  index.postings_ = std::move(postings);
  index.doc_lengths_ = std::move(doc_lengths);
  index.total_length_ = 0;
  for (const int32_t length : index.doc_lengths_) {
    index.total_length_ += static_cast<int64_t>(length);
  }
  index.total_postings_ = 0;
  for (const auto& [term, list] : index.postings_) {
    index.total_postings_ += static_cast<int64_t>(list.size());
  }
  return index;
}

bool InvertedIndex::RestoreCompressed(std::vector<int32_t> doc_lengths,
                                      std::vector<CompressedTermList> terms,
                                      std::vector<PostingBlockMeta> blocks,
                                      std::string payload,
                                      InvertedIndex* out) {
  UW_SPAN("index.restore_compressed");
  const auto doc_count = static_cast<int64_t>(doc_lengths.size());
  // Structural pass: ascending terms, contiguous block tiling of both the
  // block array and the payload bytes.
  TokenId previous_term = -1;
  uint32_t next_block = 0;
  uint64_t next_offset = 0;
  int64_t total_postings = 0;
  for (const CompressedTermList& list : terms) {
    if (list.term < 0 || list.term <= previous_term) return false;
    previous_term = list.term;
    if (list.block_begin != next_block || list.block_end <= list.block_begin ||
        list.block_end > blocks.size()) {
      return false;
    }
    next_block = list.block_end;
    int64_t postings_in_list = 0;
    for (uint32_t b = list.block_begin; b < list.block_end; ++b) {
      const PostingBlockMeta& meta = blocks[b];
      if (meta.offset != next_offset || meta.length == 0 || meta.count == 0 ||
          meta.count > kPostingBlockSize ||
          meta.offset + meta.length > payload.size()) {
        return false;
      }
      next_offset = meta.offset + meta.length;
      postings_in_list += meta.count;
    }
    if (postings_in_list != list.doc_frequency) return false;
    total_postings += postings_in_list;
  }
  if (next_block != blocks.size() || next_offset != payload.size()) {
    return false;
  }

  // Deep pass: decode every block and verify its metadata against the
  // decoded postings (a wrong max_tf/min_dl would silently corrupt the
  // pruning bound, so it is treated as corruption, not trusted).
  std::array<int32_t, kPostingBlockSize> docs;
  std::array<int32_t, kPostingBlockSize> tfs;
  const auto* bytes = reinterpret_cast<const uint8_t*>(payload.data());
  for (const CompressedTermList& list : terms) {
    int32_t previous_doc = -1;
    for (uint32_t b = list.block_begin; b < list.block_end; ++b) {
      const PostingBlockMeta& meta = blocks[b];
      if (!DecodePostingBlock(bytes + meta.offset, meta.length, meta.count,
                              previous_doc, docs.data(), tfs.data())) {
        return false;
      }
      int32_t max_tf = 0;
      int32_t min_dl = INT32_MAX;
      for (uint32_t i = 0; i < meta.count; ++i) {
        if (static_cast<int64_t>(docs[i]) >= doc_count) return false;
        max_tf = std::max(max_tf, tfs[i]);
        min_dl = std::min(min_dl, doc_lengths[static_cast<size_t>(docs[i])]);
      }
      if (meta.last_doc != docs[meta.count - 1] || meta.max_tf != max_tf ||
          meta.min_dl != min_dl) {
        return false;
      }
      previous_doc = meta.last_doc;
    }
  }

  InvertedIndex index;
  index.doc_lengths_ = std::move(doc_lengths);
  index.total_length_ = 0;
  for (const int32_t length : index.doc_lengths_) {
    if (length < 0) return false;
    index.total_length_ += static_cast<int64_t>(length);
  }
  index.total_postings_ = total_postings;
  index.terms_ = std::move(terms);
  index.blocks_ = std::move(blocks);
  index.payload_ = std::move(payload);
  index.frozen_ = true;
  *out = std::move(index);
  return true;
}

int32_t InvertedIndex::DocumentLength(DocId doc) const {
  UW_CHECK_GE(doc, 0);
  UW_CHECK_LT(static_cast<size_t>(doc), doc_lengths_.size());
  return doc_lengths_[static_cast<size_t>(doc)];
}

double InvertedIndex::AverageDocumentLength() const {
  if (doc_lengths_.empty()) return 0.0;
  return static_cast<double>(total_length_) /
         static_cast<double>(doc_lengths_.size());
}

const CompressedTermList* InvertedIndex::FindTerm(TokenId term) const {
  UW_CHECK(frozen_);
  const auto it = std::lower_bound(
      terms_.begin(), terms_.end(), term,
      [](const CompressedTermList& list, TokenId t) { return list.term < t; });
  if (it == terms_.end() || it->term != term) return nullptr;
  return &*it;
}

int32_t InvertedIndex::DocumentFrequency(TokenId term) const {
  if (frozen_) {
    const CompressedTermList* list = FindTerm(term);
    return list == nullptr ? 0 : static_cast<int32_t>(list->doc_frequency);
  }
  auto it = postings_.find(term);
  if (it == postings_.end()) return 0;
  return static_cast<int32_t>(it->second.size());
}

const std::vector<Posting>& InvertedIndex::PostingsOf(TokenId term) const {
  UW_CHECK(!frozen_) << "PostingsOf on a frozen index; use DecodedPostings "
                        "or OpenCursor";
  static const std::vector<Posting>* empty = new std::vector<Posting>();
  auto it = postings_.find(term);
  if (it == postings_.end()) return *empty;
  return it->second;
}

std::vector<Posting> InvertedIndex::DecodedPostings(TokenId term) const {
  if (!frozen_) return PostingsOf(term);
  std::vector<Posting> result;
  PostingCursor cursor = OpenCursor(term);
  result.reserve(static_cast<size_t>(cursor.doc_frequency()));
  for (; !cursor.at_end(); cursor.Next()) {
    result.push_back(Posting{cursor.doc(), cursor.term_frequency()});
  }
  return result;
}

PostingCursor InvertedIndex::OpenCursor(TokenId term) const {
  const CompressedTermList* list = FindTerm(term);
  if (list == nullptr) return PostingCursor();
  return PostingCursor(this, *list);
}

const std::vector<CompressedTermList>& InvertedIndex::frozen_terms() const {
  UW_CHECK(frozen_);
  return terms_;
}

const std::vector<PostingBlockMeta>& InvertedIndex::frozen_blocks() const {
  UW_CHECK(frozen_);
  return blocks_;
}

const std::string& InvertedIndex::compressed_payload() const {
  UW_CHECK(frozen_);
  return payload_;
}

uint64_t InvertedIndex::raw_posting_bytes() const {
  return static_cast<uint64_t>(total_postings_) * sizeof(Posting);
}

// ------------------------------------------------------- PostingCursor.

PostingCursor::PostingCursor(const InvertedIndex* index,
                             const CompressedTermList& list)
    : index_(index), list_(list), block_(list.block_begin), at_end_(false) {
  DecodeCurrentBlock();
}

std::span<const PostingBlockMeta> PostingCursor::blocks() const {
  UW_CHECK_NE(index_, nullptr);
  return std::span<const PostingBlockMeta>(
      index_->blocks_.data() + list_.block_begin,
      list_.block_end - list_.block_begin);
}

const PostingBlockMeta& PostingCursor::current_block() const {
  UW_CHECK(!at_end_);
  return index_->blocks_[block_];
}

void PostingCursor::DecodeCurrentBlock() {
  const PostingBlockMeta& meta = index_->blocks_[block_];
  const auto* bytes =
      reinterpret_cast<const uint8_t*>(index_->payload_.data()) + meta.offset;
  const int32_t previous_doc =
      block_ == list_.block_begin
          ? -1
          : index_->blocks_[block_ - 1].last_doc;
  // Payload integrity was established when the index was frozen or
  // restored (RestoreCompressed decodes and validates every block), so a
  // decode failure here is a programming error, not an input error.
  UW_CHECK(DecodePostingBlock(bytes, meta.length, meta.count, previous_doc,
                              decoded_docs_.data(), decoded_tfs_.data()))
      << "frozen posting block failed to decode";
  count_ = meta.count;
  pos_ = 0;
  block_decoded_ = true;
  ++blocks_decoded_;
}

void PostingCursor::Next() {
  UW_CHECK(!at_end_);
  if (++pos_ < count_) return;
  if (++block_ >= list_.block_end) {
    at_end_ = true;
    return;
  }
  DecodeCurrentBlock();
}

bool PostingCursor::SkipBlocksTo(DocId target) {
  if (at_end_) return false;
  while (index_->blocks_[block_].last_doc < target) {
    if (!block_decoded_) ++blocks_skipped_;
    if (++block_ >= list_.block_end) {
      at_end_ = true;
      return false;
    }
    block_decoded_ = false;
  }
  return true;
}

bool PostingCursor::SeekTo(DocId target) {
  if (!SkipBlocksTo(target)) return false;
  if (!block_decoded_) {
    DecodeCurrentBlock();
  }
  while (decoded_docs_[pos_] < target) {
    if (++pos_ >= count_) {
      // last_doc >= target guarantees the match is inside this block.
      UW_CHECK(false) << "posting block metadata inconsistent with payload";
    }
  }
  return true;
}

}  // namespace ultrawiki
