#include "index/inverted_index.h"

#include <map>

#include "common/logging.h"
#include "obs/metrics.h"

namespace ultrawiki {

DocId InvertedIndex::AddDocument(const std::vector<TokenId>& tokens) {
  const DocId doc = static_cast<DocId>(doc_lengths_.size());
  if (tokens.empty()) {
    UW_LOG_EVERY_N(Warning, 100)
        << "indexing empty document " << doc
        << "; it can never match a query";
  }
  // Aggregate term frequencies first so each term gets one posting.
  std::map<TokenId, int32_t> frequencies;
  for (TokenId token : tokens) ++frequencies[token];
  for (const auto& [term, tf] : frequencies) {
    postings_[term].push_back(Posting{doc, tf});
  }
  obs::GetCounter("index.documents_added").Increment();
  obs::GetCounter("index.postings_created")
      .Increment(static_cast<int64_t>(frequencies.size()));
  doc_lengths_.push_back(static_cast<int32_t>(tokens.size()));
  total_length_ += static_cast<int64_t>(tokens.size());
  return doc;
}

InvertedIndex InvertedIndex::Restore(
    std::vector<int32_t> doc_lengths,
    std::unordered_map<TokenId, std::vector<Posting>> postings) {
  InvertedIndex index;
  index.postings_ = std::move(postings);
  index.doc_lengths_ = std::move(doc_lengths);
  index.total_length_ = 0;
  for (const int32_t length : index.doc_lengths_) {
    index.total_length_ += static_cast<int64_t>(length);
  }
  return index;
}

int32_t InvertedIndex::DocumentLength(DocId doc) const {
  UW_CHECK_GE(doc, 0);
  UW_CHECK_LT(static_cast<size_t>(doc), doc_lengths_.size());
  return doc_lengths_[static_cast<size_t>(doc)];
}

double InvertedIndex::AverageDocumentLength() const {
  if (doc_lengths_.empty()) return 0.0;
  return static_cast<double>(total_length_) /
         static_cast<double>(doc_lengths_.size());
}

int32_t InvertedIndex::DocumentFrequency(TokenId term) const {
  auto it = postings_.find(term);
  if (it == postings_.end()) return 0;
  return static_cast<int32_t>(it->second.size());
}

const std::vector<Posting>& InvertedIndex::PostingsOf(TokenId term) const {
  static const std::vector<Posting>* empty = new std::vector<Posting>();
  auto it = postings_.find(term);
  if (it == postings_.end()) return *empty;
  return it->second;
}

}  // namespace ultrawiki
