#include "index/block_codec.h"

#include "common/logging.h"

namespace ultrawiki {

void PutVarint32(uint32_t value, std::string* out) {
  while (value >= 0x80u) {
    out->push_back(static_cast<char>((value & 0x7Fu) | 0x80u));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

const uint8_t* GetVarint32(const uint8_t* p, const uint8_t* end,
                           uint32_t* value) {
  uint32_t result = 0;
  for (int shift = 0; shift < 35; shift += 7) {
    if (p == end) return nullptr;  // truncated
    const uint32_t byte = *p++;
    if (shift == 28 && (byte & 0xF0u) != 0) return nullptr;  // > 32 bits
    result |= (byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) {
      *value = result;
      return p;
    }
  }
  return nullptr;  // more than 5 continuation bytes
}

size_t EncodePostingBlock(std::span<const int32_t> docs,
                          std::span<const int32_t> tfs, int32_t previous_doc,
                          std::string* out) {
  UW_CHECK_EQ(docs.size(), tfs.size());
  UW_CHECK_LE(docs.size(), kPostingBlockSize);
  const size_t before = out->size();
  int32_t previous = previous_doc;
  for (const int32_t doc : docs) {
    UW_CHECK_GT(doc, previous);
    PutVarint32(static_cast<uint32_t>(doc - previous), out);
    previous = doc;
  }
  for (const int32_t tf : tfs) {
    UW_CHECK_GE(tf, 1);
    PutVarint32(static_cast<uint32_t>(tf), out);
  }
  return out->size() - before;
}

bool DecodePostingBlock(const uint8_t* data, size_t length, size_t count,
                        int32_t previous_doc, int32_t* docs_out,
                        int32_t* tfs_out) {
  const uint8_t* p = data;
  const uint8_t* const end = data + length;
  int64_t previous = previous_doc;
  for (size_t i = 0; i < count; ++i) {
    uint32_t delta;
    p = GetVarint32(p, end, &delta);
    if (p == nullptr || delta == 0) return false;
    previous += static_cast<int64_t>(delta);
    if (previous > INT32_MAX) return false;
    docs_out[i] = static_cast<int32_t>(previous);
  }
  for (size_t i = 0; i < count; ++i) {
    uint32_t tf;
    p = GetVarint32(p, end, &tf);
    if (p == nullptr || tf == 0 || tf > static_cast<uint32_t>(INT32_MAX)) {
      return false;
    }
    tfs_out[i] = static_cast<int32_t>(tf);
  }
  return p == end;  // trailing bytes mean a corrupt block
}

}  // namespace ultrawiki
