#include "index/bm25.h"

#include <cmath>
#include <map>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace ultrawiki {

Bm25Scorer::Bm25Scorer(const InvertedIndex* index, Bm25Params params)
    : index_(index), params_(params) {
  UW_CHECK_NE(index, nullptr);
}

double Bm25Scorer::Idf(TokenId term) const {
  const double n = static_cast<double>(index_->document_count());
  const double df = static_cast<double>(index_->DocumentFrequency(term));
  // +1 inside the log keeps IDF positive for very common terms.
  return std::log(1.0 + (n - df + 0.5) / (df + 0.5));
}

std::vector<float> Bm25Scorer::ScoreAll(
    const std::vector<TokenId>& query) const {
  obs::GetCounter("bm25.queries").Increment();
  if (query.empty()) {
    UW_LOG_EVERY_N(Warning, 100) << "BM25 called with an empty query";
  }
  std::vector<float> scores(index_->document_count(), 0.0f);
  const double avgdl = index_->AverageDocumentLength();
  if (avgdl <= 0.0) return scores;

  // Collapse duplicate query terms; qtf scales the contribution.
  std::map<TokenId, int> query_tf;
  for (TokenId term : query) ++query_tf[term];

  // Accumulated locally and flushed once per call: one atomic add per
  // query instead of one per posting.
  int64_t postings_scanned = 0;
  for (const auto& [term, qtf] : query_tf) {
    const auto& postings = index_->PostingsOf(term);
    if (postings.empty()) continue;
    const double idf = Idf(term);
    postings_scanned += static_cast<int64_t>(postings.size());
    for (const Posting& posting : postings) {
      const double tf = static_cast<double>(posting.term_frequency);
      const double dl =
          static_cast<double>(index_->DocumentLength(posting.doc));
      const double denom =
          tf + params_.k1 * (1.0 - params_.b + params_.b * dl / avgdl);
      const double contribution =
          idf * tf * (params_.k1 + 1.0) / denom * static_cast<double>(qtf);
      scores[static_cast<size_t>(posting.doc)] +=
          static_cast<float>(contribution);
    }
  }
  obs::GetCounter("bm25.postings_scanned").Increment(postings_scanned);
  obs::GetCounter("bm25.scores_computed")
      .Increment(static_cast<int64_t>(scores.size()));
  return scores;
}

std::vector<std::vector<float>> Bm25Scorer::ScoreAllBatch(
    const std::vector<std::vector<TokenId>>& queries) const {
  return ThreadPool::Global().ParallelMap<std::vector<float>>(
      static_cast<int64_t>(queries.size()),
      [&](int64_t q) { return ScoreAll(queries[static_cast<size_t>(q)]); });
}

std::vector<ScoredIndex> Bm25Scorer::Search(const std::vector<TokenId>& query,
                                            size_t k) const {
  // Stream the dense scores through a bounded heap: O(k) selection state
  // instead of a full (score, doc) materialize-then-sort.
  const std::vector<float> scores = ScoreAll(query);
  TopKStream stream(k);
  for (size_t doc = 0; doc < scores.size(); ++doc) {
    stream.Push(scores[doc], doc);
  }
  return stream.TakeSortedDescending();
}

}  // namespace ultrawiki
