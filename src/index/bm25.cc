#include "index/bm25.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace ultrawiki {
namespace {

/// Relative slack applied to double-precision score bounds before they
/// are compared against the float admission threshold. Actual document
/// scores are accumulated in float (one rounding per term contribution,
/// each computed in double then cast), so a float score can exceed the
/// exact double sum by a factor of at most (1 + 2^-24) per operation;
/// 1e-4 dominates that for any realistic query width. Inflating bounds by
/// the slack keeps pruning strictly conservative: a block or document is
/// only skipped when even its inflated bound cannot beat the threshold,
/// which preserves bit-identical results vs. an unpruned scan.
constexpr double kBoundSlack = 1.0 + 1e-4;

/// Upper bound on the BM25 term kernel tf*(k1+1)/(tf + k1*(1-b+b*dl/avgdl))
/// over any posting with term frequency <= max_tf and document length >=
/// min_dl: the kernel is monotone increasing in tf and decreasing in dl,
/// and IEEE rounding is monotone, so evaluating it at the extremes
/// dominates every posting the metadata covers.
double KernelBound(int32_t max_tf, int32_t min_dl, double avgdl,
                   const Bm25Params& params) {
  const double tf = static_cast<double>(max_tf);
  const double dl = static_cast<double>(min_dl);
  const double denom =
      tf + params.k1 * (1.0 - params.b + params.b * dl / avgdl);
  return tf * (params.k1 + 1.0) / denom;
}

/// One query term's state during a cursor-based search.
struct TermState {
  TokenId term = 0;
  int qtf = 0;
  double idf = 0.0;
  double list_bound = 0.0;  // idf * qtf * max block kernel bound
  PostingCursor cursor;
};

}  // namespace

Bm25Scorer::Bm25Scorer(const InvertedIndex* index, Bm25Params params)
    : index_(index), params_(params) {
  UW_CHECK_NE(index, nullptr);
  UW_CHECK(index->is_frozen())
      << "Bm25Scorer requires a frozen index (call InvertedIndex::Freeze)";
}

double Bm25Scorer::Idf(TokenId term) const {
  const double n = static_cast<double>(index_->document_count());
  const double df = static_cast<double>(index_->DocumentFrequency(term));
  // +1 inside the log keeps IDF positive for very common terms.
  return std::log(1.0 + (n - df + 0.5) / (df + 0.5));
}

std::vector<float> Bm25Scorer::ScoreAll(
    const std::vector<TokenId>& query) const {
  obs::GetCounter("bm25.queries").Increment();
  if (query.empty()) {
    UW_LOG_EVERY_N(Warning, 100) << "BM25 called with an empty query";
  }
  std::vector<float> scores(index_->document_count(), 0.0f);
  const double avgdl = index_->AverageDocumentLength();
  if (avgdl <= 0.0) return scores;

  // Collapse duplicate query terms; qtf scales the contribution.
  std::map<TokenId, int> query_tf;
  for (TokenId term : query) ++query_tf[term];

  // Accumulated locally and flushed once per call: one atomic add per
  // query instead of one per posting.
  int64_t postings_scanned = 0;
  int64_t docs_scored = 0;
  int64_t blocks_decoded = 0;
  for (const auto& [term, qtf] : query_tf) {
    PostingCursor cursor = index_->OpenCursor(term);
    if (cursor.at_end()) continue;
    const double idf = Idf(term);
    postings_scanned += cursor.doc_frequency();
    for (; !cursor.at_end(); cursor.Next()) {
      const double tf = static_cast<double>(cursor.term_frequency());
      const double dl =
          static_cast<double>(index_->DocumentLength(cursor.doc()));
      const double denom =
          tf + params_.k1 * (1.0 - params_.b + params_.b * dl / avgdl);
      const double contribution =
          idf * tf * (params_.k1 + 1.0) / denom * static_cast<double>(qtf);
      float& slot = scores[static_cast<size_t>(cursor.doc())];
      if (slot == 0.0f) ++docs_scored;  // first term touching this doc
      slot += static_cast<float>(contribution);
    }
    blocks_decoded += cursor.blocks_decoded();
  }
  obs::GetCounter("bm25.postings_scanned").Increment(postings_scanned);
  obs::GetCounter("bm25.scores_computed").Increment(docs_scored);
  obs::GetCounter("index.blocks_decoded").Increment(blocks_decoded);
  return scores;
}

std::vector<std::vector<float>> Bm25Scorer::ScoreAllBatch(
    const std::vector<std::vector<TokenId>>& queries) const {
  return ThreadPool::Global().ParallelMap<std::vector<float>>(
      static_cast<int64_t>(queries.size()),
      [&](int64_t q) { return ScoreAll(queries[static_cast<size_t>(q)]); });
}

std::vector<ScoredIndex> Bm25Scorer::Search(const std::vector<TokenId>& query,
                                            size_t k) const {
  obs::GetCounter("bm25.queries").Increment();
  if (query.empty()) {
    UW_LOG_EVERY_N(Warning, 100) << "BM25 called with an empty query";
  }
  const double avgdl = index_->AverageDocumentLength();
  if (k == 0 || avgdl <= 0.0) return {};

  std::map<TokenId, int> query_tf;
  for (TokenId term : query) ++query_tf[term];

  std::vector<TermState> terms;
  terms.reserve(query_tf.size());
  for (const auto& [term, qtf] : query_tf) {
    PostingCursor cursor = index_->OpenCursor(term);
    if (cursor.at_end()) continue;
    TermState state;
    state.term = term;
    state.qtf = qtf;
    state.idf = Idf(term);
    double kernel = 0.0;
    for (const PostingBlockMeta& meta : cursor.blocks()) {
      kernel = std::max(kernel,
                        KernelBound(meta.max_tf, meta.min_dl, avgdl, params_));
    }
    state.list_bound = state.idf * kernel * static_cast<double>(qtf);
    state.cursor = std::move(cursor);
    terms.push_back(std::move(state));
  }
  if (terms.empty()) return {};

  // MaxScore partition order: ascending list bound (term id breaks ties
  // deterministically). `prefix[i]` bounds the total contribution of
  // order[0..i]; the non-essential prefix is the longest one whose bound
  // cannot alone beat the admission threshold.
  std::vector<size_t> order(terms.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&terms](size_t a, size_t b) {
    if (terms[a].list_bound != terms[b].list_bound) {
      return terms[a].list_bound < terms[b].list_bound;
    }
    return terms[a].term < terms[b].term;
  });
  std::vector<double> prefix(order.size());
  double running = 0.0;
  for (size_t i = 0; i < order.size(); ++i) {
    running += terms[order[i]].list_bound;
    prefix[i] = running;
  }

  TopKStream stream(k);
  size_t first_essential = 0;  // order[0..first_essential) is non-essential
  bool have_threshold = false;
  float threshold = 0.0f;
  const auto update_partition = [&]() {
    while (first_essential < order.size() &&
           prefix[first_essential] * kBoundSlack <=
               static_cast<double>(threshold)) {
      ++first_essential;
    }
  };

  int64_t postings_scanned = 0;
  int64_t docs_scored = 0;
  std::vector<std::pair<TokenId, double>> contributions;
  const auto contribution_at = [&](const TermState& state) {
    const double tf = static_cast<double>(state.cursor.term_frequency());
    const double dl =
        static_cast<double>(index_->DocumentLength(state.cursor.doc()));
    const double denom =
        tf + params_.k1 * (1.0 - params_.b + params_.b * dl / avgdl);
    // Same expression, in the same order, as the dense ScoreAll loop, so
    // a surviving document accumulates bit-identical float terms.
    return state.idf * tf * (params_.k1 + 1.0) / denom *
           static_cast<double>(state.qtf);
  };

  while (first_essential < order.size()) {
    // Candidate: the lowest current doc across the essential cursors.
    // Every posting of an essential list surfaces as a candidate, so no
    // admissible document is missed; non-essential lists are bounded by
    // the partition invariant.
    DocId candidate = INT32_MAX;
    bool any_active = false;
    for (size_t i = first_essential; i < order.size(); ++i) {
      const TermState& state = terms[order[i]];
      if (!state.cursor.at_end()) {
        any_active = true;
        candidate = std::min(candidate, state.cursor.doc());
      }
    }
    if (!any_active) break;

    contributions.clear();
    double sum_exact = 0.0;
    for (size_t i = first_essential; i < order.size(); ++i) {
      TermState& state = terms[order[i]];
      if (!state.cursor.at_end() && state.cursor.doc() == candidate) {
        const double c = contribution_at(state);
        contributions.emplace_back(state.term, c);
        sum_exact += c;
      }
    }

    // Non-essential lists, strongest bound first: probe each only while
    // the document could still beat the threshold, skipping whole blocks
    // via their metadata and dropping the document as soon as its best
    // possible total is provably sub-threshold.
    bool drop_document = false;
    for (size_t j = first_essential; j-- > 0;) {
      if (have_threshold &&
          (sum_exact + prefix[j]) * kBoundSlack <=
              static_cast<double>(threshold)) {
        drop_document = true;
        break;
      }
      TermState& state = terms[order[j]];
      const double rest = j > 0 ? prefix[j - 1] : 0.0;
      if (!state.cursor.SkipBlocksTo(candidate)) continue;
      const PostingBlockMeta& block = state.cursor.current_block();
      const double block_bound =
          state.idf * KernelBound(block.max_tf, block.min_dl, avgdl, params_) *
          static_cast<double>(state.qtf);
      if (have_threshold &&
          (sum_exact + block_bound + rest) * kBoundSlack <=
              static_cast<double>(threshold)) {
        drop_document = true;
        break;
      }
      if (state.cursor.SeekTo(candidate) &&
          state.cursor.doc() == candidate) {
        const double c = contribution_at(state);
        contributions.emplace_back(state.term, c);
        sum_exact += c;
      }
    }

    if (!drop_document) {
      // Accumulate in ascending term id order — the exact float addition
      // sequence the dense scan produces for this document.
      std::sort(contributions.begin(), contributions.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      float score = 0.0f;
      for (const auto& [term, c] : contributions) {
        score += static_cast<float>(c);
      }
      postings_scanned += static_cast<int64_t>(contributions.size());
      ++docs_scored;
      stream.Push(score, static_cast<size_t>(candidate));
      if (stream.AtCapacity()) {
        const float worst = stream.Worst().score;
        if (!have_threshold || worst > threshold) {
          threshold = worst;
          have_threshold = true;
          update_partition();
        }
      }
    }

    for (size_t i = first_essential; i < order.size(); ++i) {
      TermState& state = terms[order[i]];
      if (!state.cursor.at_end() && state.cursor.doc() == candidate) {
        state.cursor.Next();
      }
    }
  }

  int64_t blocks_skipped = 0;
  int64_t blocks_decoded = 0;
  for (const TermState& state : terms) {
    blocks_skipped += state.cursor.blocks_skipped();
    blocks_decoded += state.cursor.blocks_decoded();
  }
  obs::GetCounter("bm25.postings_scanned").Increment(postings_scanned);
  obs::GetCounter("bm25.scores_computed").Increment(docs_scored);
  obs::GetCounter("index.blocks_skipped").Increment(blocks_skipped);
  obs::GetCounter("index.blocks_decoded").Increment(blocks_decoded);
  // Pruning only engages once the top-k heap fills and forms an admission
  // threshold; searches where k >= the number of matching documents never
  // get one, so every list stays essential and no block is skipped. These
  // two counters make that visible: a workload with threshold_formed == 0
  // (e.g. table2's hard-negative mining, where k is large relative to the
  // matched set) legitimately reports blocks_skipped == 0.
  obs::GetCounter("bm25.pruned_searches").Increment();
  if (have_threshold) {
    obs::GetCounter("bm25.threshold_formed").Increment();
  }
  return stream.TakeSortedDescending();
}

std::vector<std::vector<ScoredIndex>> Bm25Scorer::SearchBatch(
    const std::vector<std::vector<TokenId>>& queries, size_t k) const {
  return ThreadPool::Global().ParallelMap<std::vector<ScoredIndex>>(
      static_cast<int64_t>(queries.size()), [&](int64_t q) {
        return Search(queries[static_cast<size_t>(q)], k);
      });
}

}  // namespace ultrawiki
