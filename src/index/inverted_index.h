#ifndef ULTRAWIKI_INDEX_INVERTED_INDEX_H_
#define ULTRAWIKI_INDEX_INVERTED_INDEX_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "index/block_codec.h"
#include "text/vocabulary.h"

namespace ultrawiki {

/// Document identifier within an index.
using DocId = int32_t;

/// A posting: document plus term frequency.
struct Posting {
  DocId doc = 0;
  int32_t term_frequency = 0;

  friend bool operator==(const Posting& a, const Posting& b) {
    return a.doc == b.doc && a.term_frequency == b.term_frequency;
  }
};

/// Metadata for one compressed posting block: enough to skip it without
/// decoding (last_doc) and to bound the BM25 score of any posting inside
/// it (max_tf with min_dl — the BM25 term kernel is monotone increasing in
/// tf and decreasing in document length, so f(max_tf, min_dl) dominates
/// every posting in the block for any k1/b).
struct PostingBlockMeta {
  DocId last_doc = 0;      // highest doc id in the block
  uint64_t offset = 0;     // byte offset of the block in the payload
  uint32_t length = 0;     // encoded byte length
  uint32_t count = 0;      // postings in the block, 1..kPostingBlockSize
  int32_t max_tf = 0;      // maximum term frequency in the block
  int32_t min_dl = 0;      // minimum document length among the block's docs
};

/// One term's frozen posting list: a slice of the shared block array.
struct CompressedTermList {
  TokenId term = 0;
  int64_t doc_frequency = 0;  // total postings across the blocks
  uint32_t block_begin = 0;   // [block_begin, block_end) into blocks()
  uint32_t block_end = 0;
};

class PostingCursor;

/// Token-id keyed inverted index over bag-of-token documents. Serves BM25
/// retrieval (hard-negative mining, CaSE lexical features, retrieval
/// lookups).
///
/// Two-phase lifecycle: documents are added to a mutable raw build map,
/// then `Freeze()` compresses every posting list into delta-encoded varint
/// blocks of `kPostingBlockSize` postings with per-block skip/max-score
/// metadata and drops the raw map. All scoring (Bm25Scorer) runs against
/// the frozen form through `PostingCursor`s; a frozen index is immutable.
class InvertedIndex {
 public:
  InvertedIndex() = default;

  /// Adds a document; returns its DocId (dense, in insertion order).
  /// Must not be called after Freeze().
  DocId AddDocument(const std::vector<TokenId>& tokens);

  /// Compresses every posting list into immutable blocks and releases the
  /// raw build storage. Idempotent; required before constructing a
  /// Bm25Scorer, opening cursors, or saving a snapshot.
  void Freeze();

  bool is_frozen() const { return frozen_; }

  size_t document_count() const { return doc_lengths_.size(); }

  /// Length (token count) of `doc`.
  int32_t DocumentLength(DocId doc) const;

  /// Average document length; 0 when empty.
  double AverageDocumentLength() const;

  /// Number of documents containing `term` (works frozen or not).
  int32_t DocumentFrequency(TokenId term) const;

  /// Raw postings of `term` during the build phase; empty if unseen.
  /// Only valid before Freeze() — frozen lists are read through cursors.
  const std::vector<Posting>& PostingsOf(TokenId term) const;

  /// Materializes `term`'s postings (decoding blocks when frozen). For
  /// tests, validation, and compatibility paths — scoring uses cursors.
  std::vector<Posting> DecodedPostings(TokenId term) const;

  /// Opens a decode cursor over `term`'s frozen posting list. The cursor
  /// is exhausted immediately if the term is unseen. Requires Freeze().
  PostingCursor OpenCursor(TokenId term) const;

  // --- Frozen-form accessors (serialization + stats; require Freeze()).

  /// Term directory, ascending by term id.
  const std::vector<CompressedTermList>& frozen_terms() const;
  /// Shared block metadata array (terms hold [block_begin, block_end)).
  const std::vector<PostingBlockMeta>& frozen_blocks() const;
  /// Concatenated encoded blocks.
  const std::string& compressed_payload() const;
  /// Bytes the raw `std::vector<Posting>` form of the postings would
  /// occupy (the memory the compression saved).
  uint64_t raw_posting_bytes() const;

  /// Rebuilds an index from old-format serialized parts (the raw-postings
  /// snapshot load path). `total_length_` is recomputed from
  /// `doc_lengths`; postings must already be validated against the
  /// document count. The returned index is NOT frozen.
  static InvertedIndex Restore(
      std::vector<int32_t> doc_lengths,
      std::unordered_map<TokenId, std::vector<Posting>> postings);

  /// Rebuilds a frozen index directly from its compressed parts (the v2
  /// snapshot load path). Performs a full fail-closed validation pass:
  /// every block is decoded and checked against its metadata (count,
  /// last_doc, max_tf, min_dl recomputed from doc_lengths), terms must be
  /// strictly ascending, offsets/lengths must tile the payload exactly,
  /// and doc ids must be strictly ascending within each list and within
  /// [0, doc_lengths.size()). Returns false on any violation.
  static bool RestoreCompressed(std::vector<int32_t> doc_lengths,
                                std::vector<CompressedTermList> terms,
                                std::vector<PostingBlockMeta> blocks,
                                std::string payload, InvertedIndex* out);

 private:
  friend class PostingCursor;

  const CompressedTermList* FindTerm(TokenId term) const;

  bool frozen_ = false;
  std::unordered_map<TokenId, std::vector<Posting>> postings_;  // build only
  std::vector<int32_t> doc_lengths_;
  int64_t total_length_ = 0;
  int64_t total_postings_ = 0;

  // Frozen form (empty until Freeze()).
  std::vector<CompressedTermList> terms_;  // ascending term id
  std::vector<PostingBlockMeta> blocks_;
  std::string payload_;
};

/// Forward-only decode cursor over one frozen posting list. Blocks are
/// decoded lazily: `SkipBlocksTo` advances over whole blocks using only
/// their `last_doc` metadata (counted as skipped when never decoded), and
/// a block is decoded at most once per traversal. Cheap to construct; not
/// thread-safe (open one per thread).
class PostingCursor {
 public:
  /// An exhausted cursor over nothing (unseen term).
  PostingCursor() = default;

  bool at_end() const { return at_end_; }
  DocId doc() const { return decoded_docs_[pos_]; }
  int32_t term_frequency() const { return decoded_tfs_[pos_]; }
  int64_t doc_frequency() const { return list_.doc_frequency; }

  /// Block metadata slice for this list (for list/block max-score bounds).
  std::span<const PostingBlockMeta> blocks() const;
  /// Metadata of the block the cursor is currently positioned on.
  /// Valid only while !at_end().
  const PostingBlockMeta& current_block() const;

  /// Advances to the next posting.
  void Next();

  /// Positions the cursor's block on the first block whose last_doc >=
  /// `target`, without decoding. Returns false (and exhausts the cursor)
  /// when no such block exists. Forward-only.
  bool SkipBlocksTo(DocId target);

  /// Advances to the first posting with doc >= `target` (decoding the
  /// positioned block). Returns false when the list is exhausted first.
  /// Forward-only: `target` must not decrease across calls.
  bool SeekTo(DocId target);

  /// Blocks passed over by SkipBlocksTo without ever being decoded.
  int64_t blocks_skipped() const { return blocks_skipped_; }
  /// Blocks decoded by this cursor.
  int64_t blocks_decoded() const { return blocks_decoded_; }

 private:
  friend class InvertedIndex;

  PostingCursor(const InvertedIndex* index, const CompressedTermList& list);

  void DecodeCurrentBlock();

  const InvertedIndex* index_ = nullptr;
  CompressedTermList list_;
  uint32_t block_ = 0;         // current block index (absolute in blocks_)
  bool block_decoded_ = false;
  bool at_end_ = true;
  size_t pos_ = 0;             // position within the decoded block
  size_t count_ = 0;           // postings in the decoded block
  int64_t blocks_skipped_ = 0;
  int64_t blocks_decoded_ = 0;
  std::array<int32_t, kPostingBlockSize> decoded_docs_;
  std::array<int32_t, kPostingBlockSize> decoded_tfs_;
};

}  // namespace ultrawiki

#endif  // ULTRAWIKI_INDEX_INVERTED_INDEX_H_
