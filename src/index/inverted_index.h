#ifndef ULTRAWIKI_INDEX_INVERTED_INDEX_H_
#define ULTRAWIKI_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "text/vocabulary.h"

namespace ultrawiki {

/// Document identifier within an index.
using DocId = int32_t;

/// A posting: document plus term frequency.
struct Posting {
  DocId doc = 0;
  int32_t term_frequency = 0;
};

/// Token-id keyed inverted index over bag-of-token documents. Serves BM25
/// retrieval (hard-negative mining, CaSE lexical features, retrieval
/// lookups). Documents are added once; the index is then frozen implicitly
/// by use.
class InvertedIndex {
 public:
  InvertedIndex() = default;

  /// Adds a document; returns its DocId (dense, in insertion order).
  DocId AddDocument(const std::vector<TokenId>& tokens);

  size_t document_count() const { return doc_lengths_.size(); }

  /// Length (token count) of `doc`.
  int32_t DocumentLength(DocId doc) const;

  /// Average document length; 0 when empty.
  double AverageDocumentLength() const;

  /// Number of documents containing `term`.
  int32_t DocumentFrequency(TokenId term) const;

  /// Postings of `term`; empty if unseen.
  const std::vector<Posting>& PostingsOf(TokenId term) const;

  /// Serialization access: every term's postings, keyed by term id
  /// (unordered — serializers must impose their own order).
  const std::unordered_map<TokenId, std::vector<Posting>>& postings_map()
      const {
    return postings_;
  }

  /// Rebuilds an index from serialized parts (the snapshot load path).
  /// `total_length_` is recomputed from `doc_lengths`; postings must
  /// already be validated against the document count.
  static InvertedIndex Restore(
      std::vector<int32_t> doc_lengths,
      std::unordered_map<TokenId, std::vector<Posting>> postings);

 private:
  std::unordered_map<TokenId, std::vector<Posting>> postings_;
  std::vector<int32_t> doc_lengths_;
  int64_t total_length_ = 0;
};

}  // namespace ultrawiki

#endif  // ULTRAWIKI_INDEX_INVERTED_INDEX_H_
