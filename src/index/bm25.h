#ifndef ULTRAWIKI_INDEX_BM25_H_
#define ULTRAWIKI_INDEX_BM25_H_

#include <vector>

#include "index/inverted_index.h"
#include "math/topk.h"

namespace ultrawiki {

/// BM25 parameters (Robertson/Okapi defaults).
struct Bm25Params {
  double k1 = 1.2;
  double b = 0.75;
};

/// BM25 ranking over a frozen InvertedIndex. Used for the dataset
/// pipeline's hard-negative mining ("employing the BM25-based search, we
/// incorporated entities highly similar to the target entities as hard
/// negative entities") and for the CaSE baseline's lexical channel.
///
/// `Search` is a MaxScore/block-max dynamic-pruning top-k over the
/// compressed posting lists: term cursors walk document-at-a-time, lists
/// whose summed score bounds cannot reach the current top-k admission
/// threshold become non-essential (consulted only for docs already
/// surfaced by essential lists), and whole blocks are skipped via their
/// last-doc / max-score metadata. Pruning is exact, not approximate: a
/// block or document is only skipped when its score bound provably cannot
/// beat the current threshold, so results are bit-identical to a full
/// dense scan restricted to documents matching at least one query term.
class Bm25Scorer {
 public:
  /// The index must be frozen and must outlive the scorer.
  explicit Bm25Scorer(const InvertedIndex* index, Bm25Params params = {});

  /// Scores every document against the bag-of-tokens `query`; returns a
  /// dense score vector indexed by DocId (0 for documents sharing no
  /// term). For callers that consume every score (e.g. CaSE's rank
  /// fusion); rankings-only callers should use Search.
  std::vector<float> ScoreAll(const std::vector<TokenId>& query) const;

  /// ScoreAll for a whole query set at once, one result row per query in
  /// input order. Queries are scored in parallel on the global ThreadPool
  /// (each row is independent, so output is identical at any UW_THREADS).
  std::vector<std::vector<float>> ScoreAllBatch(
      const std::vector<std::vector<TokenId>>& queries) const;

  /// Top-k documents for `query`, sorted by descending score (ascending
  /// doc id on ties). Only documents matching at least one query term are
  /// candidates — fewer than `k` matches return fewer than `k` results,
  /// never score-0 padding.
  std::vector<ScoredIndex> Search(const std::vector<TokenId>& query,
                                  size_t k) const;

  /// Search for a whole query set at once, one result list per query in
  /// input order, in parallel on the global ThreadPool (deterministic at
  /// any UW_THREADS).
  std::vector<std::vector<ScoredIndex>> SearchBatch(
      const std::vector<std::vector<TokenId>>& queries, size_t k) const;

  /// Per-term IDF (Robertson–Sparck-Jones with +1 flooring).
  double Idf(TokenId term) const;

 private:
  const InvertedIndex* index_;
  Bm25Params params_;
};

}  // namespace ultrawiki

#endif  // ULTRAWIKI_INDEX_BM25_H_
