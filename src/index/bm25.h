#ifndef ULTRAWIKI_INDEX_BM25_H_
#define ULTRAWIKI_INDEX_BM25_H_

#include <vector>

#include "index/inverted_index.h"
#include "math/topk.h"

namespace ultrawiki {

/// BM25 parameters (Robertson/Okapi defaults).
struct Bm25Params {
  double k1 = 1.2;
  double b = 0.75;
};

/// BM25 ranking over an InvertedIndex. Used for the dataset pipeline's
/// hard-negative mining ("employing the BM25-based search, we incorporated
/// entities highly similar to the target entities as hard negative
/// entities") and for the CaSE baseline's lexical channel.
class Bm25Scorer {
 public:
  /// The index must outlive the scorer.
  explicit Bm25Scorer(const InvertedIndex* index, Bm25Params params = {});

  /// Scores every document against the bag-of-tokens `query`; returns a
  /// dense score vector indexed by DocId (0 for documents sharing no term).
  std::vector<float> ScoreAll(const std::vector<TokenId>& query) const;

  /// ScoreAll for a whole query set at once, one result row per query in
  /// input order. Queries are scored in parallel on the global ThreadPool
  /// (each row is independent, so output is identical at any UW_THREADS).
  std::vector<std::vector<float>> ScoreAllBatch(
      const std::vector<std::vector<TokenId>>& queries) const;

  /// Top-k documents for `query`, sorted by descending score.
  std::vector<ScoredIndex> Search(const std::vector<TokenId>& query,
                                  size_t k) const;

  /// Per-term IDF (Robertson–Sparck-Jones with +1 flooring).
  double Idf(TokenId term) const;

 private:
  const InvertedIndex* index_;
  Bm25Params params_;
};

}  // namespace ultrawiki

#endif  // ULTRAWIKI_INDEX_BM25_H_
