#ifndef ULTRAWIKI_INDEX_BLOCK_CODEC_H_
#define ULTRAWIKI_INDEX_BLOCK_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace ultrawiki {

/// Byte-oriented codec for fixed-size posting blocks (PISA-style). A block
/// holds up to `kPostingBlockSize` postings from one term's list and is
/// encoded as two varint streams:
///
///   [doc-id deltas]  block-internal gaps; the first posting is stored as
///                    `doc - previous_block_last_doc` (with an implicit
///                    previous doc of -1 at the start of a list), so every
///                    delta is >= 1 and strictly-ascending doc ids are a
///                    decode-time invariant, not a convention.
///   [term freqs]     raw tf values, each >= 1.
///
/// Varints are LEB128 (7 data bits per byte, high bit = continuation),
/// capped at 5 bytes / 32 data bits. Decoding is fail-closed: a truncated
/// stream, an overlong varint, a delta of 0, a tf of 0, or trailing bytes
/// all reject the block rather than producing postings.
inline constexpr size_t kPostingBlockSize = 128;

/// Appends the LEB128 encoding of `value` to `out`.
void PutVarint32(uint32_t value, std::string* out);

/// Decodes one LEB128 varint from [p, end). Returns the position one past
/// the varint, or nullptr on truncation/overflow (value > 32 bits or more
/// than 5 bytes).
const uint8_t* GetVarint32(const uint8_t* p, const uint8_t* end,
                           uint32_t* value);

/// Encodes `count` postings (parallel doc/tf arrays, docs strictly
/// ascending and all > `previous_doc`, tfs >= 1) as one block appended to
/// `out`. Returns the encoded byte length.
size_t EncodePostingBlock(std::span<const int32_t> docs,
                          std::span<const int32_t> tfs, int32_t previous_doc,
                          std::string* out);

/// Decodes a block of exactly `count` postings from the `length` bytes at
/// `data` into the parallel output arrays (each sized >= count). Returns
/// false on any malformed input: truncation, trailing bytes, zero deltas
/// (non-ascending docs), zero tfs, or doc-id overflow past INT32_MAX.
bool DecodePostingBlock(const uint8_t* data, size_t length, size_t count,
                        int32_t previous_doc, int32_t* docs_out,
                        int32_t* tfs_out);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_INDEX_BLOCK_CODEC_H_
