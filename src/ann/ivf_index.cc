#include "ann/ivf_index.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/hash.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "math/simd_kernels.h"
#include "math/topk.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ultrawiki {

uint64_t FingerprintConfig(const IvfConfig& config) {
  Fnv1a hash;
  hash.Mix("IvfConfig");
  hash.Mix(config.nlist);
  hash.Mix(config.nprobe);
  hash.Mix(config.kmeans_iterations);
  hash.Mix(config.seed);
  return hash.digest();
}

bool AnnEnabledFromEnv() {
  const char* env = std::getenv("UW_ANN_ENABLE");
  return env != nullptr && *env != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

int AnnNprobeFromEnv() {
  if (const char* env = std::getenv("UW_ANN_NPROBE")) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<int>(parsed);
    UW_LOG(Warning) << "UW_ANN_NPROBE=" << env
                    << " is not positive; using the index default";
  }
  return 0;
}

namespace {

/// Index of the best-scoring centroid for `row`: highest blocked dot,
/// lowest centroid index on exact ties (the deterministic assignment the
/// whole build hinges on).
int AssignRow(std::span<const float> centroids, size_t dim,
              std::span<const float> row) {
  const std::vector<float> scores = ScoreMany(centroids, dim, row);
  int best = 0;
  for (int c = 1; c < static_cast<int>(scores.size()); ++c) {
    if (scores[static_cast<size_t>(c)] > scores[static_cast<size_t>(best)]) {
      best = c;
    }
  }
  return best;
}

}  // namespace

IvfIndex IvfIndex::Build(const EntityStore& store, IvfConfig config) {
  UW_SPAN("ann.build");
  obs::GetCounter("ann.builds").Increment();
  IvfIndex index;
  index.config_ = config;
  index.dim_ = store.dim();

  // Present entities in ascending-id order: the fixed row walk every
  // deterministic step below iterates in.
  std::vector<EntityId> ids;
  for (EntityId id = 0; static_cast<size_t>(id) < store.slot_count();
       ++id) {
    if (store.Has(id)) ids.push_back(id);
  }
  index.rows_ = ids.size();
  if (ids.empty()) return index;

  const size_t dim = index.dim_;
  const size_t rows = ids.size();
  size_t nlist =
      config.nlist > 0
          ? std::min<size_t>(static_cast<size_t>(config.nlist), rows)
          : static_cast<size_t>(
                std::ceil(std::sqrt(static_cast<double>(rows))));
  nlist = std::max<size_t>(1, std::min(nlist, rows));

  // Init: nlist distinct rows drawn with the fixed seed, sorted ascending
  // so centroid j is a pure function of the drawn id multiset.
  Rng rng(config.seed);
  std::vector<EntityId> picked = rng.SampleWithoutReplacement(ids, nlist);
  std::sort(picked.begin(), picked.end());
  index.centroids_.assign(nlist * dim, 0.0f);
  for (size_t c = 0; c < nlist; ++c) {
    const std::span<const float> u = store.UnitOf(picked[c]);
    std::copy(u.begin(), u.end(), index.centroids_.begin() + c * dim);
  }

  // Lloyd iterations of spherical k-means. Assignment is embarrassingly
  // parallel (each row is a pure function of the previous centroids);
  // the update pass accumulates serially in ascending-id order with
  // double precision, so the result is identical at any UW_THREADS.
  obs::Counter& iterations = obs::GetCounter("ann.kmeans_iterations");
  std::vector<int> assign(rows, 0);
  const int iters = std::max(1, config.kmeans_iterations);
  for (int it = 0; it < iters; ++it) {
    iterations.Increment();
    const std::span<const float> centroids(index.centroids_);
    std::vector<int> next = ThreadPool::Global().ParallelMap<int>(
        static_cast<int64_t>(rows), [&](int64_t r) {
          return AssignRow(centroids, dim,
                           store.UnitOf(ids[static_cast<size_t>(r)]));
        });
    assign = std::move(next);
    std::vector<double> sums(nlist * dim, 0.0);
    std::vector<int64_t> counts(nlist, 0);
    for (size_t r = 0; r < rows; ++r) {
      const std::span<const float> u = store.UnitOf(ids[r]);
      double* sum = sums.data() + static_cast<size_t>(assign[r]) * dim;
      for (size_t i = 0; i < dim; ++i) {
        sum[i] += static_cast<double>(u[i]);
      }
      ++counts[static_cast<size_t>(assign[r])];
    }
    for (size_t c = 0; c < nlist; ++c) {
      // Empty clusters keep their previous centroid: they may attract
      // rows in a later iteration, and a stale centroid is still a valid
      // probe target (its list just ends up empty).
      if (counts[c] == 0) continue;
      const double* sum = sums.data() + c * dim;
      double norm_sq = 0.0;
      for (size_t i = 0; i < dim; ++i) norm_sq += sum[i] * sum[i];
      const double norm = std::sqrt(norm_sq);
      if (norm <= 0.0) continue;
      float* centroid = index.centroids_.data() + c * dim;
      for (size_t i = 0; i < dim; ++i) {
        centroid[i] = static_cast<float>(sum[i] / norm);
      }
    }
  }

  index.lists_.resize(nlist);
  for (size_t r = 0; r < rows; ++r) {
    index.lists_[static_cast<size_t>(assign[r])].push_back(ids[r]);
  }
  obs::GetGauge("ann.nlist").Set(static_cast<int64_t>(nlist));
  obs::GetGauge("ann.rows").Set(static_cast<int64_t>(rows));
  return index;
}

StatusOr<IvfIndex> IvfIndex::Restore(
    IvfConfig config, size_t dim, std::vector<float> centroids,
    std::vector<std::vector<EntityId>> lists) {
  const size_t nlist = lists.size();
  if (nlist == 0) {
    if (!centroids.empty()) {
      return Status::Internal("ANN index has centroids but no lists");
    }
  } else if (dim == 0 || centroids.size() != nlist * dim) {
    return Status::Internal("ANN index centroid geometry mismatch");
  }
  size_t rows = 0;
  for (const std::vector<EntityId>& list : lists) {
    for (size_t i = 0; i < list.size(); ++i) {
      if (list[i] < 0) {
        return Status::Internal("ANN index list holds a negative id");
      }
      if (i > 0 && list[i] <= list[i - 1]) {
        return Status::Internal("ANN index list is not strictly ascending");
      }
    }
    rows += list.size();
  }
  IvfIndex index;
  index.config_ = config;
  index.dim_ = dim;
  index.rows_ = rows;
  index.centroids_ = std::move(centroids);
  index.lists_ = std::move(lists);
  return index;
}

std::vector<EntityId> IvfIndex::Candidates(
    std::span<const float> seed_centroid, int nprobe, size_t k_cand) const {
  UW_SPAN("ann.candidates");
  obs::GetCounter("ann.queries").Increment();
  std::vector<EntityId> out;
  if (lists_.empty()) return out;
  UW_CHECK_EQ(seed_centroid.size(), dim_);

  // First stage scores nlist centroid rows — not the store's `rows_`
  // entity rows — which is the whole scaling argument.
  obs::GetCounter("ann.centroid_rows_scored")
      .Increment(static_cast<int64_t>(lists_.size()));
  const std::vector<float> scores =
      ScoreMany(centroids_, dim_, seed_centroid);
  std::vector<ScoredIndex> order(scores.size());
  for (size_t c = 0; c < scores.size(); ++c) {
    order[c] = ScoredIndex{scores[c], c};
  }
  // RanksBefore: score descending, centroid index ascending on ties, NaN
  // last — the same total order every ranking stage in the repo uses.
  SortByScoreDescending(order);

  const size_t probe_floor = std::min<size_t>(
      lists_.size(), static_cast<size_t>(std::max(1, nprobe)));
  size_t probed = 0;
  for (const ScoredIndex& pick : order) {
    if (probed >= probe_floor && out.size() >= k_cand) break;
    const std::vector<EntityId>& members = lists_[pick.index];
    out.insert(out.end(), members.begin(), members.end());
    ++probed;
  }
  // Lists are disjoint, so the union is duplicate-free; ascending-id
  // output gives the rerank a deterministic scoring order.
  std::sort(out.begin(), out.end());
  obs::GetCounter("ann.lists_probed")
      .Increment(static_cast<int64_t>(probed));
  obs::GetCounter("ann.candidates_returned")
      .Increment(static_cast<int64_t>(out.size()));
  if (rows_ > 0) {
    obs::GetGauge("ann.candidate_fraction_x1000")
        .Set(static_cast<int64_t>(out.size() * 1000 / rows_));
  }
  return out;
}

}  // namespace ultrawiki
