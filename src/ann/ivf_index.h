#ifndef ULTRAWIKI_ANN_IVF_INDEX_H_
#define ULTRAWIKI_ANN_IVF_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "embedding/entity_store.h"

namespace ultrawiki {

/// Controls the IVF-Flat approximate first-stage retriever.
struct IvfConfig {
  /// Number of inverted lists (k-means clusters). 0 = auto:
  /// ceil(sqrt(present rows)), clamped to [1, rows].
  int nlist = 0;
  /// Default number of lists probed per query — the recall knob. Larger
  /// probes more candidates (higher recall, more exact-rerank work);
  /// nprobe == nlist degenerates to the exact full scan. Callers may
  /// override per query (RetExpan resolves UW_ANN_NPROBE here).
  int nprobe = 16;
  /// Lloyd iterations of the deterministic spherical k-means.
  int kmeans_iterations = 8;
  /// Seed of the deterministic centroid initialization.
  uint64_t seed = 17;
};

/// Deterministic fingerprint of every IVF knob (artifact-cache key part).
uint64_t FingerprintConfig(const IvfConfig& config);

/// IVF-Flat candidate retriever over an EntityStore's pre-normalized unit
/// rows: deterministic spherical k-means partitions the present entities
/// into `nlist` inverted lists; at query time the seed centroid is scored
/// against the `nlist` centroid rows (blocked kernels, one dot per list)
/// and the members of the best `nprobe` lists become the candidate
/// superset handed to the *exact* blocked-kernel rerank.
///
/// Determinism contract: Build() is a pure function of the store's rows
/// and the config — fixed seed, fixed iteration order, ascending-id row
/// walk, blocked double-accumulation dots — so two builds (or a build and
/// a snapshot restore) produce bit-identical centroids and lists, and
/// Candidates() is a pure function of (centroid bytes, query centroid,
/// nprobe, k_cand) at any UW_THREADS. At nprobe >= nlist the candidate
/// set is exactly every present entity, which is what the parity test
/// leans on: ANN first stage + exact rerank == full scan, bit for bit.
class IvfIndex {
 public:
  /// Clusters the present rows of `store`. The store must outlive nothing
  /// — the index copies the centroids and keeps only entity ids, so it is
  /// self-contained once built (snapshots restore without the store).
  static IvfIndex Build(const EntityStore& store, IvfConfig config = {});

  /// Rebuilds an index from serialized parts (the snapshot load path).
  /// Validates geometry: `centroids.size() == nlist * dim`, every member
  /// id non-negative, each list strictly ascending. Returns kInternal on
  /// any violation so corrupt snapshots fail closed.
  static StatusOr<IvfIndex> Restore(IvfConfig config, size_t dim,
                                    std::vector<float> centroids,
                                    std::vector<std::vector<EntityId>> lists);

  IvfIndex(IvfIndex&&) = default;
  IvfIndex& operator=(IvfIndex&&) = default;
  IvfIndex(const IvfIndex&) = delete;
  IvfIndex& operator=(const IvfIndex&) = delete;

  /// First-stage retrieval: scores `seed_centroid` (dim floats, the exact
  /// fold EntityStore::SeedCentroidOf builds) against every list centroid,
  /// probes lists in descending score order (centroid-index tie-break),
  /// and returns the union of their members in ascending-id order. Probes
  /// at least min(nprobe, nlist) lists and keeps probing past `nprobe`
  /// while fewer than `k_cand` candidates have been gathered, so the
  /// exact rerank is never starved below its requested depth.
  std::vector<EntityId> Candidates(std::span<const float> seed_centroid,
                                   int nprobe, size_t k_cand) const;

  const IvfConfig& config() const { return config_; }
  int nlist() const { return static_cast<int>(lists_.size()); }
  size_t dim() const { return dim_; }
  /// Total entities across all lists (= present rows of the built store).
  size_t rows() const { return rows_; }

  /// Serialization access.
  std::span<const float> centroids() const { return centroids_; }
  const std::vector<std::vector<EntityId>>& lists() const { return lists_; }

 private:
  IvfIndex() = default;

  IvfConfig config_;
  size_t dim_ = 0;
  size_t rows_ = 0;
  std::vector<float> centroids_;  // row-major nlist x dim
  std::vector<std::vector<EntityId>> lists_;  // ascending ids per list
};

/// True when `UW_ANN_ENABLE` is set to a non-empty value other than "0":
/// the pipeline then builds the IVF index and attaches it to RetExpan.
bool AnnEnabledFromEnv();

/// Positive value of `UW_ANN_NPROBE`, or 0 when unset/invalid (callers
/// fall back to the index's configured default).
int AnnNprobeFromEnv();

}  // namespace ultrawiki

#endif  // ULTRAWIKI_ANN_IVF_INDEX_H_
