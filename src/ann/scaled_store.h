#ifndef ULTRAWIKI_ANN_SCALED_STORE_H_
#define ULTRAWIKI_ANN_SCALED_STORE_H_

#include <cstddef>

#include "corpus/generator.h"
#include "embedding/entity_store.h"

namespace ultrawiki {

/// Builds an EntityStore over the streamed scaling corpus
/// (GenerateScaledEntities) without ever materializing the corpus: each
/// entity's hashed sentence tokens are folded into one `dim`-dimensional
/// row by signed hashed projection (feature = token mod dim, sign from a
/// high token bit) the moment they are streamed, and only the rows
/// persist. Rows of one class share its topic-token mass, so they
/// cluster — which is what gives the IVF first stage a recall@k worth
/// measuring — while the attribute + noise tokens differentiate entities
/// within a class. Deterministic in (config, dim); requires
/// config.scale_entities > 0.
EntityStore BuildScaledStore(const GeneratorConfig& config,
                             size_t dim = 64);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_ANN_SCALED_STORE_H_
