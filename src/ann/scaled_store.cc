#include "ann/scaled_store.h"

#include <utility>
#include <vector>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ultrawiki {

EntityStore BuildScaledStore(const GeneratorConfig& config, size_t dim) {
  UW_SPAN("ann.scaled_store");
  UW_CHECK_GT(dim, 0u);
  UW_CHECK_GT(config.scale_entities, 0);
  std::vector<Vec> hidden(static_cast<size_t>(config.scale_entities));
  obs::Counter& streamed = obs::GetCounter("ann.scaled_entities_streamed");
  GenerateScaledEntities(config, [&](const ScaledEntity& entity) {
    Vec& row = hidden[static_cast<size_t>(entity.id)];
    row.assign(dim, 0.0f);
    for (const auto& sentence : entity.sentences) {
      for (const uint64_t token : sentence) {
        // Signed hashed projection; the sign bit is taken far from the
        // modulus bits so bucket and sign stay independent.
        const size_t bucket = static_cast<size_t>(token % dim);
        row[bucket] += (token >> 33) & 1 ? 1.0f : -1.0f;
      }
    }
    streamed.Increment();
  });
  return EntityStore::Restore(dim, std::move(hidden));
}

}  // namespace ultrawiki
