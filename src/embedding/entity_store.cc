#include "embedding/entity_store.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "math/simd_kernels.h"
#include "math/vec.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ultrawiki {

std::vector<TokenId> MaskedContext(const Sentence& sentence,
                                   const std::vector<TokenId>* prefix) {
  std::vector<TokenId> context;
  context.reserve(sentence.tokens.size() +
                  (prefix != nullptr ? prefix->size() : 0));
  if (prefix != nullptr) {
    context.insert(context.end(), prefix->begin(), prefix->end());
  }
  for (size_t i = 0; i < sentence.tokens.size(); ++i) {
    const int pos = static_cast<int>(i);
    if (pos >= sentence.mention_begin &&
        pos < sentence.mention_begin + sentence.mention_len) {
      continue;  // the [MASK]ed mention span
    }
    context.push_back(sentence.tokens[i]);
  }
  return context;
}

namespace {

/// Shared iteration: calls `fn(sentence)` for up to `cap` sentences of
/// each entity (deterministic: first `cap` in corpus order).
template <typename Fn>
void ForEachCappedSentence(const Corpus& corpus, EntityId id, int cap,
                           Fn&& fn) {
  const std::vector<int>& sentence_ids = corpus.SentencesOf(id);
  const int limit =
      std::min<int>(cap, static_cast<int>(sentence_ids.size()));
  for (int s = 0; s < limit; ++s) {
    fn(corpus.sentence(static_cast<size_t>(sentence_ids[static_cast<size_t>(s)])));
  }
}

const std::vector<TokenId>* PrefixFor(const EntityStoreConfig& config,
                                      EntityId id) {
  if (config.entity_prefixes == nullptr) return nullptr;
  if (static_cast<size_t>(id) >= config.entity_prefixes->size()) {
    return nullptr;
  }
  return &(*config.entity_prefixes)[static_cast<size_t>(id)];
}

}  // namespace

EntityStore EntityStore::Build(const Corpus& corpus,
                               const ContextEncoder& encoder,
                               const std::vector<EntityId>& entities,
                               const EntityStoreConfig& config) {
  UW_SPAN("entity_store.build");
  static obs::Counter& entities_built =
      obs::GetCounter("entity_store.entities_built");
  static obs::Counter& sentences_encoded =
      obs::GetCounter("entity_store.sentences_encoded");
  entities_built.Increment(static_cast<int64_t>(entities.size()));
  EntityStore store(static_cast<size_t>(encoder.config().hidden_dim));
  std::vector<Vec> slots(corpus.entity_count());
  for (EntityId id : entities) {
    UW_CHECK_GE(id, 0);
    UW_CHECK_LT(static_cast<size_t>(id), corpus.entity_count());
  }
  // Each entity's representation is an independent encode-and-average;
  // slots are written back sequentially in `entities` order, so the store
  // is identical at every thread count.
  std::vector<Vec> built = ThreadPool::Global().ParallelMap<Vec>(
      static_cast<int64_t>(entities.size()), [&](int64_t e) {
        const EntityId id = entities[static_cast<size_t>(e)];
        Vec sum(store.dim_, 0.0f);
        int used = 0;
        ForEachCappedSentence(
            corpus, id, config.max_sentences_per_entity,
            [&](const Sentence& sentence) {
              const std::vector<TokenId> context =
                  MaskedContext(sentence, nullptr);
              const std::vector<TokenId>* prefix = PrefixFor(config, id);
              static const std::vector<TokenId> kNoPrefix;
              const Vec hidden = encoder.EncodeWithPrefix(
                  prefix != nullptr ? *prefix : kNoPrefix, context);
              AccumulateInPlace(sum, hidden);
              ++used;
            });
        sentences_encoded.Increment(used);
        if (used == 0) return Vec();
        Scale(1.0f / static_cast<float>(used), sum);
        return sum;
      });
  for (size_t e = 0; e < entities.size(); ++e) {
    if (built[e].empty()) continue;
    slots[static_cast<size_t>(entities[e])] = std::move(built[e]);
  }
  if (config.center) {
    Vec mean(store.dim_, 0.0f);
    int64_t built = 0;
    for (const Vec& h : slots) {
      if (h.empty()) continue;
      AccumulateInPlace(mean, h);
      ++built;
    }
    if (built > 0) {
      Scale(1.0f / static_cast<float>(built), mean);
      for (Vec& h : slots) {
        if (h.empty()) continue;
        for (size_t i = 0; i < h.size(); ++i) h[i] -= mean[i];
      }
    }
  }
  store.FinalizeFromSlots(std::move(slots));
  return store;
}

EntityStore EntityStore::Restore(size_t dim, std::vector<Vec> hidden) {
  EntityStore store(dim);
  for (const Vec& h : hidden) {
    UW_CHECK(h.empty() || h.size() == dim);
  }
  store.FinalizeFromSlots(std::move(hidden));
  return store;
}

void EntityStore::FinalizeFromSlots(std::vector<Vec> hidden) {
  zero_.assign(dim_, 0.0f);
  row_of_.assign(hidden.size(), -1);
  size_t rows = 0;
  for (const Vec& h : hidden) {
    if (!h.empty()) ++rows;
  }
  data_.resize(rows * dim_);
  unit_.resize(rows * dim_);
  norms_.resize(rows);
  // Rows are packed in ascending EntityId order, so the layout — and with
  // it every kernel result — is a pure function of the slot contents,
  // identical between a fresh Build() and a snapshot Restore().
  size_t row = 0;
  for (size_t slot = 0; slot < hidden.size(); ++slot) {
    const Vec& h = hidden[slot];
    if (h.empty()) continue;
    row_of_[slot] = static_cast<int32_t>(row);
    std::copy(h.begin(), h.end(), data_.begin() + row * dim_);
    const std::span<const float> raw(data_.data() + row * dim_, dim_);
    const double norm = NormBlocked(raw);
    norms_[row] = static_cast<float>(norm);
    float* unit = unit_.data() + row * dim_;
    if (norm > 0.0) {
      const double inv = 1.0 / norm;
      for (size_t i = 0; i < dim_; ++i) {
        unit[i] = static_cast<float>(static_cast<double>(raw[i]) * inv);
      }
    } else {
      std::fill(unit, unit + dim_, 0.0f);
    }
    ++row;
  }
}

std::span<const float> EntityStore::HiddenOf(EntityId id) const {
  if (!Has(id)) return zero_;
  const size_t row =
      static_cast<size_t>(row_of_[static_cast<size_t>(id)]);
  return std::span<const float>(data_.data() + row * dim_, dim_);
}

std::span<const float> EntityStore::UnitOf(EntityId id) const {
  if (!Has(id)) return zero_;
  const size_t row =
      static_cast<size_t>(row_of_[static_cast<size_t>(id)]);
  return std::span<const float>(unit_.data() + row * dim_, dim_);
}

float EntityStore::NormOf(EntityId id) const {
  if (!Has(id)) return 0.0f;
  return norms_[static_cast<size_t>(row_of_[static_cast<size_t>(id)])];
}

bool EntityStore::Has(EntityId id) const {
  return id >= 0 && static_cast<size_t>(id) < row_of_.size() &&
         row_of_[static_cast<size_t>(id)] >= 0;
}

float EntityStore::Similarity(EntityId a, EntityId b) const {
  // Rows are pre-normalized, so cosine is a pure blocked dot; the
  // zero-norm/absent convention (similarity 0) falls out of the zero unit
  // rows.
  return static_cast<float>(DotBlocked(UnitOf(a), UnitOf(b)));
}

std::vector<float> EntityStore::SeedCentroidScores(
    const std::vector<EntityId>& seeds,
    const std::vector<EntityId>& candidates) const {
  UW_SPAN("kernel.seed_centroid_scores");
  std::vector<float> out(candidates.size(), 0.0f);
  if (seeds.empty() || candidates.empty()) return out;
  return CentroidScores(SeedCentroidOf(seeds), candidates);
}

Vec EntityStore::SeedCentroidOf(const std::vector<EntityId>& seeds) const {
  Vec centroid_f(dim_, 0.0f);
  if (seeds.empty()) return centroid_f;
  static obs::Counter& folds = obs::GetCounter("kernel.centroid_folds");
  folds.Increment();
  // mean_s cos(c, s) = mean_s dot(ĉ, ŝ) = dot(ĉ, mean_s ŝ): fold the
  // per-seed average into one centroid (double accumulation, seed order
  // fixed by the argument). Absent seeds keep their slot in the
  // denominator via the zero unit row, matching the per-pair path.
  std::vector<double> centroid(dim_, 0.0);
  for (EntityId seed : seeds) {
    const std::span<const float> u = UnitOf(seed);
    for (size_t i = 0; i < dim_; ++i) {
      centroid[i] += static_cast<double>(u[i]);
    }
  }
  const double inv = 1.0 / static_cast<double>(seeds.size());
  for (size_t i = 0; i < dim_; ++i) {
    centroid_f[i] = static_cast<float>(centroid[i] * inv);
  }
  return centroid_f;
}

std::vector<float> EntityStore::CentroidScores(
    std::span<const float> centroid,
    const std::vector<EntityId>& ids) const {
  UW_CHECK_EQ(centroid.size(), dim_);
  static obs::Counter& rows = obs::GetCounter("kernel.rows_scored");
  std::vector<float> out(ids.size(), 0.0f);
  if (ids.empty()) return out;
  rows.Increment(static_cast<int64_t>(ids.size()));
  for (size_t c = 0; c < ids.size(); ++c) {
    out[c] = static_cast<float>(DotBlocked(UnitOf(ids[c]), centroid));
  }
  return out;
}

float SparseCosine(const SparseVec& a, const SparseVec& b) {
  if (a.norm <= 0.0f || b.norm <= 0.0f) return 0.0f;
  double dot = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.entries.size() && j < b.entries.size()) {
    if (a.entries[i].first < b.entries[j].first) {
      ++i;
    } else if (a.entries[i].first > b.entries[j].first) {
      ++j;
    } else {
      dot += static_cast<double>(a.entries[i].second) *
             static_cast<double>(b.entries[j].second);
      ++i;
      ++j;
    }
  }
  return static_cast<float>(dot / (static_cast<double>(a.norm) *
                                   static_cast<double>(b.norm)));
}

std::vector<SparseVec> BuildSparseDistributions(
    const Corpus& corpus, const ContextEncoder& encoder,
    const std::vector<EntityId>& entities, const EntityStoreConfig& config,
    int top_k) {
  UW_CHECK_GT(top_k, 0);
  const std::vector<Vec> dense =
      BuildDistributionRepresentations(corpus, encoder, entities, config);
  std::vector<SparseVec> result(dense.size());
  // Sparsification is per-row independent: parallel over rows, each
  // writing only its own SparseVec.
  ThreadPool::Global().ParallelFor(
      0, static_cast<int64_t>(dense.size()), /*grain=*/0, [&](int64_t row) {
    const size_t e = static_cast<size_t>(row);
    if (dense[e].empty()) return;
    // Top-k by mass, then re-sorted by index for the merge-based cosine.
    std::vector<std::pair<int32_t, float>> entries;
    entries.reserve(dense[e].size());
    for (size_t i = 0; i < dense[e].size(); ++i) {
      entries.emplace_back(static_cast<int32_t>(i), dense[e][i]);
    }
    const size_t keep = std::min<size_t>(static_cast<size_t>(top_k),
                                         entries.size());
    std::partial_sort(entries.begin(), entries.begin() + keep,
                      entries.end(), [](const auto& a, const auto& b) {
                        if (a.second != b.second) return a.second > b.second;
                        return a.first < b.first;
                      });
    entries.resize(keep);
    std::sort(entries.begin(), entries.end());
    SparseVec& sparse = result[e];
    sparse.entries = std::move(entries);
    double norm_sq = 0.0;
    for (const auto& [index, value] : sparse.entries) {
      norm_sq += static_cast<double>(value) * static_cast<double>(value);
    }
    sparse.norm = static_cast<float>(std::sqrt(norm_sq));
  });
  return result;
}

std::vector<Vec> BuildDistributionRepresentations(
    const Corpus& corpus, const ContextEncoder& encoder,
    const std::vector<EntityId>& entities, const EntityStoreConfig& config) {
  UW_SPAN("entity_store.distributions");
  std::vector<Vec> result(corpus.entity_count());
  // Same parallel shape as EntityStore::Build: independent per-entity
  // work into per-index slots, sequential write-back in `entities` order.
  std::vector<Vec> built = ThreadPool::Global().ParallelMap<Vec>(
      static_cast<int64_t>(entities.size()), [&](int64_t e) {
        const EntityId id = entities[static_cast<size_t>(e)];
        Vec sum(encoder.entity_vocab_size(), 0.0f);
        int used = 0;
        ForEachCappedSentence(
            corpus, id, config.max_sentences_per_entity,
            [&](const Sentence& sentence) {
              const std::vector<TokenId> context =
                  MaskedContext(sentence, nullptr);
              const std::vector<TokenId>* prefix = PrefixFor(config, id);
              static const std::vector<TokenId> kNoPrefix;
              Vec hidden = encoder.EncodeWithPrefix(
                  prefix != nullptr ? *prefix : kNoPrefix, context);
              if (config.distribution_temperature != 1.0f &&
                  config.distribution_temperature > 0.0f) {
                Scale(1.0f / config.distribution_temperature, hidden);
              }
              const Vec dist = encoder.EntityDistribution(hidden);
              AccumulateInPlace(sum, dist);
              ++used;
            });
        if (used == 0) return Vec();
        Scale(1.0f / static_cast<float>(used), sum);
        return sum;
      });
  for (size_t e = 0; e < entities.size(); ++e) {
    if (built[e].empty()) continue;
    result[static_cast<size_t>(entities[e])] = std::move(built[e]);
  }
  return result;
}

}  // namespace ultrawiki
