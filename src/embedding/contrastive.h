#ifndef ULTRAWIKI_EMBEDDING_CONTRASTIVE_H_
#define ULTRAWIKI_EMBEDDING_CONTRASTIVE_H_

#include <vector>

#include "corpus/corpus.h"
#include "embedding/encoder.h"
#include "embedding/trainer.h"

namespace ultrawiki {

/// One mined training group for ultra-fine-grained contrastive learning
/// (paper §5.1.2): L_pos / L_neg come from the oracle's classification of
/// the initial expansion L_0; `other_class` is a sample of L_0-bar
/// (entities from other fine-grained classes); `conditioning` holds the
/// query's positive and negative seed-name tokens, appended to every
/// training sample to implicitly specify the ultra-fine-grained semantics.
struct ContrastiveGroup {
  std::vector<EntityId> l_pos;
  std::vector<EntityId> l_neg;
  std::vector<EntityId> other_class;
  std::vector<TokenId> conditioning;
};

/// The full mined dataset (one group per query).
struct ContrastiveData {
  std::vector<ContrastiveGroup> groups;
};

/// InfoNCE training hyper-parameters with the three data-ablation toggles
/// of paper Table 7.
struct ContrastiveTrainConfig {
  uint64_t seed = 9;
  int epochs = 2;
  /// Anchors sampled per group per epoch.
  int anchors_per_group = 12;
  int hard_negatives_per_anchor = 4;
  int normal_negatives_per_anchor = 4;
  float temperature = 0.12f;
  float learning_rate = 0.04f;
  /// Table 7 toggles: hard negatives are (L_pos, L_neg) pairs; normal
  /// negatives are (L_pos ∪ L_neg, other-class) pairs; positives are
  /// same-side pairs — when disabled, the anchor pairs with another
  /// sentence of the same entity instead.
  bool use_hard_negatives = true;
  bool use_normal_negatives = true;
  bool use_positives = true;
};

/// Runs ultra-fine-grained contrastive training of `encoder` over the
/// mined `data`. The InfoNCE loss operates in the projected hypersphere
/// space; gradients flow through the shared encoder body, refining the
/// hidden-state geometry RetExpan ranks with.
TrainStats TrainContrastive(const Corpus& corpus, ContextEncoder& encoder,
                            const ContrastiveData& data,
                            const ContrastiveTrainConfig& config);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_EMBEDDING_CONTRASTIVE_H_
