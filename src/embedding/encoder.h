#ifndef ULTRAWIKI_EMBEDDING_ENCODER_H_
#define ULTRAWIKI_EMBEDDING_ENCODER_H_

#include <span>
#include <vector>

#include "common/rng.h"
#include "math/matrix.h"
#include "math/vec.h"
#include "text/vocabulary.h"

namespace ultrawiki {

/// Hyper-parameters of the context encoder.
struct EncoderConfig {
  uint64_t seed = 3;
  int token_dim = 64;       // token embedding width
  int hidden_dim = 64;      // hidden-state width (the paper's h_[MASK])
  int projection_dim = 32;  // contrastive hypersphere width (f_cl output)
  /// Relative pooling weight of retrieval-augmentation prefix tokens. The
  /// prefix is constant across all of an entity's sentences, so at full
  /// weight it would dominate the averaged representation and erase the
  /// contextual signal; a fractional weight keeps it advisory — the
  /// "simply concatenating retrieved knowledge is not the optimal way to
  /// leverage it" observation of paper §6.4.2, made concrete.
  float augmentation_weight = 0.35f;
};

/// The BERT-base stand-in (see DESIGN.md): a shallow trainable encoder that
/// maps a masked-entity context (bag of tokens) to a hidden state
///   h = tanh(W1 · mean(E[tokens]) + b1),
/// which plays the role of the paper's contextual embedding at the [MASK]
/// position (Eq. 1). An entity-prediction head (output entity embeddings +
/// bias, Eq. 2) and a contrastive projection head (the paper's MLP mapping
/// f_cl onto a hypersphere) hang off the same hidden state. All parameters
/// are exposed to the trainers, which hand-derive gradients.
class ContextEncoder {
 public:
  ContextEncoder(size_t token_vocab_size, size_t entity_vocab_size,
                 EncoderConfig config);

  // Not implicitly copyable (parameters are large); movable. Use Clone()
  // for the deliberate copies strategy variants start from.
  ContextEncoder(ContextEncoder&&) = default;
  ContextEncoder& operator=(ContextEncoder&&) = default;
  ContextEncoder(const ContextEncoder&) = delete;
  ContextEncoder& operator=(const ContextEncoder&) = delete;

  /// Deep copy; the +Contrast strategy clones the entity-prediction-
  /// trained encoder before contrastive tuning so the base representations
  /// stay available for comparison.
  ContextEncoder Clone() const;

  /// Sets per-token pooling weights (SIF/IDF-style). Without weights the
  /// pooling is a flat mean and high-frequency template words drown the
  /// informative low-frequency tokens; the paper's BERT solves this with
  /// attention, a shallow encoder needs explicit down-weighting.
  void SetTokenWeights(std::vector<float> weights);

  /// Pooling weight of `token` (1.0 when no weights are set).
  float TokenWeight(TokenId token) const;

  /// Weighted mean token embedding of `context` (the masked sentence minus
  /// its mention span, plus any augmentation prefix). Unknown/negative ids
  /// are skipped; an empty effective context yields the zero vector.
  Vec ContextMean(std::span<const TokenId> context) const;

  /// Weighted mean of an augmentation `prefix` (scaled by
  /// config().augmentation_weight) plus the sentence `context`.
  Vec ContextMeanWithPrefix(std::span<const TokenId> prefix,
                            std::span<const TokenId> context) const;

  /// Hidden state for a prefixed context.
  Vec EncodeWithPrefix(std::span<const TokenId> prefix,
                       std::span<const TokenId> context) const;

  /// Effective pooling weight of `token` in a given role (prefix tokens
  /// carry the augmentation multiplier). Exposed for the trainers'
  /// backprop.
  float EffectiveWeight(TokenId token, bool is_prefix) const {
    return TokenWeight(token) *
           (is_prefix ? config_.augmentation_weight : 1.0f);
  }

  /// Hidden state h for a context (Eq. 1 analogue).
  Vec EncodeContext(std::span<const TokenId> context) const;

  /// Hidden state given a precomputed context mean (used by trainers to
  /// avoid recomputing the mean during backprop).
  Vec HiddenFromMean(const Vec& mean) const;

  /// Logit of entity `e` for hidden state `h` (Eq. 2 without softmax).
  float EntityLogit(const Vec& hidden, size_t entity) const;

  /// Full probability distribution over the entity vocabulary for `h`
  /// (the representation ProbExpan ranks with).
  Vec EntityDistribution(const Vec& hidden) const;

  /// L2-normalized contrastive projection z = normalize(P·h + bp).
  Vec Project(const Vec& hidden) const;

  // --- Parameter access for the trainers. ---
  Matrix& token_embeddings() { return token_embeddings_; }
  const Matrix& token_embeddings() const { return token_embeddings_; }
  Matrix& w1() { return w1_; }
  const Matrix& w1() const { return w1_; }
  Vec& b1() { return b1_; }
  const Vec& b1() const { return b1_; }
  Matrix& output_embeddings() { return output_embeddings_; }
  const Matrix& output_embeddings() const { return output_embeddings_; }
  Vec& output_bias() { return output_bias_; }
  const Vec& output_bias() const { return output_bias_; }
  Matrix& projection() { return projection_; }
  const Matrix& projection() const { return projection_; }
  Vec& projection_bias() { return projection_bias_; }
  const Vec& projection_bias() const { return projection_bias_; }

  const EncoderConfig& config() const { return config_; }
  size_t token_vocab_size() const { return token_embeddings_.rows(); }
  size_t entity_vocab_size() const { return output_embeddings_.rows(); }

 private:
  EncoderConfig config_;
  std::vector<float> token_weights_;  // empty => flat mean
  Matrix token_embeddings_;  // V_tok × token_dim
  Matrix w1_;                // hidden_dim × token_dim
  Vec b1_;                   // hidden_dim
  Matrix output_embeddings_; // V_ent × hidden_dim
  Vec output_bias_;          // V_ent
  Matrix projection_;        // projection_dim × hidden_dim
  Vec projection_bias_;      // projection_dim
};

/// SIF pooling weights over a vocabulary: w(t) = a / (a + p(t)) with p the
/// corpus unigram probability (Arora et al.'s smooth inverse frequency).
std::vector<float> ComputeSifTokenWeights(const Vocabulary& vocabulary,
                                          double a = 3e-3);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_EMBEDDING_ENCODER_H_
