#ifndef ULTRAWIKI_EMBEDDING_ENTITY_STORE_H_
#define ULTRAWIKI_EMBEDDING_ENTITY_STORE_H_

#include <span>
#include <vector>

#include "corpus/corpus.h"
#include "embedding/encoder.h"

namespace ultrawiki {

/// Returns the masked context of `sentence`: every token outside the
/// mention span, optionally preceded by an augmentation `prefix` (the
/// retrieval-augmentation strategy prepends entity introductions here).
std::vector<TokenId> MaskedContext(const Sentence& sentence,
                                   const std::vector<TokenId>* prefix);

/// Controls entity-representation extraction.
struct EntityStoreConfig {
  /// Cap on sentences averaged per entity (keeps extraction O(V · cap)).
  int max_sentences_per_entity = 16;
  /// Optional per-entity augmentation prefixes, indexed by EntityId; when
  /// set, each sentence context is prefixed before encoding (paper §5.1.3).
  const std::vector<std::vector<TokenId>>* entity_prefixes = nullptr;
  /// Softmax temperature for the distribution representations; >1
  /// flattens the distribution, emulating the limited capacity of the
  /// probability space the paper attributes to ProbExpan.
  float distribution_temperature = 1.0f;
  /// Subtract the corpus-wide mean representation ("all-but-the-top"
  /// post-processing). Shallow encoders produce anisotropic hidden
  /// spaces where a common direction hides the fine-grained signal;
  /// centering restores cosine resolution.
  bool center = true;
};

/// Holds the per-entity representations RetExpan ranks with: the mean
/// hidden state h(e) over the entity's masked sentence contexts (the
/// paper's "average of the contextual embedding at the mask position
/// across all sentences containing it").
///
/// Storage is one contiguous row-major matrix over the present entities
/// plus a per-entity L2-norm cache and a pre-normalized (unit-row) copy,
/// all (re)built deterministically by Build() and Restore(): cosine
/// similarity is a single cached-norm dot, and the batched scoring paths
/// (SeedCentroidScores) run the blocked kernels of math/simd_kernels.h
/// over the unit rows with no per-call norm recomputation.
class EntityStore {
 public:
  /// Encodes every entity in `entities` with `encoder`.
  static EntityStore Build(const Corpus& corpus,
                           const ContextEncoder& encoder,
                           const std::vector<EntityId>& entities,
                           const EntityStoreConfig& config = {});

  EntityStore(EntityStore&&) = default;
  EntityStore& operator=(EntityStore&&) = default;
  EntityStore(const EntityStore&) = delete;
  EntityStore& operator=(const EntityStore&) = delete;

  /// Mean hidden state of `id`; the zero vector if the entity was not in
  /// the build set or has no sentences.
  std::span<const float> HiddenOf(EntityId id) const;

  /// Unit-normalized row of `id`; the zero vector if absent or zero-norm.
  std::span<const float> UnitOf(EntityId id) const;

  /// Cached L2 norm of `id`'s representation; 0 if absent.
  float NormOf(EntityId id) const;

  bool Has(EntityId id) const;

  /// Cosine similarity between the representations of two entities,
  /// computed as a blocked dot over the pre-normalized rows (norms are
  /// cached at Build()/Restore() time, never recomputed per call).
  float Similarity(EntityId a, EntityId b) const;

  /// Batched seed–candidate scoring for the paper's sco^pos/sco^neg: for
  /// every candidate c, returns mean_{s in seeds} cosine(c, s). Because
  /// rows are pre-normalized, the per-seed average folds exactly into one
  /// dot against the seed centroid (dot is linear in its second
  /// argument), turning O(|candidates|·|seeds|·dim) per-pair work into
  /// O((|candidates| + |seeds|)·dim). Absent seeds/candidates contribute
  /// a zero vector, matching the per-pair convention that their cosine
  /// is 0. Deterministic at any UW_THREADS.
  std::vector<float> SeedCentroidScores(
      const std::vector<EntityId>& seeds,
      const std::vector<EntityId>& candidates) const;

  /// The folded seed centroid SeedCentroidScores dots candidates against:
  /// mean of the seeds' unit rows (double accumulation in argument order,
  /// rounded to float per component). Exposed so the ANN first stage
  /// (ann/ivf_index.h) can probe with the exact same vector the exact
  /// rerank scores with. Empty seed sets yield the zero vector.
  Vec SeedCentroidOf(const std::vector<EntityId>& seeds) const;

  /// out[i] = float(DotBlocked(UnitOf(ids[i]), centroid)) — the exact
  /// per-candidate expression of SeedCentroidScores, over an explicit
  /// centroid. `centroid.size()` must equal dim(). Deterministic at any
  /// UW_THREADS; absent ids score exactly 0.0f (zero unit row).
  std::vector<float> CentroidScores(std::span<const float> centroid,
                                    const std::vector<EntityId>& ids) const;

  size_t dim() const { return dim_; }

  /// Serialization access: number of per-EntityId slots (present or not).
  size_t slot_count() const { return row_of_.size(); }

  /// Rebuilds a store from serialized parts (the snapshot load path).
  /// Every non-empty slot of `hidden` must have exactly `dim` entries.
  /// The norm cache and unit rows are rebuilt deterministically with the
  /// same kernels Build() uses, so a restored store scores bit-identically
  /// to the freshly built one it was saved from.
  static EntityStore Restore(size_t dim, std::vector<Vec> hidden);

 private:
  explicit EntityStore(size_t dim) : dim_(dim) {}

  /// Packs per-EntityId slots (empty = absent) into the contiguous
  /// matrix, norm cache, and unit rows. Shared by Build() and Restore()
  /// so both construction paths produce bit-identical scoring state.
  void FinalizeFromSlots(std::vector<Vec> hidden);

  size_t dim_;
  std::vector<int32_t> row_of_;  // indexed by EntityId; -1 => absent
  std::vector<float> data_;      // row-major raw hiddens, one row per present entity
  std::vector<float> unit_;      // row-major L2-normalized rows (zero row if norm 0)
  std::vector<float> norms_;     // per-row cached L2 norms
  Vec zero_;
};

/// Builds the probability-distribution representations ProbExpan ranks
/// with (softmax over the entity vocabulary, averaged across sentences).
/// Heavy (O(V_entities) per sentence), so it is separate from EntityStore.
std::vector<Vec> BuildDistributionRepresentations(
    const Corpus& corpus, const ContextEncoder& encoder,
    const std::vector<EntityId>& entities, const EntityStoreConfig& config);

/// Sparse probability-distribution representation: the top-k entries of
/// the softmax, index-sorted, with the norm cached for cosine. The
/// truncation embodies the "limited capacity of the probability space"
/// the paper blames for ProbExpan's coarser granularity, and keeps
/// similarity O(k).
struct SparseVec {
  std::vector<std::pair<int32_t, float>> entries;  // sorted by index
  float norm = 0.0f;
};

/// Cosine similarity between two index-sorted sparse vectors.
float SparseCosine(const SparseVec& a, const SparseVec& b);

/// Sparse (top-`top_k`) variant of BuildDistributionRepresentations,
/// indexed by EntityId.
std::vector<SparseVec> BuildSparseDistributions(
    const Corpus& corpus, const ContextEncoder& encoder,
    const std::vector<EntityId>& entities, const EntityStoreConfig& config,
    int top_k);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_EMBEDDING_ENTITY_STORE_H_
