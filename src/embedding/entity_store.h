#ifndef ULTRAWIKI_EMBEDDING_ENTITY_STORE_H_
#define ULTRAWIKI_EMBEDDING_ENTITY_STORE_H_

#include <vector>

#include "corpus/corpus.h"
#include "embedding/encoder.h"

namespace ultrawiki {

/// Returns the masked context of `sentence`: every token outside the
/// mention span, optionally preceded by an augmentation `prefix` (the
/// retrieval-augmentation strategy prepends entity introductions here).
std::vector<TokenId> MaskedContext(const Sentence& sentence,
                                   const std::vector<TokenId>* prefix);

/// Controls entity-representation extraction.
struct EntityStoreConfig {
  /// Cap on sentences averaged per entity (keeps extraction O(V · cap)).
  int max_sentences_per_entity = 16;
  /// Optional per-entity augmentation prefixes, indexed by EntityId; when
  /// set, each sentence context is prefixed before encoding (paper §5.1.3).
  const std::vector<std::vector<TokenId>>* entity_prefixes = nullptr;
  /// Softmax temperature for the distribution representations; >1
  /// flattens the distribution, emulating the limited capacity of the
  /// probability space the paper attributes to ProbExpan.
  float distribution_temperature = 1.0f;
  /// Subtract the corpus-wide mean representation ("all-but-the-top"
  /// post-processing). Shallow encoders produce anisotropic hidden
  /// spaces where a common direction hides the fine-grained signal;
  /// centering restores cosine resolution.
  bool center = true;
};

/// Holds the per-entity representations RetExpan ranks with: the mean
/// hidden state h(e) over the entity's masked sentence contexts (the
/// paper's "average of the contextual embedding at the mask position
/// across all sentences containing it").
class EntityStore {
 public:
  /// Encodes every entity in `entities` with `encoder`.
  static EntityStore Build(const Corpus& corpus,
                           const ContextEncoder& encoder,
                           const std::vector<EntityId>& entities,
                           const EntityStoreConfig& config = {});

  EntityStore(EntityStore&&) = default;
  EntityStore& operator=(EntityStore&&) = default;
  EntityStore(const EntityStore&) = delete;
  EntityStore& operator=(const EntityStore&) = delete;

  /// Mean hidden state of `id`; the zero vector if the entity was not in
  /// the build set or has no sentences.
  const Vec& HiddenOf(EntityId id) const;

  bool Has(EntityId id) const;

  /// Cosine similarity between the representations of two entities.
  float Similarity(EntityId a, EntityId b) const;

  size_t dim() const { return dim_; }

  /// Serialization access: the per-EntityId slots (empty vector = absent).
  const std::vector<Vec>& hidden_states() const { return hidden_; }

  /// Rebuilds a store from serialized parts (the snapshot load path).
  /// Every non-empty slot of `hidden` must have exactly `dim` entries.
  static EntityStore Restore(size_t dim, std::vector<Vec> hidden);

 private:
  explicit EntityStore(size_t dim) : dim_(dim) {}

  size_t dim_;
  std::vector<Vec> hidden_;  // indexed by EntityId; empty => absent
  Vec zero_;
};

/// Builds the probability-distribution representations ProbExpan ranks
/// with (softmax over the entity vocabulary, averaged across sentences).
/// Heavy (O(V_entities) per sentence), so it is separate from EntityStore.
std::vector<Vec> BuildDistributionRepresentations(
    const Corpus& corpus, const ContextEncoder& encoder,
    const std::vector<EntityId>& entities, const EntityStoreConfig& config);

/// Sparse probability-distribution representation: the top-k entries of
/// the softmax, index-sorted, with the norm cached for cosine. The
/// truncation embodies the "limited capacity of the probability space"
/// the paper blames for ProbExpan's coarser granularity, and keeps
/// similarity O(k).
struct SparseVec {
  std::vector<std::pair<int32_t, float>> entries;  // sorted by index
  float norm = 0.0f;
};

/// Cosine similarity between two index-sorted sparse vectors.
float SparseCosine(const SparseVec& a, const SparseVec& b);

/// Sparse (top-`top_k`) variant of BuildDistributionRepresentations,
/// indexed by EntityId.
std::vector<SparseVec> BuildSparseDistributions(
    const Corpus& corpus, const ContextEncoder& encoder,
    const std::vector<EntityId>& entities, const EntityStoreConfig& config,
    int top_k);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_EMBEDDING_ENTITY_STORE_H_
