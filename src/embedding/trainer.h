#ifndef ULTRAWIKI_EMBEDDING_TRAINER_H_
#define ULTRAWIKI_EMBEDDING_TRAINER_H_

#include <cstdint>
#include <vector>

#include "corpus/corpus.h"
#include "embedding/encoder.h"

namespace ultrawiki {

/// Result of a training run.
struct TrainStats {
  double final_loss = 0.0;
  int64_t steps = 0;
  int epochs = 0;
};

/// Hyper-parameters of the entity-prediction task (paper Eq. 2–3). The
/// softmax over the candidate vocabulary is approximated with sampled
/// negatives; label smoothing η mitigates over-penalizing entities that
/// share semantics with the ground-truth entity, exactly as in the paper.
struct EntityPredictionTrainConfig {
  uint64_t seed = 5;
  int epochs = 10;
  int negative_samples = 16;
  float label_smoothing = 0.075f;  // η
  float learning_rate = 0.08f;
  float min_learning_rate = 0.01f;  // linear decay floor
  /// Probability that a sampled negative comes from the ground-truth
  /// entity's own fine-grained class rather than the global unigram
  /// table. In-class negatives are what force the hidden state to encode
  /// the within-class (attribute) signal instead of stopping at class
  /// identity — the role hard negatives play throughout the ESE
  /// literature.
  float in_class_negative_fraction = 0.5f;
  /// Optional per-entity augmentation prefixes (retrieval augmentation is
  /// applied during training too, per paper §5.1.3).
  const std::vector<std::vector<TokenId>>* entity_prefixes = nullptr;
};

/// Trains `encoder` on the masked-entity prediction task over every
/// labelled sentence of `corpus`. Returns loss statistics. Deterministic
/// in `config.seed`.
TrainStats TrainEntityPrediction(const Corpus& corpus,
                                 ContextEncoder& encoder,
                                 const EntityPredictionTrainConfig& config);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_EMBEDDING_TRAINER_H_
