#include "embedding/encoder.h"

#include <cmath>

#include "common/logging.h"
#include "math/softmax.h"

namespace ultrawiki {

ContextEncoder::ContextEncoder(size_t token_vocab_size,
                               size_t entity_vocab_size,
                               EncoderConfig config)
    : config_(config),
      token_embeddings_(token_vocab_size,
                        static_cast<size_t>(config.token_dim)),
      w1_(static_cast<size_t>(config.hidden_dim),
          static_cast<size_t>(config.token_dim)),
      b1_(static_cast<size_t>(config.hidden_dim), 0.0f),
      output_embeddings_(entity_vocab_size,
                         static_cast<size_t>(config.hidden_dim)),
      output_bias_(entity_vocab_size, 0.0f),
      projection_(static_cast<size_t>(config.projection_dim),
                  static_cast<size_t>(config.hidden_dim)),
      projection_bias_(static_cast<size_t>(config.projection_dim), 0.0f) {
  UW_CHECK_GT(config.token_dim, 0);
  UW_CHECK_GT(config.hidden_dim, 0);
  UW_CHECK_GT(config.projection_dim, 0);
  Rng rng(config.seed);
  const float token_scale =
      0.5f / std::sqrt(static_cast<float>(config.token_dim));
  token_embeddings_.InitUniform(rng, token_scale);
  const float w1_scale =
      std::sqrt(6.0f / static_cast<float>(config.token_dim +
                                          config.hidden_dim));
  w1_.InitUniform(rng, w1_scale);
  output_embeddings_.InitUniform(
      rng, 0.5f / std::sqrt(static_cast<float>(config.hidden_dim)));
  projection_.InitUniform(
      rng, std::sqrt(6.0f / static_cast<float>(config.hidden_dim +
                                               config.projection_dim)));
}

ContextEncoder ContextEncoder::Clone() const {
  ContextEncoder copy(token_embeddings_.rows(), output_embeddings_.rows(),
                      config_);
  copy.token_weights_ = token_weights_;
  copy.token_embeddings_ = token_embeddings_;
  copy.w1_ = w1_;
  copy.b1_ = b1_;
  copy.output_embeddings_ = output_embeddings_;
  copy.output_bias_ = output_bias_;
  copy.projection_ = projection_;
  copy.projection_bias_ = projection_bias_;
  return copy;
}

void ContextEncoder::SetTokenWeights(std::vector<float> weights) {
  token_weights_ = std::move(weights);
}

float ContextEncoder::TokenWeight(TokenId token) const {
  if (token_weights_.empty()) return 1.0f;
  if (token < 0 || static_cast<size_t>(token) >= token_weights_.size()) {
    return 1.0f;
  }
  return token_weights_[static_cast<size_t>(token)];
}

Vec ContextEncoder::ContextMean(std::span<const TokenId> context) const {
  return ContextMeanWithPrefix(std::span<const TokenId>(), context);
}

Vec ContextEncoder::ContextMeanWithPrefix(
    std::span<const TokenId> prefix,
    std::span<const TokenId> context) const {
  Vec mean(static_cast<size_t>(config_.token_dim), 0.0f);
  float total_weight = 0.0f;
  auto accumulate = [this, &mean, &total_weight](
                        std::span<const TokenId> span, bool is_prefix) {
    for (TokenId token : span) {
      if (token < 0 ||
          static_cast<size_t>(token) >= token_embeddings_.rows()) {
        continue;
      }
      const float w = EffectiveWeight(token, is_prefix);
      if (w <= 0.0f) continue;
      Axpy(w, token_embeddings_.Row(static_cast<size_t>(token)), mean);
      total_weight += w;
    }
  };
  accumulate(prefix, /*is_prefix=*/true);
  accumulate(context, /*is_prefix=*/false);
  if (total_weight > 0.0f) Scale(1.0f / total_weight, mean);
  return mean;
}

Vec ContextEncoder::EncodeWithPrefix(std::span<const TokenId> prefix,
                                     std::span<const TokenId> context) const {
  return HiddenFromMean(ContextMeanWithPrefix(prefix, context));
}

Vec ContextEncoder::HiddenFromMean(const Vec& mean) const {
  Vec hidden(static_cast<size_t>(config_.hidden_dim), 0.0f);
  w1_.MatVec(mean, hidden);
  for (size_t i = 0; i < hidden.size(); ++i) {
    hidden[i] = std::tanh(hidden[i] + b1_[i]);
  }
  return hidden;
}

Vec ContextEncoder::EncodeContext(std::span<const TokenId> context) const {
  return HiddenFromMean(ContextMean(context));
}

float ContextEncoder::EntityLogit(const Vec& hidden, size_t entity) const {
  UW_CHECK_LT(entity, output_embeddings_.rows());
  return Dot(output_embeddings_.Row(entity), hidden) + output_bias_[entity];
}

Vec ContextEncoder::EntityDistribution(const Vec& hidden) const {
  Vec logits(output_embeddings_.rows(), 0.0f);
  output_embeddings_.MatVec(hidden, logits);
  for (size_t e = 0; e < logits.size(); ++e) logits[e] += output_bias_[e];
  SoftmaxInPlace(logits);
  return logits;
}

std::vector<float> ComputeSifTokenWeights(const Vocabulary& vocabulary,
                                          double a) {
  double total = 0.0;
  for (size_t t = 0; t < vocabulary.size(); ++t) {
    total += static_cast<double>(
        vocabulary.CountOf(static_cast<TokenId>(t)));
  }
  std::vector<float> weights(vocabulary.size(), 1.0f);
  if (total <= 0.0) return weights;
  for (size_t t = 0; t < vocabulary.size(); ++t) {
    const double p =
        static_cast<double>(vocabulary.CountOf(static_cast<TokenId>(t))) /
        total;
    weights[t] = static_cast<float>(a / (a + p));
  }
  return weights;
}

Vec ContextEncoder::Project(const Vec& hidden) const {
  Vec z(static_cast<size_t>(config_.projection_dim), 0.0f);
  projection_.MatVec(hidden, z);
  for (size_t i = 0; i < z.size(); ++i) z[i] += projection_bias_[i];
  NormalizeInPlace(z);
  return z;
}

}  // namespace ultrawiki
