#include "embedding/contrastive.h"

#include <cmath>

#include "common/logging.h"
#include "embedding/entity_store.h"
#include "math/softmax.h"
#include "math/vec.h"

namespace ultrawiki {
namespace {

/// Cached forward pass of one contrastive sample.
struct SampleCache {
  std::vector<TokenId> context;
  Vec mean;
  Vec hidden;
  Vec u;       // unnormalized projection
  float norm = 0.0f;
  Vec z;       // normalized projection
  bool valid = false;
};

/// Picks a random sentence of `id`; returns nullptr when the entity has no
/// sentences (then the sample is skipped).
const Sentence* RandomSentence(const Corpus& corpus, EntityId id, Rng& rng) {
  const std::vector<int>& ids = corpus.SentencesOf(id);
  if (ids.empty()) return nullptr;
  return &corpus.sentence(
      static_cast<size_t>(ids[rng.UniformUint64(ids.size())]));
}

class ContrastiveRunner {
 public:
  ContrastiveRunner(const Corpus& corpus, ContextEncoder& encoder,
                    const ContrastiveTrainConfig& config)
      : corpus_(corpus), encoder_(encoder), config_(config) {}

  SampleCache Encode(EntityId id, const std::vector<TokenId>& conditioning,
                     Rng& rng) {
    SampleCache cache;
    const Sentence* sentence = RandomSentence(corpus_, id, rng);
    if (sentence == nullptr) return cache;
    cache.context = MaskedContext(*sentence, nullptr);
    // Seed conditioning specifies the ultra-fine-grained semantics the
    // pair is judged under (avoids positive/negative conflicts for the
    // same entity pair across queries).
    cache.context.insert(cache.context.end(), conditioning.begin(),
                         conditioning.end());
    if (cache.context.empty()) return cache;
    cache.mean = encoder_.ContextMean(cache.context);
    cache.hidden = encoder_.HiddenFromMean(cache.mean);
    cache.u.assign(static_cast<size_t>(encoder_.config().projection_dim),
                   0.0f);
    encoder_.projection().MatVec(cache.hidden, cache.u);
    for (size_t i = 0; i < cache.u.size(); ++i) {
      cache.u[i] += encoder_.projection_bias()[i];
    }
    cache.norm = Norm(cache.u);
    if (cache.norm <= 1e-8f) return cache;
    cache.z = cache.u;
    Scale(1.0f / cache.norm, cache.z);
    cache.valid = true;
    return cache;
  }

  /// Backpropagates dL/dz into the encoder parameters with SGD step `lr`.
  void Backprop(const SampleCache& cache, const Vec& grad_z, float lr) {
    const size_t proj_dim = cache.z.size();
    const size_t hidden_dim = cache.hidden.size();
    // Through the L2 normalization.
    Vec grad_u(proj_dim, 0.0f);
    const float dot = Dot(grad_z, cache.z);
    for (size_t i = 0; i < proj_dim; ++i) {
      grad_u[i] = (grad_z[i] - dot * cache.z[i]) / cache.norm;
    }
    // grad wrt hidden before the projection matrix is updated.
    Vec grad_hidden(hidden_dim, 0.0f);
    encoder_.projection().MatTVec(grad_u, grad_hidden);
    // Update projection head.
    for (size_t r = 0; r < proj_dim; ++r) {
      auto row = encoder_.projection().Row(r);
      Axpy(-lr * grad_u[r], cache.hidden, row);
      encoder_.projection_bias()[r] -= lr * grad_u[r];
    }
    // Through tanh into the shared body.
    Vec grad_pre(hidden_dim, 0.0f);
    for (size_t i = 0; i < hidden_dim; ++i) {
      grad_pre[i] =
          grad_hidden[i] * (1.0f - cache.hidden[i] * cache.hidden[i]);
    }
    Vec grad_mean(cache.mean.size(), 0.0f);
    encoder_.w1().MatTVec(grad_pre, grad_mean);
    for (size_t r = 0; r < hidden_dim; ++r) {
      auto row = encoder_.w1().Row(r);
      Axpy(-lr * grad_pre[r], cache.mean, row);
      encoder_.b1()[r] -= lr * grad_pre[r];
    }
    float total_weight = 0.0f;
    for (TokenId token : cache.context) {
      if (token >= 0 &&
          static_cast<size_t>(token) < encoder_.token_vocab_size()) {
        total_weight += encoder_.TokenWeight(token);
      }
    }
    if (total_weight <= 0.0f) return;
    for (TokenId token : cache.context) {
      if (token < 0 ||
          static_cast<size_t>(token) >= encoder_.token_vocab_size()) {
        continue;
      }
      const float w = encoder_.TokenWeight(token);
      if (w <= 0.0f) continue;
      Axpy(-lr * w / total_weight, grad_mean,
           encoder_.token_embeddings().Row(static_cast<size_t>(token)));
    }
  }

 private:
  const Corpus& corpus_;
  ContextEncoder& encoder_;
  const ContrastiveTrainConfig& config_;
};

}  // namespace

TrainStats TrainContrastive(const Corpus& corpus, ContextEncoder& encoder,
                            const ContrastiveData& data,
                            const ContrastiveTrainConfig& config) {
  UW_CHECK_GT(config.temperature, 0.0f);
  TrainStats stats;
  stats.epochs = config.epochs;
  if (data.groups.empty() ||
      (!config.use_hard_negatives && !config.use_normal_negatives)) {
    return stats;  // InfoNCE needs at least one negative source.
  }
  Rng rng(config.seed);
  ContrastiveRunner runner(corpus, encoder, config);
  double loss_sum = 0.0;
  int64_t loss_count = 0;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    for (const ContrastiveGroup& group : data.groups) {
      if (group.l_pos.empty() && group.l_neg.empty()) continue;
      for (int a = 0; a < config.anchors_per_group; ++a) {
        // Alternate anchor side so both L_pos and L_neg shape the space.
        const bool anchor_positive_side =
            group.l_neg.empty() || (!group.l_pos.empty() && a % 2 == 0);
        const std::vector<EntityId>& same_side =
            anchor_positive_side ? group.l_pos : group.l_neg;
        const std::vector<EntityId>& other_side =
            anchor_positive_side ? group.l_neg : group.l_pos;
        if (same_side.empty()) continue;
        const EntityId anchor_id =
            same_side[rng.UniformUint64(same_side.size())];

        // Positive partner.
        EntityId positive_id = anchor_id;
        if (config.use_positives && same_side.size() > 1) {
          do {
            positive_id = same_side[rng.UniformUint64(same_side.size())];
          } while (positive_id == anchor_id && same_side.size() > 1 &&
                   rng.Bernoulli(0.75));
        }

        // Negatives.
        std::vector<EntityId> negative_ids;
        if (config.use_hard_negatives && !other_side.empty()) {
          for (int n = 0; n < config.hard_negatives_per_anchor; ++n) {
            negative_ids.push_back(
                other_side[rng.UniformUint64(other_side.size())]);
          }
        }
        if (config.use_normal_negatives && !group.other_class.empty()) {
          for (int n = 0; n < config.normal_negatives_per_anchor; ++n) {
            negative_ids.push_back(
                group.other_class[rng.UniformUint64(
                    group.other_class.size())]);
          }
        }
        if (negative_ids.empty()) continue;

        // Forward all samples.
        SampleCache anchor =
            runner.Encode(anchor_id, group.conditioning, rng);
        SampleCache positive =
            runner.Encode(positive_id, group.conditioning, rng);
        if (!anchor.valid || !positive.valid) continue;
        std::vector<SampleCache> negatives;
        negatives.reserve(negative_ids.size());
        for (EntityId id : negative_ids) {
          SampleCache cache = runner.Encode(id, group.conditioning, rng);
          if (cache.valid) negatives.push_back(std::move(cache));
        }
        if (negatives.empty()) continue;

        // InfoNCE. Slot 0 is the positive.
        const float tau = config.temperature;
        Vec logits(negatives.size() + 1, 0.0f);
        logits[0] = Dot(anchor.z, positive.z) / tau;
        for (size_t n = 0; n < negatives.size(); ++n) {
          logits[n + 1] = Dot(anchor.z, negatives[n].z) / tau;
        }
        Vec probs = logits;
        SoftmaxInPlace(probs);
        loss_sum += -std::log(std::max(1e-9, static_cast<double>(probs[0])));
        ++loss_count;

        // Gradients wrt the projected vectors.
        Vec grad_anchor(anchor.z.size(), 0.0f);
        const float dpos = (probs[0] - 1.0f) / tau;
        Axpy(dpos, positive.z, grad_anchor);
        Vec grad_positive(anchor.z.size(), 0.0f);
        Axpy(dpos, anchor.z, grad_positive);
        std::vector<Vec> grad_negatives(negatives.size());
        for (size_t n = 0; n < negatives.size(); ++n) {
          const float dneg = probs[n + 1] / tau;
          Axpy(dneg, negatives[n].z, grad_anchor);
          grad_negatives[n].assign(anchor.z.size(), 0.0f);
          Axpy(dneg, anchor.z, grad_negatives[n]);
        }

        const float lr = config.learning_rate;
        runner.Backprop(anchor, grad_anchor, lr);
        runner.Backprop(positive, grad_positive, lr);
        for (size_t n = 0; n < negatives.size(); ++n) {
          runner.Backprop(negatives[n], grad_negatives[n], lr);
        }
        ++stats.steps;
      }
    }
  }
  stats.final_loss =
      loss_count > 0 ? loss_sum / static_cast<double>(loss_count) : 0.0;
  return stats;
}

}  // namespace ultrawiki
