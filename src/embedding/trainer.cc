#include "embedding/trainer.h"

#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "embedding/entity_store.h"
#include "math/sampling.h"
#include "math/softmax.h"
#include "math/vec.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ultrawiki {

TrainStats TrainEntityPrediction(const Corpus& corpus,
                                 ContextEncoder& encoder,
                                 const EntityPredictionTrainConfig& config) {
  UW_CHECK_GT(config.epochs, 0);
  UW_CHECK_GT(config.negative_samples, 0);
  UW_CHECK_GE(config.label_smoothing, 0.0f);
  UW_CHECK_LT(config.label_smoothing, 1.0f);
  UW_SPAN("train_entity_prediction");
  Rng rng(config.seed);
  TrainStats stats;
  stats.epochs = config.epochs;
  if (corpus.sentence_count() == 0) return stats;

  // Negative-sampling distribution: unigram^0.75 over entity sentence
  // frequency (the word2vec convention).
  std::vector<double> entity_weights(corpus.entity_count(), 0.0);
  for (EntityId id = 0; id < static_cast<EntityId>(corpus.entity_count());
       ++id) {
    entity_weights[static_cast<size_t>(id)] = std::pow(
        static_cast<double>(corpus.SentencesOf(id).size()) + 1.0, 0.75);
  }
  const AliasTable negatives(entity_weights);

  // Entities grouped by fine class for in-class negative sampling.
  std::vector<std::vector<EntityId>> class_members;
  for (EntityId id = 0; id < static_cast<EntityId>(corpus.entity_count());
       ++id) {
    const ClassId class_id = corpus.entity(id).class_id;
    if (class_id == kBackgroundClassId) continue;
    if (static_cast<size_t>(class_id) >= class_members.size()) {
      class_members.resize(static_cast<size_t>(class_id) + 1);
    }
    class_members[static_cast<size_t>(class_id)].push_back(id);
  }

  std::vector<size_t> order(corpus.sentence_count());
  std::iota(order.begin(), order.end(), 0);

  const size_t hidden_dim = static_cast<size_t>(encoder.config().hidden_dim);
  const size_t token_dim = static_cast<size_t>(encoder.config().token_dim);
  const int k = config.negative_samples;
  const float eta = config.label_smoothing;

  const int64_t total_steps =
      static_cast<int64_t>(config.epochs) *
      static_cast<int64_t>(corpus.sentence_count());
  int64_t step = 0;
  double epoch_loss = 0.0;

  std::vector<size_t> batch_entities(static_cast<size_t>(k) + 1);
  Vec logits(static_cast<size_t>(k) + 1, 0.0f);
  Vec targets(static_cast<size_t>(k) + 1, 0.0f);
  Vec grad_hidden(hidden_dim, 0.0f);
  Vec grad_pre(hidden_dim, 0.0f);
  Vec grad_mean(token_dim, 0.0f);

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(order);
    epoch_loss = 0.0;
    for (size_t idx : order) {
      const Sentence& sentence = corpus.sentence(idx);
      const float progress =
          static_cast<float>(step) / static_cast<float>(total_steps);
      const float lr =
          config.learning_rate +
          (config.min_learning_rate - config.learning_rate) * progress;
      ++step;

      static const std::vector<TokenId> kNoPrefix;
      const std::vector<TokenId>* prefix = &kNoPrefix;
      if (config.entity_prefixes != nullptr &&
          static_cast<size_t>(sentence.entity) <
              config.entity_prefixes->size()) {
        prefix = &(*config.entity_prefixes)[static_cast<size_t>(
            sentence.entity)];
      }
      const std::vector<TokenId> context = MaskedContext(sentence, nullptr);
      if (context.empty() && prefix->empty()) continue;

      // Forward.
      const Vec mean = encoder.ContextMeanWithPrefix(*prefix, context);
      Vec pre(hidden_dim, 0.0f);
      encoder.w1().MatVec(mean, pre);
      Vec hidden(hidden_dim, 0.0f);
      for (size_t i = 0; i < hidden_dim; ++i) {
        hidden[i] = std::tanh(pre[i] + encoder.b1()[i]);
      }

      // Sampled softmax: slot 0 = ground truth, slots 1..k = negatives.
      batch_entities[0] = static_cast<size_t>(sentence.entity);
      const ClassId truth_class = corpus.entity(sentence.entity).class_id;
      const std::vector<EntityId>* in_class =
          (truth_class != kBackgroundClassId &&
           static_cast<size_t>(truth_class) < class_members.size() &&
           class_members[static_cast<size_t>(truth_class)].size() > 1)
              ? &class_members[static_cast<size_t>(truth_class)]
              : nullptr;
      for (int n = 0; n < k; ++n) {
        size_t neg;
        if (in_class != nullptr &&
            rng.Bernoulli(config.in_class_negative_fraction)) {
          neg = static_cast<size_t>(
              (*in_class)[rng.UniformUint64(in_class->size())]);
        } else {
          neg = negatives.Sample(rng);
        }
        if (neg == static_cast<size_t>(sentence.entity)) {
          neg = (neg + 1) % corpus.entity_count();
        }
        batch_entities[static_cast<size_t>(n) + 1] = neg;
      }
      for (size_t j = 0; j < batch_entities.size(); ++j) {
        logits[j] = encoder.EntityLogit(hidden, batch_entities[j]);
      }
      Vec probs = logits;
      SoftmaxInPlace(probs);

      // Label-smoothed target: (1 - η) on the truth, η spread over the
      // sampled negatives (Eq. 3's smoothing effect under sampling).
      targets[0] = 1.0f - eta;
      const float spread = eta / static_cast<float>(k);
      for (int n = 0; n < k; ++n) targets[static_cast<size_t>(n) + 1] = spread;

      epoch_loss += -std::log(
          std::max(1e-9, static_cast<double>(probs[0])));

      // Backward.
      ZeroInPlace(grad_hidden);
      for (size_t j = 0; j < batch_entities.size(); ++j) {
        const float delta = probs[j] - targets[j];
        auto out_row = encoder.output_embeddings().Row(batch_entities[j]);
        // grad wrt hidden accumulates before the row is updated.
        Axpy(delta, out_row, grad_hidden);
        // Update output embedding row and bias in place (SGD).
        Axpy(-lr * delta, hidden, out_row);
        encoder.output_bias()[batch_entities[j]] -= lr * delta;
      }

      // Through tanh.
      for (size_t i = 0; i < hidden_dim; ++i) {
        grad_pre[i] = grad_hidden[i] * (1.0f - hidden[i] * hidden[i]);
      }
      // grad wrt mean (needed before W1 changes).
      encoder.w1().MatTVec(grad_pre, grad_mean);
      // Update W1 and b1.
      for (size_t r = 0; r < hidden_dim; ++r) {
        auto w_row = encoder.w1().Row(r);
        Axpy(-lr * grad_pre[r], mean, w_row);
        encoder.b1()[r] -= lr * grad_pre[r];
      }
      // Update token embeddings of prefix + context (weighted-mean
      // backprop; prefix tokens carry the augmentation multiplier).
      float total_weight = 0.0f;
      auto add_weight = [&](const std::vector<TokenId>& span,
                            bool is_prefix) {
        for (TokenId token : span) {
          if (token >= 0 &&
              static_cast<size_t>(token) < encoder.token_vocab_size()) {
            total_weight += encoder.EffectiveWeight(token, is_prefix);
          }
        }
      };
      add_weight(*prefix, true);
      add_weight(context, false);
      if (total_weight > 0.0f) {
        auto update_span = [&](const std::vector<TokenId>& span,
                               bool is_prefix) {
          for (TokenId token : span) {
            if (token < 0 ||
                static_cast<size_t>(token) >= encoder.token_vocab_size()) {
              continue;
            }
            const float w = encoder.EffectiveWeight(token, is_prefix);
            if (w <= 0.0f) continue;
            Axpy(-lr * w / total_weight, grad_mean,
                 encoder.token_embeddings().Row(
                     static_cast<size_t>(token)));
          }
        };
        update_span(*prefix, true);
        update_span(context, false);
      }
      ++stats.steps;
    }
  }
  stats.final_loss =
      epoch_loss / static_cast<double>(corpus.sentence_count());
  obs::GetCounter("trainer.steps").Increment(stats.steps);
  obs::GetCounter("trainer.epochs").Increment(stats.epochs);
  // Loss is a double; store micro-units so the snapshot stays integral.
  obs::GetGauge("trainer.final_loss_micros")
      .Set(static_cast<int64_t>(stats.final_loss * 1e6));
  return stats;
}

}  // namespace ultrawiki
