#ifndef ULTRAWIKI_IO_SHARD_MANIFEST_H_
#define ULTRAWIKI_IO_SHARD_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace ultrawiki {

/// Topology record of one serving-cluster generation: how many shards the
/// candidate list is partitioned into, the provenance fingerprint of the
/// full store the shards were derived from, and the artifact-cache key of
/// each shard's EntityStore payload. Shard servers write it next to the
/// cache (every shard writes identical bytes, and WriteSnapshotFile's
/// atomic rename makes concurrent writers safe); the router loads it to
/// validate its endpoint topology against what the shards actually serve
/// before taking traffic onto a generation.
struct ShardManifest {
  /// Generation counter of the hot-swap path (0 = the boot generation).
  uint64_t generation = 0;
  uint32_t shard_count = 1;
  /// Pipeline::store_key() of the full store (0 = unknown provenance).
  uint64_t store_fingerprint = 0;
  /// Pipeline::ShardStoreKey per shard index; size == shard_count.
  std::vector<uint64_t> shard_store_keys;
};

/// UWS2 snapshot (SnapshotKind::kShardManifest) round trip. Load fails
/// closed: a zero shard count, a key list whose length disagrees with
/// shard_count, truncation, and checksum mismatch all reject the file.
Status SaveShardManifest(const ShardManifest& manifest,
                         const std::string& path);
StatusOr<ShardManifest> LoadShardManifest(const std::string& path);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_IO_SHARD_MANIFEST_H_
