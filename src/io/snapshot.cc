#include "io/snapshot.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "io/corpus_io.h"

namespace ultrawiki {
namespace {

constexpr size_t kHeaderBytes = 20;  // magic + version + kind + payload size
constexpr size_t kFooterBytes = 4;   // CRC32

/// Semantic plausibility caps, checked before any size-driven allocation.
constexpr uint64_t kMaxDim = 1u << 20;

const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

void AppendU32(std::string& out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void AppendU64(std::string& out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

uint32_t DecodeU32(const char* bytes) {
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(static_cast<unsigned char>(bytes[i]))
             << (8 * i);
  }
  return value;
}

uint64_t DecodeU64(const char* bytes) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(static_cast<unsigned char>(bytes[i]))
             << (8 * i);
  }
  return value;
}

/// Reads a u64 element count and rejects it when `count *
/// min_bytes_per_element` could not fit in the remaining payload, so a
/// corrupt count can never drive an oversized allocation.
bool ReadCount(SnapshotReader& in, size_t min_bytes_per_element,
               const char* what, uint64_t* count) {
  if (!in.ReadU64(count)) return false;
  if (min_bytes_per_element > 0 &&
      *count > in.remaining() / min_bytes_per_element) {
    in.Corrupt(std::string(what) + " count exceeds remaining payload");
    return false;
  }
  return true;
}

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t seed) {
  const auto& table = Crc32Table();
  uint32_t crc = ~seed;
  for (const char c : data) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<unsigned char>(c)) & 0xFF];
  }
  return ~crc;
}

// --- SnapshotWriter ---

void SnapshotWriter::PutU32(uint32_t value) { AppendU32(payload_, value); }
void SnapshotWriter::PutU64(uint64_t value) { AppendU64(payload_, value); }
void SnapshotWriter::PutF32(float value) {
  PutU32(std::bit_cast<uint32_t>(value));
}
void SnapshotWriter::PutF64(double value) {
  PutU64(std::bit_cast<uint64_t>(value));
}

void SnapshotWriter::PutString(std::string_view text) {
  PutU64(text.size());
  payload_.append(text.data(), text.size());
}

void SnapshotWriter::PutFloats(std::span<const float> data) {
  for (const float f : data) PutF32(f);
}

void SnapshotWriter::PutFloatVec(std::span<const float> data) {
  PutU64(data.size());
  PutFloats(data);
}

void SnapshotWriter::PutI32Vec(std::span<const int32_t> data) {
  PutU64(data.size());
  for (const int32_t v : data) PutI32(v);
}

void SnapshotWriter::PutStringVec(const std::vector<std::string>& strings) {
  PutU64(strings.size());
  for (const std::string& s : strings) PutString(s);
}

// --- SnapshotReader ---

bool SnapshotReader::Take(void* out, size_t size) {
  if (!ok()) return false;
  if (size > remaining()) {
    error_ = "payload truncated";
    return false;
  }
  std::memcpy(out, data_.data() + cursor_, size);
  cursor_ += size;
  return true;
}

bool SnapshotReader::ReadU32(uint32_t* value) {
  char bytes[4];
  if (!Take(bytes, sizeof(bytes))) return false;
  *value = DecodeU32(bytes);
  return true;
}

bool SnapshotReader::ReadU64(uint64_t* value) {
  char bytes[8];
  if (!Take(bytes, sizeof(bytes))) return false;
  *value = DecodeU64(bytes);
  return true;
}

bool SnapshotReader::ReadI32(int32_t* value) {
  uint32_t raw;
  if (!ReadU32(&raw)) return false;
  *value = static_cast<int32_t>(raw);
  return true;
}

bool SnapshotReader::ReadI64(int64_t* value) {
  uint64_t raw;
  if (!ReadU64(&raw)) return false;
  *value = static_cast<int64_t>(raw);
  return true;
}

bool SnapshotReader::ReadF32(float* value) {
  uint32_t raw;
  if (!ReadU32(&raw)) return false;
  *value = std::bit_cast<float>(raw);
  return true;
}

bool SnapshotReader::ReadF64(double* value) {
  uint64_t raw;
  if (!ReadU64(&raw)) return false;
  *value = std::bit_cast<double>(raw);
  return true;
}

bool SnapshotReader::ReadString(std::string* value) {
  uint64_t size;
  if (!ReadU64(&size)) return false;
  if (size > remaining()) {
    error_ = "string length exceeds remaining payload";
    return false;
  }
  value->assign(data_.data() + cursor_, static_cast<size_t>(size));
  cursor_ += static_cast<size_t>(size);
  return true;
}

bool SnapshotReader::ReadFloats(std::span<float> data) {
  if (!ok()) return false;
  if (data.size() > remaining() / sizeof(float)) {
    error_ = "float block exceeds remaining payload";
    return false;
  }
  for (float& f : data) {
    if (!ReadF32(&f)) return false;
  }
  return true;
}

bool SnapshotReader::ReadFloatVec(std::vector<float>* data) {
  uint64_t count;
  if (!ReadCount(*this, sizeof(float), "float vector", &count)) return false;
  data->resize(static_cast<size_t>(count));
  return ReadFloats(std::span<float>(*data));
}

bool SnapshotReader::ReadI32Vec(std::vector<int32_t>* data) {
  uint64_t count;
  if (!ReadCount(*this, sizeof(int32_t), "i32 vector", &count)) return false;
  data->resize(static_cast<size_t>(count));
  for (int32_t& v : *data) {
    if (!ReadI32(&v)) return false;
  }
  return true;
}

bool SnapshotReader::ReadStringVec(std::vector<std::string>* strings) {
  uint64_t count;
  if (!ReadCount(*this, 8, "string vector", &count)) return false;
  strings->resize(static_cast<size_t>(count));
  for (std::string& s : *strings) {
    if (!ReadString(&s)) return false;
  }
  return true;
}

Status SnapshotReader::Finish() const {
  if (!ok()) return Status::Internal("corrupt snapshot payload: " + error_);
  if (remaining() != 0) {
    return Status::Internal("snapshot payload has " +
                            std::to_string(remaining()) +
                            " unconsumed byte(s)");
  }
  return Status::Ok();
}

void SnapshotReader::Corrupt(std::string reason) {
  if (ok()) error_ = std::move(reason);
}

// --- File framing ---

Status WriteSnapshotFile(const std::string& path, SnapshotKind kind,
                         const SnapshotWriter& writer) {
  std::string framed;
  framed.reserve(kHeaderBytes + writer.payload().size() + kFooterBytes);
  AppendU32(framed, kSnapshotMagic);
  AppendU32(framed, kSnapshotVersion);
  AppendU32(framed, static_cast<uint32_t>(kind));
  AppendU64(framed, writer.payload().size());
  framed += writer.payload();
  AppendU32(framed, Crc32(framed));

  // Write-then-rename so readers never observe a torn snapshot.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::Internal("cannot open for writing: " + tmp);
    out.write(framed.data(), static_cast<std::streamsize>(framed.size()));
    if (!out) return Status::Internal("snapshot write failed: " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return Status::Internal("cannot move snapshot into place: " + path);
  }
  return Status::Ok();
}

StatusOr<std::string> ReadSnapshotFile(const std::string& path,
                                       SnapshotKind kind) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open snapshot: " + path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::Internal("snapshot read failed: " + path);
  }
  if (contents.size() < kHeaderBytes + kFooterBytes) {
    return Status::Internal("truncated snapshot (no complete header): " +
                            path);
  }
  if (DecodeU32(contents.data()) != kSnapshotMagic) {
    return Status::Internal("not a snapshot file (bad magic): " + path);
  }
  const uint32_t version = DecodeU32(contents.data() + 4);
  if (version != kSnapshotVersion) {
    return Status::Internal("unsupported snapshot version " +
                            std::to_string(version) + " (want " +
                            std::to_string(kSnapshotVersion) + "): " + path);
  }
  if (DecodeU32(contents.data() + 8) != static_cast<uint32_t>(kind)) {
    return Status::Internal("snapshot holds a different artifact kind: " +
                            path);
  }
  const uint64_t payload_size = DecodeU64(contents.data() + 12);
  const uint64_t body = contents.size() - kHeaderBytes - kFooterBytes;
  if (payload_size > body) {
    return Status::Internal("truncated snapshot payload: " + path);
  }
  if (payload_size < body) {
    return Status::Internal("snapshot has trailing bytes after footer: " +
                            path);
  }
  const uint32_t stored_crc =
      DecodeU32(contents.data() + contents.size() - kFooterBytes);
  const uint32_t actual_crc = Crc32(
      std::string_view(contents.data(), kHeaderBytes + payload_size));
  if (stored_crc != actual_crc) {
    return Status::Internal("snapshot checksum mismatch: " + path);
  }
  return contents.substr(kHeaderBytes, static_cast<size_t>(payload_size));
}

// --- Corpus ---

namespace {

void EncodeCorpus(SnapshotWriter& out, const Corpus& corpus) {
  const Vocabulary& vocab = corpus.tokens();
  out.PutU64(vocab.size());
  for (TokenId t = 0; t < static_cast<TokenId>(vocab.size()); ++t) {
    out.PutString(vocab.TokenOf(t));
    out.PutI64(vocab.CountOf(t));
  }
  out.PutU64(corpus.entity_count());
  for (EntityId id = 0; id < static_cast<EntityId>(corpus.entity_count());
       ++id) {
    const Entity& entity = corpus.entity(id);
    out.PutString(entity.name);
    out.PutStringVec(entity.name_tokens);
    out.PutI32(entity.class_id);
    out.PutU32(entity.is_long_tail ? 1 : 0);
    out.PutU64(entity.attribute_values.size());
    for (const int v : entity.attribute_values) out.PutI32(v);
  }
  out.PutU64(corpus.sentence_count());
  for (size_t s = 0; s < corpus.sentence_count(); ++s) {
    const Sentence& sentence = corpus.sentence(s);
    out.PutI32(sentence.entity);
    out.PutI32(sentence.mention_begin);
    out.PutI32(sentence.mention_len);
    out.PutI32Vec(sentence.tokens);
  }
  out.PutU64(corpus.auxiliary_sentences().size());
  for (const auto& tokens : corpus.auxiliary_sentences()) {
    out.PutI32Vec(tokens);
  }
}

bool ValidTokens(const std::vector<TokenId>& tokens, size_t vocab_size) {
  for (const TokenId t : tokens) {
    if (t < 0 || static_cast<size_t>(t) >= vocab_size) return false;
  }
  return true;
}

Status DecodeCorpus(SnapshotReader& in, Corpus* corpus) {
  uint64_t token_count;
  // Each token record is at least len(8) + count(8) bytes.
  if (!ReadCount(in, 16, "vocabulary", &token_count)) {
    return Status::Internal("corrupt corpus snapshot (vocabulary header)");
  }
  for (uint64_t t = 0; t < token_count; ++t) {
    std::string token;
    int64_t count;
    if (!in.ReadString(&token) || !in.ReadI64(&count)) {
      return Status::Internal("corrupt corpus snapshot (vocabulary)");
    }
    if (corpus->tokens().AddToken(token, count) !=
        static_cast<TokenId>(t)) {
      return Status::Internal("corpus snapshot repeats vocabulary token: " +
                              token);
    }
  }
  uint64_t entity_count;
  // name len + name-token count + class + flag + attr count.
  if (!ReadCount(in, 32, "entity", &entity_count)) {
    return Status::Internal("corrupt corpus snapshot (entity header)");
  }
  for (uint64_t e = 0; e < entity_count; ++e) {
    Entity entity;
    uint32_t long_tail;
    uint64_t value_count;
    if (!in.ReadString(&entity.name) ||
        !in.ReadStringVec(&entity.name_tokens) ||
        !in.ReadI32(&entity.class_id) || !in.ReadU32(&long_tail) ||
        !ReadCount(in, 4, "attribute value", &value_count)) {
      return Status::Internal("corrupt corpus snapshot (entity record)");
    }
    if (long_tail > 1) {
      return Status::Internal("corrupt corpus snapshot (long-tail flag)");
    }
    entity.is_long_tail = long_tail == 1;
    entity.attribute_values.resize(static_cast<size_t>(value_count));
    for (int& v : entity.attribute_values) {
      if (!in.ReadI32(&v)) {
        return Status::Internal("corrupt corpus snapshot (entity values)");
      }
    }
    corpus->AddEntity(std::move(entity));
  }
  uint64_t sentence_count;
  // entity + begin + len + token count.
  if (!ReadCount(in, 20, "sentence", &sentence_count)) {
    return Status::Internal("corrupt corpus snapshot (sentence header)");
  }
  for (uint64_t s = 0; s < sentence_count; ++s) {
    Sentence sentence;
    if (!in.ReadI32(&sentence.entity) ||
        !in.ReadI32(&sentence.mention_begin) ||
        !in.ReadI32(&sentence.mention_len) ||
        !in.ReadI32Vec(&sentence.tokens)) {
      return Status::Internal("corrupt corpus snapshot (sentence record)");
    }
    if (sentence.entity < 0 ||
        static_cast<uint64_t>(sentence.entity) >= entity_count ||
        sentence.mention_begin < 0 || sentence.mention_len < 0 ||
        static_cast<int64_t>(sentence.mention_begin) +
                static_cast<int64_t>(sentence.mention_len) >
            static_cast<int64_t>(sentence.tokens.size()) ||
        !ValidTokens(sentence.tokens, corpus->tokens().size())) {
      return Status::Internal("corpus snapshot sentence out of bounds");
    }
    corpus->AddSentence(std::move(sentence));
  }
  uint64_t auxiliary_count;
  if (!ReadCount(in, 8, "auxiliary sentence", &auxiliary_count)) {
    return Status::Internal("corrupt corpus snapshot (auxiliary header)");
  }
  for (uint64_t s = 0; s < auxiliary_count; ++s) {
    std::vector<TokenId> tokens;
    if (!in.ReadI32Vec(&tokens)) {
      return Status::Internal("corrupt corpus snapshot (auxiliary record)");
    }
    if (!ValidTokens(tokens, corpus->tokens().size())) {
      return Status::Internal("auxiliary sentence token out of range");
    }
    corpus->AddAuxiliarySentence(std::move(tokens));
  }
  return Status::Ok();
}

}  // namespace

Status SaveCorpusSnapshot(const Corpus& corpus, const std::string& path) {
  SnapshotWriter out;
  EncodeCorpus(out, corpus);
  return WriteSnapshotFile(path, SnapshotKind::kCorpus, out);
}

StatusOr<Corpus> LoadCorpusSnapshot(const std::string& path) {
  auto payload = ReadSnapshotFile(path, SnapshotKind::kCorpus);
  if (!payload.ok()) return payload.status();
  SnapshotReader in(*payload);
  Corpus corpus;
  Status status = DecodeCorpus(in, &corpus);
  if (!status.ok()) return status;
  status = in.Finish();
  if (!status.ok()) return status;
  return corpus;
}

// --- GeneratedWorld ---

namespace {

void EncodeAttribute(SnapshotWriter& out, const AttributeDef& attr) {
  out.PutString(attr.name);
  out.PutF64(attr.signal_rate);
  out.PutF64(attr.canonical_rate);
  out.PutStringVec(attr.values);
  for (const auto& clue : attr.clue_tokens) out.PutStringVec(clue);
  for (const auto& variants : attr.clue_variants) {
    out.PutU64(variants.size());
    for (const auto& phrase : variants) out.PutStringVec(phrase);
  }
}

Status DecodeAttribute(SnapshotReader& in, AttributeDef* attr) {
  if (!in.ReadString(&attr->name) || !in.ReadF64(&attr->signal_rate) ||
      !in.ReadF64(&attr->canonical_rate) ||
      !in.ReadStringVec(&attr->values)) {
    return Status::Internal("corrupt world snapshot (attribute)");
  }
  attr->clue_tokens.resize(attr->values.size());
  for (auto& clue : attr->clue_tokens) {
    if (!in.ReadStringVec(&clue)) {
      return Status::Internal("corrupt world snapshot (attribute clues)");
    }
  }
  attr->clue_variants.resize(attr->values.size());
  for (auto& variants : attr->clue_variants) {
    uint64_t phrase_count;
    if (!ReadCount(in, 8, "clue variant", &phrase_count)) {
      return Status::Internal("corrupt world snapshot (clue variants)");
    }
    variants.resize(static_cast<size_t>(phrase_count));
    for (auto& phrase : variants) {
      if (!in.ReadStringVec(&phrase)) {
        return Status::Internal("corrupt world snapshot (clue phrase)");
      }
    }
  }
  return Status::Ok();
}

}  // namespace

Status SaveWorldSnapshot(const GeneratedWorld& world,
                         const std::string& path) {
  SnapshotWriter out;
  out.PutU64(world.fingerprint);
  EncodeCorpus(out, world.corpus);
  out.PutU64(world.schema.size());
  for (const FineClassSpec& spec : world.schema) {
    out.PutString(spec.name);
    out.PutString(spec.coarse_category);
    out.PutString(spec.singular_noun);
    out.PutString(spec.plural_noun);
    out.PutI32(spec.entity_count);
    out.PutI32(spec.name_style);
    out.PutStringVec(spec.topic_tokens);
    out.PutU64(spec.attributes.size());
    for (const AttributeDef& attr : spec.attributes) {
      EncodeAttribute(out, attr);
    }
  }
  out.PutU64(world.kb.size());
  for (EntityId id = 0; id < static_cast<EntityId>(world.kb.size()); ++id) {
    out.PutI32Vec(world.kb.IntroductionOf(id));
    out.PutI32Vec(world.kb.WikidataAttributesOf(id));
  }
  out.PutI32Vec(world.background_entities);
  return WriteSnapshotFile(path, SnapshotKind::kWorld, out);
}

StatusOr<GeneratedWorld> LoadWorldSnapshot(const std::string& path) {
  auto payload = ReadSnapshotFile(path, SnapshotKind::kWorld);
  if (!payload.ok()) return payload.status();
  SnapshotReader in(*payload);
  GeneratedWorld world;
  if (!in.ReadU64(&world.fingerprint)) {
    return Status::Internal("corrupt world snapshot (fingerprint)");
  }
  Status status = DecodeCorpus(in, &world.corpus);
  if (!status.ok()) return status;

  uint64_t class_count;
  // Four string lengths + two ints + two counts per class at minimum.
  if (!ReadCount(in, 56, "schema class", &class_count)) {
    return Status::Internal("corrupt world snapshot (schema header)");
  }
  world.schema.resize(static_cast<size_t>(class_count));
  for (FineClassSpec& spec : world.schema) {
    uint64_t attr_count;
    if (!in.ReadString(&spec.name) ||
        !in.ReadString(&spec.coarse_category) ||
        !in.ReadString(&spec.singular_noun) ||
        !in.ReadString(&spec.plural_noun) ||
        !in.ReadI32(&spec.entity_count) || !in.ReadI32(&spec.name_style) ||
        !in.ReadStringVec(&spec.topic_tokens) ||
        !ReadCount(in, 32, "attribute", &attr_count)) {
      return Status::Internal("corrupt world snapshot (class record)");
    }
    spec.attributes.resize(static_cast<size_t>(attr_count));
    for (AttributeDef& attr : spec.attributes) {
      status = DecodeAttribute(in, &attr);
      if (!status.ok()) return status;
    }
  }

  uint64_t kb_count;
  if (!ReadCount(in, 16, "knowledge-base entry", &kb_count)) {
    return Status::Internal("corrupt world snapshot (kb header)");
  }
  if (kb_count != world.corpus.entity_count()) {
    return Status::Internal(
        "world snapshot knowledge base does not cover all entities");
  }
  for (uint64_t id = 0; id < kb_count; ++id) {
    std::vector<TokenId> introduction;
    std::vector<TokenId> wikidata;
    if (!in.ReadI32Vec(&introduction) || !in.ReadI32Vec(&wikidata)) {
      return Status::Internal("corrupt world snapshot (kb record)");
    }
    if (!ValidTokens(introduction, world.corpus.tokens().size()) ||
        !ValidTokens(wikidata, world.corpus.tokens().size())) {
      return Status::Internal("world snapshot kb token out of range");
    }
    world.kb.Add(static_cast<EntityId>(id), std::move(introduction),
                 std::move(wikidata));
  }

  if (!in.ReadI32Vec(&world.background_entities)) {
    return Status::Internal("corrupt world snapshot (background ids)");
  }
  for (const EntityId id : world.background_entities) {
    if (id < 0 ||
        static_cast<size_t>(id) >= world.corpus.entity_count() ||
        world.corpus.entity(id).class_id != kBackgroundClassId) {
      return Status::Internal(
          "world snapshot background id is not a background entity");
    }
  }
  for (EntityId id = 0;
       id < static_cast<EntityId>(world.corpus.entity_count()); ++id) {
    const ClassId class_id = world.corpus.entity(id).class_id;
    if (class_id != kBackgroundClassId &&
        (class_id < 0 ||
         static_cast<size_t>(class_id) >= world.schema.size())) {
      return Status::Internal("world snapshot entity references unknown class");
    }
  }
  status = in.Finish();
  if (!status.ok()) return status;
  status = RebuildWorldValueIndex(world);
  if (!status.ok()) return status;
  return world;
}

// --- InvertedIndex ---

namespace {

/// Parses the legacy raw-postings index payload (every posting as an
/// explicit (doc, tf) i32 pair — the pre-compression on-disk form, still
/// produced by old artifact caches). The returned index is unfrozen.
StatusOr<InvertedIndex> ParseRawIndexPayload(std::string_view payload) {
  SnapshotReader in(payload);
  std::vector<int32_t> doc_lengths;
  if (!in.ReadI32Vec(&doc_lengths)) {
    return Status::Internal("corrupt index snapshot (document lengths)");
  }
  for (const int32_t length : doc_lengths) {
    if (length < 0) {
      return Status::Internal("index snapshot has a negative doc length");
    }
  }
  const auto doc_count = static_cast<int64_t>(doc_lengths.size());
  uint64_t term_count;
  // term id + posting count + one posting.
  if (!ReadCount(in, 20, "index term", &term_count)) {
    return Status::Internal("corrupt index snapshot (term header)");
  }
  std::unordered_map<TokenId, std::vector<Posting>> postings_map;
  postings_map.reserve(static_cast<size_t>(term_count));
  TokenId previous_term = -1;
  for (uint64_t t = 0; t < term_count; ++t) {
    TokenId term;
    uint64_t posting_count;
    if (!in.ReadI32(&term) ||
        !ReadCount(in, 8, "posting", &posting_count)) {
      return Status::Internal("corrupt index snapshot (term record)");
    }
    if (term < 0 || term <= previous_term || posting_count == 0) {
      return Status::Internal("index snapshot terms are not strictly "
                              "ascending non-negative ids");
    }
    previous_term = term;
    std::vector<Posting> postings(static_cast<size_t>(posting_count));
    DocId previous_doc = -1;
    for (Posting& posting : postings) {
      if (!in.ReadI32(&posting.doc) || !in.ReadI32(&posting.term_frequency)) {
        return Status::Internal("corrupt index snapshot (posting)");
      }
      if (posting.doc <= previous_doc ||
          static_cast<int64_t>(posting.doc) >= doc_count ||
          posting.term_frequency <= 0) {
        return Status::Internal("index snapshot posting out of bounds");
      }
      previous_doc = posting.doc;
    }
    postings_map.emplace(term, std::move(postings));
  }
  Status status = in.Finish();
  if (!status.ok()) return status;
  return InvertedIndex::Restore(std::move(doc_lengths),
                                std::move(postings_map));
}

}  // namespace

Status SaveIndexSnapshot(const InvertedIndex& index,
                         const std::string& path) {
  if (!index.is_frozen()) {
    return Status::InvalidArgument(
        "index snapshots serialize the compressed form; call Freeze() "
        "before SaveIndexSnapshot");
  }
  SnapshotWriter out;
  out.PutU64(kIndexPayloadTagBase | kIndexPayloadVersion);
  std::vector<int32_t> doc_lengths(index.document_count());
  for (size_t d = 0; d < doc_lengths.size(); ++d) {
    doc_lengths[d] = index.DocumentLength(static_cast<DocId>(d));
  }
  out.PutI32Vec(doc_lengths);
  // The frozen term directory is already ascending by term id, so the
  // bytes are deterministic without re-sorting.
  const std::vector<CompressedTermList>& terms = index.frozen_terms();
  out.PutU64(terms.size());
  for (const CompressedTermList& list : terms) {
    out.PutI32(list.term);
    out.PutI64(list.doc_frequency);
    out.PutU64(list.block_end - list.block_begin);
  }
  const std::vector<PostingBlockMeta>& blocks = index.frozen_blocks();
  out.PutU64(blocks.size());
  for (const PostingBlockMeta& meta : blocks) {
    out.PutI32(meta.last_doc);
    out.PutU32(meta.count);
    out.PutI32(meta.max_tf);
    out.PutI32(meta.min_dl);
    out.PutU64(meta.length);
  }
  out.PutString(index.compressed_payload());
  return WriteSnapshotFile(path, SnapshotKind::kInvertedIndex, out);
}

StatusOr<InvertedIndex> LoadIndexSnapshot(const std::string& path) {
  auto payload = ReadSnapshotFile(path, SnapshotKind::kInvertedIndex);
  if (!payload.ok()) return payload.status();
  SnapshotReader in(*payload);
  uint64_t first_word;
  if (!in.ReadU64(&first_word)) {
    return Status::Internal("corrupt index snapshot (empty payload)");
  }
  if ((first_word & ~kIndexPayloadVersionMask) != kIndexPayloadTagBase) {
    // No version tag: the legacy raw-postings format, whose payload opens
    // with the doc-length count (far below the tag's byte pattern).
    // Re-parse from the start, then freeze so every load path hands back
    // a searchable compressed index.
    auto raw = ParseRawIndexPayload(*payload);
    if (!raw.ok()) return raw.status();
    InvertedIndex index = std::move(*raw);
    index.Freeze();
    return index;
  }
  const uint64_t version = first_word & kIndexPayloadVersionMask;
  if (version != kIndexPayloadVersion) {
    return Status::Internal("unsupported index payload version " +
                            std::to_string(version));
  }

  std::vector<int32_t> doc_lengths;
  if (!in.ReadI32Vec(&doc_lengths)) {
    return Status::Internal("corrupt index snapshot (document lengths)");
  }
  uint64_t term_count;
  // term id + doc frequency + block count.
  if (!ReadCount(in, 20, "index term", &term_count)) {
    return Status::Internal("corrupt index snapshot (term directory)");
  }
  std::vector<CompressedTermList> terms(static_cast<size_t>(term_count));
  uint64_t declared_blocks = 0;
  for (CompressedTermList& list : terms) {
    uint64_t block_count;
    if (!in.ReadI32(&list.term) || !in.ReadI64(&list.doc_frequency) ||
        !in.ReadU64(&block_count)) {
      return Status::Internal("corrupt index snapshot (term record)");
    }
    if (list.doc_frequency <= 0 || block_count == 0 ||
        block_count > UINT32_MAX - declared_blocks) {
      return Status::Internal("corrupt index snapshot (term geometry)");
    }
    list.block_begin = static_cast<uint32_t>(declared_blocks);
    declared_blocks += block_count;
    list.block_end = static_cast<uint32_t>(declared_blocks);
  }
  uint64_t block_count;
  // last doc + count + max tf + min dl + byte length.
  if (!ReadCount(in, 24, "index block", &block_count) ||
      block_count != declared_blocks) {
    return Status::Internal("corrupt index snapshot (block directory)");
  }
  std::vector<PostingBlockMeta> blocks(static_cast<size_t>(block_count));
  uint64_t offset = 0;
  for (PostingBlockMeta& meta : blocks) {
    uint64_t length;
    if (!in.ReadI32(&meta.last_doc) || !in.ReadU32(&meta.count) ||
        !in.ReadI32(&meta.max_tf) || !in.ReadI32(&meta.min_dl) ||
        !in.ReadU64(&length)) {
      return Status::Internal("corrupt index snapshot (block record)");
    }
    if (length == 0 || length > UINT32_MAX || offset > UINT64_MAX - length) {
      return Status::Internal("corrupt index snapshot (block length)");
    }
    meta.offset = offset;
    meta.length = static_cast<uint32_t>(length);
    offset += length;
  }
  std::string encoded;
  if (!in.ReadString(&encoded)) {
    return Status::Internal("corrupt index snapshot (block payload)");
  }
  Status status = in.Finish();
  if (!status.ok()) return status;
  InvertedIndex index;
  // RestoreCompressed decodes and cross-checks every block against its
  // metadata, so a file that passes CRC but carries inconsistent pruning
  // bounds still fails closed here.
  if (!InvertedIndex::RestoreCompressed(std::move(doc_lengths),
                                        std::move(terms), std::move(blocks),
                                        std::move(encoded), &index)) {
    return Status::Internal(
        "corrupt index snapshot (compressed postings failed validation)");
  }
  return index;
}

// --- EntityStore ---

Status SaveEntityStoreSnapshot(const EntityStore& store,
                               const std::string& path) {
  // Only the raw hidden rows are serialized; the norm cache and unit rows
  // are rebuilt deterministically by EntityStore::Restore, so a restored
  // store scores bit-identically to the one that was saved.
  SnapshotWriter out;
  out.PutU64(store.dim());
  out.PutU64(store.slot_count());
  for (EntityId id = 0; static_cast<size_t>(id) < store.slot_count();
       ++id) {
    const bool present = store.Has(id);
    out.PutU32(present ? 1 : 0);
    if (present) out.PutFloats(store.HiddenOf(id));
  }
  return WriteSnapshotFile(path, SnapshotKind::kEntityStore, out);
}

StatusOr<EntityStore> LoadEntityStoreSnapshot(const std::string& path) {
  auto payload = ReadSnapshotFile(path, SnapshotKind::kEntityStore);
  if (!payload.ok()) return payload.status();
  SnapshotReader in(*payload);
  uint64_t dim;
  uint64_t slot_count;
  if (!in.ReadU64(&dim)) {
    return Status::Internal("corrupt entity-store snapshot (dim)");
  }
  if (dim == 0 || dim > kMaxDim) {
    return Status::Internal("entity-store snapshot has implausible dim " +
                            std::to_string(dim));
  }
  if (!ReadCount(in, 4, "entity slot", &slot_count)) {
    return Status::Internal("corrupt entity-store snapshot (slot header)");
  }
  std::vector<Vec> hidden(static_cast<size_t>(slot_count));
  for (Vec& h : hidden) {
    uint32_t present;
    if (!in.ReadU32(&present)) {
      return Status::Internal("corrupt entity-store snapshot (slot flag)");
    }
    if (present > 1) {
      return Status::Internal("entity-store snapshot slot flag corrupt");
    }
    if (present == 1) {
      h.resize(static_cast<size_t>(dim));
      if (!in.ReadFloats(h)) {
        return Status::Internal("corrupt entity-store snapshot (vector)");
      }
    }
  }
  Status status = in.Finish();
  if (!status.ok()) return status;
  return EntityStore::Restore(static_cast<size_t>(dim), std::move(hidden));
}

// --- IvfIndex (ANN) ---

namespace {

/// Payload version for SnapshotKind::kAnnIndex; the envelope version
/// (kSnapshotVersion) covers the framing, this covers the IVF encoding.
constexpr uint32_t kAnnPayloadVersion = 1;

}  // namespace

Status SaveAnnIndexSnapshot(const IvfIndex& index,
                            const std::string& path) {
  SnapshotWriter out;
  out.PutU32(kAnnPayloadVersion);
  out.PutU64(FingerprintConfig(index.config()));
  out.PutU64(index.dim());
  out.PutU64(index.nlist());
  out.PutFloats(index.centroids());
  for (const std::vector<EntityId>& list : index.lists()) {
    out.PutI32Vec(list);
  }
  return WriteSnapshotFile(path, SnapshotKind::kAnnIndex, out);
}

StatusOr<IvfIndex> LoadAnnIndexSnapshot(const std::string& path,
                                        const IvfConfig& config) {
  auto payload = ReadSnapshotFile(path, SnapshotKind::kAnnIndex);
  if (!payload.ok()) return payload.status();
  SnapshotReader in(*payload);
  uint32_t version;
  if (!in.ReadU32(&version)) {
    return Status::Internal("corrupt ANN snapshot (version)");
  }
  if (version != kAnnPayloadVersion) {
    return Status::Internal("unsupported ANN payload version " +
                            std::to_string(version));
  }
  uint64_t fingerprint;
  if (!in.ReadU64(&fingerprint)) {
    return Status::Internal("corrupt ANN snapshot (config fingerprint)");
  }
  if (fingerprint != FingerprintConfig(config)) {
    return Status::Internal(
        "ANN snapshot was built from a different IvfConfig: " + path);
  }
  uint64_t dim;
  uint64_t nlist;
  if (!in.ReadU64(&dim) || !in.ReadU64(&nlist)) {
    return Status::Internal("corrupt ANN snapshot (geometry)");
  }
  if (dim > kMaxDim) {
    return Status::Internal("ANN snapshot has implausible dim " +
                            std::to_string(dim));
  }
  if (dim > 0 && nlist > in.remaining() / (dim * sizeof(float))) {
    return Status::Internal("ANN snapshot nlist exceeds remaining payload");
  }
  std::vector<float> centroids(static_cast<size_t>(nlist * dim));
  if (!in.ReadFloats(centroids)) {
    return Status::Internal("corrupt ANN snapshot (centroids)");
  }
  std::vector<std::vector<EntityId>> lists(static_cast<size_t>(nlist));
  for (std::vector<EntityId>& list : lists) {
    if (!in.ReadI32Vec(&list)) {
      return Status::Internal("corrupt ANN snapshot (list)");
    }
  }
  Status status = in.Finish();
  if (!status.ok()) return status;
  return IvfIndex::Restore(config, static_cast<size_t>(dim),
                           std::move(centroids), std::move(lists));
}

}  // namespace ultrawiki
