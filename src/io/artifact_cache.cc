#include "io/artifact_cache.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <system_error>

#include "common/hash.h"
#include "io/snapshot.h"
#include "obs/metrics.h"

namespace ultrawiki {
namespace {

ArtifactCache* g_cache = nullptr;
std::once_flag g_cache_once;

void InitGlobalCache() {
  const char* env = std::getenv("UW_CACHE_DIR");
  static ArtifactCache cache(env == nullptr ? std::string() : std::string(env));
  g_cache = &cache;
}

char HexDigit(uint64_t nibble) {
  return "0123456789abcdef"[nibble & 0xF];
}

}  // namespace

ArtifactCache& ArtifactCache::Global() {
  std::call_once(g_cache_once, InitGlobalCache);
  return *g_cache;
}

void ArtifactCache::OverrideGlobalForTest(std::string root) {
  Global().root_ = std::move(root);
}

std::string ArtifactCache::PathFor(std::string_view kind, uint64_t key) const {
  if (!enabled()) return {};
  std::string path = root_;
  if (!path.empty() && path.back() != '/') path.push_back('/');
  path.append(kind);
  path.append("-v");
  path.append(std::to_string(kSnapshotVersion));
  path.push_back('-');
  for (int shift = 60; shift >= 0; shift -= 4) {
    path.push_back(HexDigit(key >> shift));
  }
  path.append(".uws");
  return path;
}

void ArtifactCache::RecordHit(uint64_t bytes_read) {
  static obs::Counter& hits = obs::GetCounter("cache.hit");
  static obs::Counter& bytes = obs::GetCounter("cache.bytes_read");
  hits.Increment();
  bytes.Increment(static_cast<int64_t>(bytes_read));
}

void ArtifactCache::RecordMiss() {
  static obs::Counter& misses = obs::GetCounter("cache.miss");
  misses.Increment();
}

void ArtifactCache::RecordStore() {
  static obs::Counter& stores = obs::GetCounter("cache.store");
  stores.Increment();
}

namespace internal_cache {

uint64_t FileSizeOrZero(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<uint64_t>(size);
}

void EnsureParentDir(const std::string& path) {
  std::error_code ec;
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
}

void WarnStoreFailed(const std::string& path, const Status& status) {
  std::fprintf(stderr, "[artifact_cache] store failed for %s: %s\n",
               path.c_str(), status.message().c_str());
}

}  // namespace internal_cache

uint64_t FingerprintConfig(const EncoderConfig& config) {
  Fnv1a h;
  h.Mix(std::string_view("EncoderConfig"));
  h.Mix(config.seed);
  h.Mix(config.token_dim);
  h.Mix(config.hidden_dim);
  h.Mix(config.projection_dim);
  h.Mix(config.augmentation_weight);
  return h.digest();
}

uint64_t FingerprintConfig(const EntityPredictionTrainConfig& config) {
  Fnv1a h;
  h.Mix(std::string_view("EntityPredictionTrainConfig"));
  h.Mix(config.seed);
  h.Mix(config.epochs);
  h.Mix(config.negative_samples);
  h.Mix(config.label_smoothing);
  h.Mix(config.learning_rate);
  h.Mix(config.min_learning_rate);
  h.Mix(config.in_class_negative_fraction);
  h.Mix(config.entity_prefixes != nullptr);
  return h.digest();
}

uint64_t FingerprintConfig(const EntityStoreConfig& config) {
  Fnv1a h;
  h.Mix(std::string_view("EntityStoreConfig"));
  h.Mix(config.max_sentences_per_entity);
  h.Mix(config.entity_prefixes != nullptr);
  h.Mix(config.distribution_temperature);
  h.Mix(config.center);
  return h.digest();
}

uint64_t FingerprintConfig(const DatasetConfig& config) {
  Fnv1a h;
  h.Mix(std::string_view("DatasetConfig"));
  h.Mix(config.seed);
  h.Mix(config.n_thred);
  h.Mix(config.queries_per_class);
  h.Mix(config.min_seeds);
  h.Mix(config.max_seeds);
  h.Mix(config.ultra_class_scale);
  h.Mix(config.higher_order_fraction);
  h.Mix(config.annotation.seed);
  h.Mix(config.annotation.auto_coverage);
  h.Mix(config.annotation.annotator_count);
  h.Mix(config.annotation.annotator_error_rate);
  h.Mix(config.hard_negative_fraction);
  h.Mix(config.background_keep_fraction);
  return h.digest();
}

uint64_t CombineFingerprints(std::initializer_list<uint64_t> parts) {
  Fnv1a h;
  h.Mix(std::string_view("CombineFingerprints"));
  for (uint64_t part : parts) h.Mix(part);
  return h.digest();
}

}  // namespace ultrawiki
