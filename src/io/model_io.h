#ifndef ULTRAWIKI_IO_MODEL_IO_H_
#define ULTRAWIKI_IO_MODEL_IO_H_

#include <string>

#include "common/status.h"
#include "embedding/encoder.h"

namespace ultrawiki {

/// Binary persistence of trained context encoders (train once, reuse
/// across runs), on the shared checksummed snapshot framing of
/// io/snapshot.h (SnapshotKind::kEncoder). The payload is field-explicit
/// little-endian: the EncoderConfig (seed, dims, augmentation weight),
/// the two vocabulary sizes, a token-weights flag, then the float
/// parameter blocks in a fixed order — token embeddings, W1, b1, output
/// embeddings, output bias, projection, projection bias, token weights.

/// Writes `encoder` to `path` (atomically: temp file + rename).
Status SaveEncoder(const ContextEncoder& encoder, const std::string& path);

/// Reads an encoder from `path`. The stored dimensions define the
/// constructed encoder; fails closed with a Status on bad magic, version
/// skew, checksum mismatch, truncation, trailing bytes, or dimensions
/// implausible for the file size — nothing is allocated from a header
/// the payload cannot back.
StatusOr<ContextEncoder> LoadEncoder(const std::string& path);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_IO_MODEL_IO_H_
