#ifndef ULTRAWIKI_IO_MODEL_IO_H_
#define ULTRAWIKI_IO_MODEL_IO_H_

#include <string>

#include "common/status.h"
#include "embedding/encoder.h"

namespace ultrawiki {

/// Binary persistence of trained context encoders (train once, reuse
/// across runs). The format is a small header (magic, version, dims)
/// followed by the raw little-endian float parameter blocks in a fixed
/// order: token embeddings, W1, b1, output embeddings, output bias,
/// projection, projection bias, token weights.

/// Writes `encoder` to `path`.
Status SaveEncoder(const ContextEncoder& encoder, const std::string& path);

/// Reads an encoder from `path`. The stored dimensions define the
/// constructed encoder; fails on magic/version/shape mismatch.
StatusOr<ContextEncoder> LoadEncoder(const std::string& path);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_IO_MODEL_IO_H_
