#ifndef ULTRAWIKI_IO_ARTIFACT_CACHE_H_
#define ULTRAWIKI_IO_ARTIFACT_CACHE_H_

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>

#include "common/status.h"
#include "dataset/dataset.h"
#include "embedding/encoder.h"
#include "embedding/entity_store.h"
#include "embedding/trainer.h"

namespace ultrawiki {

/// Content-addressed snapshot cache for the expensive pipeline artifacts
/// (world/corpus, mined inverted index, trained encoder, entity store).
/// Entries are keyed by a fingerprint of everything that determines the
/// artifact's bytes — the generator/trainer configs that produced it — and
/// by the snapshot format version, so a format bump or any config change
/// silently misses instead of serving a stale artifact.
///
/// The cache is rooted at the `UW_CACHE_DIR` environment variable and is
/// disabled (every lookup misses, nothing is written) when unset or empty.
/// Corrupt or truncated entries are indistinguishable from misses: the
/// checksummed loader rejects them and the builder overwrites them.
///
/// Observability: every lookup bumps `cache.hit` or `cache.miss`, and hits
/// add the file size to `cache.bytes_read`; successful writes bump
/// `cache.store`.
class ArtifactCache {
 public:
  /// Process-global instance rooted at UW_CACHE_DIR (read once).
  static ArtifactCache& Global();

  /// Repoints the global instance (empty string disables). Test-only.
  static void OverrideGlobalForTest(std::string root);

  /// `root` empty => disabled.
  explicit ArtifactCache(std::string root) : root_(std::move(root)) {}

  bool enabled() const { return !root_.empty(); }
  const std::string& root() const { return root_; }

  /// `<root>/<kind>-v<format>-<key as hex>.uws`; empty when disabled.
  std::string PathFor(std::string_view kind, uint64_t key) const;

  /// Counter plumbing used by the Try/Store helpers below.
  void RecordHit(uint64_t bytes_read);
  void RecordMiss();
  void RecordStore();

 private:
  std::string root_;
};

namespace internal_cache {
uint64_t FileSizeOrZero(const std::string& path);
/// Creates the entry's parent directory if missing; best-effort.
void EnsureParentDir(const std::string& path);
/// The cache logs every failed store (they should be rare and actionable).
void WarnStoreFailed(const std::string& path, const Status& status);
}  // namespace internal_cache

/// Attempts a cached load. `loader` is invoked with the entry path and
/// must return a StatusOr; a missing, corrupt, or mis-versioned entry
/// counts as a miss and returns nullopt so the caller rebuilds (and
/// overwrites the entry via StoreCached). Returns nullopt without
/// recording anything when the cache is disabled.
template <typename Loader>
auto TryLoadCached(ArtifactCache& cache, std::string_view kind,
                   uint64_t key, Loader&& loader)
    -> std::optional<std::decay_t<
        decltype(std::declval<std::invoke_result_t<Loader, std::string>>()
                     .value())>> {
  if (!cache.enabled()) return std::nullopt;
  const std::string path = cache.PathFor(kind, key);
  auto loaded = loader(path);
  if (!loaded.ok()) {
    cache.RecordMiss();
    return std::nullopt;
  }
  cache.RecordHit(internal_cache::FileSizeOrZero(path));
  return std::move(loaded).value();
}

/// Writes an artifact into the cache. `saver` is invoked with the entry
/// path and must return Status. Failures are logged and swallowed — a
/// read-only or full cache directory degrades to cold runs, never to a
/// crashed pipeline. No-op when the cache is disabled.
template <typename Saver>
void StoreCached(ArtifactCache& cache, std::string_view kind, uint64_t key,
                 Saver&& saver) {
  if (!cache.enabled()) return;
  const std::string path = cache.PathFor(kind, key);
  internal_cache::EnsureParentDir(path);
  const Status status = saver(path);
  if (status.ok()) {
    cache.RecordStore();
  } else {
    internal_cache::WarnStoreFailed(path, status);
  }
}

/// Config fingerprints for cache keys. Each mixes a distinct type tag and
/// every field (pointer members are mixed as a presence flag only, so
/// callers must not cache artifacts built with external prefix tables).
uint64_t FingerprintConfig(const EncoderConfig& config);
uint64_t FingerprintConfig(const EntityPredictionTrainConfig& config);
uint64_t FingerprintConfig(const EntityStoreConfig& config);
uint64_t FingerprintConfig(const DatasetConfig& config);

/// Order-sensitive combination of sub-fingerprints into one cache key.
uint64_t CombineFingerprints(std::initializer_list<uint64_t> parts);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_IO_ARTIFACT_CACHE_H_
