#include "io/shard_manifest.h"

#include "io/snapshot.h"

namespace ultrawiki {

Status SaveShardManifest(const ShardManifest& manifest,
                         const std::string& path) {
  if (manifest.shard_count == 0) {
    return Status::InvalidArgument("shard_count must be positive");
  }
  if (manifest.shard_store_keys.size() != manifest.shard_count) {
    return Status::InvalidArgument("shard_store_keys size mismatch");
  }
  SnapshotWriter writer;
  writer.PutU64(manifest.generation);
  writer.PutU32(manifest.shard_count);
  writer.PutU64(manifest.store_fingerprint);
  writer.PutU64(manifest.shard_store_keys.size());
  for (const uint64_t key : manifest.shard_store_keys) writer.PutU64(key);
  return WriteSnapshotFile(path, SnapshotKind::kShardManifest, writer);
}

StatusOr<ShardManifest> LoadShardManifest(const std::string& path) {
  StatusOr<std::string> payload =
      ReadSnapshotFile(path, SnapshotKind::kShardManifest);
  if (!payload.ok()) return payload.status();
  SnapshotReader reader(*payload);
  ShardManifest manifest;
  reader.ReadU64(&manifest.generation);
  reader.ReadU32(&manifest.shard_count);
  reader.ReadU64(&manifest.store_fingerprint);
  uint64_t key_count = 0;
  reader.ReadU64(&key_count);
  if (reader.ok() && key_count * 8 > reader.remaining()) {
    reader.Corrupt("shard key count exceeds payload");
  }
  if (reader.ok()) {
    manifest.shard_store_keys.resize(static_cast<size_t>(key_count));
    for (uint64_t& key : manifest.shard_store_keys) reader.ReadU64(&key);
  }
  if (reader.ok() && manifest.shard_count == 0) {
    reader.Corrupt("shard_count is zero");
  }
  if (reader.ok() &&
      manifest.shard_store_keys.size() != manifest.shard_count) {
    reader.Corrupt("shard key count disagrees with shard_count");
  }
  Status status = reader.Finish();
  if (!status.ok()) return status;
  return manifest;
}

}  // namespace ultrawiki
