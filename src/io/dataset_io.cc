#include "io/dataset_io.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace ultrawiki {
namespace {

constexpr char kClassesFile[] = "ultra_classes.tsv";
constexpr char kQueriesFile[] = "queries.tsv";
constexpr char kCandidatesFile[] = "candidates.txt";

std::string JoinInts(const std::vector<int>& values) {
  std::vector<std::string> out;
  out.reserve(values.size());
  for (int v : values) out.push_back(std::to_string(v));
  return JoinStrings(out, ",");
}

std::string JoinEntityIds(const std::vector<EntityId>& values) {
  std::vector<std::string> out;
  out.reserve(values.size());
  for (EntityId v : values) out.push_back(std::to_string(v));
  return JoinStrings(out, ",");
}

StatusOr<std::vector<int>> ParseInts(const std::string& text) {
  std::vector<int> out;
  for (const std::string& piece : SplitString(text, ',')) {
    try {
      out.push_back(std::stoi(piece));
    } catch (const std::exception&) {
      return Status::Internal("not an integer: " + piece);
    }
  }
  return out;
}

StatusOr<std::vector<EntityId>> ParseEntityIds(
    const std::string& text, const GeneratedWorld& world) {
  auto ints = ParseInts(text);
  if (!ints.ok()) return ints.status();
  std::vector<EntityId> out;
  out.reserve(ints->size());
  for (int v : *ints) {
    if (v < 0 || static_cast<size_t>(v) >= world.corpus.entity_count()) {
      return Status::Internal("entity id out of range: " +
                              std::to_string(v));
    }
    out.push_back(static_cast<EntityId>(v));
  }
  return out;
}

Status WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot open for writing: " + path);
  out << contents;
  if (!out) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

StatusOr<std::vector<std::string>> ReadLines(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

}  // namespace

Status SaveDataset(const UltraWikiDataset& dataset,
                   const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::Internal("cannot create directory: " + dir);

  {
    std::ostringstream out;
    for (const UltraClass& ultra : dataset.classes) {
      out << ultra.fine_class << '\t' << JoinInts(ultra.pos_attrs) << '\t'
          << JoinInts(ultra.pos_values) << '\t'
          << JoinInts(ultra.neg_attrs) << '\t'
          << JoinInts(ultra.neg_values) << '\t'
          << JoinEntityIds(ultra.positive_targets) << '\t'
          << JoinEntityIds(ultra.negative_targets) << '\n';
    }
    Status status = WriteFile(dir + "/" + kClassesFile, out.str());
    if (!status.ok()) return status;
  }
  {
    std::ostringstream out;
    for (const Query& query : dataset.queries) {
      out << query.ultra_class << '\t' << JoinEntityIds(query.pos_seeds)
          << '\t' << JoinEntityIds(query.neg_seeds) << '\n';
    }
    Status status = WriteFile(dir + "/" + kQueriesFile, out.str());
    if (!status.ok()) return status;
  }
  {
    std::ostringstream out;
    for (EntityId id : dataset.candidates) out << id << '\n';
    Status status = WriteFile(dir + "/" + kCandidatesFile, out.str());
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

StatusOr<UltraWikiDataset> LoadDataset(const GeneratedWorld& world,
                                       const std::string& dir) {
  UltraWikiDataset dataset;
  {
    auto lines = ReadLines(dir + "/" + kClassesFile);
    if (!lines.ok()) return lines.status();
    for (const std::string& line : *lines) {
      if (line.empty()) continue;
      const std::vector<std::string> fields =
          SplitStringKeepEmpty(line, '\t');
      if (fields.size() != 7) {
        return Status::Internal("malformed ultra-class line: " + line);
      }
      UltraClass ultra;
      ultra.fine_class = static_cast<ClassId>(std::stoi(fields[0]));
      if (ultra.fine_class < 0 ||
          static_cast<size_t>(ultra.fine_class) >= world.schema.size()) {
        return Status::Internal("ultra-class references unknown class");
      }
      auto pos_attrs = ParseInts(fields[1]);
      auto pos_values = ParseInts(fields[2]);
      auto neg_attrs = ParseInts(fields[3]);
      auto neg_values = ParseInts(fields[4]);
      auto positives = ParseEntityIds(fields[5], world);
      auto negatives = ParseEntityIds(fields[6], world);
      for (const Status& status :
           {pos_attrs.status(), pos_values.status(), neg_attrs.status(),
            neg_values.status(), positives.status(), negatives.status()}) {
        if (!status.ok()) return status;
      }
      ultra.pos_attrs = std::move(pos_attrs).value();
      ultra.pos_values = std::move(pos_values).value();
      ultra.neg_attrs = std::move(neg_attrs).value();
      ultra.neg_values = std::move(neg_values).value();
      ultra.positive_targets = std::move(positives).value();
      ultra.negative_targets = std::move(negatives).value();
      ultra.attrs_identical = ultra.pos_attrs == ultra.neg_attrs;
      dataset.classes.push_back(std::move(ultra));
    }
  }
  {
    auto lines = ReadLines(dir + "/" + kQueriesFile);
    if (!lines.ok()) return lines.status();
    for (const std::string& line : *lines) {
      if (line.empty()) continue;
      const std::vector<std::string> fields =
          SplitStringKeepEmpty(line, '\t');
      if (fields.size() != 3) {
        return Status::Internal("malformed query line: " + line);
      }
      Query query;
      query.ultra_class = std::stoi(fields[0]);
      if (query.ultra_class < 0 ||
          static_cast<size_t>(query.ultra_class) >=
              dataset.classes.size()) {
        return Status::Internal("query references unknown ultra-class");
      }
      auto pos = ParseEntityIds(fields[1], world);
      if (!pos.ok()) return pos.status();
      auto neg = ParseEntityIds(fields[2], world);
      if (!neg.ok()) return neg.status();
      query.pos_seeds = std::move(pos).value();
      query.neg_seeds = std::move(neg).value();
      dataset.queries.push_back(std::move(query));
    }
  }
  {
    auto lines = ReadLines(dir + "/" + kCandidatesFile);
    if (!lines.ok()) return lines.status();
    for (const std::string& line : *lines) {
      if (line.empty()) continue;
      auto ids = ParseEntityIds(line, world);
      if (!ids.ok()) return ids.status();
      for (EntityId id : *ids) dataset.candidates.push_back(id);
    }
  }
  if (dataset.classes.empty() || dataset.candidates.empty()) {
    return Status::Internal("dataset files are empty");
  }
  return dataset;
}

}  // namespace ultrawiki
