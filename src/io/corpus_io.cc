#include "io/corpus_io.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace ultrawiki {
namespace {

constexpr char kSchemaFile[] = "schema.tsv";
constexpr char kEntitiesFile[] = "entities.tsv";
constexpr char kSentencesFile[] = "sentences.tsv";
constexpr char kAuxiliaryFile[] = "auxiliary.txt";
constexpr char kKnowledgeFile[] = "knowledge.tsv";

std::string JoinWords(const std::vector<std::string>& words,
                      const char* sep = " ") {
  return JoinStrings(words, sep);
}

std::string RenderTokens(const Corpus& corpus,
                         const std::vector<TokenId>& tokens) {
  return corpus.Render(tokens);
}

/// Encodes one attribute: values "a,b", canonical clues "w w|w w",
/// variants "p~p|p~p" (phrases '~'-joined per value, values '|'-joined).
std::string EncodeAttribute(const AttributeDef& attr) {
  std::vector<std::string> canonical;
  std::vector<std::string> variants;
  for (size_t v = 0; v < attr.values.size(); ++v) {
    canonical.push_back(JoinWords(attr.clue_tokens[v]));
    std::vector<std::string> phrases;
    for (const auto& phrase : attr.clue_variants[v]) {
      phrases.push_back(JoinWords(phrase));
    }
    variants.push_back(JoinStrings(phrases, "~"));
  }
  std::ostringstream out;
  out << "ATTR\t" << attr.name << '\t' << attr.signal_rate << '\t'
      << attr.canonical_rate << '\t' << JoinStrings(attr.values, ",")
      << '\t' << JoinStrings(canonical, "|") << '\t'
      << JoinStrings(variants, "|");
  return out.str();
}

StatusOr<AttributeDef> DecodeAttribute(const std::string& line) {
  const std::vector<std::string> fields = SplitStringKeepEmpty(line, '\t');
  if (fields.size() != 7 || fields[0] != "ATTR") {
    return Status::Internal("malformed attribute line: " + line);
  }
  AttributeDef attr;
  attr.name = fields[1];
  attr.signal_rate = std::stod(fields[2]);
  attr.canonical_rate = std::stod(fields[3]);
  attr.values = SplitString(fields[4], ',');
  for (const std::string& clue : SplitString(fields[5], '|')) {
    attr.clue_tokens.push_back(SplitString(clue, ' '));
  }
  for (const std::string& value_variants : SplitString(fields[6], '|')) {
    std::vector<std::vector<std::string>> phrases;
    for (const std::string& phrase : SplitString(value_variants, '~')) {
      phrases.push_back(SplitString(phrase, ' '));
    }
    attr.clue_variants.push_back(std::move(phrases));
  }
  if (attr.clue_tokens.size() != attr.values.size() ||
      attr.clue_variants.size() != attr.values.size()) {
    return Status::Internal("attribute clue arity mismatch: " + attr.name);
  }
  return attr;
}

Status WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot open for writing: " + path);
  out << contents;
  if (!out) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

StatusOr<std::vector<std::string>> ReadLines(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

}  // namespace

Status RebuildWorldValueIndex(GeneratedWorld& world) {
  world.entities_by_value.assign(world.schema.size(), {});
  for (size_t c = 0; c < world.schema.size(); ++c) {
    const FineClassSpec& spec = world.schema[c];
    world.entities_by_value[c].resize(spec.attributes.size());
    for (size_t a = 0; a < spec.attributes.size(); ++a) {
      world.entities_by_value[c][a].resize(
          spec.attributes[a].values.size());
    }
  }
  for (EntityId id = 0;
       id < static_cast<EntityId>(world.corpus.entity_count()); ++id) {
    const Entity& entity = world.corpus.entity(id);
    if (entity.class_id == kBackgroundClassId) continue;
    if (entity.class_id < 0 ||
        static_cast<size_t>(entity.class_id) >= world.schema.size()) {
      return Status::Internal("entity references unknown class");
    }
    const size_t c = static_cast<size_t>(entity.class_id);
    for (size_t a = 0; a < entity.attribute_values.size(); ++a) {
      const int v = entity.attribute_values[a];
      if (a >= world.entities_by_value[c].size() || v < 0 ||
          static_cast<size_t>(v) >= world.entities_by_value[c][a].size()) {
        return Status::Internal("entity attribute out of schema range");
      }
      world.entities_by_value[c][a][static_cast<size_t>(v)].push_back(id);
    }
  }
  return Status::Ok();
}

Status SaveWorld(const GeneratedWorld& world, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::Internal("cannot create directory: " + dir);

  // schema.tsv
  {
    std::ostringstream out;
    for (const FineClassSpec& spec : world.schema) {
      out << "CLASS\t" << spec.name << '\t' << spec.coarse_category << '\t'
          << spec.singular_noun << '\t' << spec.plural_noun << '\t'
          << spec.entity_count << '\t' << spec.name_style << '\t'
          << JoinStrings(spec.topic_tokens, ",") << '\n';
      for (const AttributeDef& attr : spec.attributes) {
        out << EncodeAttribute(attr) << '\n';
      }
    }
    Status status = WriteFile(dir + "/" + kSchemaFile, out.str());
    if (!status.ok()) return status;
  }

  // entities.tsv
  {
    std::ostringstream out;
    for (EntityId id = 0;
         id < static_cast<EntityId>(world.corpus.entity_count()); ++id) {
      const Entity& entity = world.corpus.entity(id);
      std::vector<std::string> values;
      for (int v : entity.attribute_values) {
        values.push_back(std::to_string(v));
      }
      out << id << '\t' << entity.name << '\t' << entity.class_id << '\t'
          << (entity.is_long_tail ? 1 : 0) << '\t'
          << JoinStrings(values, ",") << '\n';
    }
    Status status = WriteFile(dir + "/" + kEntitiesFile, out.str());
    if (!status.ok()) return status;
  }

  // sentences.tsv
  {
    std::ostringstream out;
    for (size_t s = 0; s < world.corpus.sentence_count(); ++s) {
      const Sentence& sentence = world.corpus.sentence(s);
      out << sentence.entity << '\t' << sentence.mention_begin << '\t'
          << sentence.mention_len << '\t'
          << RenderTokens(world.corpus, sentence.tokens) << '\n';
    }
    Status status = WriteFile(dir + "/" + kSentencesFile, out.str());
    if (!status.ok()) return status;
  }

  // auxiliary.txt
  {
    std::ostringstream out;
    for (const auto& tokens : world.corpus.auxiliary_sentences()) {
      out << RenderTokens(world.corpus, tokens) << '\n';
    }
    Status status = WriteFile(dir + "/" + kAuxiliaryFile, out.str());
    if (!status.ok()) return status;
  }

  // knowledge.tsv
  {
    std::ostringstream out;
    for (EntityId id = 0;
         id < static_cast<EntityId>(world.corpus.entity_count()); ++id) {
      out << id << '\t'
          << RenderTokens(world.corpus, world.kb.IntroductionOf(id)) << '\t'
          << RenderTokens(world.corpus, world.kb.WikidataAttributesOf(id))
          << '\n';
    }
    Status status = WriteFile(dir + "/" + kKnowledgeFile, out.str());
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

StatusOr<GeneratedWorld> LoadWorld(const std::string& dir) {
  GeneratedWorld world;

  // schema.tsv
  {
    auto lines = ReadLines(dir + "/" + kSchemaFile);
    if (!lines.ok()) return lines.status();
    for (const std::string& line : *lines) {
      if (line.empty()) continue;
      const std::vector<std::string> fields =
          SplitStringKeepEmpty(line, '\t');
      if (fields[0] == "CLASS") {
        if (fields.size() != 8) {
          return Status::Internal("malformed class line: " + line);
        }
        FineClassSpec spec;
        spec.name = fields[1];
        spec.coarse_category = fields[2];
        spec.singular_noun = fields[3];
        spec.plural_noun = fields[4];
        spec.entity_count = std::stoi(fields[5]);
        spec.name_style = std::stoi(fields[6]);
        spec.topic_tokens = SplitString(fields[7], ',');
        world.schema.push_back(std::move(spec));
      } else if (fields[0] == "ATTR") {
        if (world.schema.empty()) {
          return Status::Internal("ATTR line before any CLASS line");
        }
        auto attr = DecodeAttribute(line);
        if (!attr.ok()) return attr.status();
        world.schema.back().attributes.push_back(std::move(attr).value());
      } else {
        return Status::Internal("unknown schema record: " + fields[0]);
      }
    }
    if (world.schema.empty()) {
      return Status::Internal("schema file holds no classes");
    }
  }

  // entities.tsv
  {
    auto lines = ReadLines(dir + "/" + kEntitiesFile);
    if (!lines.ok()) return lines.status();
    for (const std::string& line : *lines) {
      if (line.empty()) continue;
      const std::vector<std::string> fields =
          SplitStringKeepEmpty(line, '\t');
      if (fields.size() != 5) {
        return Status::Internal("malformed entity line: " + line);
      }
      Entity entity;
      entity.name = fields[1];
      entity.name_tokens = SplitString(entity.name, ' ');
      entity.class_id = static_cast<ClassId>(std::stoi(fields[2]));
      entity.is_long_tail = fields[3] == "1";
      for (const std::string& v : SplitString(fields[4], ',')) {
        entity.attribute_values.push_back(std::stoi(v));
      }
      if (entity.class_id != kBackgroundClassId &&
          (entity.class_id < 0 ||
           static_cast<size_t>(entity.class_id) >= world.schema.size())) {
        return Status::Internal("entity references unknown class: " + line);
      }
      const EntityId id = world.corpus.AddEntity(std::move(entity));
      const Entity& stored = world.corpus.entity(id);
      if (id != std::stoi(fields[0])) {
        return Status::Internal("entity ids must be dense and in order");
      }
      // Intern the name tokens so surface lookups work.
      std::vector<TokenId> unused =
          world.corpus.InternWords(stored.name_tokens);
      (void)unused;
      if (stored.class_id == kBackgroundClassId) {
        world.background_entities.push_back(id);
      }
    }
    if (world.corpus.entity_count() == 0) {
      return Status::Internal("entity file holds no entities");
    }
  }

  // Rebuild the per-value index.
  {
    Status status = RebuildWorldValueIndex(world);
    if (!status.ok()) return status;
  }

  // sentences.tsv
  {
    auto lines = ReadLines(dir + "/" + kSentencesFile);
    if (!lines.ok()) return lines.status();
    for (const std::string& line : *lines) {
      if (line.empty()) continue;
      const std::vector<std::string> fields =
          SplitStringKeepEmpty(line, '\t');
      if (fields.size() != 4) {
        return Status::Internal("malformed sentence line: " + line);
      }
      Sentence sentence;
      sentence.entity = static_cast<EntityId>(std::stoi(fields[0]));
      sentence.mention_begin = std::stoi(fields[1]);
      sentence.mention_len = std::stoi(fields[2]);
      sentence.tokens = world.corpus.InternWords(SplitString(fields[3], ' '));
      if (sentence.entity < 0 ||
          static_cast<size_t>(sentence.entity) >=
              world.corpus.entity_count() ||
          sentence.mention_begin < 0 || sentence.mention_len <= 0 ||
          static_cast<size_t>(sentence.mention_begin +
                              sentence.mention_len) >
              sentence.tokens.size()) {
        return Status::Internal("sentence out of bounds: " + line);
      }
      world.corpus.AddSentence(std::move(sentence));
    }
  }

  // auxiliary.txt
  {
    auto lines = ReadLines(dir + "/" + kAuxiliaryFile);
    if (!lines.ok()) return lines.status();
    for (const std::string& line : *lines) {
      if (line.empty()) continue;
      world.corpus.AddAuxiliarySentence(
          world.corpus.InternWords(SplitString(line, ' ')));
    }
  }

  // knowledge.tsv
  {
    auto lines = ReadLines(dir + "/" + kKnowledgeFile);
    if (!lines.ok()) return lines.status();
    EntityId next = 0;
    for (const std::string& line : *lines) {
      if (line.empty()) continue;
      const std::vector<std::string> fields =
          SplitStringKeepEmpty(line, '\t');
      if (fields.size() != 3) {
        return Status::Internal("malformed knowledge line: " + line);
      }
      if (std::stoi(fields[0]) != next) {
        return Status::Internal("knowledge ids must be dense and in order");
      }
      world.kb.Add(next,
                   world.corpus.InternWords(SplitString(fields[1], ' ')),
                   world.corpus.InternWords(SplitString(fields[2], ' ')));
      ++next;
    }
    if (static_cast<size_t>(next) != world.corpus.entity_count()) {
      return Status::Internal("knowledge base does not cover all entities");
    }
  }
  return world;
}

}  // namespace ultrawiki
