#include "io/model_io.h"

#include <cstdint>
#include <vector>

#include "io/snapshot.h"

namespace ultrawiki {
namespace {

/// Upper bound on any stored encoder dimension. Far above every real
/// configuration; only a corrupt file trips it.
constexpr uint64_t kMaxEncoderDim = 1u << 20;

}  // namespace

Status SaveEncoder(const ContextEncoder& encoder, const std::string& path) {
  SnapshotWriter writer;
  const EncoderConfig& config = encoder.config();
  writer.PutU64(config.seed);
  writer.PutI32(config.token_dim);
  writer.PutI32(config.hidden_dim);
  writer.PutI32(config.projection_dim);
  writer.PutF32(config.augmentation_weight);
  writer.PutU64(encoder.token_vocab_size());
  writer.PutU64(encoder.entity_vocab_size());
  // Token pooling weights are part of the trained model's behaviour, so
  // they are always serialized.
  writer.PutU32(1);  // has_token_weights

  writer.PutFloats(encoder.token_embeddings().Flat());
  writer.PutFloats(encoder.w1().Flat());
  writer.PutFloats(encoder.b1());
  writer.PutFloats(encoder.output_embeddings().Flat());
  writer.PutFloats(encoder.output_bias());
  writer.PutFloats(encoder.projection().Flat());
  writer.PutFloats(encoder.projection_bias());

  std::vector<float> weights(encoder.token_vocab_size(), 1.0f);
  for (size_t t = 0; t < weights.size(); ++t) {
    weights[t] = encoder.TokenWeight(static_cast<TokenId>(t));
  }
  writer.PutFloats(weights);

  return WriteSnapshotFile(path, SnapshotKind::kEncoder, writer);
}

StatusOr<ContextEncoder> LoadEncoder(const std::string& path) {
  auto payload = ReadSnapshotFile(path, SnapshotKind::kEncoder);
  if (!payload.ok()) return payload.status();
  SnapshotReader reader(payload.value());

  EncoderConfig config;
  uint64_t token_vocab = 0;
  uint64_t entity_vocab = 0;
  uint32_t has_token_weights = 0;
  reader.ReadU64(&config.seed);
  reader.ReadI32(&config.token_dim);
  reader.ReadI32(&config.hidden_dim);
  reader.ReadI32(&config.projection_dim);
  reader.ReadF32(&config.augmentation_weight);
  reader.ReadU64(&token_vocab);
  reader.ReadU64(&entity_vocab);
  reader.ReadU32(&has_token_weights);
  if (!reader.ok()) return reader.Finish();

  if (config.token_dim <= 0 || config.hidden_dim <= 0 ||
      config.projection_dim <= 0 ||
      static_cast<uint64_t>(config.token_dim) > kMaxEncoderDim ||
      static_cast<uint64_t>(config.hidden_dim) > kMaxEncoderDim ||
      static_cast<uint64_t>(config.projection_dim) > kMaxEncoderDim) {
    return Status::Internal("corrupt encoder snapshot (implausible dims)");
  }
  if (has_token_weights > 1) {
    return Status::Internal("corrupt encoder snapshot (bad weights flag)");
  }
  // Cap the vocabularies against the remaining payload before sizing
  // anything from them: each vocabulary row contributes at least one
  // float, so a plausible file has remaining() >= vocab * 4.
  const uint64_t remaining = reader.remaining();
  if (token_vocab == 0 || entity_vocab == 0 ||
      token_vocab > remaining / sizeof(float) ||
      entity_vocab > remaining / sizeof(float)) {
    return Status::Internal("corrupt encoder snapshot (implausible vocab)");
  }
  // The payload lives in memory, so remaining < 2^48 and these products
  // (vocab <= remaining/4, dim <= 2^20) cannot overflow u64.
  const uint64_t token_dim = static_cast<uint64_t>(config.token_dim);
  const uint64_t hidden_dim = static_cast<uint64_t>(config.hidden_dim);
  const uint64_t projection_dim = static_cast<uint64_t>(config.projection_dim);
  const uint64_t expected_floats =
      token_vocab * token_dim + hidden_dim * token_dim + hidden_dim +
      entity_vocab * hidden_dim + entity_vocab +
      projection_dim * hidden_dim + projection_dim +
      (has_token_weights != 0 ? token_vocab : 0);
  if (expected_floats * sizeof(float) != remaining) {
    return Status::Internal(
        "corrupt encoder snapshot (geometry does not match payload size)");
  }

  ContextEncoder encoder(token_vocab, entity_vocab, config);
  reader.ReadFloats(encoder.token_embeddings().Flat());
  reader.ReadFloats(encoder.w1().Flat());
  reader.ReadFloats(encoder.b1());
  reader.ReadFloats(encoder.output_embeddings().Flat());
  reader.ReadFloats(encoder.output_bias());
  reader.ReadFloats(encoder.projection().Flat());
  reader.ReadFloats(encoder.projection_bias());
  if (has_token_weights != 0) {
    std::vector<float> weights(token_vocab, 1.0f);
    reader.ReadFloats(weights);
    if (reader.ok()) encoder.SetTokenWeights(std::move(weights));
  }

  Status status = reader.Finish();
  if (!status.ok()) return status;
  return encoder;
}

}  // namespace ultrawiki
