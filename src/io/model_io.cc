#include "io/model_io.h"

#include <cstdint>
#include <fstream>

namespace ultrawiki {
namespace {

constexpr uint32_t kMagic = 0x55574B31;  // "UWK1"
constexpr uint32_t kVersion = 1;

struct Header {
  uint32_t magic = kMagic;
  uint32_t version = kVersion;
  uint32_t token_vocab = 0;
  uint32_t entity_vocab = 0;
  int32_t token_dim = 0;
  int32_t hidden_dim = 0;
  int32_t projection_dim = 0;
  float augmentation_weight = 0.0f;
  uint32_t has_token_weights = 0;
};

Status WriteFloats(std::ofstream& out, std::span<const float> data) {
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
  if (!out) return Status::Internal("encoder write failed");
  return Status::Ok();
}

Status ReadFloats(std::ifstream& in, std::span<float> data) {
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size() * sizeof(float)));
  if (!in) return Status::Internal("encoder read failed (truncated file)");
  return Status::Ok();
}

}  // namespace

Status SaveEncoder(const ContextEncoder& encoder, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open for writing: " + path);

  Header header;
  header.token_vocab = static_cast<uint32_t>(encoder.token_vocab_size());
  header.entity_vocab = static_cast<uint32_t>(encoder.entity_vocab_size());
  header.token_dim = encoder.config().token_dim;
  header.hidden_dim = encoder.config().hidden_dim;
  header.projection_dim = encoder.config().projection_dim;
  header.augmentation_weight = encoder.config().augmentation_weight;
  // Token weights are optional; detect by probing whether any weight
  // differs from the implicit default of 1 (cheap heuristic: serialize
  // them always — they are part of the trained model's behaviour).
  header.has_token_weights = 1;
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  if (!out) return Status::Internal("header write failed: " + path);

  for (Status status :
       {WriteFloats(out, encoder.token_embeddings().Flat()),
        WriteFloats(out, encoder.w1().Flat()),
        WriteFloats(out, encoder.b1()),
        WriteFloats(out, encoder.output_embeddings().Flat()),
        WriteFloats(out, encoder.output_bias()),
        WriteFloats(out, encoder.projection().Flat()),
        WriteFloats(out, encoder.projection_bias())}) {
    if (!status.ok()) return status;
  }
  // Token pooling weights, one per token.
  std::vector<float> weights(encoder.token_vocab_size(), 1.0f);
  for (size_t t = 0; t < weights.size(); ++t) {
    weights[t] = encoder.TokenWeight(static_cast<TokenId>(t));
  }
  return WriteFloats(out, weights);
}

StatusOr<ContextEncoder> LoadEncoder(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);

  Header header;
  in.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!in) return Status::Internal("header read failed: " + path);
  if (header.magic != kMagic) {
    return Status::Internal("not an encoder file (bad magic): " + path);
  }
  if (header.version != kVersion) {
    return Status::Internal("unsupported encoder version");
  }
  if (header.token_dim <= 0 || header.hidden_dim <= 0 ||
      header.projection_dim <= 0 || header.token_vocab == 0 ||
      header.entity_vocab == 0) {
    return Status::Internal("corrupt encoder header");
  }

  EncoderConfig config;
  config.token_dim = header.token_dim;
  config.hidden_dim = header.hidden_dim;
  config.projection_dim = header.projection_dim;
  config.augmentation_weight = header.augmentation_weight;
  ContextEncoder encoder(header.token_vocab, header.entity_vocab, config);

  for (Status status :
       {ReadFloats(in, encoder.token_embeddings().Flat()),
        ReadFloats(in, encoder.w1().Flat()), ReadFloats(in, encoder.b1()),
        ReadFloats(in, encoder.output_embeddings().Flat()),
        ReadFloats(in, encoder.output_bias()),
        ReadFloats(in, encoder.projection().Flat()),
        ReadFloats(in, encoder.projection_bias())}) {
    if (!status.ok()) return status;
  }
  if (header.has_token_weights != 0) {
    std::vector<float> weights(header.token_vocab, 1.0f);
    Status status = ReadFloats(in, weights);
    if (!status.ok()) return status;
    encoder.SetTokenWeights(std::move(weights));
  }
  return encoder;
}

}  // namespace ultrawiki
