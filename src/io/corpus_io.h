#ifndef ULTRAWIKI_IO_CORPUS_IO_H_
#define ULTRAWIKI_IO_CORPUS_IO_H_

#include <string>

#include "common/status.h"
#include "corpus/generator.h"

namespace ultrawiki {

/// On-disk layout of an exported world (all plain TSV/text, one record per
/// line, token ids resolved to surface strings so files are portable
/// across vocabularies):
///
///   <dir>/schema.tsv     class name, coarse category, nouns, attributes
///   <dir>/entities.tsv   id, name, class, long-tail flag, attribute values
///   <dir>/sentences.tsv  entity id, mention span, tokens
///   <dir>/auxiliary.txt  one auxiliary (list/similarity) sentence per line
///   <dir>/knowledge.tsv  entity id, introduction tokens, wikidata tokens
///
/// This is the interchange path for users who want to replace the
/// synthetic generator with their own crawled corpus: produce these files
/// and LoadWorld builds the same in-memory structures the generator does.

/// Writes `world` under `dir` (created if missing). Fails with
/// kInternal on I/O errors.
Status SaveWorld(const GeneratedWorld& world, const std::string& dir);

/// Reads a world previously written by SaveWorld (or hand-produced in the
/// same format). The token vocabulary is rebuilt from the surface strings;
/// entity ids must be dense and consistent across files.
StatusOr<GeneratedWorld> LoadWorld(const std::string& dir);

/// Rebuilds `world.entities_by_value` from the schema and the entities'
/// annotated attribute values (shared by every world loader). Fails when
/// an entity references an attribute or value outside its class schema.
Status RebuildWorldValueIndex(GeneratedWorld& world);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_IO_CORPUS_IO_H_
