#ifndef ULTRAWIKI_IO_DATASET_IO_H_
#define ULTRAWIKI_IO_DATASET_IO_H_

#include <string>

#include "common/status.h"
#include "dataset/dataset.h"

namespace ultrawiki {

/// On-disk layout of an exported dataset (companion of SaveWorld; all
/// entity references are numeric ids into the world's entity table):
///
///   <dir>/ultra_classes.tsv  fine class, A_pos=V_pos, A_neg=V_neg, P, N
///   <dir>/queries.tsv        ultra-class index, positive seeds, negatives
///   <dir>/candidates.txt     one candidate entity id per line
///
/// Annotation bookkeeping (kappa etc.) is derived data and is not stored.

/// Writes `dataset` under `dir` (created if missing).
Status SaveDataset(const UltraWikiDataset& dataset, const std::string& dir);

/// Reads a dataset previously written by SaveDataset. `world` is used for
/// bounds-checking the entity references.
StatusOr<UltraWikiDataset> LoadDataset(const GeneratedWorld& world,
                                       const std::string& dir);

}  // namespace ultrawiki

#endif  // ULTRAWIKI_IO_DATASET_IO_H_
