#ifndef ULTRAWIKI_IO_SNAPSHOT_H_
#define ULTRAWIKI_IO_SNAPSHOT_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ann/ivf_index.h"
#include "common/status.h"
#include "corpus/corpus.h"
#include "corpus/generator.h"
#include "embedding/entity_store.h"
#include "index/inverted_index.h"

namespace ultrawiki {

/// Versioned, checksummed binary snapshots of the expensive pipeline
/// artifacts. Every file shares one framing:
///
///   offset  size  field
///        0     4  magic "UWS2" (0x55575332, little-endian u32)
///        4     4  format version (kSnapshotVersion, u32)
///        8     4  artifact kind tag (SnapshotKind, u32)
///       12     8  payload byte length (u64)
///       20     N  payload — field-explicit little-endian records
///     20+N     4  CRC32 (IEEE) over bytes [0, 20+N)
///
/// All multi-byte values are written byte-by-byte in little-endian order —
/// never as raw structs — so files are portable across compilers and ABIs.
/// Floats are stored by bit pattern (IEEE-754), which makes a load/save
/// round trip bit-exact: a warm run computes exactly what the cold run
/// computed.
///
/// Every load path fails closed into `Status`: bad magic, version skew,
/// kind mismatch, checksum mismatch, truncation, trailing bytes, and
/// implausible dimensions (counts that could not fit in the remaining
/// payload) all return kInternal/kNotFound — never UB and never an
/// unbounded allocation driven by an untrusted header.

inline constexpr uint32_t kSnapshotMagic = 0x55575332;  // "2SWU" on disk
/// Bumped from 1 (the raw-struct encoder format of model_io v1, which was
/// padding/ABI-dependent and unchecksummed) to 2: shared field-explicit
/// framing with a CRC32 footer.
inline constexpr uint32_t kSnapshotVersion = 2;

/// The kInvertedIndex payload is itself versioned (the framing version
/// above covers the envelope, not the index encoding). Version 2 payloads
/// open with `kIndexPayloadTagBase | kIndexPayloadVersion` — a 64-bit
/// pattern ("\0UWSIDX" + version byte) that no legacy payload can start
/// with, because the legacy raw-postings format opens with a doc-length
/// count that ReadCount caps far below it. Loads of a tagged payload with
/// an unknown version fail closed; untagged payloads take the raw-format
/// compatibility path and are frozen on load.
inline constexpr uint64_t kIndexPayloadTagBase = 0x0055575349445800ULL;
inline constexpr uint64_t kIndexPayloadVersionMask = 0xFFULL;
inline constexpr uint64_t kIndexPayloadVersion = 2;

/// Artifact tag stored in the header; a file of one kind never parses as
/// another.
enum class SnapshotKind : uint32_t {
  kEncoder = 1,
  kCorpus = 2,
  kWorld = 3,
  kInvertedIndex = 4,
  kEntityStore = 5,
  kAnnIndex = 6,
  kShardManifest = 7,
};

/// CRC32 (IEEE 802.3 polynomial, reflected) of `data`, continuing from
/// `seed` (pass the previous return value to checksum in chunks).
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

/// Accumulates a snapshot payload. All writers append little-endian bytes
/// to an in-memory buffer; WriteSnapshotFile frames and flushes it.
class SnapshotWriter {
 public:
  void PutU32(uint32_t value);
  void PutU64(uint64_t value);
  void PutI32(int32_t value) { PutU32(static_cast<uint32_t>(value)); }
  void PutI64(int64_t value) { PutU64(static_cast<uint64_t>(value)); }
  void PutF32(float value);
  void PutF64(double value);
  /// u64 length + raw bytes.
  void PutString(std::string_view text);
  /// Raw float block, no count prefix (caller-known geometry).
  void PutFloats(std::span<const float> data);
  /// u64 count + raw elements.
  void PutFloatVec(std::span<const float> data);
  void PutI32Vec(std::span<const int32_t> data);
  void PutStringVec(const std::vector<std::string>& strings);

  const std::string& payload() const { return payload_; }

 private:
  std::string payload_;
};

/// Bounds-checked cursor over a verified snapshot payload. Every read
/// validates the requested size against the remaining bytes; the first
/// failure latches an error status and all subsequent reads return false,
/// so decoding loops can run unchecked and test `Finish()` once.
class SnapshotReader {
 public:
  explicit SnapshotReader(std::string_view payload) : data_(payload) {}

  bool ReadU32(uint32_t* value);
  bool ReadU64(uint64_t* value);
  bool ReadI32(int32_t* value);
  bool ReadI64(int64_t* value);
  bool ReadF32(float* value);
  bool ReadF64(double* value);
  bool ReadString(std::string* value);
  /// Fills `data` exactly; fails if fewer bytes remain.
  bool ReadFloats(std::span<float> data);
  /// Reads a u64 count + elements. The count is capped against the
  /// remaining payload before any allocation, so a corrupt header cannot
  /// trigger bad_alloc.
  bool ReadFloatVec(std::vector<float>* data);
  bool ReadI32Vec(std::vector<int32_t>* data);
  bool ReadStringVec(std::vector<std::string>* strings);

  size_t remaining() const { return data_.size() - cursor_; }
  bool ok() const { return error_.empty(); }

  /// OK only when no read failed and the payload was consumed exactly
  /// (leftover payload bytes mean a corrupt or mis-versioned file).
  Status Finish() const;

  /// Marks the payload corrupt with a caller-diagnosed reason (e.g. a
  /// count that fails a semantic bound). Subsequent reads fail.
  void Corrupt(std::string reason);

 private:
  bool Take(void* out, size_t size);

  std::string_view data_;
  size_t cursor_ = 0;
  std::string error_;
};

/// Frames `payload` (header + CRC32 footer) and atomically replaces
/// `path` (write to a temp file, then rename) so a crashed writer never
/// leaves a torn snapshot behind.
Status WriteSnapshotFile(const std::string& path, SnapshotKind kind,
                         const SnapshotWriter& writer);

/// Reads `path`, verifies magic/version/kind/length/CRC and rejects
/// trailing bytes, and returns the raw payload for a SnapshotReader.
StatusOr<std::string> ReadSnapshotFile(const std::string& path,
                                       SnapshotKind kind);

// --- Artifact save/load on the shared framing. ---

/// Corpus: vocabulary (tokens + counts), entities, labelled sentences,
/// auxiliary sentences. The per-entity sentence index is rebuilt on load.
Status SaveCorpusSnapshot(const Corpus& corpus, const std::string& path);
StatusOr<Corpus> LoadCorpusSnapshot(const std::string& path);

/// Full generated world: corpus + schema + knowledge base + background
/// ids + generator fingerprint; `entities_by_value` is rebuilt on load.
Status SaveWorldSnapshot(const GeneratedWorld& world,
                         const std::string& path);
StatusOr<GeneratedWorld> LoadWorldSnapshot(const std::string& path);

/// Inverted index in its frozen block-compressed form (payload version
/// 2): document lengths, the ascending term directory, per-block skip and
/// max-score metadata, and the concatenated varint-encoded blocks — so a
/// Bm25Scorer over the loaded index needs no corpus pass and no
/// re-compression. Save requires a frozen index (kInvalidArgument
/// otherwise). Load accepts both payload versions — the legacy raw
/// (doc, tf) format is parsed then frozen — and always returns a frozen
/// index whose searches are bit-identical to the saved one; every block
/// is decoded and validated against its metadata before the index is
/// accepted.
Status SaveIndexSnapshot(const InvertedIndex& index,
                         const std::string& path);
StatusOr<InvertedIndex> LoadIndexSnapshot(const std::string& path);

/// Entity representations (dim + per-slot hidden vectors).
Status SaveEntityStoreSnapshot(const EntityStore& store,
                               const std::string& path);
StatusOr<EntityStore> LoadEntityStoreSnapshot(const std::string& path);

/// IVF-Flat ANN index: versioned payload carrying the config fingerprint,
/// centroid matrix, and per-list member ids. Load rejects a file whose
/// stored config fingerprint differs from `config` (the caller's cache key
/// already encodes it; this is the fail-closed double-check) and funnels
/// the geometry through IvfIndex::Restore, so a checksum-valid file with
/// inconsistent lists still fails closed. A restored index answers
/// Candidates() bit-identically to the one that was saved.
Status SaveAnnIndexSnapshot(const IvfIndex& index, const std::string& path);
StatusOr<IvfIndex> LoadAnnIndexSnapshot(const std::string& path,
                                        const IvfConfig& config);

// The ContextEncoder lives on the same framing via SaveEncoder /
// LoadEncoder in io/model_io.h (SnapshotKind::kEncoder).

}  // namespace ultrawiki

#endif  // ULTRAWIKI_IO_SNAPSHOT_H_
