#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "expand/pipeline.h"

namespace ultrawiki {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipeline_ = new Pipeline(Pipeline::Build(PipelineConfig::Tiny()));
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }

  /// Shared contract every baseline must satisfy.
  void CheckContract(Expander& method, bool may_hallucinate) {
    for (size_t q = 0; q < 4 && q < pipeline_->dataset().queries.size();
         ++q) {
      const Query& query = pipeline_->dataset().queries[q];
      const auto ranking = method.Expand(query, 50);
      EXPECT_LE(ranking.size(), 50u) << method.name();
      EXPECT_FALSE(ranking.empty()) << method.name();
      const std::vector<EntityId> seeds = SortedSeedsOf(query);
      std::set<EntityId> candidates(pipeline_->candidates().begin(),
                                    pipeline_->candidates().end());
      for (EntityId id : ranking) {
        if (id == kHallucinatedEntityId) {
          EXPECT_TRUE(may_hallucinate) << method.name();
          continue;
        }
        EXPECT_FALSE(std::binary_search(seeds.begin(), seeds.end(), id))
            << method.name() << " returned a seed";
        EXPECT_TRUE(candidates.contains(id))
            << method.name() << " returned a non-candidate";
      }
      // Determinism.
      EXPECT_EQ(ranking, method.Expand(query, 50)) << method.name();
    }
  }

  static Pipeline* pipeline_;
};

Pipeline* BaselinesTest::pipeline_ = nullptr;

TEST_F(BaselinesTest, SetExpanContract) {
  auto method = pipeline_->MakeSetExpan();
  CheckContract(*method, /*may_hallucinate=*/false);
}

TEST_F(BaselinesTest, SetExpanBuildsFeatures) {
  auto method = pipeline_->MakeSetExpan();
  EXPECT_GT(method->feature_count(), 100u);
}

TEST_F(BaselinesTest, CaseContract) {
  auto method = pipeline_->MakeCaSE();
  CheckContract(*method, /*may_hallucinate=*/false);
}

TEST_F(BaselinesTest, CgExpanContract) {
  auto method = pipeline_->MakeCgExpan();
  CheckContract(*method, /*may_hallucinate=*/false);
}

TEST_F(BaselinesTest, CgExpanInfersSeedClassNoun) {
  auto method = pipeline_->MakeCgExpan();
  int correct = 0;
  int total = 0;
  for (const Query& query : pipeline_->dataset().queries) {
    const ClassId truth = pipeline_->dataset().ClassOf(query).fine_class;
    const TokenId noun = method->InferClassNoun(query.pos_seeds);
    if (noun == kInvalidTokenId) continue;
    const std::string& word =
        pipeline_->world().corpus.tokens().TokenOf(noun);
    if (word ==
        pipeline_->world().schema[static_cast<size_t>(truth)]
            .singular_noun) {
      ++correct;
    }
    ++total;
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(static_cast<double>(correct) / total, 0.6);
}

TEST_F(BaselinesTest, ProbExpanContract) {
  auto method = pipeline_->MakeProbExpan();
  CheckContract(*method, /*may_hallucinate=*/false);
}

TEST_F(BaselinesTest, ProbExpanRerankTogglePermutesOnly) {
  ProbExpanConfig with;
  with.use_negative_rerank = true;
  auto a = pipeline_->MakeProbExpan(with);
  auto b = pipeline_->MakeProbExpan();
  const Query& query = pipeline_->dataset().queries.front();
  auto ra = a->Expand(query, 40);
  auto rb = b->Expand(query, 40);
  std::sort(ra.begin(), ra.end());
  std::sort(rb.begin(), rb.end());
  EXPECT_EQ(ra, rb);
}

TEST_F(BaselinesTest, Gpt4Contract) {
  auto method = pipeline_->MakeGpt4Baseline();
  CheckContract(*method, /*may_hallucinate=*/true);
}

TEST_F(BaselinesTest, AllBaselinesBeatRandomOnFineClassRecall) {
  // Weak but universal sanity bound: each baseline should place same-class
  // entities in its top-20 far more often than uniform chance would.
  std::vector<std::pair<std::unique_ptr<Expander>, double>> methods;
  // Sparse-feature SetExpan is weak at the tiny test scale (few context
  // sentences); the representation-based baselines must clear a much
  // higher bar. Uniform chance is ~0.07 here.
  methods.emplace_back(pipeline_->MakeSetExpan(), 0.08);
  methods.emplace_back(pipeline_->MakeCaSE(), 0.3);
  methods.emplace_back(pipeline_->MakeCgExpan(), 0.3);
  // The truncated probability-distribution representation needs corpus
  // scale to be informative; at the tiny test scale it only has to beat
  // uniform chance.
  methods.emplace_back(pipeline_->MakeProbExpan(), 0.08);
  for (auto& [method, threshold] : methods) {
    double same_class = 0.0;
    int total = 0;
    for (size_t q = 0; q < 6 && q < pipeline_->dataset().queries.size();
         ++q) {
      const Query& query = pipeline_->dataset().queries[q];
      const ClassId truth = pipeline_->dataset().ClassOf(query).fine_class;
      for (EntityId id : method->Expand(query, 20)) {
        if (pipeline_->world().corpus.entity(id).class_id == truth) {
          same_class += 1.0;
        }
        ++total;
      }
    }
    ASSERT_GT(total, 0);
    EXPECT_GT(same_class / total, threshold) << method->name();
  }
}

}  // namespace
}  // namespace ultrawiki
