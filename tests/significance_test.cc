#include <gtest/gtest.h>

#include "eval/significance.h"

namespace ultrawiki {
namespace {

TEST(BootstrapTest, IdenticalSamplesAreInsignificant) {
  const std::vector<double> a = {50, 60, 70, 40, 55};
  const BootstrapResult result = PairedBootstrap(a, a, 500);
  EXPECT_DOUBLE_EQ(result.mean_a, result.mean_b);
  // Deltas are all zero; "B better" never happens.
  EXPECT_DOUBLE_EQ(result.prob_b_better, 0.0);
  // Ties count toward both tails: identical samples are maximally
  // insignificant, not "significant in A's favour".
  EXPECT_DOUBLE_EQ(result.two_sided_p, 1.0);
}

TEST(BootstrapTest, SmoothedPNeverZero) {
  // Regression: B wins every one of the 1000 resamples. The unsmoothed
  // p-value was exactly 0.0, impossible for a finite resample count; the
  // add-one smoothed two-sided value is 2 / (resamples + 1).
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 40; ++i) {
    a.push_back(10.0 + (i % 3));
    b.push_back(90.0 + (i % 3));
  }
  const BootstrapResult result = PairedBootstrap(a, b, 1000);
  EXPECT_DOUBLE_EQ(result.prob_b_better, 1.0);
  EXPECT_GT(result.two_sided_p, 0.0);
  EXPECT_DOUBLE_EQ(result.two_sided_p, 2.0 / 1001.0);
}

TEST(BootstrapTest, ClearDominanceIsSignificant) {
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 60; ++i) {
    a.push_back(40.0 + (i % 7));
    b.push_back(55.0 + (i % 5));
  }
  const BootstrapResult result = PairedBootstrap(a, b, 1000);
  EXPECT_GT(result.mean_b, result.mean_a);
  EXPECT_GT(result.prob_b_better, 0.99);
  EXPECT_LT(result.two_sided_p, 0.05);
}

TEST(BootstrapTest, NoisyTieIsInsignificant) {
  Rng rng(5);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 80; ++i) {
    a.push_back(rng.UniformDouble() * 100.0);
    b.push_back(rng.UniformDouble() * 100.0);
  }
  const BootstrapResult result = PairedBootstrap(a, b, 1000);
  EXPECT_GT(result.two_sided_p, 0.05);
}

TEST(BootstrapTest, DeterministicForFixedSeed) {
  const std::vector<double> a = {10, 20, 30, 40};
  const std::vector<double> b = {12, 19, 33, 41};
  const BootstrapResult r1 = PairedBootstrap(a, b, 300, 9);
  const BootstrapResult r2 = PairedBootstrap(a, b, 300, 9);
  EXPECT_DOUBLE_EQ(r1.prob_b_better, r2.prob_b_better);
}

TEST(BootstrapTest, EmptyInputIsNeutral) {
  const BootstrapResult result = PairedBootstrap({}, {}, 100);
  EXPECT_EQ(result.query_count, 0);
  EXPECT_DOUBLE_EQ(result.two_sided_p, 1.0);
}

TEST(BootstrapDeathTest, MismatchedSizesAbort) {
  EXPECT_DEATH(PairedBootstrap({1.0}, {1.0, 2.0}, 10), "Check failed");
}

}  // namespace
}  // namespace ultrawiki
