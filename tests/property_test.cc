// Property-based tests: parameterized sweeps over randomized inputs that
// check structural invariants of the core algorithms (metrics, re-ranking,
// sampling, tries, n-gram models) rather than single hand-picked cases.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "eval/metrics.h"
#include "expand/rerank.h"
#include "lm/ngram_lm.h"
#include "lm/prefix_trie.h"
#include "math/sampling.h"
#include "math/topk.h"

namespace ultrawiki {
namespace {

// --------------------------------------------------- Metric invariants.

class MetricPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricPropertyTest, ApAndPrecisionWithinUnitInterval) {
  Rng rng(GetParam());
  std::vector<EntityId> ranking;
  TargetSet targets;
  const int n = rng.UniformInt(1, 60);
  for (int i = 0; i < n; ++i) {
    ranking.push_back(static_cast<EntityId>(rng.UniformUint64(100)));
    if (rng.Bernoulli(0.3)) {
      targets.insert(static_cast<EntityId>(rng.UniformUint64(100)));
    }
  }
  if (targets.empty()) targets.insert(0);
  for (int k : {1, 5, 20, 100}) {
    const double ap = AveragePrecisionAtK(ranking, targets, k);
    const double p = PrecisionAtK(ranking, targets, k);
    EXPECT_GE(ap, 0.0);
    EXPECT_LE(ap, 1.0);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST_P(MetricPropertyTest, MovingARelevantItemUpNeverLowersAp) {
  Rng rng(GetParam());
  std::vector<EntityId> ranking;
  for (int i = 0; i < 30; ++i) ranking.push_back(i);
  TargetSet targets;
  while (targets.size() < 5) {
    targets.insert(static_cast<EntityId>(rng.UniformUint64(30)));
  }
  // Pick a relevant item not already at the front and swap it one step up
  // with an irrelevant predecessor.
  for (size_t i = 1; i < ranking.size(); ++i) {
    if (targets.contains(ranking[i]) && !targets.contains(ranking[i - 1])) {
      const double before = AveragePrecisionAtK(ranking, targets, 30);
      std::swap(ranking[i], ranking[i - 1]);
      const double after = AveragePrecisionAtK(ranking, targets, 30);
      EXPECT_GE(after, before);
      break;
    }
  }
}

TEST_P(MetricPropertyTest, CombMonotoneInComponents) {
  Rng rng(GetParam());
  const double pos = rng.UniformDouble() * 100.0;
  const double neg = rng.UniformDouble() * 100.0;
  EXPECT_GE(CombineMetric(pos + 1.0, neg), CombineMetric(pos, neg));
  EXPECT_LE(CombineMetric(pos, neg + 1.0), CombineMetric(pos, neg));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

// ------------------------------------------------- Re-ranking invariants.

class RerankPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(RerankPropertyTest, PermutationWithSegmentLocality) {
  const auto [seed, segment] = GetParam();
  Rng rng(seed);
  std::vector<EntityId> initial;
  std::vector<double> scores;
  const int n = rng.UniformInt(1, 80);
  for (int i = 0; i < n; ++i) {
    initial.push_back(static_cast<EntityId>(i));
    scores.push_back(rng.UniformDouble());
  }
  const auto out = SegmentedRerankByPosition(initial, scores, segment);
  // Permutation.
  ASSERT_EQ(out.size(), initial.size());
  std::set<EntityId> in_set(initial.begin(), initial.end());
  std::set<EntityId> out_set(out.begin(), out.end());
  EXPECT_EQ(in_set, out_set);
  // Locality: every entity stays inside its original segment.
  for (size_t i = 0; i < out.size(); ++i) {
    const size_t original_pos = static_cast<size_t>(out[i]);
    EXPECT_EQ(original_pos / static_cast<size_t>(segment),
              i / static_cast<size_t>(segment));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSegments, RerankPropertyTest,
    ::testing::Combine(::testing::Values(7, 11, 13, 17),
                       ::testing::Values(1, 3, 10, 64)));

// ----------------------------------------------------- TopK invariants.

class TopKPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TopKPropertyTest, MatchesFullSortPrefix) {
  Rng rng(GetParam());
  std::vector<float> scores;
  const int n = rng.UniformInt(1, 200);
  for (int i = 0; i < n; ++i) {
    scores.push_back(rng.UniformFloat(-1.0f, 1.0f));
  }
  const size_t k = 1 + rng.UniformUint64(static_cast<uint64_t>(n));
  const auto top = TopK(scores, k);
  const auto full = TopK(scores, scores.size());
  ASSERT_EQ(top.size(), std::min(k, scores.size()));
  for (size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(top[i], full[i]);
  }
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].score, top[i].score);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopKPropertyTest,
                         ::testing::Values(3, 9, 27, 81, 243));

// ------------------------------------------------ AliasTable invariants.

class AliasPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AliasPropertyTest, EmpiricalMatchesNormalizedWeights) {
  const int size = GetParam();
  Rng rng(static_cast<uint64_t>(size) * 977);
  std::vector<double> weights;
  double total = 0.0;
  for (int i = 0; i < size; ++i) {
    weights.push_back(rng.UniformDouble() + 0.01);
    total += weights.back();
  }
  AliasTable table(weights);
  std::vector<int> counts(static_cast<size_t>(size), 0);
  constexpr int kSamples = 40000;
  for (int s = 0; s < kSamples; ++s) ++counts[table.Sample(rng)];
  for (int i = 0; i < size; ++i) {
    const double expected = weights[static_cast<size_t>(i)] / total;
    EXPECT_NEAR(counts[static_cast<size_t>(i)] /
                    static_cast<double>(kSamples),
                expected, 0.03);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AliasPropertyTest,
                         ::testing::Values(1, 2, 5, 17, 64));

// ------------------------------------------------ PrefixTrie invariants.

class TriePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TriePropertyTest, InsertWalkRoundTrip) {
  Rng rng(GetParam());
  PrefixTrie trie;
  std::map<std::vector<TokenId>, EntityId> truth;
  for (int i = 0; i < 200; ++i) {
    std::vector<TokenId> name;
    const int len = rng.UniformInt(1, 4);
    for (int t = 0; t < len; ++t) {
      name.push_back(static_cast<TokenId>(rng.UniformUint64(12)));
    }
    if (truth.emplace(name, i).second) {
      trie.Insert(name, static_cast<EntityId>(i));
    }
  }
  EXPECT_EQ(trie.entity_count(), truth.size());
  for (const auto& [name, id] : truth) {
    const auto node = trie.Walk(name);
    ASSERT_GE(node, 0);
    EXPECT_EQ(trie.TerminalOf(node), id);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriePropertyTest,
                         ::testing::Values(101, 202, 303, 404));

// --------------------------------------------------- NgramLm invariants.

class NgramPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(NgramPropertyTest, DistributionsSumToOneForRandomContexts) {
  const auto [seed, order] = GetParam();
  Rng rng(seed);
  constexpr size_t kVocab = 15;
  NgramLmConfig config;
  config.order = order;
  NgramLm lm(kVocab, config);
  for (int s = 0; s < 50; ++s) {
    std::vector<TokenId> sentence;
    const int len = rng.UniformInt(1, 12);
    for (int t = 0; t < len; ++t) {
      sentence.push_back(static_cast<TokenId>(rng.UniformUint64(kVocab)));
    }
    lm.AddSentence(sentence);
  }
  for (int probe = 0; probe < 10; ++probe) {
    std::vector<TokenId> context;
    const int len = rng.UniformInt(0, 6);
    for (int t = 0; t < len; ++t) {
      context.push_back(static_cast<TokenId>(rng.UniformUint64(kVocab)));
    }
    double sum = 0.0;
    for (TokenId t = 0; t < static_cast<TokenId>(kVocab); ++t) {
      const double p = lm.Probability(context, t);
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndOrders, NgramPropertyTest,
    ::testing::Combine(::testing::Values(31, 37, 41),
                       ::testing::Values(1, 2, 3, 5)));

}  // namespace
}  // namespace ultrawiki
