#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "llm_oracle/oracle.h"
#include "eval/metrics.h"
#include "eval/report.h"

namespace ultrawiki {
namespace {

// -------------------------------------------------------------- Metrics.

TEST(PrecisionTest, CountsHitsOverK) {
  const std::vector<EntityId> ranking = {1, 2, 3, 4};
  const TargetSet targets = {2, 4, 9};
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranking, targets, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranking, targets, 4), 0.5);
}

TEST(PrecisionTest, ShortRankingPenalized) {
  const std::vector<EntityId> ranking = {1};
  const TargetSet targets = {1};
  // Denominator is k, not the ranking length.
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranking, targets, 10), 0.1);
}

TEST(PrecisionTest, EmptyTargets) {
  EXPECT_DOUBLE_EQ(PrecisionAtK({1, 2}, {}, 2), 0.0);
}

TEST(PrecisionTest, DuplicateTargetCountedOnce) {
  // Regression: entity 2 appears twice; the duplicate used to add a
  // second hit (P@4 = 0.5). The prefix is deduplicated to {2, 3, 4}.
  const std::vector<EntityId> ranking = {2, 2, 3, 4};
  const TargetSet targets = {2};
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranking, targets, 4), 0.25);
}

TEST(PrecisionTest, RepeatedHallucinationsKeepTheirSlots) {
  // Hallucinated entries share a sentinel id but are distinct fake
  // entities; deduplication must not compact them upward.
  const std::vector<EntityId> ranking = {kHallucinatedEntityId,
                                         kHallucinatedEntityId, 1};
  const TargetSet targets = {1};
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranking, targets, 2), 0.0);
  EXPECT_NEAR(PrecisionAtK(ranking, targets, 3), 1.0 / 3.0, 1e-12);
}

TEST(AveragePrecisionTest, PerfectRankingIsOne) {
  const std::vector<EntityId> ranking = {5, 6, 7};
  const TargetSet targets = {5, 6, 7};
  EXPECT_DOUBLE_EQ(AveragePrecisionAtK(ranking, targets, 3), 1.0);
}

TEST(AveragePrecisionTest, HandComputedCase) {
  // Relevant at positions 1 and 3: AP = (1/1 + 2/3) / 2 = 5/6.
  const std::vector<EntityId> ranking = {10, 11, 12};
  const TargetSet targets = {10, 12};
  EXPECT_NEAR(AveragePrecisionAtK(ranking, targets, 3), 5.0 / 6.0, 1e-12);
}

TEST(AveragePrecisionTest, NormalizesByMinKTargets) {
  // Only 1 of 5 targets can appear in the top-2 window; normalization by
  // min(K, |targets|) = 2.
  const std::vector<EntityId> ranking = {1, 99};
  const TargetSet targets = {1, 2, 3, 4, 5};
  EXPECT_NEAR(AveragePrecisionAtK(ranking, targets, 2), 0.5, 1e-12);
}

TEST(AveragePrecisionTest, RankAwareness) {
  const TargetSet targets = {1};
  EXPECT_GT(AveragePrecisionAtK({1, 2, 3}, targets, 3),
            AveragePrecisionAtK({2, 3, 1}, targets, 3));
}

TEST(AveragePrecisionTest, DuplicateTargetCountedOnce) {
  // Regression: with the duplicate credited twice this came out at 1.5 —
  // above the metric's ceiling. Deduped prefix {1, 2}: (1/1 + 2/2) / 2.
  const std::vector<EntityId> ranking = {1, 1, 2};
  const TargetSet targets = {1, 2};
  EXPECT_DOUBLE_EQ(AveragePrecisionAtK(ranking, targets, 3), 1.0);
}

TEST(AveragePrecisionTest, EmptyInputs) {
  EXPECT_DOUBLE_EQ(AveragePrecisionAtK({}, {1}, 5), 0.0);
  EXPECT_DOUBLE_EQ(AveragePrecisionAtK({1}, {}, 5), 0.0);
}

TEST(AveragePrecisionTest, HallucinationsNeverMatch) {
  const std::vector<EntityId> ranking = {kHallucinatedEntityId, 1};
  const TargetSet targets = {1};
  EXPECT_NEAR(AveragePrecisionAtK(ranking, targets, 2), 0.5, 1e-12);
}

TEST(CombineMetricTest, Formula) {
  EXPECT_DOUBLE_EQ(CombineMetric(60.0, 20.0), 70.0);
  EXPECT_DOUBLE_EQ(CombineMetric(0.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(CombineMetric(100.0, 0.0), 100.0);
}

// ------------------------------------------------------------ Evaluator.

/// Mock expander returning a fixed ranking list per query class.
class FixedExpander : public Expander {
 public:
  explicit FixedExpander(std::vector<EntityId> ranking)
      : ranking_(std::move(ranking)) {}
  std::vector<EntityId> Expand(const Query&, size_t k) override {
    std::vector<EntityId> out = ranking_;
    if (out.size() > k) out.resize(k);
    return out;
  }
  std::string name() const override { return "fixed"; }

 private:
  std::vector<EntityId> ranking_;
};

UltraWikiDataset MakeToyDataset() {
  UltraWikiDataset dataset;
  UltraClass ultra;
  ultra.fine_class = 0;
  ultra.positive_targets = {10, 11, 12};
  ultra.negative_targets = {20, 21};
  dataset.classes.push_back(ultra);
  Query query;
  query.ultra_class = 0;
  query.pos_seeds = {10};
  query.neg_seeds = {20};
  dataset.queries.push_back(query);
  dataset.candidates = {10, 11, 12, 20, 21, 30, 31};
  return dataset;
}

TEST(EvaluatorTest, SeedExclusionFromTargets) {
  const UltraWikiDataset dataset = MakeToyDataset();
  // Ranking contains the remaining positives first, then a negative.
  FixedExpander expander({11, 12, 21, 30});
  EvalConfig config;
  config.ks = {2, 4};
  const EvalResult result = EvaluateExpander(expander, dataset, config);
  EXPECT_EQ(result.query_count, 1);
  // Pos targets after seed exclusion: {11, 12} -> perfect P@2.
  EXPECT_DOUBLE_EQ(result.pos_p.at(2), 100.0);
  EXPECT_DOUBLE_EQ(result.pos_map.at(2), 100.0);
  // Neg targets after seed exclusion: {21} at rank 3.
  EXPECT_DOUBLE_EQ(result.neg_p.at(2), 0.0);
  EXPECT_DOUBLE_EQ(result.neg_p.at(4), 25.0);
}

TEST(EvaluatorTest, CombValues) {
  const UltraWikiDataset dataset = MakeToyDataset();
  FixedExpander expander({11, 21});
  EvalConfig config;
  config.ks = {2};
  const EvalResult result = EvaluateExpander(expander, dataset, config);
  EXPECT_DOUBLE_EQ(result.CombP(2),
                   (result.pos_p.at(2) + 100.0 - result.neg_p.at(2)) / 2.0);
}

TEST(EvaluatorTest, QueryFilterSkipsQueries) {
  UltraWikiDataset dataset = MakeToyDataset();
  dataset.queries.push_back(dataset.queries[0]);
  FixedExpander expander({11});
  EvalConfig config;
  config.ks = {2};
  int calls = 0;
  config.query_filter = [&calls](const Query&, const UltraClass&) {
    return ++calls == 1;  // keep only the first query
  };
  const EvalResult result = EvaluateExpander(expander, dataset, config);
  EXPECT_EQ(result.query_count, 1);
}

TEST(EvaluatorTest, AveragesAcrossQueries) {
  UltraWikiDataset dataset = MakeToyDataset();
  // Add a second ultra class whose targets the fixed ranking misses.
  UltraClass miss;
  miss.fine_class = 0;
  miss.positive_targets = {40, 41, 42, 43};
  miss.negative_targets = {50, 51};
  dataset.classes.push_back(miss);
  Query query;
  query.ultra_class = 1;
  query.pos_seeds = {40};
  query.neg_seeds = {50};
  dataset.queries.push_back(query);

  FixedExpander expander({11, 12});
  EvalConfig config;
  config.ks = {2};
  const EvalResult result = EvaluateExpander(expander, dataset, config);
  EXPECT_EQ(result.query_count, 2);
  // First query scores 100, second 0 -> mean 50.
  EXPECT_DOUBLE_EQ(result.pos_p.at(2), 50.0);
}

TEST(EvalResultTest, RowAverages) {
  EvalResult result;
  result.pos_map = {{10, 40.0}, {20, 60.0}};
  result.pos_p = {{10, 20.0}, {20, 40.0}};
  result.neg_map = {{10, 10.0}, {20, 10.0}};
  result.neg_p = {{10, 20.0}, {20, 20.0}};
  EXPECT_DOUBLE_EQ(result.AvgPosMap(), 50.0);
  EXPECT_DOUBLE_EQ(result.AvgPos(), 40.0);
  EXPECT_DOUBLE_EQ(result.AvgNeg(), 15.0);
  EXPECT_DOUBLE_EQ(result.AvgComb(), (40.0 + 100.0 - 15.0) / 2.0);
}

// --------------------------------------------------------------- Report.

TEST(ReportTest, ResultTableHasThreeRowsPerMethod) {
  TablePrinter table = MakeResultTable("t", /*map_only=*/true);
  EvalResult result;
  for (int k : {10, 20, 50, 100}) {
    result.pos_map[k] = 50.0;
    result.neg_map[k] = 10.0;
    result.pos_p[k] = 50.0;
    result.neg_p[k] = 10.0;
  }
  AddResultRows(table, "m", result, /*map_only=*/true);
  // Three metric rows plus the trailing separator row.
  EXPECT_EQ(table.row_count(), 4u);
  const std::string out = table.ToString();
  EXPECT_NE(out.find("Pos"), std::string::npos);
  EXPECT_NE(out.find("70.00"), std::string::npos);  // Comb value
}

TEST(ReportTest, FullTableIncludesPColumns) {
  TablePrinter table = MakeResultTable("t", /*map_only=*/false);
  const std::string out = table.ToString();
  EXPECT_NE(out.find("P@100"), std::string::npos);
}

}  // namespace
}  // namespace ultrawiki
