#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "dataset/dataset.h"
#include "io/corpus_io.h"
#include "io/dataset_io.h"
#include "io/model_io.h"
#include "embedding/trainer.h"

namespace ultrawiki {
namespace {

GeneratorConfig TinyConfig() {
  GeneratorConfig config;
  config.seed = 77;
  config.scale = 0.05;
  config.min_entities_per_class = 20;
  config.background_entity_count = 30;
  config.sentences_per_entity = 6;
  config.list_sentences_per_value = 2;
  config.similarity_sentences_per_entity = 1.0;
  return config;
}

class IoTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new GeneratedWorld(GenerateWorld(TinyConfig()));
    DatasetConfig config;
    config.ultra_class_scale = 0.1;
    auto built = BuildDataset(*world_, config);
    ASSERT_TRUE(built.ok());
    dataset_ = new UltraWikiDataset(std::move(built).value());
    dir_ = std::filesystem::temp_directory_path() / "ultrawiki_io_test";
    std::filesystem::remove_all(dir_);
  }
  static void TearDownTestSuite() {
    std::filesystem::remove_all(dir_);
    delete dataset_;
    delete world_;
    dataset_ = nullptr;
    world_ = nullptr;
  }

  static GeneratedWorld* world_;
  static UltraWikiDataset* dataset_;
  static std::filesystem::path dir_;
};

GeneratedWorld* IoTest::world_ = nullptr;
UltraWikiDataset* IoTest::dataset_ = nullptr;
std::filesystem::path IoTest::dir_;

TEST_F(IoTest, WorldRoundTrip) {
  ASSERT_TRUE(SaveWorld(*world_, dir_.string()).ok());
  auto loaded = LoadWorld(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const GeneratedWorld& world = *loaded;

  // Schema survives.
  ASSERT_EQ(world.schema.size(), world_->schema.size());
  for (size_t c = 0; c < world.schema.size(); ++c) {
    EXPECT_EQ(world.schema[c].name, world_->schema[c].name);
    ASSERT_EQ(world.schema[c].attributes.size(),
              world_->schema[c].attributes.size());
    for (size_t a = 0; a < world.schema[c].attributes.size(); ++a) {
      EXPECT_EQ(world.schema[c].attributes[a].values,
                world_->schema[c].attributes[a].values);
      EXPECT_EQ(world.schema[c].attributes[a].clue_tokens,
                world_->schema[c].attributes[a].clue_tokens);
      EXPECT_EQ(world.schema[c].attributes[a].clue_variants,
                world_->schema[c].attributes[a].clue_variants);
    }
  }

  // Entities survive.
  ASSERT_EQ(world.corpus.entity_count(), world_->corpus.entity_count());
  for (EntityId id = 0;
       id < static_cast<EntityId>(world.corpus.entity_count()); ++id) {
    EXPECT_EQ(world.corpus.entity(id).name, world_->corpus.entity(id).name);
    EXPECT_EQ(world.corpus.entity(id).class_id,
              world_->corpus.entity(id).class_id);
    EXPECT_EQ(world.corpus.entity(id).attribute_values,
              world_->corpus.entity(id).attribute_values);
    EXPECT_EQ(world.corpus.entity(id).is_long_tail,
              world_->corpus.entity(id).is_long_tail);
  }
  EXPECT_EQ(world.background_entities, world_->background_entities);

  // Sentences survive (surface forms, spans, ownership).
  ASSERT_EQ(world.corpus.sentence_count(), world_->corpus.sentence_count());
  for (size_t s = 0; s < world.corpus.sentence_count(); s += 7) {
    const Sentence& got = world.corpus.sentence(s);
    const Sentence& want = world_->corpus.sentence(s);
    EXPECT_EQ(got.entity, want.entity);
    EXPECT_EQ(got.mention_begin, want.mention_begin);
    EXPECT_EQ(got.mention_len, want.mention_len);
    EXPECT_EQ(world.corpus.Render(got.tokens),
              world_->corpus.Render(want.tokens));
  }
  EXPECT_EQ(world.corpus.auxiliary_sentences().size(),
            world_->corpus.auxiliary_sentences().size());

  // Knowledge base survives.
  EXPECT_EQ(world.kb.size(), world_->kb.size());
  EXPECT_EQ(world.corpus.Render(world.kb.IntroductionOf(3)),
            world_->corpus.Render(world_->kb.IntroductionOf(3)));

  // Per-value index rebuilt consistently.
  ASSERT_EQ(world.entities_by_value.size(),
            world_->entities_by_value.size());
  EXPECT_EQ(world.entities_by_value[0][0],
            world_->entities_by_value[0][0]);
}

TEST_F(IoTest, DatasetRoundTrip) {
  ASSERT_TRUE(SaveWorld(*world_, dir_.string()).ok());
  ASSERT_TRUE(SaveDataset(*dataset_, dir_.string()).ok());
  auto loaded = LoadDataset(*world_, dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const UltraWikiDataset& dataset = *loaded;
  ASSERT_EQ(dataset.classes.size(), dataset_->classes.size());
  for (size_t i = 0; i < dataset.classes.size(); ++i) {
    EXPECT_EQ(dataset.classes[i].fine_class,
              dataset_->classes[i].fine_class);
    EXPECT_EQ(dataset.classes[i].pos_attrs, dataset_->classes[i].pos_attrs);
    EXPECT_EQ(dataset.classes[i].neg_values,
              dataset_->classes[i].neg_values);
    EXPECT_EQ(dataset.classes[i].positive_targets,
              dataset_->classes[i].positive_targets);
    EXPECT_EQ(dataset.classes[i].negative_targets,
              dataset_->classes[i].negative_targets);
    EXPECT_EQ(dataset.classes[i].attrs_identical,
              dataset_->classes[i].attrs_identical);
  }
  ASSERT_EQ(dataset.queries.size(), dataset_->queries.size());
  for (size_t i = 0; i < dataset.queries.size(); ++i) {
    EXPECT_EQ(dataset.queries[i].ultra_class,
              dataset_->queries[i].ultra_class);
    EXPECT_EQ(dataset.queries[i].pos_seeds, dataset_->queries[i].pos_seeds);
    EXPECT_EQ(dataset.queries[i].neg_seeds, dataset_->queries[i].neg_seeds);
  }
  EXPECT_EQ(dataset.candidates, dataset_->candidates);
}

TEST_F(IoTest, LoadMissingDirectoryFails) {
  auto loaded = LoadWorld("/nonexistent/ultrawiki");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(IoTest, LoadRejectsCorruptEntityFile) {
  const auto corrupt_dir =
      std::filesystem::temp_directory_path() / "ultrawiki_io_corrupt";
  std::filesystem::remove_all(corrupt_dir);
  ASSERT_TRUE(SaveWorld(*world_, corrupt_dir.string()).ok());
  // Truncate the entity file to a malformed line.
  {
    std::ofstream out(corrupt_dir / "entities.tsv", std::ios::trunc);
    out << "0\tbroken line without enough fields\n";
  }
  auto loaded = LoadWorld(corrupt_dir.string());
  EXPECT_FALSE(loaded.ok());
  std::filesystem::remove_all(corrupt_dir);
}

TEST_F(IoTest, EncoderRoundTrip) {
  ContextEncoder encoder(world_->corpus.tokens().size(),
                         world_->corpus.entity_count(), EncoderConfig{});
  encoder.SetTokenWeights(ComputeSifTokenWeights(world_->corpus.tokens()));
  EntityPredictionTrainConfig train;
  train.epochs = 1;
  TrainEntityPrediction(world_->corpus, encoder, train);

  const auto path = dir_ / "encoder.bin";
  std::filesystem::create_directories(dir_);
  ASSERT_TRUE(SaveEncoder(encoder, path.string()).ok());
  auto loaded = LoadEncoder(path.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  // Identical behaviour on arbitrary contexts and heads.
  const std::vector<TokenId> context = {1, 5, 9, 2};
  EXPECT_EQ(encoder.EncodeContext(context), loaded->EncodeContext(context));
  const Vec hidden = encoder.EncodeContext(context);
  EXPECT_EQ(encoder.EntityDistribution(hidden),
            loaded->EntityDistribution(hidden));
  EXPECT_EQ(encoder.Project(hidden), loaded->Project(hidden));
  EXPECT_FLOAT_EQ(encoder.TokenWeight(3), loaded->TokenWeight(3));
  EXPECT_EQ(loaded->config().token_dim, encoder.config().token_dim);
}

TEST_F(IoTest, LoadEncoderRejectsGarbage) {
  const auto path = dir_ / "garbage.bin";
  std::filesystem::create_directories(dir_);
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not an encoder";
  }
  auto loaded = LoadEncoder(path.string());
  EXPECT_FALSE(loaded.ok());
}

TEST_F(IoTest, LoadEncoderRejectsOldV1Format) {
  // Files written by the pre-snapshot "UWK1" raw-struct format must be
  // rejected cleanly (their magic differs), never misparsed.
  const auto path = dir_ / "old_v1.bin";
  std::filesystem::create_directories(dir_);
  {
    std::ofstream out(path, std::ios::binary);
    const uint32_t old_magic = 0x55574B31;  // "UWK1"
    out.write(reinterpret_cast<const char*>(&old_magic), sizeof(old_magic));
    const std::vector<char> rest(256, '\0');
    out.write(rest.data(), static_cast<std::streamsize>(rest.size()));
  }
  auto loaded = LoadEncoder(path.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInternal);
}

TEST_F(IoTest, LoadEncoderMissingFile) {
  auto loaded = LoadEncoder("/nonexistent/enc.bin");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ultrawiki
