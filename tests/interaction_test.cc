#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "eval/evaluator.h"
#include "expand/interaction.h"
#include "expand/pipeline.h"

namespace ultrawiki {
namespace {

class InteractionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PipelineConfig config = PipelineConfig::Tiny();
    config.generator.scale = 0.14;
    pipeline_ = new Pipeline(Pipeline::Build(config));
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }
  static Pipeline* pipeline_;
};

Pipeline* InteractionTest::pipeline_ = nullptr;

TEST_F(InteractionTest, NamesIdentifyOrder) {
  auto rg = pipeline_->MakeInteraction(InteractionOrder::kRetThenGen);
  auto gr = pipeline_->MakeInteraction(InteractionOrder::kGenThenRet);
  EXPECT_EQ(rg->name(), "RetExpan+GenExpan");
  EXPECT_EQ(gr->name(), "GenExpan+RetExpan");
}

TEST_F(InteractionTest, StageBRestrictedToStageARecall) {
  // Every non-hallucinated result of Ret->Gen must come from RetExpan's
  // recall subset of the configured size.
  InteractionConfig config;
  config.recall_size = 60;
  auto method = pipeline_->MakeInteraction(InteractionOrder::kRetThenGen,
                                           config);
  RetExpan recall(&pipeline_->store(), &pipeline_->candidates());
  for (size_t q = 0; q < 3; ++q) {
    const Query& query = pipeline_->dataset().queries[q];
    const std::vector<EntityId> subset =
        recall.InitialExpansion(query, 60);
    const std::set<EntityId> allowed(subset.begin(), subset.end());
    for (EntityId id : method->Expand(query, 30)) {
      if (id == kHallucinatedEntityId) continue;
      EXPECT_TRUE(allowed.contains(id));
    }
  }
}

TEST_F(InteractionTest, DeterministicAcrossCalls) {
  for (InteractionOrder order :
       {InteractionOrder::kRetThenGen, InteractionOrder::kGenThenRet}) {
    auto method = pipeline_->MakeInteraction(order);
    const Query& query = pipeline_->dataset().queries.front();
    EXPECT_EQ(method->Expand(query, 25), method->Expand(query, 25));
  }
}

TEST_F(InteractionTest, FusionKeepsSeedExclusion) {
  for (InteractionOrder order :
       {InteractionOrder::kRetThenGen, InteractionOrder::kGenThenRet}) {
    auto method = pipeline_->MakeInteraction(order);
    for (size_t q = 0; q < 4; ++q) {
      const Query& query = pipeline_->dataset().queries[q];
      const std::vector<EntityId> seeds = SortedSeedsOf(query);
      for (EntityId id : method->Expand(query, 40)) {
        if (id == kHallucinatedEntityId) continue;
        EXPECT_FALSE(std::binary_search(seeds.begin(), seeds.end(), id));
      }
    }
  }
}

TEST_F(InteractionTest, SmallRecallStillProducesResults) {
  InteractionConfig config;
  config.recall_size = 15;
  for (InteractionOrder order :
       {InteractionOrder::kRetThenGen, InteractionOrder::kGenThenRet}) {
    auto method = pipeline_->MakeInteraction(order, config);
    const Query& query = pipeline_->dataset().queries.front();
    EXPECT_FALSE(method->Expand(query, 10).empty());
  }
}

TEST_F(InteractionTest, InteractionNotWorseThanWeakerMember) {
  // The ensemble should land at or above the weaker of its two members
  // (the paper's Table 10 finding, checked loosely at the tiny scale).
  auto retexpan = pipeline_->MakeRetExpan();
  auto genexpan = pipeline_->MakeGenExpan();
  auto gen_ret = pipeline_->MakeInteraction(InteractionOrder::kGenThenRet);
  const double ret =
      EvaluateExpander(*retexpan, pipeline_->dataset()).AvgCombMap();
  const double gen =
      EvaluateExpander(*genexpan, pipeline_->dataset()).AvgCombMap();
  const double both =
      EvaluateExpander(*gen_ret, pipeline_->dataset()).AvgCombMap();
  EXPECT_GT(both, std::min(ret, gen) - 1.0);
}

}  // namespace
}  // namespace ultrawiki
