#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "expand/contrastive_miner.h"
#include "expand/pipeline.h"
#include "expand/rerank.h"
#include "expand/retrieval_augmentation.h"

namespace ultrawiki {
namespace {

// ------------------------------------------------------ SegmentedRerank.

TEST(RerankTest, OutputIsPermutation) {
  const std::vector<EntityId> initial = {5, 3, 9, 1, 7};
  const auto out = SegmentedRerank(
      initial, [](EntityId id) { return static_cast<double>(id); }, 2);
  std::vector<EntityId> sorted_in = initial;
  std::vector<EntityId> sorted_out = out;
  std::sort(sorted_in.begin(), sorted_in.end());
  std::sort(sorted_out.begin(), sorted_out.end());
  EXPECT_EQ(sorted_in, sorted_out);
}

TEST(RerankTest, SortsWithinSegmentsAscending) {
  const std::vector<EntityId> initial = {4, 1, 9, 2};
  const auto out = SegmentedRerank(
      initial, [](EntityId id) { return static_cast<double>(id); }, 2);
  // Segments [4,1] and [9,2] each sorted ascending by score.
  EXPECT_EQ(out, (std::vector<EntityId>{1, 4, 2, 9}));
}

TEST(RerankTest, SegmentBoundariesAreRespected) {
  // A very negative-scoring entity in the last segment must not jump to
  // the global front.
  const std::vector<EntityId> initial = {10, 11, 12, 13};
  const auto out = SegmentedRerank(
      initial,
      [](EntityId id) { return id == 13 ? -100.0 : 0.0; }, 2);
  EXPECT_EQ(out[0], 10);  // first segment untouched order (stable ties)
  EXPECT_EQ(out[2], 13);  // 13 moves to front of its own segment only
}

TEST(RerankTest, SegmentLargerThanListIsGlobalSort) {
  const std::vector<EntityId> initial = {3, 1, 2};
  const auto out = SegmentedRerank(
      initial, [](EntityId id) { return static_cast<double>(id); }, 100);
  EXPECT_EQ(out, (std::vector<EntityId>{1, 2, 3}));
}

TEST(RerankTest, StableOnTies) {
  const std::vector<EntityId> initial = {7, 5, 6};
  const auto out =
      SegmentedRerank(initial, [](EntityId) { return 1.0; }, 3);
  EXPECT_EQ(out, initial);
}

TEST(RerankTest, EmptyInput) {
  EXPECT_TRUE(
      SegmentedRerank({}, [](EntityId) { return 0.0; }, 5).empty());
}

TEST(RerankTest, PositionalVariantHandlesDuplicates) {
  const std::vector<EntityId> initial = {-2, 4, -2, 3};
  const std::vector<double> scores = {0.9, 0.1, 0.5, 0.2};
  const auto out = SegmentedRerankByPosition(initial, scores, 4);
  EXPECT_EQ(out, (std::vector<EntityId>{4, 3, -2, -2}));
}

// ------------------------------------------------- Tiny pipeline fixture.

class ExpandTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipeline_ = new Pipeline(Pipeline::Build(PipelineConfig::Tiny()));
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }
  static Pipeline* pipeline_;
};

Pipeline* ExpandTest::pipeline_ = nullptr;

TEST_F(ExpandTest, RetExpanExcludesSeedsAndBoundsK) {
  auto method = pipeline_->MakeRetExpan();
  for (size_t q = 0; q < 5 && q < pipeline_->dataset().queries.size();
       ++q) {
    const Query& query = pipeline_->dataset().queries[q];
    const auto ranking = method->Expand(query, 30);
    EXPECT_LE(ranking.size(), 30u);
    const std::vector<EntityId> seeds = SortedSeedsOf(query);
    for (EntityId id : ranking) {
      EXPECT_FALSE(std::binary_search(seeds.begin(), seeds.end(), id));
    }
  }
}

TEST_F(ExpandTest, RetExpanRankingIsDeterministic) {
  auto method = pipeline_->MakeRetExpan();
  const Query& query = pipeline_->dataset().queries.front();
  EXPECT_EQ(method->Expand(query, 50), method->Expand(query, 50));
}

TEST_F(ExpandTest, RetExpanRerankChangesOrderNotSet) {
  RetExpanConfig with;
  RetExpanConfig without;
  without.use_negative_rerank = false;
  auto a = pipeline_->MakeRetExpan(with);
  auto b = pipeline_->MakeRetExpan(without);
  const Query& query = pipeline_->dataset().queries.front();
  auto ra = a->Expand(query, 40);
  auto rb = b->Expand(query, 40);
  std::sort(ra.begin(), ra.end());
  std::sort(rb.begin(), rb.end());
  EXPECT_EQ(ra, rb) << "re-ranking must permute, not change membership";
}

TEST_F(ExpandTest, InitialExpansionRespectsSize) {
  auto method = pipeline_->MakeRetExpan();
  const Query& query = pipeline_->dataset().queries.front();
  EXPECT_EQ(method->InitialExpansion(query, 25).size(), 25u);
}

TEST_F(ExpandTest, GenExpanProducesCandidatesOnly) {
  auto method = pipeline_->MakeGenExpan();
  const Query& query = pipeline_->dataset().queries.front();
  const auto ranking = method->Expand(query, 30);
  EXPECT_FALSE(ranking.empty());
  std::set<EntityId> candidates(pipeline_->candidates().begin(),
                                pipeline_->candidates().end());
  for (EntityId id : ranking) {
    EXPECT_TRUE(candidates.contains(id))
        << "prefix constraint must keep generations in the vocabulary";
  }
}

TEST_F(ExpandTest, GenExpanNoDuplicates) {
  auto method = pipeline_->MakeGenExpan();
  const Query& query = pipeline_->dataset().queries.front();
  const auto ranking = method->Expand(query, 40);
  std::set<EntityId> unique(ranking.begin(), ranking.end());
  EXPECT_EQ(unique.size(), ranking.size());
}

TEST_F(ExpandTest, GenExpanUnconstrainedEmitsHallucinations) {
  GenExpanConfig config;
  config.use_prefix_constraint = false;
  config.unconstrained_invalid_rate = 0.6;
  auto method = pipeline_->MakeGenExpan(config);
  int hallucinated = 0;
  for (size_t q = 0; q < 5 && q < pipeline_->dataset().queries.size();
       ++q) {
    for (EntityId id :
         method->Expand(pipeline_->dataset().queries[q], 40)) {
      if (id == kHallucinatedEntityId) ++hallucinated;
    }
  }
  EXPECT_GT(hallucinated, 0);
}

TEST_F(ExpandTest, GenExpanDeterministic) {
  auto method = pipeline_->MakeGenExpan();
  const Query& query = pipeline_->dataset().queries.front();
  EXPECT_EQ(method->Expand(query, 30), method->Expand(query, 30));
}

TEST_F(ExpandTest, RaPrefixesCoverSources) {
  for (RaSource source :
       {RaSource::kIntroduction, RaSource::kWikidataAttributes,
        RaSource::kGroundTruthAttributes}) {
    const auto prefixes = BuildEntityPrefixes(pipeline_->world(), source);
    ASSERT_EQ(prefixes.size(), pipeline_->world().corpus.entity_count());
    int non_empty = 0;
    for (const auto& prefix : prefixes) {
      if (!prefix.empty()) ++non_empty;
    }
    EXPECT_GT(non_empty, 0) << RaSourceName(source);
  }
  const auto none = BuildEntityPrefixes(pipeline_->world(), RaSource::kNone);
  for (const auto& prefix : none) EXPECT_TRUE(prefix.empty());
}

TEST_F(ExpandTest, RaIntroPrefixMasksOwnMention) {
  const auto prefixes =
      BuildEntityPrefixes(pipeline_->world(), RaSource::kIntroduction);
  const Corpus& corpus = pipeline_->world().corpus;
  for (EntityId id = 0; id < 20; ++id) {
    const Entity& entity = corpus.entity(id);
    for (TokenId token : prefixes[static_cast<size_t>(id)]) {
      for (const std::string& word : entity.name_tokens) {
        EXPECT_NE(corpus.tokens().TokenOf(token), word);
      }
    }
  }
}

TEST_F(ExpandTest, MinerProducesGroupsPerQuery) {
  RetExpan base(&pipeline_->store(), &pipeline_->candidates());
  MinerConfig config;
  const ContrastiveData data =
      MineContrastiveData(pipeline_->world(), pipeline_->dataset(), base,
                          pipeline_->oracle(), config);
  ASSERT_EQ(data.groups.size(), pipeline_->dataset().queries.size());
  for (size_t g = 0; g < data.groups.size(); ++g) {
    const ContrastiveGroup& group = data.groups[g];
    // Seeds are merged in, so l_pos/l_neg are never empty.
    EXPECT_FALSE(group.l_pos.empty());
    EXPECT_FALSE(group.l_neg.empty());
    EXPECT_FALSE(group.conditioning.empty());
    // No entity appears on both sides.
    std::set<EntityId> neg(group.l_neg.begin(), group.l_neg.end());
    for (EntityId id : group.l_pos) {
      EXPECT_FALSE(neg.contains(id));
    }
  }
}

TEST_F(ExpandTest, MinerOtherClassEntitiesAreOtherClass) {
  RetExpan base(&pipeline_->store(), &pipeline_->candidates());
  const ContrastiveData data =
      MineContrastiveData(pipeline_->world(), pipeline_->dataset(), base,
                          pipeline_->oracle(), MinerConfig{});
  for (size_t g = 0; g < data.groups.size(); ++g) {
    const ClassId query_class =
        pipeline_->dataset().ClassOf(pipeline_->dataset().queries[g])
            .fine_class;
    for (EntityId id : data.groups[g].other_class) {
      EXPECT_NE(pipeline_->world().corpus.entity(id).class_id, query_class);
    }
  }
}

TEST_F(ExpandTest, InteractionExpandersRun) {
  for (InteractionOrder order :
       {InteractionOrder::kRetThenGen, InteractionOrder::kGenThenRet}) {
    InteractionConfig config;
    config.recall_size = 120;
    auto method = pipeline_->MakeInteraction(order, config);
    const Query& query = pipeline_->dataset().queries.front();
    const auto ranking = method->Expand(query, 20);
    EXPECT_FALSE(ranking.empty());
    EXPECT_LE(ranking.size(), 20u);
    const std::vector<EntityId> seeds = SortedSeedsOf(query);
    for (EntityId id : ranking) {
      if (id == kHallucinatedEntityId) continue;
      EXPECT_FALSE(std::binary_search(seeds.begin(), seeds.end(), id));
    }
  }
}

TEST_F(ExpandTest, ContrastStoreDiffersFromBase) {
  const EntityStore& base = pipeline_->store();
  const EntityStore& tuned = pipeline_->contrast_store();
  const EntityId probe = pipeline_->candidates().front();
  EXPECT_NE(base.HiddenOf(probe), tuned.HiddenOf(probe));
}

TEST_F(ExpandTest, CotPrefixedGenExpanDiffersFromBase) {
  auto base = pipeline_->MakeGenExpan();
  GenExpanConfig config;
  config.cot = CotMode::kGenClassNameGtPos;
  auto cot = pipeline_->MakeGenExpan(config);
  const Query& query = pipeline_->dataset().queries.front();
  // Different prompts should (almost always) change the ranking.
  EXPECT_NE(base->Expand(query, 40), cot->Expand(query, 40));
}

}  // namespace
}  // namespace ultrawiki
