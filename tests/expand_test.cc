#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <set>
#include <span>

#include "common/thread_pool.h"
#include "expand/contrastive_miner.h"
#include "expand/genexpan.h"
#include "expand/pipeline.h"
#include "expand/rerank.h"
#include "expand/retexpan.h"
#include "expand/retrieval_augmentation.h"
#include "math/topk.h"

namespace ultrawiki {
namespace {

// ------------------------------------------------------ SegmentedRerank.

TEST(RerankTest, OutputIsPermutation) {
  const std::vector<EntityId> initial = {5, 3, 9, 1, 7};
  const auto out = SegmentedRerank(
      initial, [](EntityId id) { return static_cast<double>(id); }, 2);
  std::vector<EntityId> sorted_in = initial;
  std::vector<EntityId> sorted_out = out;
  std::sort(sorted_in.begin(), sorted_in.end());
  std::sort(sorted_out.begin(), sorted_out.end());
  EXPECT_EQ(sorted_in, sorted_out);
}

TEST(RerankTest, SortsWithinSegmentsAscending) {
  const std::vector<EntityId> initial = {4, 1, 9, 2};
  const auto out = SegmentedRerank(
      initial, [](EntityId id) { return static_cast<double>(id); }, 2);
  // Segments [4,1] and [9,2] each sorted ascending by score.
  EXPECT_EQ(out, (std::vector<EntityId>{1, 4, 2, 9}));
}

TEST(RerankTest, SegmentBoundariesAreRespected) {
  // A very negative-scoring entity in the last segment must not jump to
  // the global front.
  const std::vector<EntityId> initial = {10, 11, 12, 13};
  const auto out = SegmentedRerank(
      initial,
      [](EntityId id) { return id == 13 ? -100.0 : 0.0; }, 2);
  EXPECT_EQ(out[0], 10);  // first segment untouched order (stable ties)
  EXPECT_EQ(out[2], 13);  // 13 moves to front of its own segment only
}

TEST(RerankTest, SegmentLargerThanListIsGlobalSort) {
  const std::vector<EntityId> initial = {3, 1, 2};
  const auto out = SegmentedRerank(
      initial, [](EntityId id) { return static_cast<double>(id); }, 100);
  EXPECT_EQ(out, (std::vector<EntityId>{1, 2, 3}));
}

TEST(RerankTest, StableOnTies) {
  const std::vector<EntityId> initial = {7, 5, 6};
  const auto out =
      SegmentedRerank(initial, [](EntityId) { return 1.0; }, 3);
  EXPECT_EQ(out, initial);
}

TEST(RerankTest, EmptyInput) {
  EXPECT_TRUE(
      SegmentedRerank({}, [](EntityId) { return 0.0; }, 5).empty());
}

TEST(RerankTest, PositionalVariantHandlesDuplicates) {
  const std::vector<EntityId> initial = {-2, 4, -2, 3};
  const std::vector<double> scores = {0.9, 0.1, 0.5, 0.2};
  const auto out = SegmentedRerankByPosition(initial, scores, 4);
  EXPECT_EQ(out, (std::vector<EntityId>{4, 3, -2, -2}));
}

TEST(RerankTest, ShortFinalSegmentSortsOnlyItself) {
  // 5 entries with segment length 3: the final segment is the short tail
  // {30, 40} and must be sorted independently of the first segment.
  const std::vector<EntityId> initial = {10, 20, 30, 40, 50};
  const std::vector<double> scores = {0.0, 0.5, 0.1, 0.9, 0.2};
  const auto out = SegmentedRerankByPosition(initial, scores, 3);
  EXPECT_EQ(out, (std::vector<EntityId>{10, 30, 20, 50, 40}));
}

TEST(RerankTest, SingleElementFinalSegment) {
  const std::vector<EntityId> initial = {1, 2, 3};
  const std::vector<double> scores = {0.9, 0.1, 0.5};
  const auto out = SegmentedRerankByPosition(initial, scores, 2);
  EXPECT_EQ(out, (std::vector<EntityId>{2, 1, 3}));
}

TEST(RerankTest, AllZeroMarginsIsIdentity) {
  // The pure-demotion invariant of RetExpan's clamped margin key: when no
  // entity's negative evidence exceeds its positive evidence, every
  // margin is 0 and the stable segment sort must leave the list intact.
  const std::vector<EntityId> initial = {9, 4, 7, 2, 8, 6, 1};
  const std::vector<double> margins(initial.size(), 0.0);
  for (const int segment : {1, 2, 3, 100}) {
    EXPECT_EQ(SegmentedRerankByPosition(initial, margins, segment), initial)
        << "segment length " << segment;
  }
}

// ------------------------------------------------- Tiny pipeline fixture.

class ExpandTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipeline_ = new Pipeline(Pipeline::Build(PipelineConfig::Tiny()));
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }
  static Pipeline* pipeline_;
};

Pipeline* ExpandTest::pipeline_ = nullptr;

TEST_F(ExpandTest, RetExpanExcludesSeedsAndBoundsK) {
  auto method = pipeline_->MakeRetExpan();
  for (size_t q = 0; q < 5 && q < pipeline_->dataset().queries.size();
       ++q) {
    const Query& query = pipeline_->dataset().queries[q];
    const auto ranking = method->Expand(query, 30);
    EXPECT_LE(ranking.size(), 30u);
    const std::vector<EntityId> seeds = SortedSeedsOf(query);
    for (EntityId id : ranking) {
      EXPECT_FALSE(std::binary_search(seeds.begin(), seeds.end(), id));
    }
  }
}

TEST_F(ExpandTest, RetExpanRankingIsDeterministic) {
  auto method = pipeline_->MakeRetExpan();
  const Query& query = pipeline_->dataset().queries.front();
  EXPECT_EQ(method->Expand(query, 50), method->Expand(query, 50));
}

TEST_F(ExpandTest, RetExpanRerankChangesOrderNotSet) {
  RetExpanConfig with;
  RetExpanConfig without;
  without.use_negative_rerank = false;
  auto a = pipeline_->MakeRetExpan(with);
  auto b = pipeline_->MakeRetExpan(without);
  const Query& query = pipeline_->dataset().queries.front();
  auto ra = a->Expand(query, 40);
  auto rb = b->Expand(query, 40);
  std::sort(ra.begin(), ra.end());
  std::sort(rb.begin(), rb.end());
  EXPECT_EQ(ra, rb) << "re-ranking must permute, not change membership";
}

TEST_F(ExpandTest, InitialExpansionRespectsSize) {
  auto method = pipeline_->MakeRetExpan();
  const Query& query = pipeline_->dataset().queries.front();
  EXPECT_EQ(method->InitialExpansion(query, 25).size(), 25u);
}

// ---- Pre-kernel scalar reference: float-accumulated cosine with norms
// recomputed per pair and the per-seed average taken in double — the
// exact arithmetic RetExpan ran before the blocked kernels. The batched
// centroid path must reproduce its rankings bit-for-bit.

float ScalarCosineRef(std::span<const float> a, std::span<const float> b) {
  float na = 0.0f;
  float nb = 0.0f;
  float dot = 0.0f;
  for (float v : a) na += v * v;
  for (float v : b) nb += v * v;
  na = std::sqrt(na);
  nb = std::sqrt(nb);
  if (na <= 0.0f || nb <= 0.0f) return 0.0f;
  for (size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
  return dot / (na * nb);
}

double ScalarSeedSimilarityRef(const EntityStore& store,
                               const std::vector<EntityId>& seeds,
                               EntityId candidate) {
  if (seeds.empty()) return 0.0;
  double sum = 0.0;
  for (EntityId seed : seeds) {
    sum += static_cast<double>(
        ScalarCosineRef(store.HiddenOf(candidate), store.HiddenOf(seed)));
  }
  return sum / static_cast<double>(seeds.size());
}

std::vector<EntityId> ScalarExpandRef(const EntityStore& store,
                                      const std::vector<EntityId>& candidates,
                                      const Query& query, size_t k,
                                      const RetExpanConfig& config) {
  const size_t initial_size =
      std::max<size_t>(k, static_cast<size_t>(config.initial_list_size));
  const std::vector<EntityId> seeds = SortedSeedsOf(query);
  std::vector<ScoredIndex> scored;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const EntityId id = candidates[i];
    if (std::binary_search(seeds.begin(), seeds.end(), id)) continue;
    scored.push_back(ScoredIndex{
        static_cast<float>(
            ScalarSeedSimilarityRef(store, query.pos_seeds, id)),
        i});
  }
  scored = TopKOfPairs(std::move(scored), initial_size);
  std::vector<EntityId> list;
  for (const ScoredIndex& s : scored) list.push_back(candidates[s.index]);
  if (config.use_negative_rerank && !query.neg_seeds.empty()) {
    std::vector<double> margins;
    for (EntityId id : list) {
      margins.push_back(std::max(
          0.0, ScalarSeedSimilarityRef(store, query.neg_seeds, id) -
                   ScalarSeedSimilarityRef(store, query.pos_seeds, id)));
    }
    list = SegmentedRerankByPosition(list, margins,
                                     config.rerank_segment_length);
  }
  if (list.size() > k) list.resize(k);
  return list;
}

TEST_F(ExpandTest, BatchedRankingBitIdenticalToScalarReference) {
  for (const bool rerank : {true, false}) {
    RetExpanConfig config;
    config.use_negative_rerank = rerank;
    auto method = pipeline_->MakeRetExpan(config);
    for (size_t q = 0; q < 4 && q < pipeline_->dataset().queries.size();
         ++q) {
      const Query& query = pipeline_->dataset().queries[q];
      EXPECT_EQ(method->Expand(query, 50),
                ScalarExpandRef(pipeline_->store(), pipeline_->candidates(),
                                query, 50, config))
          << "query " << q << " rerank=" << rerank;
    }
  }
}

TEST_F(ExpandTest, BatchedRankingIdenticalAcrossThreadCounts) {
  auto method = pipeline_->MakeRetExpan();
  const Query& query = pipeline_->dataset().queries.front();
  ASSERT_TRUE(ThreadPool::SetGlobalThreadCount(1).ok());
  const auto one_thread = method->Expand(query, 50);
  ASSERT_TRUE(ThreadPool::SetGlobalThreadCount(8).ok());
  const auto eight_threads = method->Expand(query, 50);
  ASSERT_TRUE(ThreadPool::SetGlobalThreadCount(0).ok());  // restore default
  EXPECT_EQ(one_thread, eight_threads);
}

TEST_F(ExpandTest, SeedCentroidScoresMatchPerPairAverage) {
  const EntityStore& store = pipeline_->store();
  const Query& query = pipeline_->dataset().queries.front();
  const std::vector<EntityId>& candidates = pipeline_->candidates();
  const std::vector<float> batched =
      store.SeedCentroidScores(query.pos_seeds, candidates);
  ASSERT_EQ(batched.size(), candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    double per_pair = 0.0;
    for (EntityId seed : query.pos_seeds) {
      per_pair += static_cast<double>(
          store.Similarity(candidates[i], seed));
    }
    per_pair /= static_cast<double>(query.pos_seeds.size());
    EXPECT_NEAR(batched[i], per_pair, 1e-5) << "candidate " << i;
  }
}

TEST_F(ExpandTest, GenExpanProducesCandidatesOnly) {
  auto method = pipeline_->MakeGenExpan();
  const Query& query = pipeline_->dataset().queries.front();
  const auto ranking = method->Expand(query, 30);
  EXPECT_FALSE(ranking.empty());
  std::set<EntityId> candidates(pipeline_->candidates().begin(),
                                pipeline_->candidates().end());
  for (EntityId id : ranking) {
    EXPECT_TRUE(candidates.contains(id))
        << "prefix constraint must keep generations in the vocabulary";
  }
}

TEST_F(ExpandTest, GenExpanNoDuplicates) {
  auto method = pipeline_->MakeGenExpan();
  const Query& query = pipeline_->dataset().queries.front();
  const auto ranking = method->Expand(query, 40);
  std::set<EntityId> unique(ranking.begin(), ranking.end());
  EXPECT_EQ(unique.size(), ranking.size());
}

TEST_F(ExpandTest, GenExpanUnconstrainedEmitsHallucinations) {
  GenExpanConfig config;
  config.use_prefix_constraint = false;
  config.unconstrained_invalid_rate = 0.6;
  auto method = pipeline_->MakeGenExpan(config);
  int hallucinated = 0;
  for (size_t q = 0; q < 5 && q < pipeline_->dataset().queries.size();
       ++q) {
    for (EntityId id :
         method->Expand(pipeline_->dataset().queries[q], 40)) {
      if (id == kHallucinatedEntityId) ++hallucinated;
    }
  }
  EXPECT_GT(hallucinated, 0);
}

TEST_F(ExpandTest, GenExpanDeterministic) {
  auto method = pipeline_->MakeGenExpan();
  const Query& query = pipeline_->dataset().queries.front();
  EXPECT_EQ(method->Expand(query, 30), method->Expand(query, 30));
}

TEST(GenExpanFingerprintTest, SeedSideBoundaryChangesFingerprint) {
  // The regression this guards: without length tags, moving a seed from
  // the positive to the negative side kept the fingerprint (and thus the
  // prompt-sampling RNG stream) unchanged.
  Query both_positive;
  both_positive.pos_seeds = {11, 22};
  Query split;
  split.pos_seeds = {11};
  split.neg_seeds = {22};
  EXPECT_NE(GenExpanQueryFingerprint(both_positive),
            GenExpanQueryFingerprint(split));
  // Every split of the same 3 ids must land on a distinct stream.
  std::set<uint64_t> fingerprints;
  const std::vector<EntityId> ids = {5, 6, 7};
  for (size_t boundary = 0; boundary <= ids.size(); ++boundary) {
    Query query;
    query.pos_seeds.assign(ids.begin(), ids.begin() + boundary);
    query.neg_seeds.assign(ids.begin() + boundary, ids.end());
    fingerprints.insert(GenExpanQueryFingerprint(query));
  }
  EXPECT_EQ(fingerprints.size(), ids.size() + 1);
}

TEST_F(ExpandTest, GenExpanSeedSideSplitDrawsDifferentPromptSamples) {
  // Two queries over the same ids but a different pos/neg split must use
  // different RNG streams end to end: with several positive seeds the
  // round-0 prompt sample (3 of them) almost surely differs, and with it
  // the generated ranking.
  const Query& base = pipeline_->dataset().queries.front();
  ASSERT_GE(base.pos_seeds.size(), 4u);
  Query split = base;
  split.neg_seeds.insert(split.neg_seeds.begin(), split.pos_seeds.back());
  split.pos_seeds.pop_back();
  EXPECT_NE(GenExpanQueryFingerprint(base),
            GenExpanQueryFingerprint(split));
  auto method = pipeline_->MakeGenExpan();
  EXPECT_NE(method->Expand(base, 30), method->Expand(split, 30));
}

TEST_F(ExpandTest, GenExpanBudgetFreeOutcomeMatchesExpand) {
  auto method = pipeline_->MakeGenExpan();
  const Query& query = pipeline_->dataset().queries.front();
  const ExpandOutcome outcome =
      method->ExpandWithBudget(query, 30, ExpandBudget{});
  EXPECT_FALSE(outcome.degraded);
  EXPECT_EQ(outcome.ranking, method->Expand(query, 30));
}

TEST_F(ExpandTest, GenExpanPreExpiredDeadlineDegradesToValidRanking) {
  auto method = pipeline_->MakeGenExpan();
  const Query& query = pipeline_->dataset().queries.front();
  ExpandBudget budget;
  budget.deadline = std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1);
  const ExpandOutcome outcome = method->ExpandWithBudget(query, 30, budget);
  EXPECT_TRUE(outcome.degraded);
  // Degraded output is still a valid ranking: candidate entities only, no
  // duplicates, no seeds.
  std::set<EntityId> candidates(pipeline_->candidates().begin(),
                                pipeline_->candidates().end());
  std::set<EntityId> seeds(query.pos_seeds.begin(), query.pos_seeds.end());
  seeds.insert(query.neg_seeds.begin(), query.neg_seeds.end());
  std::set<EntityId> unique;
  for (EntityId id : outcome.ranking) {
    EXPECT_TRUE(candidates.contains(id));
    EXPECT_FALSE(seeds.contains(id));
    EXPECT_TRUE(unique.insert(id).second);
  }
}

TEST_F(ExpandTest, GenExpanStandingExpansionBudgetDegrades) {
  GenExpanConfig config;
  config.max_expansions = 1;
  auto method = pipeline_->MakeGenExpan(config);
  const Query& query = pipeline_->dataset().queries.front();
  const ExpandOutcome outcome =
      method->ExpandWithBudget(query, 30, ExpandBudget{});
  EXPECT_TRUE(outcome.degraded);
}

TEST_F(ExpandTest, GenExpanEnvBudgetKnobsAreResolved) {
  setenv("UW_GENEXPAN_TIME_BUDGET_MS", "250", 1);
  setenv("UW_GENEXPAN_MAX_EXPANSIONS", "12345", 1);
  auto method = pipeline_->MakeGenExpan();
  unsetenv("UW_GENEXPAN_TIME_BUDGET_MS");
  unsetenv("UW_GENEXPAN_MAX_EXPANSIONS");
  EXPECT_EQ(method->config().time_budget_ms, 250);
  EXPECT_EQ(method->config().max_expansions, 12345);
  // Explicit config values win over the environment.
  setenv("UW_GENEXPAN_MAX_EXPANSIONS", "99", 1);
  GenExpanConfig config;
  config.max_expansions = 7;
  auto explicit_method = pipeline_->MakeGenExpan(config);
  unsetenv("UW_GENEXPAN_MAX_EXPANSIONS");
  EXPECT_EQ(explicit_method->config().max_expansions, 7);
}

TEST_F(ExpandTest, RaPrefixesCoverSources) {
  for (RaSource source :
       {RaSource::kIntroduction, RaSource::kWikidataAttributes,
        RaSource::kGroundTruthAttributes}) {
    const auto prefixes = BuildEntityPrefixes(pipeline_->world(), source);
    ASSERT_EQ(prefixes.size(), pipeline_->world().corpus.entity_count());
    int non_empty = 0;
    for (const auto& prefix : prefixes) {
      if (!prefix.empty()) ++non_empty;
    }
    EXPECT_GT(non_empty, 0) << RaSourceName(source);
  }
  const auto none = BuildEntityPrefixes(pipeline_->world(), RaSource::kNone);
  for (const auto& prefix : none) EXPECT_TRUE(prefix.empty());
}

TEST_F(ExpandTest, RaIntroPrefixMasksOwnMention) {
  const auto prefixes =
      BuildEntityPrefixes(pipeline_->world(), RaSource::kIntroduction);
  const Corpus& corpus = pipeline_->world().corpus;
  for (EntityId id = 0; id < 20; ++id) {
    const Entity& entity = corpus.entity(id);
    for (TokenId token : prefixes[static_cast<size_t>(id)]) {
      for (const std::string& word : entity.name_tokens) {
        EXPECT_NE(corpus.tokens().TokenOf(token), word);
      }
    }
  }
}

TEST_F(ExpandTest, MinerProducesGroupsPerQuery) {
  RetExpan base(&pipeline_->store(), &pipeline_->candidates());
  MinerConfig config;
  const ContrastiveData data =
      MineContrastiveData(pipeline_->world(), pipeline_->dataset(), base,
                          pipeline_->oracle(), config);
  ASSERT_EQ(data.groups.size(), pipeline_->dataset().queries.size());
  for (size_t g = 0; g < data.groups.size(); ++g) {
    const ContrastiveGroup& group = data.groups[g];
    // Seeds are merged in, so l_pos/l_neg are never empty.
    EXPECT_FALSE(group.l_pos.empty());
    EXPECT_FALSE(group.l_neg.empty());
    EXPECT_FALSE(group.conditioning.empty());
    // No entity appears on both sides.
    std::set<EntityId> neg(group.l_neg.begin(), group.l_neg.end());
    for (EntityId id : group.l_pos) {
      EXPECT_FALSE(neg.contains(id));
    }
  }
}

TEST_F(ExpandTest, MinerOtherClassEntitiesAreOtherClass) {
  RetExpan base(&pipeline_->store(), &pipeline_->candidates());
  const ContrastiveData data =
      MineContrastiveData(pipeline_->world(), pipeline_->dataset(), base,
                          pipeline_->oracle(), MinerConfig{});
  for (size_t g = 0; g < data.groups.size(); ++g) {
    const ClassId query_class =
        pipeline_->dataset().ClassOf(pipeline_->dataset().queries[g])
            .fine_class;
    for (EntityId id : data.groups[g].other_class) {
      EXPECT_NE(pipeline_->world().corpus.entity(id).class_id, query_class);
    }
  }
}

TEST_F(ExpandTest, InteractionExpandersRun) {
  for (InteractionOrder order :
       {InteractionOrder::kRetThenGen, InteractionOrder::kGenThenRet}) {
    InteractionConfig config;
    config.recall_size = 120;
    auto method = pipeline_->MakeInteraction(order, config);
    const Query& query = pipeline_->dataset().queries.front();
    const auto ranking = method->Expand(query, 20);
    EXPECT_FALSE(ranking.empty());
    EXPECT_LE(ranking.size(), 20u);
    const std::vector<EntityId> seeds = SortedSeedsOf(query);
    for (EntityId id : ranking) {
      if (id == kHallucinatedEntityId) continue;
      EXPECT_FALSE(std::binary_search(seeds.begin(), seeds.end(), id));
    }
  }
}

TEST_F(ExpandTest, ContrastStoreDiffersFromBase) {
  const EntityStore& base = pipeline_->store();
  const EntityStore& tuned = pipeline_->contrast_store();
  const EntityId probe = pipeline_->candidates().front();
  const auto base_h = base.HiddenOf(probe);
  const auto tuned_h = tuned.HiddenOf(probe);
  EXPECT_FALSE(base_h.size() == tuned_h.size() &&
               std::equal(base_h.begin(), base_h.end(), tuned_h.begin()));
}

TEST_F(ExpandTest, CotPrefixedGenExpanDiffersFromBase) {
  auto base = pipeline_->MakeGenExpan();
  GenExpanConfig config;
  config.cot = CotMode::kGenClassNameGtPos;
  auto cot = pipeline_->MakeGenExpan(config);
  const Query& query = pipeline_->dataset().queries.front();
  // Different prompts should (almost always) change the ranking.
  EXPECT_NE(base->Expand(query, 40), cot->Expand(query, 40));
}

}  // namespace
}  // namespace ultrawiki
