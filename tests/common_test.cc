#include <gtest/gtest.h>

#include <set>

#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table_printer.h"

namespace ultrawiki {
namespace {

// ---------------------------------------------------------------- Status.

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = Status::NotFound("missing entity");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "missing entity");
  EXPECT_EQ(status.ToString(), "NOT_FOUND: missing entity");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(), Status::NotFound("").code(),
      Status::FailedPrecondition("").code(), Status::OutOfRange("").code(),
      Status::Internal("").code(), Status::Unimplemented("").code()};
  EXPECT_EQ(codes.size(), 6u);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusCodeTest, NamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "INTERNAL");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::OutOfRange("bad k"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result(std::string("payload"));
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> result(std::string("abc"));
  EXPECT_EQ(result->size(), 3u);
}

// ------------------------------------------------------------------- Rng.

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int value = rng.UniformInt(-3, 5);
    EXPECT_GE(value, -3);
    EXPECT_LE(value, 5);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(7);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double value = rng.UniformDouble();
    ASSERT_GE(value, 0.0);
    ASSERT_LT(value, 1.0);
    sum += value;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const double value = rng.Gaussian();
    sum += value;
    sum_sq += value * value;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / kSamples, 1.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / 20000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 20000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[3] / 20000.0, 0.6, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, SampleWithoutReplacementUnique) {
  Rng rng(23);
  std::vector<int> items(50);
  for (int i = 0; i < 50; ++i) items[static_cast<size_t>(i)] = i;
  const std::vector<int> sample = rng.SampleWithoutReplacement(items, 10);
  ASSERT_EQ(sample.size(), 10u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, SampleWithoutReplacementCapsAtSize) {
  Rng rng(29);
  std::vector<int> items = {1, 2, 3};
  EXPECT_EQ(rng.SampleWithoutReplacement(items, 10).size(), 3u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  // Child and parent should diverge immediately.
  EXPECT_NE(parent.NextUint64(), child.NextUint64());
}

// ---------------------------------------------------------- string_util.

TEST(StringUtilTest, SplitDropsEmptyPieces) {
  EXPECT_EQ(SplitString("a,,b,", ','),
            (std::vector<std::string>{"a", "b"}));
}

TEST(StringUtilTest, SplitKeepEmptyPreservesStructure) {
  EXPECT_EQ(SplitStringKeepEmpty("a,,b,", ','),
            (std::vector<std::string>{"a", "", "b", ""}));
}

TEST(StringUtilTest, SplitSingleToken) {
  EXPECT_EQ(SplitString("token", ','),
            (std::vector<std::string>{"token"}));
}

TEST(StringUtilTest, JoinRoundTrips) {
  const std::vector<std::string> pieces = {"x", "y", "z"};
  EXPECT_EQ(JoinStrings(pieces, ", "), "x, y, z");
  EXPECT_EQ(JoinStrings({}, ", "), "");
}

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("MiXeD 123"), "mixed 123");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  padded\t\n"), "padded");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
  EXPECT_EQ(StripAsciiWhitespace("x"), "x");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("ultrawiki", "ultra"));
  EXPECT_FALSE(StartsWith("ultra", "ultrawiki"));
  EXPECT_TRUE(EndsWith("ultrawiki", "wiki"));
  EXPECT_FALSE(EndsWith("wiki", "ultrawiki"));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

// --------------------------------------------------------- TablePrinter.

TEST(TablePrinterTest, RendersAlignedTable) {
  TablePrinter table("title");
  table.SetHeader({"a", "bb"});
  table.AddRow({"1", "2"});
  table.AddRow({"333", "4"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find("| 333 |"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TablePrinterTest, SeparatorAddsLine) {
  TablePrinter table;
  table.SetHeader({"x"});
  table.AddRow({"1"});
  table.AddSeparator();
  table.AddRow({"2"});
  const std::string out = table.ToString();
  // Header line + top/bottom + separator = at least 4 dashed lines.
  size_t dashes = 0;
  for (size_t pos = out.find("+-"); pos != std::string::npos;
       pos = out.find("+-", pos + 1)) {
    ++dashes;
  }
  EXPECT_GE(dashes, 4u);
}

TEST(TablePrinterDeathTest, RowWidthMustMatchHeader) {
  TablePrinter table;
  table.SetHeader({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "Check failed");
}

// -------------------------------------------------------------- Logging.

TEST(LoggingTest, LevelRoundTrips) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(before);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(UW_CHECK_EQ(1, 2) << "boom", "Check failed");
}

TEST(LoggingTest, CheckOkPassesOnOkStatus) {
  UW_CHECK_OK(Status::Ok());  // must not abort
  SUCCEED();
}

}  // namespace
}  // namespace ultrawiki
