#include <gtest/gtest.h>

#include <set>

#include "dataset/dataset.h"
#include "llm_oracle/oracle.h"

namespace ultrawiki {
namespace {

class OracleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorConfig gen;
    gen.seed = 3;
    gen.scale = 0.1;
    gen.min_entities_per_class = 24;
    gen.background_entity_count = 60;
    gen.sentences_per_entity = 6;
    world_ = new GeneratedWorld(GenerateWorld(gen));
    DatasetConfig dataset_config;
    dataset_config.ultra_class_scale = 0.1;
    auto built = BuildDataset(*world_, dataset_config);
    ASSERT_TRUE(built.ok());
    dataset_ = new UltraWikiDataset(std::move(built).value());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete world_;
    dataset_ = nullptr;
    world_ = nullptr;
  }

  /// Seeds sharing a known attribute value within class 0.
  std::vector<EntityId> SeedsWithSharedValue(int attr, int value,
                                             size_t count) const {
    std::vector<EntityId> seeds;
    for (EntityId id :
         world_->entities_by_value[0][static_cast<size_t>(attr)]
                                  [static_cast<size_t>(value)]) {
      seeds.push_back(id);
      if (seeds.size() == count) break;
    }
    return seeds;
  }

  static GeneratedWorld* world_;
  static UltraWikiDataset* dataset_;
};

GeneratedWorld* OracleTest::world_ = nullptr;
UltraWikiDataset* OracleTest::dataset_ = nullptr;

TEST_F(OracleTest, TrueSharedAttributesFindsTheSharedValue) {
  LlmOracle oracle(world_);
  const std::vector<EntityId> seeds = SeedsWithSharedValue(0, 0, 4);
  ASSERT_GE(seeds.size(), 3u);
  const auto shared = oracle.TrueSharedAttributes(seeds);
  bool found = false;
  for (const auto& [attr, value] : shared) {
    if (attr == 0 && value == 0) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(OracleTest, TrueSharedAttributesEmptyForMixedClasses) {
  LlmOracle oracle(world_);
  const EntityId a = world_->corpus.EntitiesOfClass(0)[0];
  const EntityId b = world_->corpus.EntitiesOfClass(1)[0];
  EXPECT_TRUE(
      oracle.TrueSharedAttributes(std::vector<EntityId>{a, b}).empty());
}

TEST_F(OracleTest, JudgeConsistentIsDeterministic) {
  LlmOracle oracle(world_);
  const std::vector<EntityId> seeds = SeedsWithSharedValue(0, 0, 3);
  const EntityId candidate = world_->corpus.EntitiesOfClass(0).back();
  const bool first = oracle.JudgeConsistent(seeds, candidate);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(oracle.JudgeConsistent(seeds, candidate), first);
  }
}

TEST_F(OracleTest, JudgeAccuracyBeatsChanceButIsNoisy) {
  OracleConfig config;
  config.base_error_rate = 0.1;
  LlmOracle oracle(world_, config);
  const std::vector<EntityId> seeds = SeedsWithSharedValue(0, 0, 3);
  int correct = 0;
  int total = 0;
  int wrong = 0;
  for (EntityId id : world_->corpus.EntitiesOfClass(0)) {
    const bool truth = world_->corpus.entity(id).attribute_values[0] == 0;
    const bool judged = oracle.JudgeConsistent(seeds, id);
    ++total;
    if (judged == truth) {
      ++correct;
    } else {
      ++wrong;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.55);
  // The oracle must err sometimes (it is not a ground-truth shortcut).
  EXPECT_GT(wrong, 0);
}

TEST_F(OracleTest, ClassNameInferenceMostlyRight) {
  OracleConfig config;
  config.cot_class_name_error = 0.1;
  LlmOracle oracle(world_, config);
  int right = 0;
  int total = 0;
  for (const Query& query : dataset_->queries) {
    const ClassId truth = dataset_->ClassOf(query).fine_class;
    if (oracle.InferClassName(query.pos_seeds) == truth) ++right;
    ++total;
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(static_cast<double>(right) / total, 0.75);
  EXPECT_LT(static_cast<double>(right) / total, 1.0);
}

TEST_F(OracleTest, NegativeAttributeInferenceIsNoisierThanPositive) {
  LlmOracle oracle(world_);
  int pos_correct = 0;
  int neg_correct = 0;
  int total = 0;
  for (const Query& query : dataset_->queries) {
    const auto truth_pos = oracle.TrueSharedAttributes(query.pos_seeds);
    const auto truth_neg = oracle.TrueSharedAttributes(query.neg_seeds);
    if (truth_pos.empty() || truth_neg.empty()) continue;
    if (oracle.InferSharedAttributes(query.pos_seeds, false) == truth_pos) {
      ++pos_correct;
    }
    if (oracle.InferSharedAttributes(query.neg_seeds, true) == truth_neg) {
      ++neg_correct;
    }
    ++total;
  }
  ASSERT_GT(total, 10);
  EXPECT_GT(pos_correct, neg_correct);
}

TEST_F(OracleTest, GenerativeExpansionExcludesSeeds) {
  LlmOracle oracle(world_);
  const Query& query = dataset_->queries.front();
  const auto ranking = oracle.ExpandGenerative(query, *dataset_, 100);
  std::set<EntityId> seeds(query.pos_seeds.begin(), query.pos_seeds.end());
  seeds.insert(query.neg_seeds.begin(), query.neg_seeds.end());
  for (EntityId id : ranking) {
    EXPECT_FALSE(seeds.contains(id));
  }
}

TEST_F(OracleTest, GenerativeExpansionHallucinates) {
  OracleConfig config;
  config.hallucination_rate = 0.3;
  LlmOracle oracle(world_, config);
  int hallucinated = 0;
  for (const Query& query : dataset_->queries) {
    for (EntityId id : oracle.ExpandGenerative(query, *dataset_, 50)) {
      if (id == kHallucinatedEntityId) ++hallucinated;
    }
  }
  EXPECT_GT(hallucinated, 0);
}

TEST_F(OracleTest, GenerativeExpansionRanksTargetsAboveRandom) {
  LlmOracle oracle(world_);
  double hits_at_20 = 0.0;
  int queries = 0;
  for (const Query& query : dataset_->queries) {
    const UltraClass& ultra = dataset_->ClassOf(query);
    std::set<EntityId> targets(ultra.positive_targets.begin(),
                               ultra.positive_targets.end());
    const auto ranking = oracle.ExpandGenerative(query, *dataset_, 20);
    for (EntityId id : ranking) {
      if (targets.contains(id)) hits_at_20 += 1.0;
    }
    ++queries;
  }
  const double mean_hits = hits_at_20 / queries;
  // Random over the vocabulary would give well under 1 hit in the top 20.
  EXPECT_GT(mean_hits, 3.0);
}

TEST_F(OracleTest, GenerativeExpansionDeterministic) {
  LlmOracle oracle(world_);
  const Query& query = dataset_->queries.front();
  EXPECT_EQ(oracle.ExpandGenerative(query, *dataset_, 30),
            oracle.ExpandGenerative(query, *dataset_, 30));
}

}  // namespace
}  // namespace ultrawiki
