#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <vector>

#include "ann/ivf_index.h"
#include "ann/scaled_store.h"
#include "corpus/generator.h"
#include "embedding/entity_store.h"
#include "expand/pipeline.h"
#include "expand/retexpan.h"
#include "io/artifact_cache.h"
#include "io/snapshot.h"

namespace ultrawiki {
namespace {

GeneratorConfig ScaledConfig(int64_t entities) {
  GeneratorConfig config;
  config.seed = 5;
  config.scale_entities = entities;
  return config;
}

EntityStore MakeScaledStore(int64_t entities) {
  return BuildScaledStore(ScaledConfig(entities), /*dim=*/32);
}

Query SameClassQuery() {
  // The scaled stream assigns classes round-robin over scale_classes (64),
  // so these positive seeds share class 3 and the negatives class 7.
  Query query;
  query.pos_seeds = {3, 67, 131, 195};
  query.neg_seeds = {7, 71};
  return query;
}

// ------------------------------------------------------------ IvfIndex.

TEST(IvfIndexTest, BuildIsDeterministic) {
  const EntityStore store = MakeScaledStore(1500);
  const IvfIndex a = IvfIndex::Build(store);
  const IvfIndex b = IvfIndex::Build(store);
  ASSERT_EQ(a.nlist(), b.nlist());
  ASSERT_EQ(a.rows(), b.rows());
  EXPECT_TRUE(std::equal(a.centroids().begin(), a.centroids().end(),
                         b.centroids().begin(), b.centroids().end()));
  EXPECT_EQ(a.lists(), b.lists());
}

TEST(IvfIndexTest, ListsPartitionThePresentEntities) {
  const EntityStore store = MakeScaledStore(1000);
  const IvfIndex index = IvfIndex::Build(store);
  std::vector<EntityId> members;
  for (const std::vector<EntityId>& list : index.lists()) {
    EXPECT_TRUE(std::is_sorted(list.begin(), list.end()));
    members.insert(members.end(), list.begin(), list.end());
  }
  std::sort(members.begin(), members.end());
  std::vector<EntityId> expected(1000);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(members, expected);
}

TEST(IvfIndexTest, FullProbeReturnsEveryEntity) {
  const EntityStore store = MakeScaledStore(800);
  const IvfIndex index = IvfIndex::Build(store);
  const Vec centroid = store.SeedCentroidOf({3, 67});
  const std::vector<EntityId> all =
      index.Candidates(centroid, index.nlist(), /*k_cand=*/1);
  std::vector<EntityId> expected(800);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(all, expected);
}

TEST(IvfIndexTest, ProbesPastNprobeUntilKCand) {
  const EntityStore store = MakeScaledStore(800);
  const IvfIndex index = IvfIndex::Build(store);
  const Vec centroid = store.SeedCentroidOf({3, 67});
  // nprobe=1 with a huge k_cand must keep probing lists rather than
  // starve the rerank.
  const std::vector<EntityId> candidates =
      index.Candidates(centroid, /*nprobe=*/1, /*k_cand=*/500);
  EXPECT_GE(candidates.size(), 500u);
}

TEST(IvfIndexTest, DefaultProbeRetrievesSameClassNeighbors) {
  const EntityStore store = MakeScaledStore(2000);
  const IvfIndex index = IvfIndex::Build(store);
  const Vec centroid = store.SeedCentroidOf({3, 67, 131});
  const std::vector<EntityId> candidates =
      index.Candidates(centroid, index.config().nprobe, /*k_cand=*/50);
  // The class signal dominates the scaled rows, so probing a third of the
  // lists (16 of ~45) must surface plenty of class-3 members.
  int same_class = 0;
  for (const EntityId id : candidates) {
    if (id % 64 == 3) ++same_class;
  }
  EXPECT_GT(same_class, 10);
}

// --------------------------------------------- RetExpan parity contract.

TEST(AnnRetExpanTest, FullProbeIsBitIdenticalToExactScan) {
  const EntityStore store = MakeScaledStore(1200);
  // Candidates: every present entity plus one absent id, so the parity
  // covers the exact path's zero-score tail.
  std::vector<EntityId> candidates(1200);
  std::iota(candidates.begin(), candidates.end(), 0);
  candidates.push_back(5000);
  const IvfIndex index = IvfIndex::Build(store);

  RetExpan exact(&store, &candidates);
  RetExpanConfig ann_config;
  ann_config.ann_min_candidates = 0;
  ann_config.ann_nprobe = index.nlist();
  RetExpan ann(&store, &candidates, ann_config);
  ann.SetAnnIndex(&index);

  const Query query = SameClassQuery();
  for (const size_t size : {10u, 200u, 1201u}) {
    EXPECT_EQ(ann.InitialExpansion(query, size),
              exact.InitialExpansion(query, size))
        << "initial expansion size " << size;
  }
  for (const size_t k : {5u, 50u, 400u}) {
    EXPECT_EQ(ann.Expand(query, k), exact.Expand(query, k)) << "k " << k;
  }
}

TEST(AnnRetExpanTest, DefaultProbeKeepsFinalRankings) {
  const EntityStore store = MakeScaledStore(4000);
  std::vector<EntityId> candidates(4000);
  std::iota(candidates.begin(), candidates.end(), 0);
  const IvfIndex index = IvfIndex::Build(store);
  ASSERT_LT(index.config().nprobe, index.nlist())
      << "default nprobe must actually approximate at this scale";

  RetExpan exact(&store, &candidates);
  RetExpanConfig ann_config;
  ann_config.ann_min_candidates = 0;  // default nprobe stays in effect
  RetExpan ann(&store, &candidates, ann_config);
  ann.SetAnnIndex(&index);

  for (int q = 0; q < 4; ++q) {
    Query query;
    for (int s = 0; s < 4; ++s) {
      query.pos_seeds.push_back(q + 1 + s * 64);
    }
    query.neg_seeds = {q + 9, q + 9 + 64};
    EXPECT_EQ(ann.Expand(query, 50), exact.Expand(query, 50))
        << "query " << q;
  }
}

TEST(AnnRetExpanTest, SmallVocabularyFallsBackToExactScan) {
  const EntityStore store = MakeScaledStore(300);
  std::vector<EntityId> candidates(300);
  std::iota(candidates.begin(), candidates.end(), 0);
  const IvfIndex index = IvfIndex::Build(store);

  RetExpan exact(&store, &candidates);
  RetExpan ann(&store, &candidates);  // default ann_min_candidates = 4096
  ann.SetAnnIndex(&index);
  const Query query = SameClassQuery();
  EXPECT_EQ(ann.Expand(query, 40), exact.Expand(query, 40));
}

// ----------------------------------------------------------- Snapshots.

TEST(AnnSnapshotTest, RoundTripRestoresIdenticalIndex) {
  const EntityStore store = MakeScaledStore(900);
  const IvfIndex built = IvfIndex::Build(store);
  const std::string path =
      (std::filesystem::temp_directory_path() / "ann_roundtrip.uws")
          .string();
  ASSERT_TRUE(SaveAnnIndexSnapshot(built, path).ok());
  auto loaded = LoadAnnIndexSnapshot(path, built.config());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->nlist(), built.nlist());
  EXPECT_EQ(loaded->rows(), built.rows());
  EXPECT_TRUE(std::equal(loaded->centroids().begin(),
                         loaded->centroids().end(),
                         built.centroids().begin(),
                         built.centroids().end()));
  EXPECT_EQ(loaded->lists(), built.lists());
  const Vec centroid = store.SeedCentroidOf({3, 67, 131});
  EXPECT_EQ(loaded->Candidates(centroid, 4, 32),
            built.Candidates(centroid, 4, 32));
  std::filesystem::remove(path);
}

TEST(AnnSnapshotTest, ConfigMismatchFailsClosed) {
  const EntityStore store = MakeScaledStore(500);
  const IvfIndex built = IvfIndex::Build(store);
  const std::string path =
      (std::filesystem::temp_directory_path() / "ann_mismatch.uws")
          .string();
  ASSERT_TRUE(SaveAnnIndexSnapshot(built, path).ok());
  IvfConfig other = built.config();
  other.seed ^= 1;
  EXPECT_FALSE(LoadAnnIndexSnapshot(path, other).ok());
  std::filesystem::remove(path);
}

TEST(AnnSnapshotTest, CorruptionFailsClosed) {
  const EntityStore store = MakeScaledStore(500);
  const IvfIndex built = IvfIndex::Build(store);
  const std::string path =
      (std::filesystem::temp_directory_path() / "ann_corrupt.uws").string();
  ASSERT_TRUE(SaveAnnIndexSnapshot(built, path).ok());
  // Flip one payload byte: the CRC must reject the file.
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.good());
  file.seekp(40);
  char byte;
  file.seekg(40);
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5A);
  file.seekp(40);
  file.write(&byte, 1);
  file.close();
  EXPECT_FALSE(LoadAnnIndexSnapshot(path, built.config()).ok());
  std::filesystem::remove(path);
}

TEST(AnnSnapshotTest, ArtifactCacheRoundTrip) {
  const std::string root =
      (std::filesystem::temp_directory_path() / "ann_cache_test").string();
  std::filesystem::create_directories(root);
  ArtifactCache::OverrideGlobalForTest(root);
  ArtifactCache& cache = ArtifactCache::Global();

  const EntityStore store = MakeScaledStore(700);
  const IvfConfig config;
  const uint64_t key = CombineFingerprints(
      {FingerprintConfig(ScaledConfig(700)), FingerprintConfig(config)});
  auto load = [&config](const std::string& path) {
    return LoadAnnIndexSnapshot(path, config);
  };
  EXPECT_FALSE(TryLoadCached(cache, "ann", key, load).has_value());

  const IvfIndex built = IvfIndex::Build(store, config);
  StoreCached(cache, "ann", key, [&built](const std::string& path) {
    return SaveAnnIndexSnapshot(built, path);
  });
  auto cached = TryLoadCached(cache, "ann", key, load);
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(cached->lists(), built.lists());

  // A different ANN config is a different key — it must miss, never
  // serve the stale index.
  IvfConfig other = config;
  other.nprobe += 1;
  const uint64_t other_key = CombineFingerprints(
      {FingerprintConfig(ScaledConfig(700)), FingerprintConfig(other)});
  EXPECT_NE(other_key, key);

  ArtifactCache::OverrideGlobalForTest("");
  std::filesystem::remove_all(root);
}

// ------------------------------------- Streamed generation + fingerprint.

TEST(ScaledGenerationTest, StreamIsDeterministicAndOrdered) {
  const GeneratorConfig config = ScaledConfig(200);
  std::vector<ScaledEntity> first;
  GenerateScaledEntities(config,
                         [&](const ScaledEntity& e) { first.push_back(e); });
  ASSERT_EQ(first.size(), 200u);
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].id, static_cast<EntityId>(i));
    EXPECT_EQ(first[i].class_id,
              static_cast<int>(i) % config.scale_classes);
    ASSERT_EQ(first[i].sentences.size(),
              static_cast<size_t>(config.scale_sentences_per_entity));
  }
  size_t cursor = 0;
  GenerateScaledEntities(config, [&](const ScaledEntity& e) {
    ASSERT_LT(cursor, first.size());
    EXPECT_EQ(e.sentences, first[cursor].sentences);
    EXPECT_EQ(e.attribute_value, first[cursor].attribute_value);
    ++cursor;
  });
  EXPECT_EQ(cursor, first.size());

  GeneratorConfig reseeded = config;
  reseeded.seed ^= 0xBEEF;
  bool any_diff = false;
  cursor = 0;
  GenerateScaledEntities(reseeded, [&](const ScaledEntity& e) {
    any_diff = any_diff || e.sentences != first[cursor++].sentences;
  });
  EXPECT_TRUE(any_diff);
}

TEST(ScaledGenerationTest, ScaledStoreIsDeterministic) {
  const EntityStore a = MakeScaledStore(400);
  const EntityStore b = MakeScaledStore(400);
  ASSERT_EQ(a.dim(), b.dim());
  for (EntityId id = 0; id < 400; ++id) {
    const std::span<const float> ua = a.UnitOf(id);
    const std::span<const float> ub = b.UnitOf(id);
    ASSERT_TRUE(std::equal(ua.begin(), ua.end(), ub.begin(), ub.end()))
        << "entity " << id;
  }
}

TEST(ScaledGenerationTest, FingerprintCoversScalingKnobs) {
  // Regression: the streaming knobs must reach FingerprintConfig, or a
  // scaled-store cache entry built at one scale would be served for
  // another (same seed, different corpus).
  const GeneratorConfig base = ScaledConfig(1000);
  const uint64_t base_print = FingerprintConfig(base);

  GeneratorConfig entities = base;
  entities.scale_entities = 2000;
  EXPECT_NE(FingerprintConfig(entities), base_print);

  GeneratorConfig classes = base;
  classes.scale_classes += 1;
  EXPECT_NE(FingerprintConfig(classes), base_print);

  GeneratorConfig sentences = base;
  sentences.scale_sentences_per_entity += 1;
  EXPECT_NE(FingerprintConfig(sentences), base_print);

  GeneratorConfig tokens = base;
  tokens.scale_sentence_tokens += 1;
  EXPECT_NE(FingerprintConfig(tokens), base_print);
}

// ------------------------------------------------- Pipeline env wiring.

class AnnPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipeline_ = new Pipeline(Pipeline::Build(PipelineConfig::Tiny()));
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }
  void TearDown() override {
    ::unsetenv("UW_ANN_ENABLE");
    ::unsetenv("UW_ANN_NPROBE");
  }
  static Pipeline* pipeline_;
};

Pipeline* AnnPipelineTest::pipeline_ = nullptr;

TEST_F(AnnPipelineTest, AnnIndexCoversTheMainStoreCandidates) {
  const IvfIndex& index = pipeline_->ann_index();
  size_t present = 0;
  for (const EntityId id : pipeline_->candidates()) {
    if (pipeline_->store().Has(id)) ++present;
  }
  EXPECT_EQ(index.rows(), present);
  EXPECT_GT(index.nlist(), 0);
}

TEST_F(AnnPipelineTest, EnvEnabledExpanderMatchesExactAtFullProbe) {
  auto exact = pipeline_->MakeRetExpan();
  ASSERT_EQ(::setenv("UW_ANN_ENABLE", "1", 1), 0);
  // A probe far beyond nlist degenerates to the full scan, so even the
  // tiny vocabulary must rank bit-identically.
  ASSERT_EQ(::setenv("UW_ANN_NPROBE", "1000000", 1), 0);
  RetExpanConfig config;
  config.ann_min_candidates = 0;  // force the ANN path at tiny scale
  auto ann = pipeline_->MakeRetExpan(config);
  for (size_t q = 0; q < 3 && q < pipeline_->dataset().queries.size();
       ++q) {
    const Query& query = pipeline_->dataset().queries[q];
    EXPECT_EQ(ann->Expand(query, 40), exact->Expand(query, 40))
        << "query " << q;
  }
}

TEST_F(AnnPipelineTest, EnvDisabledExpanderNeverAttachesTheIndex) {
  // Without UW_ANN_ENABLE the expander must not engage ANN even when the
  // threshold would allow it: rankings equal the exact scan and the
  // fallback counter stays untouched (no index attached at all).
  RetExpanConfig config;
  config.ann_min_candidates = 0;
  auto plain = pipeline_->MakeRetExpan(config);
  auto exact = pipeline_->MakeRetExpan();
  const Query& query = pipeline_->dataset().queries.front();
  EXPECT_EQ(plain->Expand(query, 40), exact->Expand(query, 40));
}

}  // namespace
}  // namespace ultrawiki
