// Second property-test round: invariants that hold across a full tiny
// pipeline for every method and every query — the "no method may ever
// violate these" layer above the per-module unit tests.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "eval/evaluator.h"
#include "eval/significance.h"
#include "expand/pipeline.h"
#include "lm/beam_search.h"

namespace ultrawiki {
namespace {

class PipelinePropertyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipeline_ = new Pipeline(Pipeline::Build(PipelineConfig::Tiny()));
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
  }
  static Pipeline* pipeline_;
};

Pipeline* PipelinePropertyTest::pipeline_ = nullptr;

TEST_F(PipelinePropertyTest, EveryMethodSatisfiesTheExpanderContract) {
  std::vector<std::unique_ptr<Expander>> methods;
  methods.push_back(pipeline_->MakeSetExpan());
  methods.push_back(pipeline_->MakeCaSE());
  methods.push_back(pipeline_->MakeCgExpan());
  methods.push_back(pipeline_->MakeProbExpan());
  methods.push_back(pipeline_->MakeGpt4Baseline());
  methods.push_back(pipeline_->MakeRetExpan());
  methods.push_back(pipeline_->MakeGenExpan());
  methods.push_back(
      pipeline_->MakeInteraction(InteractionOrder::kRetThenGen));
  methods.push_back(
      pipeline_->MakeInteraction(InteractionOrder::kGenThenRet));

  const std::set<EntityId> candidates(pipeline_->candidates().begin(),
                                      pipeline_->candidates().end());
  for (auto& method : methods) {
    for (size_t q = 0; q < 3 && q < pipeline_->dataset().queries.size();
         ++q) {
      const Query& query = pipeline_->dataset().queries[q];
      const std::vector<EntityId> seeds = SortedSeedsOf(query);
      for (size_t k : {size_t{1}, size_t{10}, size_t{60}}) {
        const auto ranking = method->Expand(query, k);
        EXPECT_LE(ranking.size(), k) << method->name();
        std::set<EntityId> unique;
        for (EntityId id : ranking) {
          if (id == kHallucinatedEntityId) continue;
          EXPECT_TRUE(candidates.contains(id)) << method->name();
          EXPECT_FALSE(std::binary_search(seeds.begin(), seeds.end(), id))
              << method->name();
          EXPECT_TRUE(unique.insert(id).second)
              << method->name() << " duplicated entity " << id;
        }
      }
    }
  }
}

TEST_F(PipelinePropertyTest, ExpandPrefixMonotonicity) {
  // Asking for a smaller k must yield a prefix of the larger ranking
  // (deterministic methods only; the generative loop is k-dependent by
  // design, so it is exercised separately above).
  std::vector<std::unique_ptr<Expander>> methods;
  methods.push_back(pipeline_->MakeRetExpan());
  methods.push_back(pipeline_->MakeProbExpan());
  methods.push_back(pipeline_->MakeCaSE());
  for (auto& method : methods) {
    const Query& query = pipeline_->dataset().queries.front();
    const auto big = method->Expand(query, 50);
    const auto small = method->Expand(query, 10);
    ASSERT_LE(small.size(), big.size()) << method->name();
    for (size_t i = 0; i < small.size(); ++i) {
      EXPECT_EQ(small[i], big[i]) << method->name() << " at " << i;
    }
  }
}

TEST_F(PipelinePropertyTest, BeamSearchResultsAreAlwaysTrieTerminals) {
  Rng rng(3);
  const auto& queries = pipeline_->dataset().queries;
  for (int probe = 0; probe < 10; ++probe) {
    const Query& query = queries[rng.UniformUint64(queries.size())];
    std::vector<TokenId> prompt;
    for (EntityId id : query.pos_seeds) {
      for (const std::string& word :
           pipeline_->world().corpus.entity(id).name_tokens) {
        const TokenId token =
            pipeline_->world().corpus.tokens().Lookup(word);
        if (token != kInvalidTokenId) prompt.push_back(token);
      }
    }
    const auto generated = ConstrainedBeamSearch(
        pipeline_->lm(), pipeline_->trie(), prompt, BeamSearchConfig{});
    const std::set<EntityId> candidates(pipeline_->candidates().begin(),
                                        pipeline_->candidates().end());
    for (const GeneratedEntity& g : generated) {
      EXPECT_TRUE(candidates.contains(g.entity));
      EXPECT_LE(g.score, 0.0) << "log-prob scores are non-positive";
    }
  }
}

TEST_F(PipelinePropertyTest, EvaluationScoresWithinBounds) {
  auto method = pipeline_->MakeRetExpan();
  const EvalResult result =
      EvaluateExpander(*method, pipeline_->dataset());
  for (int k : {10, 20, 50, 100}) {
    for (double v : {result.pos_map.at(k), result.neg_map.at(k),
                     result.pos_p.at(k), result.neg_p.at(k)}) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 100.0);
    }
    EXPECT_GE(result.CombMap(k), 0.0);
    EXPECT_LE(result.CombMap(k), 100.0);
  }
}

TEST_F(PipelinePropertyTest, PerQueryScoresMatchAggregate) {
  auto method = pipeline_->MakeRetExpan();
  const std::vector<double> per_query =
      PerQueryCombMap(*method, pipeline_->dataset(), 100);
  ASSERT_EQ(per_query.size(), pipeline_->dataset().queries.size());
  double mean = 0.0;
  for (double v : per_query) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 100.0);
    mean += v;
  }
  mean /= static_cast<double>(per_query.size());
  const EvalResult aggregate =
      EvaluateExpander(*method, pipeline_->dataset());
  EXPECT_NEAR(mean, aggregate.CombMap(100), 1e-6);
}

TEST_F(PipelinePropertyTest, MinedDataIsDeterministic) {
  RetExpan base(&pipeline_->store(), &pipeline_->candidates());
  const ContrastiveData a = MineContrastiveData(
      pipeline_->world(), pipeline_->dataset(), base, pipeline_->oracle(),
      MinerConfig{});
  const ContrastiveData b = MineContrastiveData(
      pipeline_->world(), pipeline_->dataset(), base, pipeline_->oracle(),
      MinerConfig{});
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (size_t g = 0; g < a.groups.size(); ++g) {
    EXPECT_EQ(a.groups[g].l_pos, b.groups[g].l_pos);
    EXPECT_EQ(a.groups[g].l_neg, b.groups[g].l_neg);
    EXPECT_EQ(a.groups[g].conditioning, b.groups[g].conditioning);
  }
}

TEST_F(PipelinePropertyTest, OracleJudgmentsAreOrderIndependent) {
  // Deterministic per-call randomness: interleaving calls in any order
  // must not change any individual judgment.
  const Query& q0 = pipeline_->dataset().queries[0];
  const Query& q1 = pipeline_->dataset().queries[1];
  const EntityId c0 = pipeline_->candidates()[5];
  const EntityId c1 = pipeline_->candidates()[7];
  const bool a1 = pipeline_->oracle().JudgeConsistent(q0.pos_seeds, c0);
  const bool b1 = pipeline_->oracle().JudgeConsistent(q1.pos_seeds, c1);
  // Reversed order.
  const bool b2 = pipeline_->oracle().JudgeConsistent(q1.pos_seeds, c1);
  const bool a2 = pipeline_->oracle().JudgeConsistent(q0.pos_seeds, c0);
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(b1, b2);
}

}  // namespace
}  // namespace ultrawiki
